#!/bin/bash
# Figures 4-6 at reduced scale (see run_experiments.sh for the full version).
set -e
cd "$(dirname "$0")"
S=${1:-0.015}
E=${2:-10}
P=${3:-6}
BIN=target/release
$BIN/fig4 --scale $S --epochs $E --pretrain-epochs $P --datasets beauty,yelp --out results/fig4.json | tee results/fig4.md
$BIN/fig5 --scale $S --epochs $E --pretrain-epochs $P --out results/fig5.json | tee results/fig5.md
$BIN/fig6 --scale $S --epochs $E --pretrain-epochs $P --out results/fig6.json | tee results/fig6.md
echo ALL_FIGS_DONE
