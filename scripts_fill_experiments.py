#!/usr/bin/env python3
"""Inserts measured figure results into EXPERIMENTS.md placeholders."""
import re, pathlib
root = pathlib.Path('/root/repo')
exp = (root/'EXPERIMENTS.md').read_text()

def body(md_path, drop_first_heading=True):
    text = (root/'results'/md_path).read_text()
    lines = text.splitlines()
    if drop_first_heading and lines and lines[0].startswith('## '):
        lines = lines[1:]
    return '\n'.join(l for l in lines).strip()

subs = {
    '<!-- FIG4_RESULTS -->': ('fig4.md',),
    '<!-- FIG5_RESULTS -->': ('fig5.md',),
    '<!-- FIG6_RESULTS -->': ('fig6.md',),
}
for marker, (path,) in subs.items():
    p = root/'results'/path
    if p.exists() and marker in exp:
        exp = exp.replace(marker, body(path))
        print(f'filled {marker} from {path}')
    else:
        print(f'skipped {marker} (missing {path})')
(root/'EXPERIMENTS.md').write_text(exp)
