#!/usr/bin/env bash
# Runs the training-throughput benchmark (every baseline fit loop plus both
# CL4SRec stages) and writes BENCH_train.json at the repo root: secs/epoch,
# sequences/s, and GEMM FLOP/s per method, metered through seqrec-obs with
# validation probes disabled.
#
# Usage: scripts/bench_train.sh [extra bench_train args...]
# e.g.   scripts/bench_train.sh --scale 0.04 --epochs 5
set -euo pipefail

cd "$(dirname "$0")/.."
REPORT="$PWD/BENCH_train.json"

cargo run --offline --release -p seqrec-experiments --bin bench_train -- \
    --scale 0.02 --epochs 3 --pretrain-epochs 2 --datasets beauty \
    --out "$REPORT" "$@" >/dev/null

python3 - "$REPORT" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

print(f"wrote {sys.argv[1]}")
for r in report["rows"]:
    print(
        f"  {r['method']:>18s}/{r['dataset']}: "
        f"{r['secs_per_epoch']:.2f}s/epoch, {r['seqs_per_sec']:.0f} seqs/s, "
        f"{r['gemm_gflops_per_sec']:.2f} GFLOP/s"
    )
PY
