#!/usr/bin/env bash
# Runs the serving-latency benchmark (checkpoint round trip + batching
# scoring server at a fixed offered load) and writes BENCH_serve.json at
# the repo root: p50/p99 request latency, catalog items scored per second,
# and the user-state cache hit rate per method.
#
# Usage: scripts/bench_serve.sh [extra bench_serve args...]
# e.g.   scripts/bench_serve.sh --qps 4000 --requests 5000
set -euo pipefail

cd "$(dirname "$0")/.."
REPORT="$PWD/BENCH_serve.json"

cargo run --offline --release -p seqrec-serve --bin bench_serve -- \
    --scale 0.005 --requests 2000 --qps 2000 --k 10 \
    --out "$REPORT" "$@" >/dev/null

python3 - "$REPORT" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

print(f"wrote {sys.argv[1]}")
for r in report["rows"]:
    print(
        f"  {r['method']:>18s}/{r['dataset']}: "
        f"p50 {r['p50_us']:.0f}us, p99 {r['p99_us']:.0f}us, "
        f"{r['items_per_sec'] / 1e6:.2f}M items/s, "
        f"{r['cache_hit_rate'] * 100:.0f}% cache hits"
    )
PY
