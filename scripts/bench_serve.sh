#!/usr/bin/env bash
# Runs the serving-latency benchmark (checkpoint round trip + batching
# scoring server at a fixed offered load) and writes BENCH_serve.json at
# the repo root: p50/p99 request latency, catalog items scored per second,
# the user-state cache hit rate, queue-depth/batch-occupancy distributions
# and the SLO verdict per method. The run also serves the live metrics
# exposition and self-scrapes it mid-serve (--expo), so a baseline refresh
# doubles as an end-to-end check of the observability path.
#
# Usage: scripts/bench_serve.sh [extra bench_serve args...]
# e.g.   scripts/bench_serve.sh --qps 4000 --requests 5000
set -euo pipefail

cd "$(dirname "$0")/.."
REPORT="$PWD/BENCH_serve.json"

cargo run --offline --release -p seqrec-serve --bin bench_serve -- \
    --scale 0.005 --requests 2000 --qps 2000 --k 10 \
    --expo 127.0.0.1:0 --out "$REPORT" "$@" >/dev/null

python3 - "$REPORT" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

print(f"wrote {sys.argv[1]}")
for r in report["rows"]:
    verdict = "SLO met" if r["slo_ok"] == 1.0 else "SLO BURNING"
    print(
        f"  {r['method']:>18s}/{r['dataset']}: "
        f"p50 {r['p50_us']:.0f}us, p99 {r['p99_us']:.0f}us, "
        f"{r['items_per_sec'] / 1e6:.2f}M items/s, "
        f"{r['cache_hit_rate'] * 100:.0f}% cache hits, "
        f"queue p99 {r['queue_depth_p99']:.0f}, "
        f"occupancy {r['batch_occupancy_mean_pct']:.0f}%, "
        f"{verdict} (burn {r['slo_burn_rate']:.2f})"
    )
PY
