#!/usr/bin/env bash
# Performance-regression gate: re-runs the training-throughput and
# serving-latency benchmarks and diffs the fresh numbers against the
# committed baselines (BENCH_train.json, BENCH_serve.json) with per-metric
# relative tolerances (see crates/obs/src/benchdiff.rs; the serve metrics
# use their own spec set via `bench_diff --specs serve`). The train specs
# pin the memory columns too: `peak_mib` and the perfect-reuse floor
# `whatif_peak_mib` each gate at 10% growth, so an allocator or lifetime
# regression fails even when wall time is unaffected. Exits non-zero when
# any gated metric regresses beyond tolerance — wire it into CI after
# scripts/test.sh.
#
# Usage: scripts/bench_gate.sh [--smoke] [--baseline PATH]
#
#   --smoke          quick mode for CI: tiny epochs and a 10x tolerance
#                    scale, so only catastrophic slowdowns (or schema drift
#                    in the benchmark report) fail the gate.
#   --baseline PATH  compare against PATH instead of BENCH_train.json.
#   --serve-baseline PATH
#                    compare against PATH instead of BENCH_serve.json.
#
# The committed baseline is machine-specific; regenerate it on the machine
# that runs this gate with scripts/bench_train.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="BENCH_train.json"
SERVE_BASELINE="BENCH_serve.json"
SMOKE=0
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke) SMOKE=1 ;;
        --baseline)
            shift
            BASELINE="${1:?--baseline needs a path}"
            ;;
        --serve-baseline)
            shift
            SERVE_BASELINE="${1:?--serve-baseline needs a path}"
            ;;
        *)
            echo "unknown flag $1 (usage: scripts/bench_gate.sh [--smoke] [--baseline PATH] [--serve-baseline PATH])" >&2
            exit 2
            ;;
    esac
    shift
done

if [ ! -f "$BASELINE" ]; then
    echo "bench_gate: baseline $BASELINE not found (run scripts/bench_train.sh first)" >&2
    exit 2
fi
if [ ! -f "$SERVE_BASELINE" ]; then
    echo "bench_gate: serve baseline $SERVE_BASELINE not found (run scripts/bench_serve.sh first)" >&2
    exit 2
fi

FRESH="target/bench_gate_fresh.json"
mkdir -p target
if [ "$SMOKE" = 1 ]; then
    BENCH_ARGS=(--scale 0.005 --epochs 2 --pretrain-epochs 1 --datasets beauty)
    DIFF_ARGS=(--tolerance-scale 10)
else
    # Must match the settings the committed baseline was generated with
    # (scripts/bench_train.sh defaults) for an apples-to-apples diff.
    BENCH_ARGS=(--scale 0.02 --epochs 3 --pretrain-epochs 2 --datasets beauty)
    DIFF_ARGS=()
fi

# Pin the fresh run to the pool size the baseline was measured at, so the
# diff (and its thread-count check) compares like with like. A caller's
# explicit SEQREC_THREADS wins; legacy baselines that stored a prose
# string in `threads` yield no pin and the check degrades gracefully.
if [ -z "${SEQREC_THREADS:-}" ]; then
    BASE_THREADS=$(python3 -c '
import json, sys
t = json.load(open(sys.argv[1])).get("threads")
print(t if isinstance(t, int) else "")' "$BASELINE")
    if [ -n "$BASE_THREADS" ]; then
        export SEQREC_THREADS="$BASE_THREADS"
        echo "== bench_gate: pinning SEQREC_THREADS=$BASE_THREADS (baseline pool size)"
    fi
fi

echo "== bench_gate: fresh benchmark run (${BENCH_ARGS[*]})"
cargo run --offline --release -p seqrec-experiments --bin bench_train -- \
    "${BENCH_ARGS[@]}" --no-ledger --out "$FRESH" >/dev/null

echo "== bench_gate: diff vs $BASELINE"
cargo run --offline --release -p seqrec-obs --bin bench_diff -- \
    "$BASELINE" "$FRESH" "${DIFF_ARGS[@]}"

# Serving gate: same machine-pinning rules; the serve spec set tracks
# latency quantiles, scoring throughput and the cache hit rate. The bench
# itself is fast, so smoke mode only loosens tolerances, never the run.
FRESH_SERVE="target/bench_gate_fresh_serve.json"
echo "== bench_gate: fresh serve benchmark run"
cargo run --offline --release -p seqrec-serve --bin bench_serve -- \
    --scale 0.005 --requests 2000 --qps 2000 --k 10 \
    --out "$FRESH_SERVE" >/dev/null

echo "== bench_gate: serve diff vs $SERVE_BASELINE"
cargo run --offline --release -p seqrec-obs --bin bench_diff -- \
    "$SERVE_BASELINE" "$FRESH_SERVE" --specs serve "${DIFF_ARGS[@]}"
