#!/usr/bin/env bash
# The tier-1 verification gate.
#
# `cargo test -q` at the repo root runs ONLY the root package's 16
# integration tests, because the workspace root also has a [package]
# section. The kernel suites that actually exercise the blocked GEMM
# engine — linalg unit tests, tests/proptest_linalg.rs, the gradchecks —
# plus every member crate's and shim's tests need `--workspace`.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test --workspace -q "$@"
