#!/usr/bin/env bash
# The tier-1 verification gate.
#
# `cargo test -q` at the repo root runs ONLY the root package's 16
# integration tests, because the workspace root also has a [package]
# section. The kernel suites that actually exercise the blocked GEMM
# engine — linalg unit tests, tests/proptest_linalg.rs, the gradchecks —
# plus every member crate's and shim's tests need `--workspace`.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast with a real diagnostic if the cd above did not land in the
# workspace root (broken symlink to this script, copied out of the repo,
# partial checkout): otherwise cargo walks up to whatever workspace happens
# to enclose $PWD and "tier-1" silently tests the wrong tree.
if ! grep -qs '^\[workspace\]' Cargo.toml; then
    echo "scripts/test.sh: $PWD is not the seqrec workspace root" >&2
    echo "  (expected a Cargo.toml with a [workspace] section next to scripts/;" >&2
    echo "   run this script from a full checkout, not a copy of the script)" >&2
    exit 2
fi

cargo build --release --workspace
cargo test --workspace -q "$@"
