#!/usr/bin/env bash
# Runs the matmul-engine benchmark suite (matmul + attention + ntxent) and
# aggregates the criterion-shim JSONL output into BENCH_matmul.json at the
# repo root, with GFLOP/s per shape and blocked-vs-seed speedups for the
# acceptance shapes.
#
# Usage: scripts/bench_matmul.sh [extra cargo bench args...]
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
OUT_DIR="$REPO_ROOT/target/criterion-shim"
RESULTS="$OUT_DIR/results.jsonl"
REPORT="$REPO_ROOT/BENCH_matmul.json"

mkdir -p "$OUT_DIR"
rm -f "$RESULTS"

# Route every bench's JSONL to one place regardless of package CWD.
export CRITERION_SHIM_OUT="$OUT_DIR"

for bench in matmul attention ntxent; do
    echo "== cargo bench --bench $bench =="
    cargo bench --offline -p seqrec-bench --bench "$bench" "$@"
done

python3 - "$RESULTS" "$REPORT" <<'PY'
import json
import sys

results_path, report_path = sys.argv[1], sys.argv[2]

rows = []
with open(results_path) as f:
    for line in f:
        line = line.strip()
        if line:
            rows.append(json.loads(line))

def dims_of(param):
    """Parse '256x256x256' / '64x50x32x50' ids into dim lists."""
    if not param:
        return None
    try:
        return [int(p) for p in param.split("x")]
    except ValueError:
        return None

out_rows = []
# (group, param) -> {function: mean_ns}
by_shape = {}
for r in rows:
    dims = dims_of(r.get("param"))
    gflops = (r["rate_per_sec"] / 1e9) if r.get("rate_per_sec") else None
    out_rows.append({
        "id": r["id"],
        "group": r["group"],
        "function": r["function"],
        "dims": dims,
        "mean_ns": r["mean_ns"],
        "std_ns": r["std_ns"],
        "gflops": gflops,
    })
    if dims:
        by_shape.setdefault((r["group"], r["param"]), {})[r["function"]] = r["mean_ns"]

speedups = {}
for (group, param), fns in sorted(by_shape.items()):
    for fn, mean in fns.items():
        if not fn.startswith("blocked_"):
            continue
        seed = fns.get("seed_" + fn[len("blocked_"):])
        if seed:
            speedups[f"{group}/{param}/{fn[len('blocked_'):]}"] = round(seed / mean, 2)

# Acceptance: blocked nn >= 2x seed at [256,256,256] and [512,64,4096].
acceptance = {}
ok = True
for key in ("matmul/256x256x256/nn", "matmul/512x64x4096/nn"):
    s = speedups.get(key)
    acceptance[key] = s
    ok = ok and s is not None and s >= 2.0
acceptance["required_speedup"] = 2.0
acceptance["pass"] = ok

import os

report = {
    "generated_by": "scripts/bench_matmul.sh",
    "note": "gflops = 2*prod(dims) / mean wall time; speedup = seed mean_ns / blocked mean_ns",
    "environment": {
        "threads_used": 1,
        "hardware_cpus": os.cpu_count(),
        "rayon": "serial in-tree shim (shims/rayon); every par_* combinator runs serially",
        "harness": "criterion in-tree shim (shims/criterion)",
        "caveat": (
            "ALL measurements are single-threaded. speedup_vs_seed compares the serial "
            "blocked kernels against the serial seed kernels and says nothing about "
            "multicore throughput; re-validate with genuine rayon before citing "
            "threaded numbers."
        ),
    },
    "acceptance": acceptance,
    "speedup_vs_seed": speedups,
    "results": out_rows,
}
with open(report_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

print(f"\nwrote {report_path}")
for k, v in speedups.items():
    print(f"  {k}: {v}x")
print(f"acceptance pass: {acceptance['pass']}")
sys.exit(0 if ok else 1)
PY
