#!/usr/bin/env bash
# The full CI gate: formatting, lints, then the tier-1 test suite.
#
# Kept strictly ordered cheapest-first so a style slip fails in seconds
# instead of after a release build. Clippy runs with -D warnings across
# every target (tests, benches, examples) — the gate is green or it isn't.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== scripts/test.sh"
bash scripts/test.sh

echo "== instrumented smoke train (JSONL sink)"
SMOKE_JSONL="target/ci_smoke_obs.jsonl"
rm -f "$SMOKE_JSONL"
SEQREC_OBS="console=silent,jsonl=$SMOKE_JSONL" \
    cargo run --offline --release -p seqrec-experiments --bin bench_train -- \
    --scale 0.005 --epochs 2 --pretrain-epochs 1 --datasets beauty >/dev/null
python3 - "$SMOKE_JSONL" <<'PY'
import json
import sys

# Every line must parse, every span_begin must meet a matching span_end at
# the same name+depth, and durations must be non-negative.
open_spans = {}
events = 0
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        ev = json.loads(line)  # raises on malformed JSONL
        events += 1
        kind = ev.get("ev")
        if kind == "span_begin":
            key = (ev["tid"], ev["name"], ev["depth"])
            open_spans[key] = open_spans.get(key, 0) + 1
        elif kind == "span_end":
            key = (ev["tid"], ev["name"], ev["depth"])
            assert open_spans.get(key, 0) > 0, f"line {n}: end without begin: {key}"
            open_spans[key] -= 1
            assert ev["dur_us"] >= 0, f"line {n}: negative duration"
unclosed = {k: c for k, c in open_spans.items() if c}
assert not unclosed, f"unclosed spans: {unclosed}"
assert events > 100, f"suspiciously few telemetry events: {events}"
print(f"smoke train OK: {events} well-formed JSONL events")
PY

echo "CI gate green."
