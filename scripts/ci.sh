#!/usr/bin/env bash
# The full CI gate: formatting, lints, then the tier-1 test suite.
#
# Kept strictly ordered cheapest-first so a style slip fails in seconds
# instead of after a release build. Clippy runs with -D warnings across
# every target (tests, benches, examples) — the gate is green or it isn't.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== scripts/test.sh (default pool size)"
bash scripts/test.sh

# Second pass on a 2-worker pool: the training path is designed to be
# bit-identical at any thread count (disjoint-write parallelism only), so
# the whole tier-1 suite — goldens included — must stay green here. The
# release build is shared with the first pass; only test execution repeats.
echo "== scripts/test.sh (SEQREC_THREADS=2: thread-count invariance)"
SEQREC_THREADS=2 bash scripts/test.sh

SMOKE_RUNS="target/ci_smoke_runs"
for SMOKE_THREADS in 1 2; do
echo "== instrumented smoke train at SEQREC_THREADS=$SMOKE_THREADS (JSONL sink + mem trace + run ledger)"
SMOKE_JSONL="target/ci_smoke_obs_t${SMOKE_THREADS}.jsonl"
rm -rf "$SMOKE_JSONL" "$SMOKE_RUNS"
SEQREC_THREADS="$SMOKE_THREADS" SEQREC_OBS="console=silent,jsonl=$SMOKE_JSONL,mem=all" \
    cargo run --offline --release -p seqrec-experiments --bin bench_train -- \
    --scale 0.005 --epochs 2 --pretrain-epochs 1 --datasets beauty \
    --runs-dir "$SMOKE_RUNS" >/dev/null
python3 - "$SMOKE_JSONL" <<'PY'
import json
import sys

# Every line must parse, every span_begin must meet a matching span_end at
# the same name+depth, durations must be non-negative, and every mem_free
# must pair with a mem_alloc of the same id and size (mem=all: the full
# unsampled allocation stream).
open_spans = {}
live_bufs = {}
events = mem_allocs = mem_frees = 0
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        ev = json.loads(line)  # raises on malformed JSONL
        events += 1
        kind = ev.get("ev")
        if kind == "span_begin":
            key = (ev["tid"], ev["name"], ev["depth"])
            open_spans[key] = open_spans.get(key, 0) + 1
        elif kind == "span_end":
            key = (ev["tid"], ev["name"], ev["depth"])
            assert open_spans.get(key, 0) > 0, f"line {n}: end without begin: {key}"
            open_spans[key] -= 1
            assert ev["dur_us"] >= 0, f"line {n}: negative duration"
        elif kind == "mem_alloc":
            assert ev["id"] not in live_bufs, f"line {n}: duplicate alloc id {ev['id']}"
            assert "path" in ev, f"line {n}: mem_alloc without span path"
            live_bufs[ev["id"]] = ev["bytes"]
            mem_allocs += 1
        elif kind == "mem_free":
            got = live_bufs.pop(ev["id"], None)
            assert got == ev["bytes"], (
                f"line {n}: free of id {ev['id']} with {ev['bytes']}B, allocated with {got}"
            )
            mem_frees += 1
unclosed = {k: c for k, c in open_spans.items() if c}
assert not unclosed, f"unclosed spans: {unclosed}"
assert events > 100, f"suspiciously few telemetry events: {events}"
assert mem_allocs > 100, f"suspiciously few mem events under mem=all: {mem_allocs}"
# The leak sentinel's trace-level twin: every traced buffer freed by exit.
assert not live_bufs, f"{len(live_bufs)} buffers never freed: {sorted(live_bufs)[:5]}..."
print(
    f"smoke train OK: {events} well-formed JSONL events, "
    f"{mem_allocs} allocs / {mem_frees} frees, all paired"
)
PY

echo "== seqrec-prof --mem on the smoke trace (peak attribution + what-if report)"
PROF_OUT="$(cargo run --offline --release -p seqrec-obs --bin seqrec-prof -- "$SMOKE_JSONL" --mem --top 5)"
echo "$PROF_OUT" | grep -q "bytes at peak by span path" || { echo "missing peak breakdown"; exit 1; }
echo "$PROF_OUT" | grep -q "what-if arena" || { echo "missing what-if report"; exit 1; }
echo "$PROF_OUT" | head -3
done

echo "== run-ledger validation"
python3 - "$SMOKE_RUNS/bench_train-42" <<'PY'
import json
import os
import sys

# The smoke run must leave a complete, parseable ledger behind: config with
# the full argument set, an environment snapshot, and the final report.
root = sys.argv[1]
assert os.path.isdir(root), f"missing ledger directory {root}"

with open(os.path.join(root, "config.json")) as f:
    config = json.load(f)
assert config["binary"] == "bench_train", config
for key in ("scale", "epochs", "pretrain_epochs", "seed", "on_anomaly"):
    assert key in config["args"], f"config.json args missing {key!r}"

with open(os.path.join(root, "env.json")) as f:
    env = json.load(f)
for key in ("os", "arch", "package_version", "unix_time_secs"):
    assert key in env, f"env.json missing {key!r}"
# The surviving ledger is from the SEQREC_THREADS=2 smoke pass: the env
# snapshot must record the override, not the hardware default.
assert env.get("threads_used") == 2, f"env.json threads_used: {env}"
assert env.get("threads_source") == "SEQREC_THREADS", f"env.json threads_source: {env}"

with open(os.path.join(root, "report.json")) as f:
    report = json.load(f)
assert report["rows"], "report.json has no benchmark rows"
assert report.get("threads") == 2, f"report.json threads: {report.get('threads')!r}"
for key in ("secs_per_epoch", "seqs_per_sec", "gemm_gflops_per_sec", "peak_mib"):
    assert key in report["rows"][0], f"report row missing {key!r}"
# Memory columns: the what-if floor never exceeds the observed peak (both
# come from the same recorder replay), and the leak sentinel stayed quiet.
for r in report["rows"]:
    m = r["method"]
    assert r["peak_mib"] > 0, f"{m}: non-positive peak_mib"
    assert 0 < r["whatif_peak_mib"] <= r["peak_mib"], (
        f"{m}: whatif_peak_mib {r['whatif_peak_mib']} vs peak_mib {r['peak_mib']}"
    )
    assert r["leaked_mib"] < 0.0625, f"{m}: leak sentinel tripped ({r['leaked_mib']} MiB)"
print(f"run ledger OK: {root} (config, env, report with {len(report['rows'])} rows)")
PY

echo "== serve smoke (train -> checkpoint -> load -> score -> scrape -> report shape)"
SERVE_SMOKE="target/ci_serve_smoke.json"
SERVE_RUNS="target/ci_serve_runs"
SERVE_EXPO="target/ci_serve_expo.prom"
rm -rf "$SERVE_SMOKE" "$SERVE_RUNS" "$SERVE_EXPO"
# --expo makes the bench serve the live exposition endpoint and scrape it
# over real TCP halfway through the request stream; the scrape is parsed
# and validated in-process (crates/obs/src/expo.rs, the same hand-rolled
# parser the tests use) and any malformed or stale snapshot aborts the
# run. SEQREC_OBS=expo additionally dumps the final rendering to a file.
SEQREC_OBS="console=silent,expo=$SERVE_EXPO" \
    cargo run --offline --release -p seqrec-serve --bin bench_serve -- \
    --scale 0.005 --epochs 1 --requests 500 --qps 4000 \
    --expo 127.0.0.1:0 --runs-dir "$SERVE_RUNS" \
    --out "$SERVE_SMOKE" >/dev/null
python3 - "$SERVE_SMOKE" "$SERVE_RUNS/bench_serve-42" "$SERVE_EXPO" <<'PY'
import json
import os
import sys

# The smoke run trains a small SASRec for one epoch, saves it through the
# versioned checkpoint format, loads it back behind AnyModel, and serves a
# paced workload — so a green run certifies the whole serving path. The
# report must have the exact shape `bench_diff --specs serve` gates.
with open(sys.argv[1]) as f:
    report = json.load(f)
assert isinstance(report.get("threads"), int), report.get("threads")
assert report.get("epochs") == 1, "smoke must serve a trained checkpoint"
rows = report["rows"]
assert {r["method"] for r in rows} == {"SASRec", "Pop"}, rows
for r in rows:
    assert r["dataset"] == "beauty", r
    assert r["requests"] == 500, r
    for key in ("p50_us", "p99_us", "mean_us", "items_per_sec"):
        assert r[key] > 0, f"{r['method']}: non-positive {key}"
    assert r["p50_us"] <= r["p99_us"], f"{r['method']}: p50 above p99"
    assert 0.0 <= r["cache_hit_rate"] <= 1.0, r["cache_hit_rate"]
    assert 0 < r["batches"] <= r["requests"], r["batches"]
    for key in ("queue_depth_p50", "queue_depth_p99", "batch_occupancy_mean_pct"):
        assert key in r, f"{r['method']}: missing {key!r}"
    assert r["slo_ok"] in (0.0, 1.0), f"{r['method']}: slo_ok {r['slo_ok']!r}"
    assert r["slo_target_us"] > 0 and r["slo_burn_rate"] >= 0, r

# The serve run ledger must record the SLO verdict per method.
ledger = sys.argv[2]
with open(os.path.join(ledger, "config.json")) as f:
    config = json.load(f)
assert config["bin"] == "bench_serve" and "slo_target_us" in config, config
with open(os.path.join(ledger, "report.json")) as f:
    ledger_report = json.load(f)
verdicts = {r["method"]: r["slo_ok"] for r in ledger_report["rows"]}
assert set(verdicts) == {"SASRec", "Pop"}, verdicts
assert os.path.exists(os.path.join(ledger, "env.json")), "env snapshot missing"

# The offline exposition dump is well-formed Prometheus text: cumulative
# buckets ending in +Inf, a _count per histogram, and the serve series.
with open(sys.argv[3]) as f:
    expo = f.read()
assert "seqrec_serve_requests 500\n" in expo, "cumulative request counter missing"
assert 'seqrec_serve_latency_us_bucket{le="+Inf"}' in expo, "+Inf bucket missing"
assert "seqrec_serve_latency_us_count" in expo, "_count series missing"
assert "seqrec_obs_window_us" in expo, "window-length gauge missing"
print(
    f"serve smoke OK: {len(rows)} rows, SLO verdicts {verdicts}, "
    f"mid-serve scrape validated, exposition dump well-formed"
)
PY

echo "== bench regression gate (smoke tolerances)"
bash scripts/bench_gate.sh --smoke

echo "CI gate green."
