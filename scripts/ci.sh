#!/usr/bin/env bash
# The full CI gate: formatting, lints, then the tier-1 test suite.
#
# Kept strictly ordered cheapest-first so a style slip fails in seconds
# instead of after a release build. Clippy runs with -D warnings across
# every target (tests, benches, examples) — the gate is green or it isn't.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== scripts/test.sh"
bash scripts/test.sh

echo "CI gate green."
