//! Parse-back validation of the emitted trace formats.
//!
//! The sink is process-global, so every test here grabs `SINK_LOCK` first;
//! the whole file shares one test binary to avoid cross-binary races.

use std::sync::{Mutex, MutexGuard};

use seqrec_obs::json::{self, Value};
use seqrec_obs::sink::{self, SharedBuf};
use seqrec_obs::{ChromeTraceSink, JsonlSink};

static SINK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs a JSONL sink over an in-memory buffer, runs `f`, uninstalls,
/// and returns the captured text.
fn capture_jsonl(f: impl FnOnce()) -> String {
    let buf = SharedBuf::new();
    sink::install(std::sync::Arc::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    f();
    sink::uninstall();
    buf.contents()
}

fn capture_chrome(f: impl FnOnce()) -> String {
    let buf = SharedBuf::new();
    sink::install(std::sync::Arc::new(ChromeTraceSink::to_writer(Box::new(buf.clone()))));
    f();
    sink::uninstall();
    buf.contents()
}

#[test]
fn jsonl_lines_parse_and_spans_pair_up() {
    let _g = lock();
    let text = capture_jsonl(|| {
        let _outer = seqrec_obs::span!("epoch");
        {
            let _inner = seqrec_obs::span!("batch");
            seqrec_obs::metrics::TRAIN_BATCHES.incr();
        }
        seqrec_obs::info!("hello from the test");
    });

    let mut begins = Vec::new();
    let mut ends = Vec::new();
    let mut saw_log = false;
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        match v.get("ev").and_then(Value::as_str) {
            Some("span_begin") => begins.push(v.clone()),
            Some("span_end") => {
                let dur = v.get("dur_us").and_then(Value::as_f64).expect("dur_us");
                assert!(dur >= 0.0, "negative duration in {line}");
                ends.push(v.clone());
            }
            Some("log") => {
                saw_log = true;
                assert_eq!(v.get("msg").and_then(Value::as_str), Some("hello from the test"));
            }
            Some("counter") | Some("mem_alloc") | Some("mem_free") | None => {}
            Some(other) => panic!("unknown event kind {other}"),
        }
    }
    assert!(saw_log, "log line missing from {text}");

    // Every begin has exactly one end with the same name and depth, and
    // nesting depths are what the lexical structure says.
    let name_depth = |v: &Value| {
        (
            v.get("name").and_then(Value::as_str).unwrap().to_string(),
            v.get("depth").and_then(Value::as_f64).unwrap() as u32,
        )
    };
    let mut open: Vec<(String, u32)> = begins.iter().map(name_depth).collect();
    for e in &ends {
        let key = name_depth(e);
        let pos = open
            .iter()
            .position(|k| *k == key)
            .unwrap_or_else(|| panic!("end without begin: {key:?}"));
        open.remove(pos);
    }
    assert!(open.is_empty(), "unclosed spans: {open:?}");
    assert_eq!(begins.len(), 2);
    assert!(begins.iter().any(|b| name_depth(b) == ("epoch".into(), 0)));
    assert!(begins.iter().any(|b| name_depth(b) == ("batch".into(), 1)));
}

#[test]
fn chrome_trace_is_one_valid_json_array_with_paired_events() {
    let _g = lock();
    let text = capture_chrome(|| {
        let _fwd = seqrec_obs::span!("forward");
        let _gemm = seqrec_obs::span!("gemm");
    });

    let doc = json::parse(&text).unwrap_or_else(|e| panic!("chrome trace not JSON: {e}\n{text}"));
    let events = doc.as_arr().expect("top-level array");
    assert!(!events.is_empty());

    // Per-thread B/E events must nest like a well-formed bracket sequence.
    let mut stack: Vec<&str> = Vec::new();
    let mut last_ts = 0.0f64;
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        match ph {
            "B" => {
                let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
                assert!(ts >= last_ts, "timestamps must be monotonic");
                last_ts = ts;
                stack.push(ev.get("name").and_then(Value::as_str).expect("name"));
            }
            "E" => {
                let open = stack.pop().expect("E without matching B");
                assert_eq!(Some(open), ev.get("name").and_then(Value::as_str));
            }
            "M" | "i" | "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(stack.is_empty(), "unclosed B events: {stack:?}");
    let names: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("B"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert_eq!(names, ["forward", "gemm"]);
}

#[test]
fn panicking_code_still_closes_its_spans() {
    let _g = lock();
    let text = capture_jsonl(|| {
        let caught = std::panic::catch_unwind(|| {
            let _span = seqrec_obs::span!("doomed");
            panic!("boom");
        });
        assert!(caught.is_err());
        // Drop ran during unwinding: the thread's depth is back to zero.
        assert_eq!(seqrec_obs::span::current_depth(), 0);
    });
    let kinds: Vec<(String, String)> = text
        .lines()
        .map(|l| {
            let v = json::parse(l).unwrap();
            (
                v.get("ev").and_then(Value::as_str).unwrap().to_string(),
                v.get("name").and_then(Value::as_str).unwrap_or("").to_string(),
            )
        })
        .collect();
    assert!(kinds.contains(&("span_begin".into(), "doomed".into())));
    assert!(kinds.contains(&("span_end".into(), "doomed".into())), "unwind lost the end event");
}

#[test]
fn metrics_snapshot_round_trips_through_the_jsonl_sink() {
    let _g = lock();
    seqrec_obs::metrics::reset_all();
    let text = capture_jsonl(|| {
        seqrec_obs::metrics::GEMM_FLOPS.add(123);
        seqrec_obs::metrics::TENSOR_LIVE_BYTES.add(4096);
        seqrec_obs::metrics::emit_snapshot();
        seqrec_obs::metrics::TENSOR_LIVE_BYTES.add(-4096);
    });
    let mut counters = std::collections::BTreeMap::new();
    for line in text.lines() {
        let v = json::parse(line).unwrap();
        if v.get("ev").and_then(Value::as_str) == Some("counter") {
            counters.insert(
                v.get("name").and_then(Value::as_str).unwrap().to_string(),
                v.get("value").and_then(Value::as_f64).unwrap(),
            );
        }
    }
    assert_eq!(counters.get("gemm.flops"), Some(&123.0));
    assert!(
        counters.get("tensor.live_bytes.peak").is_some_and(|&p| p >= 4096.0),
        "live-bytes peak missing: {counters:?}"
    );
    seqrec_obs::metrics::reset_all();
}

#[test]
fn detail_spans_only_fire_when_requested() {
    let _g = lock();
    let without = capture_jsonl(|| {
        sink::set_detail(false);
        let _k = seqrec_obs::detail_span!("gemm.nn");
    });
    assert!(!without.contains("gemm.nn"));
    let with = capture_jsonl(|| {
        sink::set_detail(true);
        let _k = seqrec_obs::detail_span!("gemm.nn");
        sink::set_detail(false);
    });
    assert!(with.contains("gemm.nn"));
}

#[test]
fn chrome_trace_names_the_process_and_every_thread_lane() {
    let _g = lock();
    seqrec_obs::metrics::reset_all();
    let text = capture_chrome(|| {
        let _s = seqrec_obs::span!("work");
        seqrec_obs::metrics::GEMM_FLOPS.add(7);
        seqrec_obs::metrics::emit_snapshot();
    });
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("chrome trace not JSON: {e}\n{text}"));
    let events = doc.as_arr().expect("top-level array");

    // The very first event names the process.
    let first = &events[0];
    assert_eq!(first.get("ph").and_then(Value::as_str), Some("M"));
    assert_eq!(first.get("name").and_then(Value::as_str), Some("process_name"));
    assert_eq!(
        first.get("args").and_then(|a| a.get("name")).and_then(Value::as_str),
        Some("seqrec")
    );

    // Each tid gets exactly one thread_name metadata event, and it lands
    // before the first real event on that tid (viewers apply it lazily,
    // but emitting it first keeps the invariant checkable).
    let mut named: Vec<f64> = Vec::new();
    for ev in events {
        let tid = ev.get("tid").and_then(Value::as_f64).expect("tid");
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        let name = ev.get("name").and_then(Value::as_str).expect("name");
        if ph == "M" && name == "thread_name" {
            assert!(!named.contains(&tid), "duplicate thread_name for tid {tid}");
            let label = ev.get("args").and_then(|a| a.get("name")).and_then(Value::as_str);
            assert!(label.is_some_and(|l| !l.is_empty()), "empty thread label: {ev:?}");
            named.push(tid);
        } else if ph != "M" {
            assert!(named.contains(&tid), "event on tid {tid} before its thread_name: {ev:?}");
        }
    }
    // Both lanes appeared: the span's worker thread and the metrics lane
    // (counters are pinned to tid 0, labelled "metrics").
    assert!(named.len() >= 2, "expected worker + metrics lanes, got {named:?}");
    assert!(named.contains(&0.0), "metrics lane (tid 0) never named");
    seqrec_obs::metrics::reset_all();
}

/// Spans emitted from inside a real worker pool land on lanes labelled
/// with the workers' OS thread names (`seqrec-worker-<i>`), so a Chrome
/// trace of a parallel run shows per-worker rows instead of bare tids.
/// (Cross-thread timestamps are not globally ordered; this test only
/// checks labelling, unlike the single-thread monotonicity test above.)
#[test]
fn chrome_trace_labels_pool_worker_lanes() {
    let _g = lock();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().expect("pool builds");
    let text = capture_chrome(|| {
        pool.install(|| {
            rayon::join(
                || {
                    let _s = seqrec_obs::span!("left");
                    std::hint::black_box(0)
                },
                || {
                    let _s = seqrec_obs::span!("right");
                    std::hint::black_box(1)
                },
            );
        });
    });
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("chrome trace not JSON: {e}\n{text}"));
    let events = doc.as_arr().expect("top-level array");
    let worker_lanes: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("name").and_then(Value::as_str) == Some("thread_name")
        })
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
        .filter(|l| l.starts_with("seqrec-worker-"))
        .collect();
    // `install` runs the closure on a pool worker, so at least one span —
    // and therefore one labelled lane — is guaranteed to be a worker's.
    assert!(!worker_lanes.is_empty(), "no seqrec-worker-* lane in trace:\n{text}");
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("B"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert_eq!(span_names.len(), 2, "expected both spans, got {span_names:?}");
    assert!(span_names.contains(&"left") && span_names.contains(&"right"));
}

/// Request lifecycle events carry the full shape on the JSONL sink —
/// stable keys, numeric ids, stage label — and stay invisible to the span
/// parsers (a serve trace still folds as a flame graph).
#[test]
fn request_events_have_the_documented_jsonl_shape() {
    let _g = lock();
    let text = capture_jsonl(|| {
        for (stage, ts, dur) in [("enqueue", 100, 40), ("batch", 140, 60)] {
            sink::dispatch(&seqrec_obs::Event::Request {
                req: 7,
                user: 3,
                stage,
                tid: 2,
                ts_us: ts,
                dur_us: dur,
            });
        }
    });
    let lines: Vec<Value> = text.lines().map(|l| json::parse(l).expect("valid JSONL")).collect();
    assert_eq!(lines.len(), 2);
    for (v, (stage, ts, dur)) in
        lines.iter().zip([("enqueue", 100.0, 40.0), ("batch", 140.0, 60.0)])
    {
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("request"));
        assert_eq!(v.get("req").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("user").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("stage").and_then(Value::as_str), Some(stage));
        assert_eq!(v.get("tid").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.get("ts_us").and_then(Value::as_f64), Some(ts));
        assert_eq!(v.get("dur_us").and_then(Value::as_f64), Some(dur));
    }
    // Span folding skips request lines instead of erroring on them.
    assert!(seqrec_obs::profile::parse_jsonl(&text).expect("span parse").is_empty());
}

/// On the Chrome sink a request stage is a complete (`X`) slice in the
/// `serve` category, named `req.<stage>`, carrying the ids in `args` — so
/// a trace viewer shows per-stage bars and the request parser round-trips.
#[test]
fn request_events_render_as_chrome_complete_slices() {
    let _g = lock();
    let text = capture_chrome(|| {
        sink::dispatch(&seqrec_obs::Event::Request {
            req: 11,
            user: 5,
            stage: "score",
            tid: 1,
            ts_us: 2_000,
            dur_us: 250,
        });
    });
    let doc = json::parse(&text).expect("chrome trace parses");
    let slice = doc
        .as_arr()
        .expect("array")
        .iter()
        .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .expect("one X slice")
        .clone();
    assert_eq!(slice.get("name").and_then(Value::as_str), Some("req.score"));
    assert_eq!(slice.get("cat").and_then(Value::as_str), Some("serve"));
    assert_eq!(slice.get("ts").and_then(Value::as_f64), Some(2_000.0));
    assert_eq!(slice.get("dur").and_then(Value::as_f64), Some(250.0));
    let args = slice.get("args").expect("args");
    assert_eq!(args.get("req").and_then(Value::as_f64), Some(11.0));
    assert_eq!(args.get("user").and_then(Value::as_f64), Some(5.0));

    let back = seqrec_obs::profile::parse_requests_chrome(&text).expect("request parse");
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].stage, "score");
    assert_eq!(back[0].req, 11);
    // And the span parser sees a well-formed trace with no spans in it.
    assert!(seqrec_obs::profile::parse_chrome(&text).expect("span parse").is_empty());
}

/// Mem events on the JSONL sink carry the documented shape — numeric id,
/// bytes, live-bytes level, timestamp, and the owning span path on the
/// alloc — and round-trip through `memprof::parse_mem_jsonl` into a
/// profile, while the span parser skips them.
#[test]
fn mem_events_have_the_documented_jsonl_shape_and_round_trip() {
    let _g = lock();
    let text = capture_jsonl(|| {
        seqrec_obs::mem::set_sink_mode(Some(1));
        let _epoch = seqrec_obs::span!("epoch");
        let a = seqrec_obs::mem::on_alloc(4096);
        let b = seqrec_obs::mem::on_alloc(1024);
        seqrec_obs::mem::on_free(a, 4096);
        seqrec_obs::mem::on_free(b, 1024);
        seqrec_obs::mem::set_sink_mode(None);
    });

    let mut allocs = Vec::new();
    let mut frees = Vec::new();
    for line in text.lines() {
        let v = json::parse(line).expect("valid JSONL");
        match v.get("ev").and_then(Value::as_str) {
            Some("mem_alloc") => {
                assert_eq!(v.get("path").and_then(Value::as_str), Some("epoch"));
                assert!(v.get("live_bytes").and_then(Value::as_f64).is_some());
                allocs.push((
                    v.get("id").and_then(Value::as_f64).expect("id"),
                    v.get("bytes").and_then(Value::as_f64).expect("bytes"),
                ));
            }
            Some("mem_free") => {
                frees.push((
                    v.get("id").and_then(Value::as_f64).expect("id"),
                    v.get("bytes").and_then(Value::as_f64).expect("bytes"),
                ));
            }
            _ => {}
        }
    }
    assert_eq!(allocs.len(), 2, "expected 2 allocs in {text}");
    assert_eq!(frees.len(), 2, "expected 2 frees in {text}");
    // Every free pairs with an alloc of the same id and size.
    for f in &frees {
        assert!(allocs.contains(f), "unpaired free {f:?} in {text}");
    }

    let events = seqrec_obs::memprof::parse_mem_jsonl(&text).expect("mem parse");
    assert_eq!(events.len(), 4);
    let profile = seqrec_obs::memprof::MemProfile::build(&events).expect("profile builds");
    assert_eq!(profile.allocs, 2);
    assert_eq!(profile.frees, 2);
    assert_eq!(profile.observed_peak_bytes, 4096 + 1024);
    assert_eq!(profile.live_at_end, 0);
    // Attribution sums to the observed peak exactly, and both buffers were
    // inside the `epoch` span when allocated.
    let attributed: u64 = profile.peak_by_path.iter().map(|s| s.bytes).sum();
    assert_eq!(attributed, profile.observed_peak_bytes);
    assert_eq!(profile.peak_by_path[0].key, "epoch");
    // The span parser sees the same trace and folds only the span events.
    let spans = seqrec_obs::profile::parse_jsonl(&text).expect("span parse");
    assert_eq!(spans.len(), 2, "span begin+end, mem lines skipped");
}

/// On the Chrome sink an allocation is an object-created (`N`) event and
/// its free an object-destroyed (`D`) event in the `mem` category with a
/// hex id, each followed by a `tensor.live_bytes` counter sample — and the
/// pair round-trips through `memprof::parse_mem_chrome`.
#[test]
fn mem_events_render_as_chrome_object_events() {
    let _g = lock();
    let text = capture_chrome(|| {
        seqrec_obs::mem::set_sink_mode(Some(1));
        let _fwd = seqrec_obs::span!("forward");
        let id = seqrec_obs::mem::on_alloc(2048);
        seqrec_obs::mem::on_free(id, 2048);
        seqrec_obs::mem::set_sink_mode(None);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("chrome trace not JSON: {e}\n{text}"));
    let events = doc.as_arr().expect("top-level array");

    let phase = |ph: &str| -> Vec<&Value> {
        events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph)).collect()
    };
    let created = phase("N");
    let destroyed = phase("D");
    assert_eq!(created.len(), 1, "one N event in {text}");
    assert_eq!(destroyed.len(), 1, "one D event in {text}");
    for ev in created.iter().chain(&destroyed) {
        assert_eq!(ev.get("cat").and_then(Value::as_str), Some("mem"));
        assert_eq!(ev.get("name").and_then(Value::as_str), Some("buf"));
        let id = ev.get("id").and_then(Value::as_str).expect("object id");
        assert!(id.starts_with("0x"), "object id {id} not hex");
        let bytes = ev.get("args").and_then(|a| a.get("bytes")).and_then(Value::as_f64);
        assert_eq!(bytes, Some(2048.0));
    }
    assert_eq!(
        created[0].get("args").and_then(|a| a.get("path")).and_then(Value::as_str),
        Some("forward")
    );
    // Each object event is chased by a live-bytes counter sample.
    let counters = phase("C");
    assert!(
        counters
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("tensor.live_bytes"))
            .count()
            >= 2,
        "missing live-bytes counter samples in {text}"
    );

    let back = seqrec_obs::memprof::parse_mem_chrome(&text).expect("mem parse");
    assert_eq!(back.len(), 2);
    assert!(back[0].alloc && !back[1].alloc);
    assert_eq!(back[0].id, back[1].id);
    assert_eq!(back[0].bytes, 2048);
    assert_eq!(back[0].path.as_deref(), Some("forward"));
    // The span parser tolerates the full mixed trace.
    let spans = seqrec_obs::profile::parse_chrome(&text).expect("span parse");
    assert_eq!(spans.len(), 2);
}

/// The per-thread sink cache in `sink::dispatch` invalidates on
/// re-install: events after a sink swap must reach the new sink, never a
/// stale cached `Arc`.
#[test]
fn reinstalling_a_sink_reaches_threads_with_a_warm_cache() {
    let _g = lock();
    let buf_a = SharedBuf::new();
    let buf_b = SharedBuf::new();
    sink::install(std::sync::Arc::new(JsonlSink::to_writer(Box::new(buf_a.clone()))));
    seqrec_obs::info!("first"); // warms this thread's cache on sink A
    sink::install(std::sync::Arc::new(JsonlSink::to_writer(Box::new(buf_b.clone()))));
    seqrec_obs::info!("second"); // generation moved: must land in sink B
    sink::uninstall();
    let (a, b) = (buf_a.contents(), buf_b.contents());
    assert!(a.contains("first") && !a.contains("second"), "stale cache hit sink A: {a}");
    assert!(b.contains("second") && !b.contains("first"), "sink B missed the event: {b}");
}
