//! Property-based tests for the what-if arena planner: invariants that
//! must hold for arbitrary alloc/free schedules, not just the hand-picked
//! ones in the unit tests.
//!
//! * `whatif_peak(0) <= observed_peak` — retiring frees earlier while
//!   keeping allocations in program order can never raise the peak;
//! * `whatif_peak(s) >= max single live buffer` — no plan can make a
//!   buffer smaller than itself;
//! * `whatif_peak` is non-increasing in slack — more freedom to retire
//!   early can only help;
//! * the best-fit arena simulation places every buffer and its footprint
//!   is never below the fungible what-if bound (the gap is fragmentation).

use proptest::prelude::*;
use seqrec_obs::mem::Interval;
use seqrec_obs::memprof::{
    observed_peak_from_intervals, simulate_arena, whatif_peak_bytes, WHATIF_SLACKS_US,
};

/// One step of a random allocation program: `kind < 2` allocates `bytes`
/// (so allocs and frees are roughly balanced), otherwise the step frees a
/// pseudo-randomly chosen live buffer; `dt` advances the clock, with 0
/// keeping events inside the same microsecond to exercise tie-breaking.
type Action = (u8, u64, u64);

/// Replays a random program into recorder-shaped intervals plus the peak
/// the schedule actually reaches (computed independently of the planner).
fn schedule(actions: &[Action]) -> (Vec<Interval>, u64) {
    let mut ts = 0u64;
    let mut live: Vec<usize> = Vec::new();
    let mut intervals: Vec<Interval> = Vec::new();
    let mut level = 0u64;
    let mut peak = 0u64;
    for (seq, &(kind, bytes, dt)) in (1u64..).zip(actions.iter()) {
        ts += dt;
        if kind < 2 || live.is_empty() {
            intervals.push(Interval {
                start_us: ts,
                end_us: None,
                bytes,
                alloc_seq: seq,
                free_seq: None,
            });
            live.push(intervals.len() - 1);
            level += bytes;
            peak = peak.max(level);
        } else {
            let idx = live.swap_remove(bytes as usize % live.len());
            intervals[idx].end_us = Some(ts);
            intervals[idx].free_seq = Some(seq);
            level -= intervals[idx].bytes;
        }
    }
    (intervals, peak)
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec((0u8..4, 1u64..4096, 0u64..3), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn whatif_never_exceeds_the_observed_peak(acts in actions()) {
        let (intervals, observed) = schedule(&acts);
        // The interval replay reproduces the tracked peak exactly...
        prop_assert_eq!(observed_peak_from_intervals(&intervals), observed);
        // ...and the slack-0 plan never exceeds it.
        prop_assert!(
            whatif_peak_bytes(&intervals, 0) <= observed,
            "whatif {} > observed {observed}",
            whatif_peak_bytes(&intervals, 0)
        );
    }

    #[test]
    fn whatif_is_at_least_the_largest_single_buffer(acts in actions()) {
        let (intervals, _) = schedule(&acts);
        let max_buf = intervals.iter().map(|iv| iv.bytes).max().unwrap_or(0);
        for &slack in WHATIF_SLACKS_US {
            let w = whatif_peak_bytes(&intervals, slack);
            prop_assert!(w >= max_buf, "whatif({slack}) = {w} < max buffer {max_buf}");
        }
    }

    #[test]
    fn whatif_is_non_increasing_in_slack(acts in actions()) {
        let (intervals, _) = schedule(&acts);
        let peaks: Vec<u64> =
            WHATIF_SLACKS_US.iter().map(|&s| whatif_peak_bytes(&intervals, s)).collect();
        for pair in peaks.windows(2) {
            prop_assert!(pair[1] <= pair[0], "slack sweep not monotone: {peaks:?}");
        }
    }

    #[test]
    fn arena_places_everything_at_or_above_the_fungible_bound(acts in actions()) {
        let (intervals, _observed) = schedule(&acts);
        let report = simulate_arena(&intervals, 0);
        prop_assert_eq!(report.placed, intervals.len());
        let fungible = whatif_peak_bytes(&intervals, 0);
        prop_assert!(
            report.arena_bytes >= fungible,
            "arena {} below fungible bound {fungible}",
            report.arena_bytes
        );
        // Fragmentation can push the arena above the fungible bound, but
        // best-fit extends the arena by at most one buffer's size per
        // placement, so the total byte volume is a hard ceiling.
        let total: u64 = intervals.iter().map(|iv| iv.bytes).sum();
        prop_assert!(report.arena_bytes <= total);
    }
}
