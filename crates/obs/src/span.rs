//! RAII wall-clock spans with a thread-local nesting stack.
//!
//! A [`SpanGuard`] is opened by the [`crate::span!`] macro and closed by
//! `Drop`, which makes nesting automatic and — because `Drop` also runs
//! during unwinding — guarantees that every begin event gets its matching
//! end event even when the instrumented code panics, and that the
//! thread-local depth returns to where it was.
//!
//! When no sink is installed, entering a span is one relaxed atomic load
//! and a branch: no clock read, no thread-local touch, no allocation.

use crate::sink::{self, Event};
use std::cell::{Cell, RefCell};

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Names of the live spans on this thread, outermost first. Only
    /// maintained for live spans, so the no-sink fast path still touches
    /// nothing. Read by the mem tracer to attribute buffer allocations.
    static NAMES: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's current span nesting depth (0 = outside all
/// spans). Only maintained while a sink is installed.
pub fn current_depth() -> u32 {
    DEPTH.with(Cell::get)
}

/// The calling thread's open-span path, outermost first, joined with `;`
/// (e.g. `"epoch;batch;forward"`). Empty outside all spans or when no
/// sink is installed — the stack is only maintained for live spans.
pub fn current_path() -> String {
    NAMES.with(|names| names.borrow().join(";"))
}

/// An open span; closes (and emits its end event) on drop.
#[must_use = "a span closes when this guard drops — bind it to a named local"]
pub struct SpanGuard {
    name: &'static str,
    start_us: u64,
    depth: u32,
    live: bool,
}

impl SpanGuard {
    /// Opens a span. The fast path (no sink) is a single relaxed load.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !sink::enabled() {
            return SpanGuard { name, start_us: 0, depth: 0, live: false };
        }
        Self::enter_live(name)
    }

    /// Opens a *detail* span: only live when the sink **and** the detail
    /// flag are on. Used on per-kernel-call paths where full traces would
    /// record millions of events.
    #[inline]
    pub fn enter_detail(name: &'static str) -> SpanGuard {
        if !sink::enabled() || !sink::detail() {
            return SpanGuard { name, start_us: 0, depth: 0, live: false };
        }
        Self::enter_live(name)
    }

    #[cold]
    fn enter_live(name: &'static str) -> SpanGuard {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        NAMES.with(|names| names.borrow_mut().push(name));
        let start_us = sink::now_us();
        sink::dispatch(&Event::SpanBegin { name, tid: sink::tid(), ts_us: start_us, depth });
        SpanGuard { name, start_us, depth, live: true }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        NAMES.with(|names| {
            names.borrow_mut().pop();
        });
        let ts_us = sink::now_us();
        sink::dispatch(&Event::SpanEnd {
            name: self.name,
            tid: sink::tid(),
            ts_us,
            dur_us: ts_us.saturating_sub(self.start_us),
            depth: self.depth,
        });
    }
}

/// Opens a named RAII span: `let _s = obs::span!("backward");`.
///
/// The name must be a `&'static str` — span emission never allocates.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// Opens a span that is only recorded when the `detail` directive of
/// `SEQREC_OBS` is set (per-kernel-call attribution).
#[macro_export]
macro_rules! detail_span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter_detail($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_touch_nothing() {
        // No sink installed in unit tests: depth must stay untouched.
        assert_eq!(current_depth(), 0);
        {
            let _a = SpanGuard::enter("a");
            let _b = SpanGuard::enter("b");
            assert_eq!(current_depth(), 0, "disabled spans must not track depth");
            assert_eq!(current_path(), "", "disabled spans must not track names");
        }
        assert_eq!(current_depth(), 0);
        assert_eq!(current_path(), "");
    }
}
