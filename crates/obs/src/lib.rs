//! # seqrec-obs
//!
//! In-tree instrumentation for the training/serving stack: RAII wall-clock
//! spans, a process-global registry of atomic counters/gauges/histograms,
//! and pluggable event sinks (human console, machine-readable JSONL, and
//! the Chrome trace-event format so a whole training run opens as a flame
//! chart in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)).
//!
//! The crate is deliberately **zero-dependency**: the offline build
//! container has no `tracing`/`metrics` crates, so everything here is
//! hand-rolled on `std` only, following the same philosophy as `shims/`.
//!
//! ## Cost model
//!
//! * **Counters/gauges/histograms** are always on: one relaxed atomic RMW
//!   per probe, no branches on sink state.
//! * **Spans** ([`span!`]) check a single relaxed atomic load when no sink
//!   is installed and do nothing else — no clock read, no allocation.
//! * **Detail spans** ([`detail_span!`], used per GEMM call) additionally
//!   require the detail flag, so even profiled runs stay compact unless
//!   kernel-level attribution is requested.
//!
//! ## Quick start
//!
//! ```
//! // In a binary: pick sinks from the SEQREC_OBS env var.
//! let _obs = seqrec_obs::init_from_env();
//!
//! {
//!     let _span = seqrec_obs::span!("backward");
//!     seqrec_obs::metrics::GEMM_FLOPS.add(1 << 20);
//! } // span closed here
//!
//! seqrec_obs::info!("epoch 0: loss 1.234");
//! ```
//!
//! `SEQREC_OBS` is a comma-separated list of directives:
//!
//! | directive        | effect                                            |
//! |------------------|---------------------------------------------------|
//! | `console=LEVEL`  | console verbosity: `silent`/`info`/`debug` (or 0–2) |
//! | `jsonl=PATH`     | stream events as one JSON object per line to PATH |
//! | `chrome=PATH`    | write a Chrome trace-event JSON array to PATH     |
//! | `expo=PATH`      | dump a Prometheus-style exposition to PATH at exit |
//! | `window=SECS`    | rolling-window length for live metrics (default 10) |
//! | `detail`         | also emit per-kernel-call spans (large traces)    |
//! | `mem=all`/`mem=N` | also emit tensor alloc/free lifetime events (every buffer, or 1-in-N) |

#![warn(missing_docs)]

pub mod benchdiff;
pub mod expo;
pub mod json;
pub mod ledger;
pub mod mem;
pub mod memprof;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod span;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

pub use sink::{ChromeTraceSink, Event, Fanout, JsonlSink, Sink};
pub use span::SpanGuard;

/// Console level: print nothing.
pub const LEVEL_SILENT: u8 = 0;
/// Console level: one-line progress messages ([`info!`]).
pub const LEVEL_INFO: u8 = 1;
/// Console level: chatty diagnostics ([`debug!`]).
pub const LEVEL_DEBUG: u8 = 2;

/// The console verbosity. Defaults to [`LEVEL_INFO`] so binaries show
/// progress lines; library code gates its own emission (e.g. on the
/// `verbosity` field of the training option structs), which keeps tests
/// silent by default.
static CONSOLE_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_INFO);

/// Sets the console verbosity (one of the `LEVEL_*` constants).
pub fn set_console_level(level: u8) {
    CONSOLE_LEVEL.store(level, Ordering::Relaxed);
}

/// The current console verbosity.
pub fn console_level() -> u8 {
    CONSOLE_LEVEL.load(Ordering::Relaxed)
}

/// Logs a line: printed to stderr when the console level admits it, and
/// forwarded to the installed sink (if any) as a log event. Prefer the
/// [`info!`] / [`debug!`] macros.
pub fn log(level: u8, args: std::fmt::Arguments<'_>) {
    let console = console_level() >= level;
    let sinking = sink::enabled();
    if !console && !sinking {
        return;
    }
    let msg = args.to_string();
    if console {
        eprintln!("{msg}");
    }
    if sinking {
        sink::dispatch(&Event::Log { level, msg: &msg, tid: sink::tid(), ts_us: sink::now_us() });
    }
}

/// Emits a progress line at [`LEVEL_INFO`] (the replacement for the old
/// ad-hoc `println!` progress lines).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log($crate::LEVEL_INFO, ::core::format_args!($($arg)*))
    };
}

/// Emits a diagnostic line at [`LEVEL_DEBUG`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log($crate::LEVEL_DEBUG, ::core::format_args!($($arg)*))
    };
}

/// The `SEQREC_OBS` directive grammar, in full, for error messages and
/// `SEQREC_OBS=help`.
pub const OBS_GRAMMAR: &str = "\
SEQREC_OBS is a comma-separated list of directives:
  console=LEVEL   console verbosity: silent|off|0, info|1, debug|2
  jsonl=PATH      stream events as one JSON object per line to PATH
  chrome=PATH     write a Chrome trace-event JSON array to PATH
                  (open in chrome://tracing or https://ui.perfetto.dev)
  expo=PATH       dump a Prometheus-style text exposition of the metric
                  registry to PATH when the process finishes
                  (the live TCP endpoint is serve-side: bench_serve --expo)
  window=SECS     rolling-window length for live windowed metrics
                  (p50/p95/p99 latency, queue depth, ...; default 10)
  detail          also emit per-kernel-call spans (large traces)
  mem=all|N       also emit tensor buffer alloc/free lifetime events into
                  the jsonl/chrome sinks: every buffer (`all`), or one in
                  N by buffer id (alloc/free stay paired at any rate);
                  fold the trace with `seqrec-prof --mem`
  help            print this grammar and exit
examples:
  SEQREC_OBS=console=debug
  SEQREC_OBS=jsonl=run.jsonl,detail
  SEQREC_OBS=jsonl=run.jsonl,mem=all
  SEQREC_OBS=chrome=trace.json,console=silent
  SEQREC_OBS=expo=metrics.prom,window=5";

/// One parsed `SEQREC_OBS` configuration.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ObsConfig {
    /// Console level override, if given.
    pub console: Option<u8>,
    /// JSONL sink path, if given.
    pub jsonl: Option<String>,
    /// Chrome-trace sink path, if given.
    pub chrome: Option<String>,
    /// Exposition dump path, if given (written when the guard drops).
    pub expo: Option<String>,
    /// Rolling-window length override in seconds, if given.
    pub window_secs: Option<f64>,
    /// Whether per-kernel detail spans were requested.
    pub detail: bool,
    /// Mem-event sampling modulus, if tracing was requested: 1 = every
    /// buffer (`mem=all`), N = one in N buffers by id.
    pub mem: Option<u64>,
}

impl ObsConfig {
    /// Parses the `SEQREC_OBS` directive grammar. Unknown directives are
    /// reported as errors so typos do not silently disable telemetry.
    pub fn parse(spec: &str) -> Result<ObsConfig, String> {
        let mut cfg = ObsConfig::default();
        for raw in spec.split(',') {
            let token = raw.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = match token.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (token, None),
            };
            match (key, value) {
                ("console", Some(v)) => {
                    cfg.console = Some(match v {
                        "silent" | "off" | "0" => LEVEL_SILENT,
                        "info" | "1" => LEVEL_INFO,
                        "debug" | "2" => LEVEL_DEBUG,
                        other => return Err(format!("unknown console level `{other}`")),
                    });
                }
                ("jsonl", Some(path)) if !path.is_empty() => {
                    cfg.jsonl = Some(path.to_string());
                }
                ("chrome", Some(path)) if !path.is_empty() => {
                    cfg.chrome = Some(path.to_string());
                }
                ("expo", Some(path)) if !path.is_empty() => {
                    cfg.expo = Some(path.to_string());
                }
                ("window", Some(v)) => match v.parse::<f64>() {
                    Ok(secs) if secs > 0.0 && secs.is_finite() => cfg.window_secs = Some(secs),
                    _ => {
                        return Err(format!("window wants a positive number of seconds, got `{v}`"))
                    }
                },
                ("detail", None) | ("detail", Some("1")) | ("detail", Some("true")) => {
                    cfg.detail = true;
                }
                ("mem", Some("all")) => cfg.mem = Some(1),
                ("mem", Some(v)) => match v.parse::<u64>() {
                    Ok(n) if n >= 1 => cfg.mem = Some(n),
                    _ => {
                        return Err(format!(
                            "mem wants `all` or a sampling modulus >= 1, got `{v}`"
                        ))
                    }
                },
                _ => return Err(format!("unknown SEQREC_OBS directive `{token}`")),
            }
        }
        Ok(cfg)
    }
}

/// RAII handle returned by [`init_from_env`] / [`init_with`]; dropping it
/// writes a final metrics snapshot into the sink, flushes and finalises it
/// (a Chrome trace gets its closing `]` here), dumps the exposition file
/// if one was requested, and uninstalls the sink.
#[must_use = "telemetry is flushed and finalised when this guard drops"]
pub struct ObsGuard {
    expo: Option<String>,
    mem: bool,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if self.mem {
            mem::set_sink_mode(None);
        }
        if sink::enabled() {
            metrics::emit_snapshot();
        }
        sink::uninstall();
        if let Some(path) = &self.expo {
            if let Err(e) = std::fs::write(path, expo::render(&metrics::snapshot())) {
                eprintln!("seqrec-obs: cannot write exposition dump {path}: {e}");
            }
        }
    }
}

/// Installs sinks according to the `SEQREC_OBS` environment variable (see
/// the crate docs for the grammar) and returns the guard that finalises
/// them on drop. With the variable unset or empty this is free: no sink is
/// installed and every span compiles down to one relaxed load.
///
/// `SEQREC_OBS=help` (or a spec containing a `help` directive) prints the
/// full grammar to stderr and exits the process cleanly with status 0.
///
/// # Panics
/// Panics on a malformed `SEQREC_OBS` value (the panic message includes the
/// full directive grammar) or an unwritable sink path — a profiling run
/// that silently records nothing is worse than a crash.
pub fn init_from_env() -> ObsGuard {
    let spec = std::env::var("SEQREC_OBS").unwrap_or_default();
    if spec.split(',').any(|t| t.trim() == "help") {
        eprintln!("{OBS_GRAMMAR}");
        std::process::exit(0);
    }
    let cfg = ObsConfig::parse(&spec)
        .unwrap_or_else(|e| panic!("invalid SEQREC_OBS value {spec:?}: {e}\n{OBS_GRAMMAR}"));
    init_with(&cfg)
}

/// Installs sinks for an explicit [`ObsConfig`] (what [`init_from_env`]
/// does after parsing).
///
/// # Panics
/// Panics when a sink file cannot be created.
pub fn init_with(cfg: &ObsConfig) -> ObsGuard {
    if let Some(level) = cfg.console {
        set_console_level(level);
    }
    if let Some(secs) = cfg.window_secs {
        metrics::set_window_secs(secs);
    }
    sink::set_detail(cfg.detail);
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    if let Some(path) = &cfg.jsonl {
        let s = JsonlSink::to_file(path)
            .unwrap_or_else(|e| panic!("cannot open JSONL sink {path}: {e}"));
        sinks.push(Arc::new(s));
    }
    if let Some(path) = &cfg.chrome {
        let s = ChromeTraceSink::to_file(path)
            .unwrap_or_else(|e| panic!("cannot open Chrome trace sink {path}: {e}"));
        sinks.push(Arc::new(s));
    }
    match sinks.len() {
        0 => {}
        1 => sink::install(sinks.pop().expect("one sink")),
        _ => sink::install(Arc::new(Fanout::new(sinks))),
    }
    mem::set_sink_mode(cfg.mem);
    ObsGuard { expo: cfg.expo.clone(), mem: cfg.mem.is_some() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let cfg = ObsConfig::parse(
            "console=debug, jsonl=/tmp/a.jsonl,chrome=/tmp/b.json,\
             expo=/tmp/c.prom,window=2.5,detail,mem=64",
        )
        .unwrap();
        assert_eq!(cfg.console, Some(LEVEL_DEBUG));
        assert_eq!(cfg.jsonl.as_deref(), Some("/tmp/a.jsonl"));
        assert_eq!(cfg.chrome.as_deref(), Some("/tmp/b.json"));
        assert_eq!(cfg.expo.as_deref(), Some("/tmp/c.prom"));
        assert_eq!(cfg.window_secs, Some(2.5));
        assert!(cfg.detail);
        assert_eq!(cfg.mem, Some(64));
    }

    #[test]
    fn mem_directive_accepts_all_and_moduli() {
        assert_eq!(ObsConfig::parse("mem=all").unwrap().mem, Some(1));
        assert_eq!(ObsConfig::parse("mem=1").unwrap().mem, Some(1));
        assert_eq!(ObsConfig::parse("mem=1000").unwrap().mem, Some(1000));
        assert_eq!(ObsConfig::parse("").unwrap().mem, None);
    }

    #[test]
    fn empty_spec_is_a_noop_config() {
        assert_eq!(ObsConfig::parse("").unwrap(), ObsConfig::default());
        assert_eq!(ObsConfig::parse(" , ,").unwrap(), ObsConfig::default());
    }

    #[test]
    fn console_levels_accept_names_and_numbers() {
        assert_eq!(ObsConfig::parse("console=silent").unwrap().console, Some(LEVEL_SILENT));
        assert_eq!(ObsConfig::parse("console=0").unwrap().console, Some(LEVEL_SILENT));
        assert_eq!(ObsConfig::parse("console=info").unwrap().console, Some(LEVEL_INFO));
        assert_eq!(ObsConfig::parse("console=2").unwrap().console, Some(LEVEL_DEBUG));
    }

    #[test]
    fn unknown_directives_are_rejected() {
        assert!(ObsConfig::parse("jsnol=/tmp/x").is_err());
        assert!(ObsConfig::parse("console=loud").is_err());
        assert!(ObsConfig::parse("jsonl=").is_err());
        assert!(ObsConfig::parse("window=zero").is_err());
        assert!(ObsConfig::parse("window=-1").is_err());
        assert!(ObsConfig::parse("expo=").is_err());
        assert!(ObsConfig::parse("mem").is_err());
        assert!(ObsConfig::parse("mem=0").is_err());
        assert!(ObsConfig::parse("mem=some").is_err());
    }
}
