//! Memory-trace aggregation: folds the `mem_alloc`/`mem_free` event
//! stream produced by the `SEQREC_OBS=mem=...` sink mode into a peak
//! breakdown, buffer-lifetime statistics, and a **what-if arena report**.
//!
//! The what-if number answers: *if a planned executor reused buffers
//! perfectly, how low could the peak go without changing what is
//! computed?* Lifetimes are kept, allocations stay in program order, and
//! every free is retired as early as validity allows — hoisted before
//! later allocations within its microsecond (slack 0), or up to a slack
//! window earlier (the sweep). Because frees only ever move earlier and
//! allocations keep their order, the what-if peak can never exceed the
//! observed peak, and it can never drop below the largest single buffer —
//! the two invariants the proptests pin. The slack-0 value is the target
//! ROADMAP item 2's memory planner must hit.
//!
//! Like the span aggregator, the mem aggregator is strict: a free without
//! a matching alloc, or a duplicate buffer id, is an error, not a skip.

use crate::json::{self, Value};
use crate::mem::Interval;
use crate::profile::req_u64;

/// One buffer alloc/free boundary extracted from a trace file.
#[derive(Clone, Debug, PartialEq)]
pub struct MemEvent {
    /// Monotonic buffer id (pairs the alloc with its free).
    pub id: u64,
    /// Buffer size in bytes.
    pub bytes: u64,
    /// `tensor.live_bytes` level after the event, when the format carries
    /// it (JSONL does; the Chrome object events do not).
    pub live_bytes: Option<i64>,
    /// Thread the event fired on.
    pub tid: u64,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
    /// Owning span path at allocation (`;`-joined); `None` on frees.
    pub path: Option<String>,
    /// `true` for an allocation, `false` for a free.
    pub alloc: bool,
}

/// Extracts the mem events of a JSONL trace; other kinds are skipped.
///
/// # Errors
/// Returns a line-numbered message on malformed JSON or a mem event
/// missing a field.
pub fn parse_mem_jsonl(text: &str) -> Result<Vec<MemEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        let alloc = match v.get("ev").and_then(Value::as_str) {
            Some("mem_alloc") => true,
            Some("mem_free") => false,
            _ => continue,
        };
        let at = format!("line {}", i + 1);
        let path = if alloc {
            Some(
                v.get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("{at}: mem_alloc without \"path\""))?
                    .to_string(),
            )
        } else {
            None
        };
        events.push(MemEvent {
            id: req_u64(&v, "id", &at)?,
            bytes: req_u64(&v, "bytes", &at)?,
            live_bytes: v.get("live_bytes").and_then(Value::as_f64).map(|f| f as i64),
            tid: req_u64(&v, "tid", &at)?,
            ts_us: req_u64(&v, "ts_us", &at)?,
            path,
            alloc,
        });
    }
    Ok(events)
}

/// Extracts the mem events of a Chrome trace: `N`/`D` object events in the
/// `mem` category, with the buffer id in the hex `id` field and the size
/// (plus span path, for `N`) in `args`.
///
/// # Errors
/// Returns a message on malformed JSON or a mem object event missing a
/// field.
pub fn parse_mem_chrome(text: &str) -> Result<Vec<MemEvent>, String> {
    let v = json::parse(text).map_err(|e| format!("invalid Chrome trace JSON: {e}"))?;
    let arr = match &v {
        Value::Arr(items) => items,
        _ => return Err("Chrome trace must be a JSON array of events".to_string()),
    };
    let mut events = Vec::new();
    for (i, item) in arr.iter().enumerate() {
        let alloc = match item.get("ph").and_then(Value::as_str) {
            Some("N") => true,
            Some("D") => false,
            _ => continue,
        };
        if item.get("cat").and_then(Value::as_str) != Some("mem") {
            continue;
        }
        let at = format!("event {i}");
        let id_str = item
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{at}: mem object event without \"id\""))?;
        let id = id_str
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("{at}: mem object id `{id_str}` is not 0x-hex"))?;
        let args =
            item.get("args").ok_or_else(|| format!("{at}: mem object event without args"))?;
        let path = if alloc {
            Some(
                args.get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("{at}: mem N event without args.path"))?
                    .to_string(),
            )
        } else {
            None
        };
        events.push(MemEvent {
            id,
            bytes: req_u64(args, "bytes", &at)?,
            live_bytes: None,
            tid: req_u64(item, "tid", &at)?,
            ts_us: req_u64(item, "ts", &at)?,
            path,
            alloc,
        });
    }
    Ok(events)
}

/// Extracts mem events with the same format auto-detection as
/// [`crate::profile::parse_auto`].
///
/// # Errors
/// Propagates the format-specific parse errors.
pub fn parse_mem_auto(text: &str) -> Result<Vec<MemEvent>, String> {
    if text.trim_start().starts_with('[') {
        parse_mem_chrome(text)
    } else {
        parse_mem_jsonl(text)
    }
}

// --- what-if planning --------------------------------------------------------

/// The slack windows (µs) swept by the what-if report: how much earlier
/// each free would have to retire to reach the corresponding peak.
pub const WHATIF_SLACKS_US: &[u64] = &[0, 10, 100, 1_000, 10_000];

/// The slack `bench_train` reports in its `whatif_peak_mib` column: 10ms,
/// the top of the sweep — batch-scale reuse, i.e. a planner that retires
/// every buffer at its last use within the surrounding training step
/// rather than at its Rust drop point. At slack 0 the fungible bound
/// equals the observed peak almost exactly (malloc already reuses freed
/// memory), so the bench column would duplicate `peak_mib`.
pub const BENCH_WHATIF_SLACK_US: u64 = 10_000;

/// The observed peak (bytes) of a recorded interval set, replayed in
/// event order over exactly the buffers the recorder saw. This is the
/// `peak_mib` consistent with [`whatif_peak_bytes`] on the same
/// intervals (the live-bytes gauge instead mixes in frees of buffers
/// allocated before recording started, and can sit below this).
pub fn observed_peak_from_intervals(intervals: &[Interval]) -> u64 {
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        deltas.push((iv.alloc_seq, iv.bytes as i64));
        if let Some(free_seq) = iv.free_seq {
            deltas.push((free_seq, -(iv.bytes as i64)));
        }
    }
    deltas.sort_unstable_by_key(|&(seq, _)| seq);
    let mut live: i64 = 0;
    let mut peak: i64 = 0;
    for (_, d) in deltas {
        live += d;
        peak = peak.max(live);
    }
    peak.max(0) as u64
}

/// One planning event in what-if order: allocations in program order,
/// frees retired as early as validity allows.
struct PlanEvent {
    ts: u64,
    /// Within-timestamp ordering: frees enabled by an earlier microsecond
    /// sort first (key 0), allocations keep program order (`2·seq+1`), and
    /// a free whose alloc shares the microsecond lands right behind that
    /// alloc (`2·seq+2`).
    key: u64,
    /// Index into the interval slice.
    idx: usize,
    alloc: bool,
}

fn plan_events(intervals: &[Interval], slack_us: u64) -> Vec<PlanEvent> {
    let mut events = Vec::with_capacity(intervals.len() * 2);
    for (idx, iv) in intervals.iter().enumerate() {
        events.push(PlanEvent { ts: iv.start_us, key: 2 * iv.alloc_seq + 1, idx, alloc: true });
        if let Some(end) = iv.end_us {
            let ts = end.saturating_sub(slack_us).max(iv.start_us);
            let key = if ts == iv.start_us { 2 * iv.alloc_seq + 2 } else { 0 };
            events.push(PlanEvent { ts, key, idx, alloc: false });
        }
    }
    events.sort_by_key(|e| (e.ts, e.key, intervals[e.idx].alloc_seq));
    events
}

/// The theoretical minimum peak (bytes) under perfect reuse: allocations
/// in program order, every free retired as early as validity allows, with
/// frees additionally allowed to move up to `slack_us` earlier. Buffers
/// never freed (`end_us: None`) hold their bytes to the end.
///
/// Guarantees: at `slack_us = 0` the result never exceeds the observed
/// peak of the same schedule, and at any slack it is at least the largest
/// single buffer.
pub fn whatif_peak_bytes(intervals: &[Interval], slack_us: u64) -> u64 {
    let mut live: i64 = 0;
    let mut peak: i64 = 0;
    for ev in plan_events(intervals, slack_us) {
        let bytes = intervals[ev.idx].bytes as i64;
        if ev.alloc {
            live += bytes;
            peak = peak.max(live);
        } else {
            live -= bytes;
        }
    }
    peak.max(0) as u64
}

/// Result of replaying the what-if schedule through a best-fit free-list
/// arena: what a real (non-fungible, fragmenting) arena allocator would
/// need, as opposed to the fungible lower bound of [`whatif_peak_bytes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaReport {
    /// High-watermark arena size in bytes.
    pub arena_bytes: u64,
    /// Buffers placed.
    pub placed: usize,
}

/// Simulates a best-fit free-list arena over the what-if schedule at
/// `slack_us`. `arena_bytes` is always ≥ [`whatif_peak_bytes`] at the same
/// slack; the gap is fragmentation.
pub fn simulate_arena(intervals: &[Interval], slack_us: u64) -> ArenaReport {
    // Allocated blocks by offset; gaps between them are the free list.
    let mut blocks: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut offsets: Vec<Option<u64>> = vec![None; intervals.len()];
    let mut arena_bytes: u64 = 0;
    let mut placed = 0usize;
    for ev in plan_events(intervals, slack_us) {
        let size = intervals[ev.idx].bytes;
        if ev.alloc {
            // Best fit: the smallest gap between consecutive blocks that
            // holds `size`; otherwise extend past the top block.
            let mut best: Option<(u64, u64)> = None; // (gap, offset)
            let mut prev_end = 0u64;
            for (&off, &len) in &blocks {
                let gap = off - prev_end;
                if gap >= size && best.is_none_or(|(g, _)| gap < g) {
                    best = Some((gap, prev_end));
                }
                prev_end = off + len;
            }
            let offset = best.map_or(prev_end, |(_, o)| o);
            blocks.insert(offset, size);
            offsets[ev.idx] = Some(offset);
            arena_bytes = arena_bytes.max(offset + size);
            placed += 1;
        } else if let Some(offset) = offsets[ev.idx].take() {
            blocks.remove(&offset);
        }
    }
    ArenaReport { arena_bytes, placed }
}

// --- folded profile ----------------------------------------------------------

/// Bytes-at-peak attribution for one key (a span path or an op name).
#[derive(Clone, Debug)]
pub struct PeakSlice {
    /// The span path (or leaf op) the bytes belong to.
    pub key: String,
    /// Bytes live at the observed peak under this key.
    pub bytes: u64,
    /// Buffers live at the observed peak under this key.
    pub buffers: u64,
}

/// A folded memory profile: observed peak with attribution, lifetime
/// statistics, leak set, and the what-if sweep inputs.
#[derive(Clone, Debug)]
pub struct MemProfile {
    /// Allocation events folded in.
    pub allocs: u64,
    /// Free events folded in.
    pub frees: u64,
    /// Observed peak of the replayed live-bytes curve.
    pub observed_peak_bytes: u64,
    /// Timestamp (µs) of the event that set the observed peak.
    pub peak_ts_us: u64,
    /// Bytes-at-peak per span path, descending by bytes. Sums exactly to
    /// [`MemProfile::observed_peak_bytes`].
    pub peak_by_path: Vec<PeakSlice>,
    /// Bytes-at-peak per op (leaf span name), descending by bytes. Also
    /// sums exactly to the observed peak.
    pub peak_by_op: Vec<PeakSlice>,
    /// Buffers still live at end of trace (the leak set).
    pub live_at_end: u64,
    /// Bytes still live at end of trace.
    pub live_at_end_bytes: u64,
    /// Lifetimes (µs) of freed buffers: `(min, mean, max)`; zeros when
    /// nothing was freed.
    pub lifetime_us: (u64, f64, u64),
    /// Largest single buffer seen.
    pub max_buffer_bytes: u64,
    /// The alloc/free intervals, ready for [`whatif_peak_bytes`] /
    /// [`simulate_arena`].
    pub intervals: Vec<Interval>,
}

impl MemProfile {
    /// Folds a mem-event stream (in file order, which is emission order).
    ///
    /// # Errors
    /// Returns a message on a free without a matching alloc or a duplicate
    /// live buffer id.
    pub fn build(events: &[MemEvent]) -> Result<MemProfile, String> {
        // id → (bytes, path, interval index) for live buffers.
        let mut live: std::collections::HashMap<u64, (u64, String, usize)> =
            std::collections::HashMap::new();
        let mut intervals: Vec<Interval> = Vec::new();
        let mut allocs = 0u64;
        let mut frees = 0u64;
        let mut running: u64 = 0;
        let mut peak: u64 = 0;
        let mut peak_at: usize = 0;
        let mut peak_ts_us: u64 = 0;
        let mut max_buffer_bytes: u64 = 0;
        for (i, ev) in events.iter().enumerate() {
            if ev.alloc {
                if live.contains_key(&ev.id) {
                    return Err(format!("mem event {i}: duplicate alloc of live buffer {}", ev.id));
                }
                let path = ev.path.clone().unwrap_or_default();
                live.insert(ev.id, (ev.bytes, path, intervals.len()));
                intervals.push(Interval {
                    start_us: ev.ts_us,
                    end_us: None,
                    bytes: ev.bytes,
                    alloc_seq: i as u64,
                    free_seq: None,
                });
                allocs += 1;
                running += ev.bytes;
                max_buffer_bytes = max_buffer_bytes.max(ev.bytes);
                if running > peak {
                    peak = running;
                    peak_at = i;
                    peak_ts_us = ev.ts_us;
                }
            } else {
                let (bytes, _, iv) = live
                    .remove(&ev.id)
                    .ok_or_else(|| format!("mem event {i}: free of unknown buffer {}", ev.id))?;
                if bytes != ev.bytes {
                    return Err(format!(
                        "mem event {i}: buffer {} freed with {} bytes, allocated with {bytes}",
                        ev.id, ev.bytes
                    ));
                }
                intervals[iv].end_us = Some(ev.ts_us);
                intervals[iv].free_seq = Some(i as u64);
                frees += 1;
                running = running.saturating_sub(bytes);
            }
        }
        let live_at_end = live.len() as u64;
        let live_at_end_bytes = live.values().map(|(b, _, _)| *b).sum();

        // Second pass: replay to the peak event and attribute the live set.
        let mut at_peak: std::collections::HashMap<u64, (u64, &str)> =
            std::collections::HashMap::new();
        for ev in events.iter().take(peak_at + 1) {
            if ev.alloc {
                at_peak.insert(ev.id, (ev.bytes, ev.path.as_deref().unwrap_or("")));
            } else {
                at_peak.remove(&ev.id);
            }
        }
        let fold = |key_of: &dyn Fn(&str) -> String| -> Vec<PeakSlice> {
            let mut slices: Vec<PeakSlice> = Vec::new();
            for (bytes, path) in at_peak.values() {
                let key = key_of(path);
                match slices.iter_mut().find(|s| s.key == key) {
                    Some(s) => {
                        s.bytes += bytes;
                        s.buffers += 1;
                    }
                    None => slices.push(PeakSlice { key, bytes: *bytes, buffers: 1 }),
                }
            }
            slices.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.key.cmp(&b.key)));
            slices
        };
        let whole = |p: &str| if p.is_empty() { "(top)".to_string() } else { p.to_string() };
        let leaf =
            |p: &str| p.rsplit(';').next().filter(|s| !s.is_empty()).unwrap_or("(top)").to_string();
        let peak_by_path = fold(&whole);
        let peak_by_op = fold(&leaf);

        let mut lifetimes =
            intervals.iter().filter_map(|iv| iv.end_us.map(|e| e.saturating_sub(iv.start_us)));
        let lifetime_us = match lifetimes.next() {
            None => (0, 0.0, 0),
            Some(first) => {
                let (mut lo, mut hi, mut sum, mut n) = (first, first, first as f64, 1u64);
                for l in lifetimes {
                    lo = lo.min(l);
                    hi = hi.max(l);
                    sum += l as f64;
                    n += 1;
                }
                (lo, sum / n as f64, hi)
            }
        };

        Ok(MemProfile {
            allocs,
            frees,
            observed_peak_bytes: peak,
            peak_ts_us,
            peak_by_path,
            peak_by_op,
            live_at_end,
            live_at_end_bytes,
            lifetime_us,
            max_buffer_bytes,
            intervals,
        })
    }

    /// Renders the full `--mem` report: header, peak attribution tables
    /// (top `top` rows each), lifetime statistics, and the what-if arena
    /// sweep.
    pub fn render(&self, top: usize) -> String {
        let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
        let mut out = String::new();
        out.push_str(&format!(
            "memory profile: {} allocs, {} frees, {} live at end ({:.2} MiB)\n",
            self.allocs,
            self.frees,
            self.live_at_end,
            mib(self.live_at_end_bytes),
        ));
        out.push_str(&format!(
            "observed peak: {:.2} MiB at t={}us\n",
            mib(self.observed_peak_bytes),
            self.peak_ts_us
        ));
        let total = self.observed_peak_bytes.max(1);
        for (title, slices) in [("span path", &self.peak_by_path), ("op", &self.peak_by_op)] {
            out.push_str(&format!(
                "\nbytes at peak by {title}:\n{:>12} {:>7} {:>9}  {title}\n",
                "MiB", "%", "buffers"
            ));
            for s in slices.iter().take(top) {
                out.push_str(&format!(
                    "{:>12.3} {:>6.1}% {:>9}  {}\n",
                    mib(s.bytes),
                    s.bytes as f64 * 100.0 / total as f64,
                    s.buffers,
                    s.key,
                ));
            }
            if slices.len() > top {
                let rest: u64 = slices.iter().skip(top).map(|s| s.bytes).sum();
                out.push_str(&format!(
                    "{:>12.3} {:>6.1}% {:>9}  ({} more)\n",
                    mib(rest),
                    rest as f64 * 100.0 / total as f64,
                    slices.iter().skip(top).map(|s| s.buffers).sum::<u64>(),
                    slices.len() - top,
                ));
            }
        }
        let (lo, mean, hi) = self.lifetime_us;
        out.push_str(&format!(
            "\nbuffer lifetimes (freed): min {lo}us, mean {mean:.1}us, max {hi}us\n"
        ));
        out.push_str(&format!("largest single buffer: {:.3} MiB\n", mib(self.max_buffer_bytes)));
        out.push_str("\nwhat-if arena (perfect reuse; frees retired eagerly):\n");
        for &slack in WHATIF_SLACKS_US {
            let peak = whatif_peak_bytes(&self.intervals, slack);
            out.push_str(&format!(
                "  slack {slack:>6}us: {:>10.2} MiB  ({:>5.1}% of observed, headroom {:.2} MiB)\n",
                mib(peak),
                peak as f64 * 100.0 / total as f64,
                mib(self.observed_peak_bytes.saturating_sub(peak)),
            ));
        }
        let arena = simulate_arena(&self.intervals, 0);
        let ideal = whatif_peak_bytes(&self.intervals, 0).max(1);
        out.push_str(&format!(
            "  best-fit arena at slack 0: {:.2} MiB ({:+.1}% fragmentation over what-if)\n",
            mib(arena.arena_bytes),
            (arena.arena_bytes as f64 / ideal as f64 - 1.0) * 100.0,
        ));
        out
    }
}

/// Replays a mem-event stream in file order and returns the observed peak
/// of the live-bytes curve (what the `tensor.live_bytes` gauge peak would
/// read over the traced population).
pub fn observed_peak_bytes(events: &[MemEvent]) -> u64 {
    let mut live: i64 = 0;
    let mut peak: i64 = 0;
    for ev in events {
        if ev.alloc {
            live += ev.bytes as i64;
            peak = peak.max(live);
        } else {
            live -= ev.bytes as i64;
        }
    }
    peak.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: u64, end: Option<u64>, bytes: u64, seq: u64) -> Interval {
        Interval {
            start_us: start,
            end_us: end,
            bytes,
            alloc_seq: seq,
            free_seq: end.map(|_| seq + 100),
        }
    }

    #[test]
    fn observed_peak_replays_intervals_in_event_order() {
        // Two 100-byte buffers whose lifetimes overlap only through seq
        // ordering: a allocs (seq 1), b allocs (seq 2), a frees (seq 101),
        // b frees (seq 102) → both live together, peak 200.
        let overlapping = [iv(0, Some(10), 100, 1), iv(5, Some(20), 100, 2)];
        assert_eq!(observed_peak_from_intervals(&overlapping), 200);
        // Sequential lifetimes: a frees (seq 101) before b allocs (seq 150).
        let sequential = [
            iv(0, Some(10), 100, 1),
            Interval {
                start_us: 15,
                end_us: Some(20),
                bytes: 100,
                alloc_seq: 150,
                free_seq: Some(151),
            },
        ];
        assert_eq!(observed_peak_from_intervals(&sequential), 100);
        // An unfreed buffer holds its bytes forever.
        let leaked = [iv(0, None, 64, 1), iv(1, Some(2), 100, 2)];
        assert_eq!(observed_peak_from_intervals(&leaked), 164);
        assert_eq!(observed_peak_from_intervals(&[]), 0);
    }

    fn alloc(id: u64, bytes: u64, ts: u64, path: &str) -> MemEvent {
        MemEvent {
            id,
            bytes,
            live_bytes: None,
            tid: 1,
            ts_us: ts,
            path: Some(path.to_string()),
            alloc: true,
        }
    }

    fn free(id: u64, bytes: u64, ts: u64) -> MemEvent {
        MemEvent { id, bytes, live_bytes: None, tid: 1, ts_us: ts, path: None, alloc: false }
    }

    #[test]
    fn jsonl_mem_events_parse_back() {
        let text = "\
{\"ev\":\"mem_alloc\",\"id\":3,\"bytes\":256,\"live_bytes\":256,\"tid\":1,\"ts_us\":10,\"path\":\"epoch;batch\"}\n\
{\"ev\":\"span_begin\",\"name\":\"x\",\"tid\":1,\"ts_us\":11,\"depth\":0}\n\
{\"ev\":\"mem_free\",\"id\":3,\"bytes\":256,\"live_bytes\":0,\"tid\":1,\"ts_us\":20}\n";
        let events = parse_mem_jsonl(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].path.as_deref(), Some("epoch;batch"));
        assert_eq!(events[0].live_bytes, Some(256));
        assert!(!events[1].alloc);
        assert!(parse_mem_jsonl("{\"ev\":\"mem_alloc\",\"id\":1,\"ts_us\":0}").is_err());
    }

    #[test]
    fn chrome_mem_events_parse_back() {
        let text = r#"[
{"name":"buf","cat":"mem","ph":"N","id":"0xa","ts":5,"pid":1,"tid":2,"args":{"bytes":512,"path":"epoch"}},
{"name":"tensor.live_bytes","cat":"mem","ph":"C","ts":5,"pid":1,"tid":0,"args":{"value":512}},
{"name":"buf","cat":"mem","ph":"D","id":"0xa","ts":9,"pid":1,"tid":2,"args":{"bytes":512}}
]"#;
        let events = parse_mem_chrome(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].id, 10);
        assert_eq!(events[0].bytes, 512);
        assert_eq!(events[0].path.as_deref(), Some("epoch"));
        assert!(!events[1].alloc);
        assert_eq!(parse_mem_auto(text).unwrap().len(), 2);
    }

    #[test]
    fn profile_attributes_the_peak_exactly() {
        // Peak = 300 bytes when buffers 1 (forward) and 2 (backward) are
        // both live; buffer 3 allocates after 1 freed.
        let events = vec![
            alloc(1, 100, 0, "epoch;forward"),
            alloc(2, 200, 5, "epoch;backward"),
            free(1, 100, 10),
            alloc(3, 50, 15, "epoch;forward"),
            free(2, 200, 20),
        ];
        let p = MemProfile::build(&events).unwrap();
        assert_eq!(p.observed_peak_bytes, 300);
        assert_eq!(p.peak_ts_us, 5);
        let attributed: u64 = p.peak_by_path.iter().map(|s| s.bytes).sum();
        assert_eq!(attributed, p.observed_peak_bytes, "attribution must tile the peak");
        assert_eq!(p.peak_by_path[0].key, "epoch;backward");
        assert_eq!(p.peak_by_op[0].key, "backward");
        assert_eq!((p.live_at_end, p.live_at_end_bytes), (1, 50));
        assert_eq!(p.max_buffer_bytes, 200);
        let report = p.render(10);
        assert!(report.contains("epoch;backward"), "{report}");
        assert!(report.contains("what-if arena"), "{report}");
    }

    #[test]
    fn profile_rejects_unpaired_and_mismatched_events() {
        let err = MemProfile::build(&[free(7, 8, 1)]).unwrap_err();
        assert!(err.contains("unknown buffer"), "{err}");
        let err = MemProfile::build(&[alloc(1, 8, 0, ""), alloc(1, 8, 1, "")]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = MemProfile::build(&[alloc(1, 8, 0, ""), free(1, 9, 1)]).unwrap_err();
        assert!(err.contains("freed with"), "{err}");
    }

    #[test]
    fn whatif_reuses_within_a_microsecond() {
        // Two 100-byte buffers: the second allocates in the same µs the
        // first frees, but after it in program order. Observed peak = 200;
        // a planner retiring the free first needs only 100.
        let intervals = vec![iv(0, Some(10), 100, 1), iv(10, Some(20), 100, 3)];
        assert_eq!(whatif_peak_bytes(&intervals, 0), 100);
        // Disjoint-in-time case is unchanged.
        let disjoint = vec![iv(0, Some(5), 100, 1), iv(10, Some(20), 100, 3)];
        assert_eq!(whatif_peak_bytes(&disjoint, 0), 100);
        // Truly overlapping lifetimes still need both.
        let overlap = vec![iv(0, Some(20), 100, 1), iv(10, Some(30), 100, 3)];
        assert_eq!(whatif_peak_bytes(&overlap, 0), 200);
    }

    #[test]
    fn whatif_free_cannot_precede_its_own_alloc() {
        // Both buffers allocate in one µs and free in a later one: hoisting
        // cannot help, both are live together.
        let intervals = vec![iv(0, Some(5), 100, 1), iv(0, Some(5), 100, 2)];
        assert_eq!(whatif_peak_bytes(&intervals, 0), 200);
        // Same-µs alloc→free churn collapses to one slot: each free
        // retires right behind its own alloc.
        let churn = vec![iv(0, Some(0), 100, 1), iv(0, Some(0), 100, 3)];
        assert_eq!(whatif_peak_bytes(&churn, 0), 100);
    }

    #[test]
    fn whatif_slack_shortens_lifetimes() {
        // B allocates 5us before A frees: slack 0 needs 200, slack 10
        // retires A's free early enough to reuse.
        let intervals = vec![iv(0, Some(12), 100, 1), iv(7, Some(20), 100, 3)];
        assert_eq!(whatif_peak_bytes(&intervals, 0), 200);
        assert_eq!(whatif_peak_bytes(&intervals, 10), 100);
    }

    #[test]
    fn unfreed_buffers_hold_their_bytes() {
        let intervals = vec![iv(0, None, 100, 1), iv(10, Some(20), 50, 3)];
        assert_eq!(whatif_peak_bytes(&intervals, 0), 150);
        assert_eq!(whatif_peak_bytes(&intervals, 10_000), 150);
    }

    #[test]
    fn arena_is_at_least_the_fungible_bound() {
        // Fragmentation case: small buffer freed between two big ones.
        let intervals = vec![
            iv(0, Some(30), 64, 1),
            iv(5, Some(15), 8, 2),
            iv(10, Some(40), 64, 3),
            iv(20, Some(50), 8, 5),
        ];
        let ideal = whatif_peak_bytes(&intervals, 0);
        let arena = simulate_arena(&intervals, 0);
        assert!(arena.arena_bytes >= ideal, "{} < {ideal}", arena.arena_bytes);
        assert_eq!(arena.placed, 4);
    }

    #[test]
    fn observed_peak_matches_replay() {
        let events = vec![
            alloc(1, 100, 0, ""),
            alloc(2, 200, 1, ""),
            free(1, 100, 2),
            alloc(3, 250, 3, ""),
            free(2, 200, 4),
            free(3, 250, 5),
        ];
        assert_eq!(observed_peak_bytes(&events), 450);
        let p = MemProfile::build(&events).unwrap();
        assert_eq!(p.observed_peak_bytes, 450);
        assert!(whatif_peak_bytes(&p.intervals, 0) <= 450);
    }
}
