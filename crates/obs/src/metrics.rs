//! The process-global metrics registry.
//!
//! Three primitive types, all updated with relaxed atomics so probes stay
//! cheap enough to leave compiled into hot paths:
//!
//! * [`Counter`] — a monotonically increasing `u64`. Overflow **wraps**
//!   (two's-complement `fetch_add` semantics): a counter that has run for
//!   long enough to wrap is still useful as a delta source, and saturating
//!   would cost a compare-exchange loop per probe.
//! * [`Gauge`] — a signed level (e.g. live tensor bytes) that also tracks
//!   its high-water mark. The peak is updated with `fetch_max`, so under
//!   concurrent mutation it is a close approximation, not a serialised
//!   maximum.
//! * [`Histogram`] — fixed upper-inclusive buckets: a sample lands in the
//!   first bucket whose bound is `>= value`, or in the overflow bucket when
//!   it exceeds every bound. Each histogram also carries a total sample
//!   count and a (wrapping) value sum, so means and Prometheus-style
//!   `_count`/`_sum` series come for free.
//! * [`WindowedHistogram`] / [`WindowedCounter`] — the rolling-window
//!   variants behind live serving metrics: a ring of fixed-bucket epochs
//!   keyed by the trace clock, so p50/p95/p99 latency, queue depth, batch
//!   occupancy and cache hit rate are queryable *mid-run*, not only at
//!   shutdown. Window length is process-global ([`set_window_secs`],
//!   `SEQREC_OBS=window=SECS`).
//!
//! The well-known instruments of the training stack are declared here as
//! statics ([`GEMM_FLOPS`], [`TAPE_NODES`], …) and enumerated by
//! [`snapshot`], which is also what sinks serialise on flush and what the
//! Prometheus-style exposition ([`crate::expo`]) renders.
//!
//! ## Snapshot consistency
//!
//! Probes are relaxed atomics, so a snapshot taken under concurrent
//! mutation is not a serialised cut — but it never *tears* in the
//! directions that matter: a histogram's per-bucket counts are read
//! before its total (and [`Histogram::record`] bumps the total first),
//! so `sum(buckets) + overflow <= total` holds in every scrape, and
//! counter/total readings are monotonic across scrapes
//! (`tests/metrics_concurrency.rs` hammers this from a real pool).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

use crate::sink;

/// Maximum number of explicit histogram buckets (excluding overflow).
pub const MAX_BUCKETS: usize = 24;

/// Number of epochs in a rolling window ring. The window is divided into
/// this many epochs; expiry granularity is one epoch.
pub const WINDOW_SLOTS: usize = 8;

/// The process-global rolling-window length in microseconds (default 10s).
/// One atomic so every windowed instrument resizes together.
static WINDOW_US: AtomicU64 = AtomicU64::new(10_000_000);

/// Sets the rolling-window length for every windowed instrument. Values
/// are clamped to at least `WINDOW_SLOTS` milliseconds so each epoch stays
/// a non-zero number of microseconds. Normally set once at startup from
/// the `SEQREC_OBS=window=SECS` directive; resizing mid-run effectively
/// restarts the windows (epoch numbering changes).
pub fn set_window_secs(secs: f64) {
    let us = (secs * 1e6).clamp(WINDOW_SLOTS as f64 * 1_000.0, 1e15) as u64;
    WINDOW_US.store(us, Relaxed);
}

/// The current rolling-window length in microseconds.
pub fn window_us() -> u64 {
    WINDOW_US.load(Relaxed)
}

fn epoch_len_us() -> u64 {
    (window_us() / WINDOW_SLOTS as u64).max(1)
}

/// The current window epoch number, offset by one so `0` can tag an
/// empty slot.
fn current_epoch() -> u64 {
    sink::now_us() / epoch_len_us() + 1
}

/// A wrapping, monotonically increasing event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter starting at zero.
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// Adds `n`. Wraps on overflow (see the module docs).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero (benchmark harnesses and tests).
    pub fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// A signed level with an approximate high-water mark.
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// A new gauge at zero.
    pub const fn new(name: &'static str) -> Self {
        Gauge { name, value: AtomicI64::new(0), peak: AtomicI64::new(0) }
    }

    /// Moves the level by `delta` (negative to decrease); a positive move
    /// also advances the peak.
    #[inline]
    pub fn add(&self, delta: i64) {
        let new = self.value.fetch_add(delta, Relaxed).wrapping_add(delta);
        if delta > 0 {
            self.peak.fetch_max(new, Relaxed);
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }

    /// The high-water mark.
    pub fn peak(&self) -> i64 {
        self.peak.load(Relaxed)
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets level and peak to zero.
    pub fn reset(&self) {
        self.value.store(0, Relaxed);
        self.peak.store(0, Relaxed);
    }
}

/// A fixed-bucket histogram with upper-inclusive bucket bounds.
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    counts: [AtomicU64; MAX_BUCKETS],
    overflow: AtomicU64,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A new histogram over `bounds` (ascending, at most [`MAX_BUCKETS`]).
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        assert!(bounds.len() <= MAX_BUCKETS, "too many histogram buckets");
        Histogram {
            name,
            bounds,
            counts: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            overflow: AtomicU64::new(0),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample: the first bucket with `bound >= value`, or the
    /// overflow bucket. The total is bumped *before* the bucket so that a
    /// concurrent snapshot (which reads buckets first) never observes
    /// `sum(buckets) + overflow > total`.
    #[inline]
    pub fn record(&self, value: u64) {
        self.total.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        for (i, &b) in self.bounds.iter().enumerate() {
            if value <= b {
                self.counts[i].fetch_add(1, Relaxed);
                return;
            }
        }
        self.overflow.fetch_add(1, Relaxed);
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts, in bound order.
    pub fn counts(&self) -> Vec<u64> {
        self.bounds.iter().enumerate().map(|(i, _)| self.counts[i].load(Relaxed)).collect()
    }

    /// Samples above every bound.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Relaxed)
    }

    /// Total samples recorded. Under concurrent recording this is `>=`
    /// the sum of the bucket counts read afterwards (see [`record`]).
    ///
    /// [`record`]: Histogram::record
    pub fn total(&self) -> u64 {
        self.total.load(Relaxed)
    }

    /// Sum of all recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// A bucket-resolution estimate of the `q`-quantile (`0.0..=1.0`):
    /// the smallest bound whose cumulative count reaches `ceil(q·total)`,
    /// or `u64::MAX` when it lands in the overflow region. `None` on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts = self.counts();
        let overflow = self.overflow();
        histogram_quantile(self.bounds, &counts, overflow, q)
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets all buckets.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
        self.overflow.store(0, Relaxed);
        self.total.store(0, Relaxed);
        self.sum.store(0, Relaxed);
    }
}

/// The `q`-quantile of a fixed-bucket distribution at bucket resolution:
/// the smallest bound whose cumulative count reaches `ceil(q·n)` where `n`
/// is the number of samples in the buckets (including overflow). Samples
/// in the overflow region report `u64::MAX`. Returns `None` when empty.
pub fn histogram_quantile(bounds: &[u64], counts: &[u64], overflow: u64, q: f64) -> Option<u64> {
    let n: u64 = counts.iter().sum::<u64>() + overflow;
    if n == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (&b, &c) in bounds.iter().zip(counts) {
        cum += c;
        if cum >= rank {
            return Some(b);
        }
    }
    Some(u64::MAX)
}

// --- rolling-window instruments ---------------------------------------------

/// One epoch of a rolling window: tagged with `epoch + 1` (0 = never used)
/// and claimed by CAS when the ring wraps onto it.
struct WindowSlot {
    epoch: AtomicU64,
    counts: [AtomicU64; MAX_BUCKETS],
    overflow: AtomicU64,
    total: AtomicU64,
    sum: AtomicU64,
}

impl WindowSlot {
    const fn new() -> Self {
        WindowSlot {
            epoch: AtomicU64::new(0),
            counts: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            overflow: AtomicU64::new(0),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn clear(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
        self.overflow.store(0, Relaxed);
        self.total.store(0, Relaxed);
        self.sum.store(0, Relaxed);
    }

    /// Ensures the slot is tagged for `epoch`, zeroing it if this thread
    /// wins the rotation CAS. Returns `false` if the slot is owned by a
    /// *newer* epoch (the recording thread is so stale its sample has
    /// already expired — drop it).
    fn claim(&self, epoch: u64) -> bool {
        loop {
            let tag = self.epoch.load(Relaxed);
            if tag == epoch {
                return true;
            }
            if tag > epoch {
                return false;
            }
            if self.epoch.compare_exchange(tag, epoch, Relaxed, Relaxed).is_ok() {
                // Winner zeroes the recycled slot. Samples recorded into the
                // old epoch between the CAS and the clear are lost — bounded,
                // rotation-instant-only loss, acceptable for a live window.
                self.clear();
                return true;
            }
        }
    }
}

/// An aggregated read of a rolling window.
pub struct WindowSnapshot {
    /// Window length the snapshot covers (µs).
    pub window_us: u64,
    /// Upper-inclusive bucket bounds (empty for windowed counters).
    pub bounds: &'static [u64],
    /// Per-bucket sample counts over the live epochs.
    pub counts: Vec<u64>,
    /// Samples above every bound.
    pub overflow: u64,
    /// Total samples in the window.
    pub total: u64,
    /// Sum of sample values in the window (wrapping).
    pub sum: u64,
}

impl WindowSnapshot {
    /// Bucket-resolution quantile estimate over the window; `None` when
    /// the window is empty. See [`histogram_quantile`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        histogram_quantile(self.bounds, &self.counts, self.overflow, q)
    }

    /// Mean sample value over the window; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }
}

/// A rolling-window histogram: a ring of [`WINDOW_SLOTS`] fixed-bucket
/// epochs keyed by the trace clock. Recording lands in the current epoch's
/// slot; reading aggregates every slot whose epoch is still inside the
/// window, so quantiles reflect roughly the last [`window_us`] of samples
/// (expiry granularity one epoch).
pub struct WindowedHistogram {
    name: &'static str,
    bounds: &'static [u64],
    slots: [WindowSlot; WINDOW_SLOTS],
}

impl WindowedHistogram {
    /// A new rolling-window histogram over `bounds`.
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        assert!(bounds.len() <= MAX_BUCKETS, "too many histogram buckets");
        WindowedHistogram { name, bounds, slots: [const { WindowSlot::new() }; WINDOW_SLOTS] }
    }

    /// Records one sample into the current epoch.
    #[inline]
    pub fn record(&self, value: u64) {
        let epoch = current_epoch();
        let slot = &self.slots[(epoch % WINDOW_SLOTS as u64) as usize];
        if !slot.claim(epoch) {
            return;
        }
        slot.total.fetch_add(1, Relaxed);
        slot.sum.fetch_add(value, Relaxed);
        for (i, &b) in self.bounds.iter().enumerate() {
            if value <= b {
                slot.counts[i].fetch_add(1, Relaxed);
                return;
            }
        }
        slot.overflow.fetch_add(1, Relaxed);
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Aggregates the live epochs into one [`WindowSnapshot`].
    pub fn window_snapshot(&self) -> WindowSnapshot {
        let now_epoch = current_epoch();
        let oldest_live = now_epoch.saturating_sub(WINDOW_SLOTS as u64 - 1);
        let mut counts = vec![0u64; self.bounds.len()];
        let mut overflow = 0u64;
        let mut total = 0u64;
        let mut sum = 0u64;
        for slot in &self.slots {
            let tag = slot.epoch.load(Relaxed);
            if tag < oldest_live || tag > now_epoch {
                continue;
            }
            // Buckets before total: a sample concurrent with this read may be
            // counted in total but not yet in a bucket, never the reverse.
            let slot_counts: Vec<u64> =
                self.bounds.iter().enumerate().map(|(i, _)| slot.counts[i].load(Relaxed)).collect();
            let slot_overflow = slot.overflow.load(Relaxed);
            if slot.epoch.load(Relaxed) != tag {
                continue; // rotated under us; its samples just expired
            }
            for (c, s) in counts.iter_mut().zip(&slot_counts) {
                *c += s;
            }
            overflow += slot_overflow;
            total += slot_counts.iter().sum::<u64>() + slot_overflow;
            sum = sum.wrapping_add(slot.sum.load(Relaxed));
        }
        WindowSnapshot { window_us: window_us(), bounds: self.bounds, counts, overflow, total, sum }
    }

    /// Resets every epoch (benchmark harnesses and tests).
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.epoch.store(0, Relaxed);
            slot.clear();
        }
    }
}

/// A rolling-window counter: the same epoch ring as [`WindowedHistogram`]
/// but holding only a per-epoch sum, for rates like cache hits over the
/// last window.
pub struct WindowedCounter {
    name: &'static str,
    slots: [WindowSlot; WINDOW_SLOTS],
}

impl WindowedCounter {
    /// A new rolling-window counter.
    pub const fn new(name: &'static str) -> Self {
        WindowedCounter { name, slots: [const { WindowSlot::new() }; WINDOW_SLOTS] }
    }

    /// Adds `n` to the current epoch.
    #[inline]
    pub fn add(&self, n: u64) {
        let epoch = current_epoch();
        let slot = &self.slots[(epoch % WINDOW_SLOTS as u64) as usize];
        if slot.claim(epoch) {
            slot.sum.fetch_add(n, Relaxed);
        }
    }

    /// Adds one to the current epoch.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The sum over the live epochs.
    pub fn windowed_value(&self) -> u64 {
        let now_epoch = current_epoch();
        let oldest_live = now_epoch.saturating_sub(WINDOW_SLOTS as u64 - 1);
        let mut sum = 0u64;
        for slot in &self.slots {
            let tag = slot.epoch.load(Relaxed);
            if tag >= oldest_live && tag <= now_epoch {
                sum = sum.wrapping_add(slot.sum.load(Relaxed));
            }
        }
        sum
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets every epoch.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.epoch.store(0, Relaxed);
            slot.clear();
        }
    }
}

// --- the well-known instruments of the training stack -----------------------

/// Floating-point operations executed by the GEMM engine (2·m·k·n per call).
pub static GEMM_FLOPS: Counter = Counter::new("gemm.flops");
/// GEMM engine invocations (each batch element of a `bmm` counts once).
pub static GEMM_CALLS: Counter = Counter::new("gemm.calls");
/// Distribution of FLOPs per GEMM call (bounds in FLOPs).
pub static GEMM_FLOPS_PER_CALL: Histogram =
    Histogram::new("gemm.flops_per_call", &[1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30]);
/// Autograd tape nodes allocated (leaves + ops, across all tapes).
pub static TAPE_NODES: Counter = Counter::new("tape.nodes");
/// Reverse-mode sweeps executed.
pub static TAPE_BACKWARD_RUNS: Counter = Counter::new("tape.backward.runs");
/// Nodes whose backward closure actually ran during those sweeps.
pub static TAPE_BACKWARD_NODES: Counter = Counter::new("tape.backward.nodes");
/// Live tensor buffer bytes (gauge; its peak is the max resident set of
/// tensor data).
pub static TENSOR_LIVE_BYTES: Gauge = Gauge::new("tensor.live_bytes");
/// Training mini-batches completed.
pub static TRAIN_BATCHES: Counter = Counter::new("train.batches");
/// Training sequences consumed.
pub static TRAIN_SEQUENCES: Counter = Counter::new("train.sequences");
/// Distribution of per-batch wall time (µs).
pub static TRAIN_BATCH_US: Histogram = Histogram::new(
    "train.batch_us",
    &[100, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000],
);
/// Users scored by the evaluator.
pub static EVAL_USERS: Counter = Counter::new("eval.users");
/// Optimiser updates applied (across all fit loops in the process).
pub static OPTIM_STEPS: Counter = Counter::new("optim.steps");
/// NaN/Inf anomalies observed on loss or gradients by the training-dynamics
/// sentinels.
pub static TRAIN_ANOMALIES: Counter = Counter::new("train.anomalies");
/// Tensor buffer allocations emitted into the sink by the mem tracer
/// (`SEQREC_OBS=mem=...`); counts *traced* allocations only, so under
/// `mem=N` sampling it is roughly 1/N of real allocations.
pub static MEM_TRACED_ALLOCS: Counter = Counter::new("mem.traced.allocs");
/// Tensor buffer frees emitted into the sink by the mem tracer. In a
/// complete trace this trails [`MEM_TRACED_ALLOCS`] by exactly the
/// buffers still live at the end.
pub static MEM_TRACED_FREES: Counter = Counter::new("mem.traced.frees");
/// Distribution of the global gradient L2 norm per optimiser step, in
/// milli-units (a reading of 1_000 = norm 1.0). Non-finite norms land in
/// the overflow bucket.
pub static GRAD_NORM_MILLI: Histogram = Histogram::new(
    "train.grad_norm_milli",
    &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
);
/// Distribution of the global update:parameter ratio per optimiser step, in
/// micro-units (a reading of 1_000 = ratio 1e-3, the healthy Adam regime).
pub static UPDATE_RATIO_MICRO: Histogram = Histogram::new(
    "train.update_ratio_micro",
    &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
);
/// Distribution of the per-step spread (max − min, milli-units) of shard
/// losses under data-parallel training. A wide spread means the shards see
/// systematically different data — the DP analogue of a skewed per-group
/// gradient norm.
pub static DP_SHARD_LOSS_SPREAD_MILLI: Histogram = Histogram::new(
    "train.dp_shard_loss_spread_milli",
    &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000],
);
/// Score requests handled by the serving stack.
pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Serve requests whose encoder state came from the user-state cache.
pub static SERVE_CACHE_HITS: Counter = Counter::new("serve.cache.hits");
/// Serve requests that had to re-encode the user's history.
pub static SERVE_CACHE_MISSES: Counter = Counter::new("serve.cache.misses");
/// Forward batches executed by the scoring service.
pub static SERVE_BATCHES: Counter = Counter::new("serve.batches");
/// Distribution of per-serve-batch wall time (µs), model forward + top-K.
pub static SERVE_BATCH_US: Histogram = Histogram::new(
    "serve.batch_us",
    &[100, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000],
);
/// Requests that failed (client gone before reply, or scoring error).
pub static SERVE_ERRORS: Counter = Counter::new("serve.errors");
/// Queued-but-unserved requests (level at enqueue/admit; peak = deepest
/// backlog).
pub static SERVE_QUEUE: Gauge = Gauge::new("serve.queue");
/// Requests admitted to a batch but not yet replied to.
pub static SERVE_IN_FLIGHT: Gauge = Gauge::new("serve.in_flight");

/// Bucket bounds shared by the cumulative and windowed serve-latency
/// histograms (µs).
pub const SERVE_LATENCY_BOUNDS: &[u64] = &[
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 500_000, 1_000_000,
    5_000_000,
];
/// Bucket bounds for queue-depth histograms (requests waiting).
pub const SERVE_QUEUE_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
/// Bucket bounds for batch-occupancy histograms (percent of `max_batch`).
pub const SERVE_OCCUPANCY_BOUNDS: &[u64] = &[1, 5, 10, 25, 50, 75, 90, 100];

/// Distribution of client-observed request latency (µs), enqueue → reply.
pub static SERVE_LATENCY_US: Histogram = Histogram::new("serve.latency_us", SERVE_LATENCY_BOUNDS);
/// Rolling-window view of [`SERVE_LATENCY_US`]: live p50/p95/p99.
pub static SERVE_LATENCY_US_WINDOW: WindowedHistogram =
    WindowedHistogram::new("serve.latency_us.window", SERVE_LATENCY_BOUNDS);
/// Distribution of queue depth observed at batch admission.
pub static SERVE_QUEUE_DEPTH: Histogram = Histogram::new("serve.queue_depth", SERVE_QUEUE_BOUNDS);
/// Rolling-window view of [`SERVE_QUEUE_DEPTH`].
pub static SERVE_QUEUE_DEPTH_WINDOW: WindowedHistogram =
    WindowedHistogram::new("serve.queue_depth.window", SERVE_QUEUE_BOUNDS);
/// Distribution of batch occupancy (batch size as a percent of
/// `max_batch`) per executed serve batch.
pub static SERVE_BATCH_OCCUPANCY_PCT: Histogram =
    Histogram::new("serve.batch_occupancy_pct", SERVE_OCCUPANCY_BOUNDS);
/// Rolling-window view of [`SERVE_BATCH_OCCUPANCY_PCT`].
pub static SERVE_BATCH_OCCUPANCY_PCT_WINDOW: WindowedHistogram =
    WindowedHistogram::new("serve.batch_occupancy_pct.window", SERVE_OCCUPANCY_BOUNDS);
/// Rolling-window cache hits (live hit rate = hits / (hits + misses)).
pub static SERVE_CACHE_HITS_WINDOW: WindowedCounter =
    WindowedCounter::new("serve.cache.hits.window");
/// Rolling-window cache misses.
pub static SERVE_CACHE_MISSES_WINDOW: WindowedCounter =
    WindowedCounter::new("serve.cache.misses.window");

/// Records a non-negative float into a scaled histogram: `value * scale`,
/// saturating, with NaN/Inf mapped to `u64::MAX` (the overflow bucket).
pub fn record_scaled(h: &Histogram, value: f64, scale: f64) {
    let scaled = value * scale;
    if scaled.is_finite() && scaled >= 0.0 {
        h.record(scaled.min(u64::MAX as f64) as u64);
    } else {
        h.record(u64::MAX);
    }
}

/// One metric's value at snapshot time.
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge's current level and high-water mark.
    Gauge {
        /// Current level.
        current: i64,
        /// High-water mark.
        peak: i64,
    },
    /// A histogram's buckets.
    Histogram {
        /// Upper-inclusive bucket bounds.
        bounds: &'static [u64],
        /// Per-bucket sample counts.
        counts: Vec<u64>,
        /// Samples above every bound.
        overflow: u64,
        /// Total samples recorded (may exceed `sum(counts) + overflow`
        /// under concurrent recording; never less).
        total: u64,
        /// Sum of recorded values (wrapping).
        sum: u64,
    },
    /// A rolling-window histogram's live epochs.
    Window {
        /// Window length covered (µs).
        window_us: u64,
        /// Upper-inclusive bucket bounds.
        bounds: &'static [u64],
        /// Per-bucket sample counts over the window.
        counts: Vec<u64>,
        /// Samples above every bound.
        overflow: u64,
        /// Total samples in the window.
        total: u64,
        /// Sum of sample values in the window (wrapping).
        sum: u64,
    },
    /// A rolling-window counter's live sum.
    WindowCount {
        /// Window length covered (µs).
        window_us: u64,
        /// Sum over the window.
        value: u64,
    },
}

/// A named metric reading.
pub struct MetricReading {
    /// Registry name.
    pub name: &'static str,
    /// The value read.
    pub value: MetricValue,
}

fn counters() -> [&'static Counter; 17] {
    [
        &GEMM_FLOPS,
        &GEMM_CALLS,
        &TAPE_NODES,
        &TAPE_BACKWARD_RUNS,
        &TAPE_BACKWARD_NODES,
        &TRAIN_BATCHES,
        &TRAIN_SEQUENCES,
        &EVAL_USERS,
        &OPTIM_STEPS,
        &TRAIN_ANOMALIES,
        &MEM_TRACED_ALLOCS,
        &MEM_TRACED_FREES,
        &SERVE_REQUESTS,
        &SERVE_CACHE_HITS,
        &SERVE_CACHE_MISSES,
        &SERVE_BATCHES,
        &SERVE_ERRORS,
    ]
}

fn gauges() -> [&'static Gauge; 3] {
    [&TENSOR_LIVE_BYTES, &SERVE_QUEUE, &SERVE_IN_FLIGHT]
}

fn histograms() -> [&'static Histogram; 9] {
    [
        &GEMM_FLOPS_PER_CALL,
        &TRAIN_BATCH_US,
        &GRAD_NORM_MILLI,
        &UPDATE_RATIO_MICRO,
        &DP_SHARD_LOSS_SPREAD_MILLI,
        &SERVE_BATCH_US,
        &SERVE_LATENCY_US,
        &SERVE_QUEUE_DEPTH,
        &SERVE_BATCH_OCCUPANCY_PCT,
    ]
}

fn windowed_histograms() -> [&'static WindowedHistogram; 3] {
    [&SERVE_LATENCY_US_WINDOW, &SERVE_QUEUE_DEPTH_WINDOW, &SERVE_BATCH_OCCUPANCY_PCT_WINDOW]
}

fn windowed_counters() -> [&'static WindowedCounter; 2] {
    [&SERVE_CACHE_HITS_WINDOW, &SERVE_CACHE_MISSES_WINDOW]
}

/// Reads every registered metric.
pub fn snapshot() -> Vec<MetricReading> {
    let mut out = Vec::new();
    for c in counters() {
        out.push(MetricReading { name: c.name(), value: MetricValue::Counter(c.get()) });
    }
    for g in gauges() {
        out.push(MetricReading {
            name: g.name(),
            value: MetricValue::Gauge { current: g.get(), peak: g.peak() },
        });
    }
    for h in histograms() {
        // Buckets before total: never observe sum(buckets) > total.
        let counts = h.counts();
        let overflow = h.overflow();
        out.push(MetricReading {
            name: h.name(),
            value: MetricValue::Histogram {
                bounds: h.bounds(),
                counts,
                overflow,
                total: h.total(),
                sum: h.sum(),
            },
        });
    }
    for w in windowed_histograms() {
        let s = w.window_snapshot();
        out.push(MetricReading {
            name: w.name(),
            value: MetricValue::Window {
                window_us: s.window_us,
                bounds: s.bounds,
                counts: s.counts,
                overflow: s.overflow,
                total: s.total,
                sum: s.sum,
            },
        });
    }
    for w in windowed_counters() {
        out.push(MetricReading {
            name: w.name(),
            value: MetricValue::WindowCount { window_us: window_us(), value: w.windowed_value() },
        });
    }
    out
}

/// Resets every registered metric to zero (benchmark harnesses isolating
/// per-phase readings; never called from library code).
pub fn reset_all() {
    for c in counters() {
        c.reset();
    }
    for g in gauges() {
        g.reset();
    }
    for h in histograms() {
        h.reset();
    }
    for w in windowed_histograms() {
        w.reset();
    }
    for w in windowed_counters() {
        w.reset();
    }
}

/// Serialises a snapshot into the installed sink as counter events (gauges
/// contribute `<name>.current` / `<name>.peak`; histograms one event per
/// bucket plus `<name>.overflow`).
pub fn emit_snapshot() {
    if !sink::enabled() {
        return;
    }
    let ts = sink::now_us();
    let emit = |name: &str, value: u64| {
        sink::dispatch(&crate::Event::Counter { name, value, ts_us: ts });
    };
    for reading in snapshot() {
        match reading.value {
            MetricValue::Counter(v) => emit(reading.name, v),
            MetricValue::Gauge { current, peak } => {
                emit(&format!("{}.current", reading.name), current.max(0) as u64);
                emit(&format!("{}.peak", reading.name), peak.max(0) as u64);
            }
            MetricValue::Histogram { bounds, counts, overflow, total, sum } => {
                for (b, c) in bounds.iter().zip(&counts) {
                    emit(&format!("{}.le_{b}", reading.name), *c);
                }
                emit(&format!("{}.overflow", reading.name), overflow);
                emit(&format!("{}.total", reading.name), total);
                emit(&format!("{}.sum", reading.name), sum);
            }
            MetricValue::Window { window_us, bounds, counts, overflow, total, sum } => {
                let snap = WindowSnapshot { window_us, bounds, counts, overflow, total, sum };
                for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                    if let Some(v) = snap.quantile(q) {
                        emit(&format!("{}.{label}", reading.name), v);
                    }
                }
                emit(&format!("{}.count", reading.name), snap.total);
            }
            MetricValue::WindowCount { value, .. } => emit(reading.name, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let c = Counter::new("t");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_overflow_wraps() {
        let c = Counter::new("t");
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.add(3); // wraps past zero
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let g = Gauge::new("t");
        g.add(100);
        g.add(-40);
        g.add(20);
        assert_eq!(g.get(), 80);
        assert_eq!(g.peak(), 100);
        g.add(50);
        assert_eq!(g.peak(), 130);
    }

    #[test]
    fn gauge_can_go_negative_without_moving_peak() {
        let g = Gauge::new("t");
        g.add(-5);
        assert_eq!(g.get(), -5);
        assert_eq!(g.peak(), 0);
    }

    #[test]
    fn histogram_bounds_are_upper_inclusive() {
        static H: Histogram = Histogram::new("t", &[10, 100]);
        H.reset();
        H.record(0); // <= 10 -> bucket 0
        H.record(10); // boundary value stays in bucket 0
        H.record(11); // first value of bucket 1
        H.record(100); // boundary value stays in bucket 1
        H.record(101); // above every bound -> overflow
        assert_eq!(H.counts(), vec![2, 2]);
        assert_eq!(H.overflow(), 1);
        assert_eq!(H.total(), 5);
    }

    #[test]
    fn record_scaled_maps_nonfinite_to_overflow() {
        static H: Histogram = Histogram::new("t", &[10, 1_000]);
        H.reset();
        record_scaled(&H, 0.005, 1_000.0); // 5 milli → bucket 0
        record_scaled(&H, 0.5, 1_000.0); // 500 milli → bucket 1
        record_scaled(&H, f64::NAN, 1_000.0);
        record_scaled(&H, f64::INFINITY, 1_000.0);
        record_scaled(&H, -1.0, 1_000.0); // negative norms cannot happen; overflow
        assert_eq!(H.counts(), vec![1, 1]);
        assert_eq!(H.overflow(), 3);
        H.reset();
    }

    #[test]
    fn snapshot_enumerates_every_registered_metric() {
        let names: Vec<&str> = snapshot().iter().map(|r| r.name).collect();
        for expected in [
            "gemm.flops",
            "tape.nodes",
            "tensor.live_bytes",
            "train.batches",
            "mem.traced.allocs",
            "mem.traced.frees",
            "gemm.flops_per_call",
            "serve.latency_us",
            "serve.latency_us.window",
            "serve.queue_depth.window",
            "serve.batch_occupancy_pct.window",
            "serve.cache.hits.window",
            "serve.queue",
            "serve.in_flight",
        ] {
            assert!(names.contains(&expected), "snapshot missing {expected}: {names:?}");
        }
    }

    #[test]
    fn histogram_tracks_total_and_sum() {
        static H: Histogram = Histogram::new("t", &[10, 100]);
        H.reset();
        H.record(5);
        H.record(50);
        H.record(500);
        assert_eq!(H.total(), 3);
        assert_eq!(H.sum(), 555);
        H.reset();
        assert_eq!(H.total(), 0);
        assert_eq!(H.sum(), 0);
    }

    #[test]
    fn quantile_picks_smallest_covering_bound() {
        static H: Histogram = Histogram::new("t", &[10, 100, 1_000]);
        H.reset();
        for _ in 0..90 {
            H.record(5); // bucket 0
        }
        for _ in 0..9 {
            H.record(50); // bucket 1
        }
        H.record(5_000); // overflow
        assert_eq!(H.quantile(0.5), Some(10));
        assert_eq!(H.quantile(0.9), Some(10));
        assert_eq!(H.quantile(0.95), Some(100));
        assert_eq!(H.quantile(0.999), Some(u64::MAX));
        H.reset();
        assert_eq!(H.quantile(0.5), None);
    }

    #[test]
    fn quantile_of_single_sample_is_its_bound() {
        assert_eq!(histogram_quantile(&[10, 100], &[0, 1], 0, 0.0), Some(100));
        assert_eq!(histogram_quantile(&[10, 100], &[0, 1], 0, 1.0), Some(100));
        assert_eq!(histogram_quantile(&[10, 100], &[0, 0], 0, 0.5), None);
    }

    #[test]
    fn windowed_histogram_sees_recent_samples() {
        static W: WindowedHistogram = WindowedHistogram::new("t", &[10, 100, 1_000]);
        W.reset();
        for v in [5, 50, 500, 5_000] {
            W.record(v);
        }
        let s = W.window_snapshot();
        assert_eq!(s.total, 4);
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.sum, 5_555);
        assert_eq!(s.quantile(0.5), Some(100));
        assert_eq!(s.mean(), Some(5_555.0 / 4.0));
        W.reset();
        assert_eq!(W.window_snapshot().total, 0);
    }

    #[test]
    fn windowed_counter_sums_recent_adds() {
        static W: WindowedCounter = WindowedCounter::new("t");
        W.reset();
        W.add(3);
        W.incr();
        assert_eq!(W.windowed_value(), 4);
        W.reset();
        assert_eq!(W.windowed_value(), 0);
    }

    #[test]
    fn window_slot_rejects_stale_epochs() {
        let slot = WindowSlot::new();
        assert!(slot.claim(5));
        slot.sum.fetch_add(7, Relaxed);
        assert!(slot.claim(5)); // same epoch keeps data
        assert_eq!(slot.sum.load(Relaxed), 7);
        assert!(!slot.claim(3)); // older epoch is refused
        assert!(slot.claim(9)); // newer epoch recycles the slot
        assert_eq!(slot.sum.load(Relaxed), 0);
    }

    #[test]
    fn set_window_clamps_to_slot_granularity() {
        let before = window_us();
        set_window_secs(0.0);
        assert_eq!(window_us(), WINDOW_SLOTS as u64 * 1_000);
        set_window_secs(10.0);
        assert_eq!(window_us(), 10_000_000);
        WINDOW_US.store(before, Relaxed);
    }
}
