//! The process-global metrics registry.
//!
//! Three primitive types, all updated with relaxed atomics so probes stay
//! cheap enough to leave compiled into hot paths:
//!
//! * [`Counter`] — a monotonically increasing `u64`. Overflow **wraps**
//!   (two's-complement `fetch_add` semantics): a counter that has run for
//!   long enough to wrap is still useful as a delta source, and saturating
//!   would cost a compare-exchange loop per probe.
//! * [`Gauge`] — a signed level (e.g. live tensor bytes) that also tracks
//!   its high-water mark. The peak is updated with `fetch_max`, so under
//!   concurrent mutation it is a close approximation, not a serialised
//!   maximum.
//! * [`Histogram`] — fixed upper-inclusive buckets: a sample lands in the
//!   first bucket whose bound is `>= value`, or in the overflow bucket when
//!   it exceeds every bound.
//!
//! The well-known instruments of the training stack are declared here as
//! statics ([`GEMM_FLOPS`], [`TAPE_NODES`], …) and enumerated by
//! [`snapshot`], which is also what sinks serialise on flush.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

use crate::sink;

/// Maximum number of explicit histogram buckets (excluding overflow).
pub const MAX_BUCKETS: usize = 24;

/// A wrapping, monotonically increasing event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter starting at zero.
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// Adds `n`. Wraps on overflow (see the module docs).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero (benchmark harnesses and tests).
    pub fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// A signed level with an approximate high-water mark.
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// A new gauge at zero.
    pub const fn new(name: &'static str) -> Self {
        Gauge { name, value: AtomicI64::new(0), peak: AtomicI64::new(0) }
    }

    /// Moves the level by `delta` (negative to decrease); a positive move
    /// also advances the peak.
    #[inline]
    pub fn add(&self, delta: i64) {
        let new = self.value.fetch_add(delta, Relaxed).wrapping_add(delta);
        if delta > 0 {
            self.peak.fetch_max(new, Relaxed);
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }

    /// The high-water mark.
    pub fn peak(&self) -> i64 {
        self.peak.load(Relaxed)
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets level and peak to zero.
    pub fn reset(&self) {
        self.value.store(0, Relaxed);
        self.peak.store(0, Relaxed);
    }
}

/// A fixed-bucket histogram with upper-inclusive bucket bounds.
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    counts: [AtomicU64; MAX_BUCKETS],
    overflow: AtomicU64,
}

impl Histogram {
    /// A new histogram over `bounds` (ascending, at most [`MAX_BUCKETS`]).
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        assert!(bounds.len() <= MAX_BUCKETS, "too many histogram buckets");
        Histogram {
            name,
            bounds,
            counts: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            overflow: AtomicU64::new(0),
        }
    }

    /// Records one sample: the first bucket with `bound >= value`, or the
    /// overflow bucket.
    #[inline]
    pub fn record(&self, value: u64) {
        for (i, &b) in self.bounds.iter().enumerate() {
            if value <= b {
                self.counts[i].fetch_add(1, Relaxed);
                return;
            }
        }
        self.overflow.fetch_add(1, Relaxed);
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts, in bound order.
    pub fn counts(&self) -> Vec<u64> {
        self.bounds.iter().enumerate().map(|(i, _)| self.counts[i].load(Relaxed)).collect()
    }

    /// Samples above every bound.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Relaxed)
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum::<u64>() + self.overflow()
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets all buckets.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
        self.overflow.store(0, Relaxed);
    }
}

// --- the well-known instruments of the training stack -----------------------

/// Floating-point operations executed by the GEMM engine (2·m·k·n per call).
pub static GEMM_FLOPS: Counter = Counter::new("gemm.flops");
/// GEMM engine invocations (each batch element of a `bmm` counts once).
pub static GEMM_CALLS: Counter = Counter::new("gemm.calls");
/// Distribution of FLOPs per GEMM call (bounds in FLOPs).
pub static GEMM_FLOPS_PER_CALL: Histogram =
    Histogram::new("gemm.flops_per_call", &[1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30]);
/// Autograd tape nodes allocated (leaves + ops, across all tapes).
pub static TAPE_NODES: Counter = Counter::new("tape.nodes");
/// Reverse-mode sweeps executed.
pub static TAPE_BACKWARD_RUNS: Counter = Counter::new("tape.backward.runs");
/// Nodes whose backward closure actually ran during those sweeps.
pub static TAPE_BACKWARD_NODES: Counter = Counter::new("tape.backward.nodes");
/// Live tensor buffer bytes (gauge; its peak is the max resident set of
/// tensor data).
pub static TENSOR_LIVE_BYTES: Gauge = Gauge::new("tensor.live_bytes");
/// Training mini-batches completed.
pub static TRAIN_BATCHES: Counter = Counter::new("train.batches");
/// Training sequences consumed.
pub static TRAIN_SEQUENCES: Counter = Counter::new("train.sequences");
/// Distribution of per-batch wall time (µs).
pub static TRAIN_BATCH_US: Histogram = Histogram::new(
    "train.batch_us",
    &[100, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000],
);
/// Users scored by the evaluator.
pub static EVAL_USERS: Counter = Counter::new("eval.users");
/// Optimiser updates applied (across all fit loops in the process).
pub static OPTIM_STEPS: Counter = Counter::new("optim.steps");
/// NaN/Inf anomalies observed on loss or gradients by the training-dynamics
/// sentinels.
pub static TRAIN_ANOMALIES: Counter = Counter::new("train.anomalies");
/// Distribution of the global gradient L2 norm per optimiser step, in
/// milli-units (a reading of 1_000 = norm 1.0). Non-finite norms land in
/// the overflow bucket.
pub static GRAD_NORM_MILLI: Histogram = Histogram::new(
    "train.grad_norm_milli",
    &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
);
/// Distribution of the global update:parameter ratio per optimiser step, in
/// micro-units (a reading of 1_000 = ratio 1e-3, the healthy Adam regime).
pub static UPDATE_RATIO_MICRO: Histogram = Histogram::new(
    "train.update_ratio_micro",
    &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
);
/// Distribution of the per-step spread (max − min, milli-units) of shard
/// losses under data-parallel training. A wide spread means the shards see
/// systematically different data — the DP analogue of a skewed per-group
/// gradient norm.
pub static DP_SHARD_LOSS_SPREAD_MILLI: Histogram = Histogram::new(
    "train.dp_shard_loss_spread_milli",
    &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000],
);
/// Score requests handled by the serving stack.
pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Serve requests whose encoder state came from the user-state cache.
pub static SERVE_CACHE_HITS: Counter = Counter::new("serve.cache.hits");
/// Serve requests that had to re-encode the user's history.
pub static SERVE_CACHE_MISSES: Counter = Counter::new("serve.cache.misses");
/// Forward batches executed by the scoring service.
pub static SERVE_BATCHES: Counter = Counter::new("serve.batches");
/// Distribution of per-serve-batch wall time (µs), model forward + top-K.
pub static SERVE_BATCH_US: Histogram = Histogram::new(
    "serve.batch_us",
    &[100, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000],
);

/// Records a non-negative float into a scaled histogram: `value * scale`,
/// saturating, with NaN/Inf mapped to `u64::MAX` (the overflow bucket).
pub fn record_scaled(h: &Histogram, value: f64, scale: f64) {
    let scaled = value * scale;
    if scaled.is_finite() && scaled >= 0.0 {
        h.record(scaled.min(u64::MAX as f64) as u64);
    } else {
        h.record(u64::MAX);
    }
}

/// One metric's value at snapshot time.
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge's current level and high-water mark.
    Gauge {
        /// Current level.
        current: i64,
        /// High-water mark.
        peak: i64,
    },
    /// A histogram's buckets.
    Histogram {
        /// Upper-inclusive bucket bounds.
        bounds: &'static [u64],
        /// Per-bucket sample counts.
        counts: Vec<u64>,
        /// Samples above every bound.
        overflow: u64,
    },
}

/// A named metric reading.
pub struct MetricReading {
    /// Registry name.
    pub name: &'static str,
    /// The value read.
    pub value: MetricValue,
}

fn counters() -> [&'static Counter; 14] {
    [
        &GEMM_FLOPS,
        &GEMM_CALLS,
        &TAPE_NODES,
        &TAPE_BACKWARD_RUNS,
        &TAPE_BACKWARD_NODES,
        &TRAIN_BATCHES,
        &TRAIN_SEQUENCES,
        &EVAL_USERS,
        &OPTIM_STEPS,
        &TRAIN_ANOMALIES,
        &SERVE_REQUESTS,
        &SERVE_CACHE_HITS,
        &SERVE_CACHE_MISSES,
        &SERVE_BATCHES,
    ]
}

fn gauges() -> [&'static Gauge; 1] {
    [&TENSOR_LIVE_BYTES]
}

fn histograms() -> [&'static Histogram; 6] {
    [
        &GEMM_FLOPS_PER_CALL,
        &TRAIN_BATCH_US,
        &GRAD_NORM_MILLI,
        &UPDATE_RATIO_MICRO,
        &DP_SHARD_LOSS_SPREAD_MILLI,
        &SERVE_BATCH_US,
    ]
}

/// Reads every registered metric.
pub fn snapshot() -> Vec<MetricReading> {
    let mut out = Vec::new();
    for c in counters() {
        out.push(MetricReading { name: c.name(), value: MetricValue::Counter(c.get()) });
    }
    for g in gauges() {
        out.push(MetricReading {
            name: g.name(),
            value: MetricValue::Gauge { current: g.get(), peak: g.peak() },
        });
    }
    for h in histograms() {
        out.push(MetricReading {
            name: h.name(),
            value: MetricValue::Histogram {
                bounds: h.bounds(),
                counts: h.counts(),
                overflow: h.overflow(),
            },
        });
    }
    out
}

/// Resets every registered metric to zero (benchmark harnesses isolating
/// per-phase readings; never called from library code).
pub fn reset_all() {
    for c in counters() {
        c.reset();
    }
    for g in gauges() {
        g.reset();
    }
    for h in histograms() {
        h.reset();
    }
}

/// Serialises a snapshot into the installed sink as counter events (gauges
/// contribute `<name>.current` / `<name>.peak`; histograms one event per
/// bucket plus `<name>.overflow`).
pub fn emit_snapshot() {
    if !sink::enabled() {
        return;
    }
    let ts = sink::now_us();
    let emit = |name: &str, value: u64| {
        sink::dispatch(&crate::Event::Counter { name, value, ts_us: ts });
    };
    for reading in snapshot() {
        match reading.value {
            MetricValue::Counter(v) => emit(reading.name, v),
            MetricValue::Gauge { current, peak } => {
                emit(&format!("{}.current", reading.name), current.max(0) as u64);
                emit(&format!("{}.peak", reading.name), peak.max(0) as u64);
            }
            MetricValue::Histogram { bounds, counts, overflow } => {
                for (b, c) in bounds.iter().zip(&counts) {
                    emit(&format!("{}.le_{b}", reading.name), *c);
                }
                emit(&format!("{}.overflow", reading.name), overflow);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let c = Counter::new("t");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_overflow_wraps() {
        let c = Counter::new("t");
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.add(3); // wraps past zero
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let g = Gauge::new("t");
        g.add(100);
        g.add(-40);
        g.add(20);
        assert_eq!(g.get(), 80);
        assert_eq!(g.peak(), 100);
        g.add(50);
        assert_eq!(g.peak(), 130);
    }

    #[test]
    fn gauge_can_go_negative_without_moving_peak() {
        let g = Gauge::new("t");
        g.add(-5);
        assert_eq!(g.get(), -5);
        assert_eq!(g.peak(), 0);
    }

    #[test]
    fn histogram_bounds_are_upper_inclusive() {
        static H: Histogram = Histogram::new("t", &[10, 100]);
        H.reset();
        H.record(0); // <= 10 -> bucket 0
        H.record(10); // boundary value stays in bucket 0
        H.record(11); // first value of bucket 1
        H.record(100); // boundary value stays in bucket 1
        H.record(101); // above every bound -> overflow
        assert_eq!(H.counts(), vec![2, 2]);
        assert_eq!(H.overflow(), 1);
        assert_eq!(H.total(), 5);
    }

    #[test]
    fn record_scaled_maps_nonfinite_to_overflow() {
        static H: Histogram = Histogram::new("t", &[10, 1_000]);
        H.reset();
        record_scaled(&H, 0.005, 1_000.0); // 5 milli → bucket 0
        record_scaled(&H, 0.5, 1_000.0); // 500 milli → bucket 1
        record_scaled(&H, f64::NAN, 1_000.0);
        record_scaled(&H, f64::INFINITY, 1_000.0);
        record_scaled(&H, -1.0, 1_000.0); // negative norms cannot happen; overflow
        assert_eq!(H.counts(), vec![1, 1]);
        assert_eq!(H.overflow(), 3);
        H.reset();
    }

    #[test]
    fn snapshot_enumerates_every_registered_metric() {
        let names: Vec<&str> = snapshot().iter().map(|r| r.name).collect();
        for expected in [
            "gemm.flops",
            "tape.nodes",
            "tensor.live_bytes",
            "train.batches",
            "gemm.flops_per_call",
        ] {
            assert!(names.contains(&expected), "snapshot missing {expected}: {names:?}");
        }
    }
}
