//! Event sinks: where spans, logs and metric snapshots go.
//!
//! One sink is installed process-wide ([`install`] / [`uninstall`]); a
//! relaxed [`enabled`] flag lets every probe site skip all work with a
//! single atomic load when nothing is listening. Timestamps are
//! microseconds since the first telemetry event of the process (the *trace
//! epoch*), and every OS thread gets a small stable `tid` so traces from
//! rayon workers interleave cleanly.

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json;

/// A telemetry event. Borrowed fields keep dispatch allocation-free for
/// span events.
pub enum Event<'a> {
    /// A span opened (`B` in Chrome trace terms).
    SpanBegin {
        /// Static span name.
        name: &'static str,
        /// Emitting thread.
        tid: u32,
        /// Microseconds since the trace epoch.
        ts_us: u64,
        /// Nesting depth on that thread (0 = top level).
        depth: u32,
    },
    /// A span closed (`E` in Chrome trace terms).
    SpanEnd {
        /// Static span name.
        name: &'static str,
        /// Emitting thread.
        tid: u32,
        /// Microseconds since the trace epoch.
        ts_us: u64,
        /// Wall-clock duration of the span in microseconds.
        dur_us: u64,
        /// Nesting depth on that thread (matches the begin event).
        depth: u32,
    },
    /// A console log line.
    Log {
        /// `LEVEL_*` constant.
        level: u8,
        /// The formatted message.
        msg: &'a str,
        /// Emitting thread.
        tid: u32,
        /// Microseconds since the trace epoch.
        ts_us: u64,
    },
    /// One metric reading from a snapshot flush.
    Counter {
        /// Metric name (flattened: gauges/histograms expand to several).
        name: &'a str,
        /// The reading.
        value: u64,
        /// Microseconds since the trace epoch.
        ts_us: u64,
    },
    /// One completed stage of a serve request's lifecycle
    /// (enqueue → batch → encode → score → topk → reply). Stages of one
    /// request share `req`, so viewers and `seqrec-prof` can correlate
    /// them across lanes.
    Request {
        /// Monotonic request id assigned by the client handle.
        req: u64,
        /// User the request scored.
        user: u64,
        /// Stage name (`"enqueue"`, `"batch"`, `"encode"`, …).
        stage: &'static str,
        /// Thread the stage ran on.
        tid: u32,
        /// Stage start, microseconds since the trace epoch.
        ts_us: u64,
        /// Stage duration in microseconds.
        dur_us: u64,
    },
    /// A tensor buffer came to life (`N` object event in Chrome trace
    /// terms, paired with a `C` counter sample of `tensor.live_bytes`).
    MemAlloc {
        /// Monotonic buffer id; the matching [`Event::MemFree`] carries
        /// the same id.
        id: u64,
        /// Buffer size in bytes.
        bytes: u64,
        /// `tensor.live_bytes` level just after the allocation (signed:
        /// metric resets mid-run can drive it below zero).
        live_bytes: i64,
        /// Allocating thread.
        tid: u32,
        /// Microseconds since the trace epoch.
        ts_us: u64,
        /// The allocating thread's open-span path (`;`-joined, outermost
        /// first; empty outside all spans).
        path: &'a str,
    },
    /// A tensor buffer was dropped (`D` object event in Chrome trace
    /// terms).
    MemFree {
        /// Buffer id assigned by the matching [`Event::MemAlloc`].
        id: u64,
        /// Buffer size in bytes.
        bytes: u64,
        /// `tensor.live_bytes` level just after the free.
        live_bytes: i64,
        /// Freeing thread.
        tid: u32,
        /// Microseconds since the trace epoch.
        ts_us: u64,
    },
}

/// A destination for telemetry events. Implementations must be
/// `Send + Sync`: events arrive from every thread, including rayon
/// workers inside the GEMM engine.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn event(&self, ev: &Event<'_>);
    /// Flushes buffered output.
    fn flush(&self) {}
    /// Finalises the output (a Chrome trace writes its closing `]`).
    /// Called exactly once, by [`uninstall`].
    fn finish(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static DETAIL: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);
/// Bumped (under the `SINK` lock) every time the installed sink changes,
/// so per-thread caches know when their `Arc` is stale.
static SINK_GEN: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static THREAD_NAMES: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());

thread_local! {
    /// Per-thread cache of the installed sink, keyed by [`SINK_GEN`]. Span
    /// events fire from every pool worker at once; funnelling them all
    /// through the `SINK` mutex would serialise the workers, so
    /// [`dispatch`] only touches the lock when the generation moved.
    static SINK_CACHE: RefCell<(u64, Option<Arc<dyn Sink>>)> =
        const { RefCell::new((0, None)) };
}

thread_local! {
    static TID: u32 = {
        let t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        // Record the OS thread's name once, so trace viewers can label the
        // lane ("main", rayon worker names, ...) instead of showing a bare
        // number.
        let label = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{t}"), str::to_string);
        THREAD_NAMES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((t, label));
        t
    };
}

/// The human label registered for a telemetry thread id: the OS thread
/// name when it had one, otherwise `thread-<tid>`. Tid 0 is the synthetic
/// metrics lane.
pub fn thread_label(tid: u32) -> String {
    if tid == 0 {
        return "metrics".to_string();
    }
    THREAD_NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .find(|(t, _)| *t == tid)
        .map_or_else(|| format!("thread-{tid}"), |(_, name)| name.clone())
}

/// True when a sink is installed. One relaxed load — this is the gate
/// every [`crate::span!`] site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True when per-kernel detail spans were requested in addition to a sink.
#[inline]
pub fn detail() -> bool {
    DETAIL.load(Ordering::Relaxed)
}

/// Enables/disables per-kernel detail spans (normally set by
/// [`crate::init_from_env`] from the `detail` directive).
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Relaxed);
}

/// Microseconds since the trace epoch (the first call in the process).
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// The calling thread's stable telemetry id.
pub fn tid() -> u32 {
    TID.with(|t| *t)
}

fn sink_slot() -> std::sync::MutexGuard<'static, Option<Arc<dyn Sink>>> {
    // A sink that panicked mid-event must not silence the rest of the run.
    SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs `sink` process-wide, finalising any previous one.
pub fn install(sink: Arc<dyn Sink>) {
    let mut slot = sink_slot();
    if let Some(old) = slot.take() {
        old.flush();
        old.finish();
    }
    *slot = Some(sink);
    SINK_GEN.fetch_add(1, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed sink after flushing and finalising it. Returns
/// the sink so tests can inspect it.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    let mut slot = sink_slot();
    ENABLED.store(false, Ordering::Release);
    let old = slot.take();
    SINK_GEN.fetch_add(1, Ordering::Release);
    if let Some(s) = &old {
        s.flush();
        s.finish();
    }
    old
}

/// Sends one event to the installed sink, if any.
///
/// Fast path: one relaxed load ([`enabled`]), one acquire load (the sink
/// generation), one thread-local read — no lock and no refcount traffic,
/// so concurrent pool workers never serialise here. The `SINK` mutex is
/// taken only when the generation moved, i.e. once per thread per
/// [`install`]/[`uninstall`]. A thread mid-event when the sink is swapped
/// may deliver that event to the outgoing sink — the same window the old
/// lock-then-clone sequence had; sinks already tolerate events after
/// `finish`.
pub fn dispatch(ev: &Event<'_>) {
    if !enabled() {
        return;
    }
    let generation = SINK_GEN.load(Ordering::Acquire);
    SINK_CACHE.with(|cache| {
        if cache.borrow().0 != generation {
            // Re-read the generation while holding the lock (every bump
            // happens under it), so the cached pair is consistent even
            // when an install races this refresh.
            let slot = sink_slot();
            *cache.borrow_mut() = (SINK_GEN.load(Ordering::Acquire), slot.clone());
        }
        if let Some(s) = &cache.borrow().1 {
            s.event(ev);
        }
    });
}

/// Flushes the installed sink's buffers without uninstalling it.
pub fn flush() {
    let sink = sink_slot().clone();
    if let Some(s) = sink {
        s.flush();
    }
}

// --- fan-out -----------------------------------------------------------------

/// Forwards every event to several sinks (e.g. JSONL + Chrome trace at
/// once).
pub struct Fanout {
    sinks: Vec<Arc<dyn Sink>>,
}

impl Fanout {
    /// Wraps `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        Fanout { sinks }
    }
}

impl Sink for Fanout {
    fn event(&self, ev: &Event<'_>) {
        for s in &self.sinks {
            s.event(ev);
        }
    }
    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
    fn finish(&self) {
        for s in &self.sinks {
            s.finish();
        }
    }
}

// --- JSONL sink --------------------------------------------------------------

fn level_name(level: u8) -> &'static str {
    match level {
        crate::LEVEL_SILENT => "silent",
        crate::LEVEL_INFO => "info",
        _ => "debug",
    }
}

/// Machine-readable sink: one JSON object per line.
///
/// Line shapes (`ev` discriminates):
///
/// ```text
/// {"ev":"span_begin","name":"batch","tid":1,"ts_us":12,"depth":0}
/// {"ev":"span_end","name":"batch","tid":1,"ts_us":90,"dur_us":78,"depth":0}
/// {"ev":"log","level":"info","msg":"...","tid":1,"ts_us":95}
/// {"ev":"counter","name":"gemm.flops","value":123,"ts_us":99}
/// {"ev":"request","req":7,"user":42,"stage":"encode","tid":2,"ts_us":120,"dur_us":33}
/// {"ev":"mem_alloc","id":9,"bytes":4096,"live_bytes":8192,"tid":1,"ts_us":130,"path":"epoch;batch"}
/// {"ev":"mem_free","id":9,"bytes":4096,"live_bytes":4096,"tid":1,"ts_us":140}
/// ```
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Streams lines to a file at `path` (truncated).
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(f))))
    }

    /// Streams lines to an arbitrary writer (tests use a shared buffer).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        JsonlSink { out: Mutex::new(w) }
    }

    fn write_line(&self, line: &str) {
        let mut g = self.out.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writeln!(g, "{line}");
    }
}

impl Sink for JsonlSink {
    fn event(&self, ev: &Event<'_>) {
        let mut s = String::with_capacity(96);
        match ev {
            Event::SpanBegin { name, tid, ts_us, depth } => {
                s.push_str("{\"ev\":\"span_begin\",\"name\":");
                json::write_str(&mut s, name);
                s.push_str(&format!(",\"tid\":{tid},\"ts_us\":{ts_us},\"depth\":{depth}}}"));
            }
            Event::SpanEnd { name, tid, ts_us, dur_us, depth } => {
                s.push_str("{\"ev\":\"span_end\",\"name\":");
                json::write_str(&mut s, name);
                s.push_str(&format!(
                    ",\"tid\":{tid},\"ts_us\":{ts_us},\"dur_us\":{dur_us},\"depth\":{depth}}}"
                ));
            }
            Event::Log { level, msg, tid, ts_us } => {
                s.push_str("{\"ev\":\"log\",\"level\":");
                json::write_str(&mut s, level_name(*level));
                s.push_str(",\"msg\":");
                json::write_str(&mut s, msg);
                s.push_str(&format!(",\"tid\":{tid},\"ts_us\":{ts_us}}}"));
            }
            Event::Counter { name, value, ts_us } => {
                s.push_str("{\"ev\":\"counter\",\"name\":");
                json::write_str(&mut s, name);
                s.push_str(&format!(",\"value\":{value},\"ts_us\":{ts_us}}}"));
            }
            Event::Request { req, user, stage, tid, ts_us, dur_us } => {
                s.push_str("{\"ev\":\"request\",\"req\":");
                s.push_str(&format!("{req},\"user\":{user},\"stage\":"));
                json::write_str(&mut s, stage);
                s.push_str(&format!(",\"tid\":{tid},\"ts_us\":{ts_us},\"dur_us\":{dur_us}}}"));
            }
            Event::MemAlloc { id, bytes, live_bytes, tid, ts_us, path } => {
                s.push_str(&format!(
                    "{{\"ev\":\"mem_alloc\",\"id\":{id},\"bytes\":{bytes},\
                     \"live_bytes\":{live_bytes},\"tid\":{tid},\"ts_us\":{ts_us},\"path\":"
                ));
                json::write_str(&mut s, path);
                s.push('}');
            }
            Event::MemFree { id, bytes, live_bytes, tid, ts_us } => {
                s.push_str(&format!(
                    "{{\"ev\":\"mem_free\",\"id\":{id},\"bytes\":{bytes},\
                     \"live_bytes\":{live_bytes},\"tid\":{tid},\"ts_us\":{ts_us}}}"
                ));
            }
        }
        self.write_line(&s);
    }

    fn flush(&self) {
        let mut g = self.out.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = g.flush();
    }
}

/// A `Write` handle over a shared byte buffer, for capturing a
/// [`JsonlSink`] stream in memory (tests, the golden-neutrality guard).
#[derive(Clone, Default)]
pub struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// A fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The captured bytes as UTF-8.
    ///
    /// # Panics
    /// Panics if a sink wrote invalid UTF-8 (sinks only write JSON).
    pub fn contents(&self) -> String {
        let g = self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        String::from_utf8(g.clone()).expect("sink output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// --- Chrome trace sink -------------------------------------------------------

struct ChromeState {
    w: Box<dyn Write + Send>,
    first: bool,
    finished: bool,
    named_tids: Vec<u32>,
}

/// Writes the Chrome trace-event format (a JSON array of `B`/`E` duration
/// events plus `i` instants and `C` counters) loadable by
/// `chrome://tracing` and Perfetto.
///
/// The closing `]` is written by [`Sink::finish`] — drop the
/// [`crate::ObsGuard`] (or call [`uninstall`]) before reading the file.
/// Chrome itself tolerates a truncated array, but strict JSON parsers do
/// not.
pub struct ChromeTraceSink {
    state: Mutex<ChromeState>,
}

impl ChromeTraceSink {
    /// Writes the trace to a file at `path` (truncated).
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(f))))
    }

    /// Writes the trace to an arbitrary writer.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        let sink = ChromeTraceSink {
            state: Mutex::new(ChromeState {
                w,
                first: true,
                finished: false,
                named_tids: Vec::new(),
            }),
        };
        {
            let mut st = sink.lock_state();
            let _ = st.w.write_all(b"[");
        }
        // Name the process so the trace viewer shows something readable.
        sink.write_obj(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"seqrec\"}}",
        );
        sink
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ChromeState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_obj(&self, obj: &str) {
        let mut st = self.lock_state();
        if st.finished {
            return;
        }
        if st.first {
            st.first = false;
        } else {
            let _ = st.w.write_all(b",\n");
        }
        let _ = st.w.write_all(obj.as_bytes());
    }

    /// Emits a `thread_name` metadata event the first time a tid appears,
    /// so trace viewers label each lane with the OS thread's name. Events
    /// for one tid always arrive from the thread that owns it, so the
    /// check-then-write sequence cannot duplicate a metadata line.
    fn ensure_thread_named(&self, tid: u32) {
        {
            let mut st = self.lock_state();
            if st.finished || st.named_tids.contains(&tid) {
                return;
            }
            st.named_tids.push(tid);
        }
        let mut obj = String::with_capacity(96);
        obj.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":"
        ));
        json::write_str(&mut obj, &thread_label(tid));
        obj.push_str("}}");
        self.write_obj(&obj);
    }
}

impl Sink for ChromeTraceSink {
    fn event(&self, ev: &Event<'_>) {
        let ev_tid = match ev {
            Event::SpanBegin { tid, .. }
            | Event::SpanEnd { tid, .. }
            | Event::Log { tid, .. }
            | Event::Request { tid, .. }
            | Event::MemAlloc { tid, .. }
            | Event::MemFree { tid, .. } => *tid,
            Event::Counter { .. } => 0,
        };
        self.ensure_thread_named(ev_tid);
        let mut s = String::with_capacity(96);
        match ev {
            Event::SpanBegin { name, tid, ts_us, .. } => {
                s.push_str("{\"name\":");
                json::write_str(&mut s, name);
                s.push_str(&format!(
                    ",\"cat\":\"seqrec\",\"ph\":\"B\",\"ts\":{ts_us},\"pid\":1,\"tid\":{tid}}}"
                ));
            }
            Event::SpanEnd { name, tid, ts_us, .. } => {
                s.push_str("{\"name\":");
                json::write_str(&mut s, name);
                s.push_str(&format!(
                    ",\"cat\":\"seqrec\",\"ph\":\"E\",\"ts\":{ts_us},\"pid\":1,\"tid\":{tid}}}"
                ));
            }
            Event::Log { msg, tid, ts_us, .. } => {
                s.push_str("{\"name\":");
                json::write_str(&mut s, msg);
                s.push_str(&format!(
                    ",\"cat\":\"log\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\
                     \"pid\":1,\"tid\":{tid}}}"
                ));
            }
            Event::Counter { name, value, ts_us } => {
                s.push_str("{\"name\":");
                json::write_str(&mut s, name);
                s.push_str(&format!(
                    ",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":1,\"tid\":0,\
                     \"args\":{{\"value\":{value}}}}}"
                ));
            }
            Event::Request { req, user, stage, tid, ts_us, dur_us } => {
                // `X` complete events: one self-contained slice per stage,
                // correlated across lanes by args.req.
                s.push_str(&format!("{{\"name\":\"req.{stage}\""));
                s.push_str(&format!(
                    ",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us},\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"req\":{req},\"user\":{user}}}}}"
                ));
            }
            Event::MemAlloc { id, bytes, live_bytes, tid, ts_us, path } => {
                // `N` object-created event with the payload in args, plus a
                // `C` counter sample so viewers plot the live-bytes curve.
                s.push_str(&format!(
                    "{{\"name\":\"buf\",\"cat\":\"mem\",\"ph\":\"N\",\"id\":\"0x{id:x}\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"bytes\":{bytes},\"path\":"
                ));
                json::write_str(&mut s, path);
                s.push_str("}}");
                self.write_obj(&s);
                s = format!(
                    "{{\"name\":\"tensor.live_bytes\",\"cat\":\"mem\",\"ph\":\"C\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{live_bytes}}}}}"
                );
            }
            Event::MemFree { id, bytes, live_bytes, ts_us, tid } => {
                s.push_str(&format!(
                    "{{\"name\":\"buf\",\"cat\":\"mem\",\"ph\":\"D\",\"id\":\"0x{id:x}\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":{tid},\"args\":{{\"bytes\":{bytes}}}}}"
                ));
                self.write_obj(&s);
                s = format!(
                    "{{\"name\":\"tensor.live_bytes\",\"cat\":\"mem\",\"ph\":\"C\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{live_bytes}}}}}"
                );
            }
        }
        self.write_obj(&s);
    }

    fn flush(&self) {
        let mut st = self.lock_state();
        let _ = st.w.flush();
    }

    fn finish(&self) {
        let mut st = self.lock_state();
        if !st.finished {
            st.finished = true;
            let _ = st.w.write_all(b"]\n");
            let _ = st.w.flush();
        }
    }
}
