//! Span-trace aggregation: folds a JSONL or Chrome trace produced by this
//! crate's sinks into a hierarchical inclusive/exclusive time profile.
//!
//! Inclusive time of a call path is the wall-clock sum of all spans at that
//! path; exclusive (self) time subtracts the inclusive time of the path's
//! children. By construction the exclusive times of a subtree sum exactly
//! to the inclusive time of its root — the invariant `seqrec-prof` leans on
//! and the tests assert.
//!
//! The aggregator is strict: an `end` without a matching `begin`, a
//! begin/end name mismatch, or a span still open at end-of-trace is an
//! error, not a silent skip. A trace that does not pair up is a bug in the
//! producer and must not fold into a plausible-looking profile.

use crate::json::{self, Value};

/// One span boundary extracted from a trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Stable thread id assigned by the sink layer.
    pub tid: u64,
    /// Timestamp in microseconds since trace start.
    pub ts_us: u64,
    /// `true` for a begin event, `false` for an end event.
    pub begin: bool,
}

/// Parses the events of a JSONL trace (`{"ev":"span_begin",...}` lines).
/// Non-span lines (logs, counters) are skipped; malformed lines are errors.
///
/// # Errors
/// Returns a message naming the offending line on malformed JSON, a missing
/// field, or an unknown `ev` kind.
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        let ev = v
            .get("ev")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing \"ev\" field", i + 1))?;
        let at = format!("line {}", i + 1);
        let begin = match ev {
            "span_begin" => true,
            "span_end" => false,
            // Non-span kinds are skipped, but a malformed line must still
            // be a line-numbered error, not a silent pass: every kind
            // carries a timestamp, and mem events carry an id and a size.
            "log" | "counter" | "request" | "mem_alloc" | "mem_free" => {
                req_u64(&v, "ts_us", &at)?;
                if ev.starts_with("mem_") {
                    req_u64(&v, "id", &at)?;
                    req_u64(&v, "bytes", &at)?;
                }
                continue;
            }
            other => return Err(format!("{at}: unknown event kind `{other}`")),
        };
        events.push(SpanEvent {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{at}: span without \"name\""))?
                .to_string(),
            tid: req_u64(&v, "tid", &at)?,
            ts_us: req_u64(&v, "ts_us", &at)?,
            begin,
        });
    }
    Ok(events)
}

/// Parses the events of a Chrome trace-event array (`"ph":"B"`/`"E"`).
/// Metadata (`M`), instants (`i`) and counters (`C`) are skipped.
///
/// # Errors
/// Returns a message on malformed JSON, a non-array document, or a
/// duration event missing a required field.
pub fn parse_chrome(text: &str) -> Result<Vec<SpanEvent>, String> {
    let v = json::parse(text).map_err(|e| format!("invalid Chrome trace JSON: {e}"))?;
    let arr = match &v {
        Value::Arr(items) => items,
        _ => return Err("Chrome trace must be a JSON array of events".to_string()),
    };
    let mut events = Vec::new();
    for (i, item) in arr.iter().enumerate() {
        let ph = item
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\" field"))?;
        let at = format!("event {i}");
        let begin = match ph {
            "B" => true,
            "E" => false,
            "M" | "i" | "C" | "X" | "N" | "D" => continue,
            other => return Err(format!("{at}: unknown phase `{other}`")),
        };
        events.push(SpanEvent {
            name: item
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{at}: span without \"name\""))?
                .to_string(),
            tid: req_u64(item, "tid", &at)?,
            ts_us: req_u64(item, "ts", &at)?,
            begin,
        });
    }
    Ok(events)
}

/// Parses a trace file's text, auto-detecting the format: a document whose
/// first non-whitespace byte is `[` is a Chrome trace, anything else JSONL.
///
/// # Errors
/// Propagates the format-specific parse errors.
pub fn parse_auto(text: &str) -> Result<Vec<SpanEvent>, String> {
    if text.trim_start().starts_with('[') {
        parse_chrome(text)
    } else {
        parse_jsonl(text)
    }
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    let f = v.get(key)?.as_f64()?;
    if f >= 0.0 {
        Some(f as u64)
    } else {
        None
    }
}

/// Required non-negative integer field with a diagnostic that names the
/// location and distinguishes a missing key from an invalid value.
pub(crate) fn req_u64(v: &Value, key: &str, at: &str) -> Result<u64, String> {
    match v.get(key) {
        None => Err(format!("{at}: missing \"{key}\"")),
        Some(val) => match val.as_f64() {
            Some(f) if f >= 0.0 && f.is_finite() => Ok(f as u64),
            _ => Err(format!("{at}: \"{key}\" must be a non-negative number")),
        },
    }
}

/// One aggregated call-path node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Span name at this path (not the full path).
    pub name: String,
    /// Number of spans folded into this node.
    pub count: u64,
    /// Total wall-clock microseconds inside spans at this path.
    pub inclusive_us: u64,
    /// Arena indices of the node's children, in first-seen order.
    pub children: Vec<usize>,
}

/// A folded hierarchical profile. Nodes live in an arena; index 0 is the
/// synthetic root (name `""`, zero count) whose children are the
/// top-level spans.
#[derive(Clone, Debug)]
pub struct Profile {
    nodes: Vec<Node>,
}

impl Profile {
    /// Folds a span-event stream into a profile. Spans pair up per-thread;
    /// repeated spans with the same call path merge into one node.
    ///
    /// # Errors
    /// Returns a message on an end without a begin, a begin/end name
    /// mismatch, or spans still open when the stream ends.
    pub fn build(events: &[SpanEvent]) -> Result<Profile, String> {
        let mut nodes =
            vec![Node { name: String::new(), count: 0, inclusive_us: 0, children: Vec::new() }];
        // Per-tid stack of (node index, begin timestamp).
        let mut stacks: Vec<(u64, Vec<(usize, u64)>)> = Vec::new();
        for ev in events {
            let stack = match stacks.iter_mut().find(|(tid, _)| *tid == ev.tid) {
                Some((_, s)) => s,
                None => {
                    stacks.push((ev.tid, Vec::new()));
                    &mut stacks.last_mut().expect("just pushed").1
                }
            };
            if ev.begin {
                let parent = stack.last().map_or(0, |&(idx, _)| idx);
                let child = match nodes[parent]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| nodes[c].name == ev.name)
                {
                    Some(c) => c,
                    None => {
                        nodes.push(Node {
                            name: ev.name.clone(),
                            count: 0,
                            inclusive_us: 0,
                            children: Vec::new(),
                        });
                        let c = nodes.len() - 1;
                        nodes[parent].children.push(c);
                        c
                    }
                };
                stack.push((child, ev.ts_us));
            } else {
                let (idx, begin_ts) = stack.pop().ok_or_else(|| {
                    format!("unpaired end of span `{}` on tid {} (no open span)", ev.name, ev.tid)
                })?;
                if nodes[idx].name != ev.name {
                    return Err(format!(
                        "span nesting mismatch on tid {}: `{}` ended while `{}` was open",
                        ev.tid, ev.name, nodes[idx].name
                    ));
                }
                nodes[idx].count += 1;
                nodes[idx].inclusive_us += ev.ts_us.saturating_sub(begin_ts);
            }
        }
        for (tid, stack) in &stacks {
            if let Some(&(idx, _)) = stack.last() {
                return Err(format!(
                    "span `{}` on tid {tid} still open at end of trace",
                    nodes[idx].name
                ));
            }
        }
        Ok(Profile { nodes })
    }

    /// The node arena (index 0 is the synthetic root).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Exclusive (self) microseconds of a node: inclusive minus the
    /// inclusive time of its children, floored at zero (clock jitter can
    /// make children appear marginally longer than the parent).
    pub fn exclusive_us(&self, idx: usize) -> u64 {
        let child_sum: u64 =
            self.nodes[idx].children.iter().map(|&c| self.nodes[c].inclusive_us).sum();
        self.nodes[idx].inclusive_us.saturating_sub(child_sum)
    }

    /// Total inclusive microseconds of the top-level spans (the profile's
    /// wall-clock denominator).
    pub fn total_us(&self) -> u64 {
        self.nodes[0].children.iter().map(|&c| self.nodes[c].inclusive_us).sum()
    }

    /// Renders the full hierarchy, children sorted by inclusive time, with
    /// inclusive/exclusive milliseconds, call counts and percent-of-total.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let total = self.total_us().max(1);
        out.push_str(&format!(
            "{:>12} {:>12} {:>7} {:>8}  span\n",
            "incl(ms)", "excl(ms)", "%incl", "calls"
        ));
        let mut order: Vec<usize> = self.nodes[0].children.clone();
        order.sort_by(|&a, &b| self.nodes[b].inclusive_us.cmp(&self.nodes[a].inclusive_us));
        for idx in order {
            self.render_node(&mut out, idx, 0, total);
        }
        out
    }

    fn render_node(&self, out: &mut String, idx: usize, depth: usize, total: u64) {
        let n = &self.nodes[idx];
        out.push_str(&format!(
            "{:>12.3} {:>12.3} {:>6.1}% {:>8}  {}{}\n",
            n.inclusive_us as f64 / 1e3,
            self.exclusive_us(idx) as f64 / 1e3,
            n.inclusive_us as f64 * 100.0 / total as f64,
            n.count,
            "  ".repeat(depth),
            n.name,
        ));
        let mut order = n.children.clone();
        order.sort_by(|&a, &b| self.nodes[b].inclusive_us.cmp(&self.nodes[a].inclusive_us));
        for c in order {
            self.render_node(out, c, depth + 1, total);
        }
    }

    /// The top-`n` call paths by exclusive time, as `(path, exclusive_us,
    /// inclusive_us, count)` tuples with `;`-joined paths.
    pub fn top_exclusive(&self, n: usize) -> Vec<(String, u64, u64, u64)> {
        let mut rows = Vec::new();
        self.collect_paths(0, &mut String::new(), &mut rows);
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows.truncate(n);
        rows
    }

    /// Folded-stack lines (`path;to;span <exclusive_us>`) for
    /// inferno-flamegraph or speedscope. Zero-exclusive interior nodes are
    /// omitted, matching the collapsed-stack convention.
    pub fn folded_stacks(&self) -> String {
        let mut rows = Vec::new();
        self.collect_paths(0, &mut String::new(), &mut rows);
        let mut out = String::new();
        for (path, excl, _incl, _count) in rows {
            if excl > 0 {
                out.push_str(&format!("{path} {excl}\n"));
            }
        }
        out
    }

    fn collect_paths(
        &self,
        idx: usize,
        prefix: &mut String,
        rows: &mut Vec<(String, u64, u64, u64)>,
    ) {
        let n = &self.nodes[idx];
        let saved = prefix.len();
        if idx != 0 {
            if !prefix.is_empty() {
                prefix.push(';');
            }
            prefix.push_str(&n.name);
            rows.push((prefix.clone(), self.exclusive_us(idx), n.inclusive_us, n.count));
        }
        for &c in &n.children {
            self.collect_paths(c, prefix, rows);
        }
        prefix.truncate(saved);
    }
}

// --- request-lifecycle traces ------------------------------------------------

/// One serve-request stage extracted from a trace
/// (`{"ev":"request",...}` JSONL lines, or `"ph":"X"` / `"cat":"serve"`
/// Chrome events named `req.<stage>`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestEvent {
    /// Monotonic request id.
    pub req: u64,
    /// The scored user.
    pub user: u64,
    /// Stage name (`enqueue`, `batch`, `encode`, `score`, `topk`, `reply`).
    pub stage: String,
    /// Thread the stage ran on.
    pub tid: u64,
    /// Stage start, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
}

/// Extracts the request events of a JSONL trace; everything else is
/// skipped (the complement of [`parse_jsonl`]).
///
/// # Errors
/// Returns a message naming the offending line on malformed JSON or a
/// request event missing a field.
pub fn parse_requests_jsonl(text: &str) -> Result<Vec<RequestEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        if v.get("ev").and_then(Value::as_str) != Some("request") {
            continue;
        }
        let at = format!("line {}", i + 1);
        let field = |key: &str| req_u64(&v, key, &at);
        events.push(RequestEvent {
            req: field("req")?,
            user: field("user")?,
            stage: v
                .get("stage")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: request without \"stage\"", i + 1))?
                .to_string(),
            tid: field("tid")?,
            ts_us: field("ts_us")?,
            dur_us: field("dur_us")?,
        });
    }
    Ok(events)
}

/// Extracts the request events of a Chrome trace: `X` complete events in
/// the `serve` category, named `req.<stage>`, with `args.req`/`args.user`.
///
/// # Errors
/// Returns a message on malformed JSON or a serve `X` event missing a
/// field.
pub fn parse_requests_chrome(text: &str) -> Result<Vec<RequestEvent>, String> {
    let v = json::parse(text).map_err(|e| format!("invalid Chrome trace JSON: {e}"))?;
    let arr = match &v {
        Value::Arr(items) => items,
        _ => return Err("Chrome trace must be a JSON array of events".to_string()),
    };
    let mut events = Vec::new();
    for (i, item) in arr.iter().enumerate() {
        if item.get("ph").and_then(Value::as_str) != Some("X")
            || item.get("cat").and_then(Value::as_str) != Some("serve")
        {
            continue;
        }
        let name = item
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: serve X event without \"name\""))?;
        let stage = name.strip_prefix("req.").ok_or_else(|| {
            format!("event {i}: serve X event named `{name}`, want `req.<stage>`")
        })?;
        let args =
            item.get("args").ok_or_else(|| format!("event {i}: serve X event without args"))?;
        let at = format!("event {i}");
        events.push(RequestEvent {
            req: field_u64(args, "req").ok_or_else(|| format!("{at}: missing args.req"))?,
            user: field_u64(args, "user").ok_or_else(|| format!("{at}: missing args.user"))?,
            stage: stage.to_string(),
            tid: req_u64(item, "tid", &at)?,
            ts_us: req_u64(item, "ts", &at)?,
            dur_us: req_u64(item, "dur", &at)?,
        });
    }
    Ok(events)
}

/// Extracts request events with the same format auto-detection as
/// [`parse_auto`].
///
/// # Errors
/// Propagates the format-specific parse errors.
pub fn parse_requests_auto(text: &str) -> Result<Vec<RequestEvent>, String> {
    if text.trim_start().starts_with('[') {
        parse_requests_chrome(text)
    } else {
        parse_requests_jsonl(text)
    }
}

/// Aggregated timing of one request-lifecycle stage.
#[derive(Clone, Debug)]
pub struct StageStats {
    /// Stage name.
    pub stage: String,
    /// Stage instances folded in.
    pub count: u64,
    /// Total microseconds across instances.
    pub total_us: u64,
    /// Shortest instance.
    pub min_us: u64,
    /// Longest instance.
    pub max_us: u64,
}

/// Per-stage latency profile folded from request events.
#[derive(Clone, Debug, Default)]
pub struct RequestProfile {
    stages: Vec<StageStats>,
    requests: u64,
}

impl RequestProfile {
    /// Folds `events` by stage (first-seen order, which matches lifecycle
    /// order in traces written by the serve worker).
    pub fn build(events: &[RequestEvent]) -> RequestProfile {
        let mut stages: Vec<StageStats> = Vec::new();
        let mut req_ids: Vec<u64> = Vec::new();
        for ev in events {
            if let Err(at) = req_ids.binary_search(&ev.req) {
                req_ids.insert(at, ev.req);
            }
            match stages.iter_mut().find(|s| s.stage == ev.stage) {
                Some(s) => {
                    s.count += 1;
                    s.total_us += ev.dur_us;
                    s.min_us = s.min_us.min(ev.dur_us);
                    s.max_us = s.max_us.max(ev.dur_us);
                }
                None => stages.push(StageStats {
                    stage: ev.stage.clone(),
                    count: 1,
                    total_us: ev.dur_us,
                    min_us: ev.dur_us,
                    max_us: ev.dur_us,
                }),
            }
        }
        RequestProfile { stages, requests: req_ids.len() as u64 }
    }

    /// Per-stage aggregates, in first-seen (lifecycle) order.
    pub fn stages(&self) -> &[StageStats] {
        &self.stages
    }

    /// Distinct request ids seen.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total microseconds across every stage (the per-stage breakdown's
    /// denominator).
    pub fn total_us(&self) -> u64 {
        self.stages.iter().map(|s| s.total_us).sum()
    }

    /// Renders a per-stage table: total/mean/min/max microseconds and
    /// share of the summed stage time.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.total_us().max(1);
        out.push_str(&format!(
            "{} requests, {} stage events\n",
            self.requests,
            self.stages.iter().map(|s| s.count).sum::<u64>()
        ));
        out.push_str(&format!(
            "{:>12} {:>10} {:>9} {:>9} {:>6} {:>8}  stage\n",
            "total(ms)", "mean(us)", "min(us)", "max(us)", "%", "count"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:>12.3} {:>10.1} {:>9} {:>9} {:>5.1}% {:>8}  {}\n",
                s.total_us as f64 / 1e3,
                s.total_us as f64 / s.count.max(1) as f64,
                s.min_us,
                s.max_us,
                s.total_us as f64 * 100.0 / total as f64,
                s.count,
                s.stage,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts: u64, begin: bool) -> SpanEvent {
        SpanEvent { name: name.to_string(), tid: 1, ts_us: ts, begin }
    }

    #[test]
    fn jsonl_round_trip_parses_span_events() {
        let text = "\
{\"ev\":\"span_begin\",\"name\":\"epoch\",\"tid\":1,\"ts_us\":10,\"depth\":0}\n\
{\"ev\":\"log\",\"level\":\"info\",\"msg\":\"hi\",\"tid\":1,\"ts_us\":12}\n\
{\"ev\":\"span_end\",\"name\":\"epoch\",\"tid\":1,\"ts_us\":50,\"dur_us\":40,\"depth\":0}\n\
{\"ev\":\"counter\",\"name\":\"gemm.flops\",\"value\":9,\"ts_us\":60}\n";
        let events = parse_jsonl(text).unwrap();
        assert_eq!(events.len(), 2);
        assert!(events[0].begin && !events[1].begin);
        let p = Profile::build(&events).unwrap();
        assert_eq!(p.total_us(), 40);
    }

    #[test]
    fn chrome_parse_skips_metadata_and_counters() {
        let text = r#"[
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"seqrec"}},
{"name":"epoch","cat":"seqrec","ph":"B","ts":0,"pid":1,"tid":1},
{"name":"gemm.flops","cat":"metrics","ph":"C","ts":5,"pid":1,"tid":0,"args":{"value":3}},
{"name":"epoch","cat":"seqrec","ph":"E","ts":30,"pid":1,"tid":1}
]"#;
        let events = parse_chrome(text).unwrap();
        assert_eq!(events.len(), 2);
        let p = Profile::build(&events).unwrap();
        assert_eq!(p.total_us(), 30);
    }

    #[test]
    fn exclusive_subtracts_children_and_sums_back_to_total() {
        // epoch [0,100] contains batch [10,40] and batch [50,90];
        // each batch contains forward taking 20us.
        let events = vec![
            ev("epoch", 0, true),
            ev("batch", 10, true),
            ev("forward", 15, true),
            ev("forward", 35, false),
            ev("batch", 40, false),
            ev("batch", 50, true),
            ev("forward", 55, true),
            ev("forward", 75, false),
            ev("batch", 90, false),
            ev("epoch", 100, false),
        ];
        let p = Profile::build(&events).unwrap();
        assert_eq!(p.total_us(), 100);
        let excl_sum: u64 = (1..p.nodes().len()).map(|i| p.exclusive_us(i)).sum();
        assert_eq!(excl_sum, p.total_us(), "exclusive times must tile the wall clock");
        let top = p.top_exclusive(10);
        // batch merged both instances: inclusive 30+40=70, exclusive 70-40=30.
        let batch = top.iter().find(|r| r.0 == "epoch;batch").unwrap();
        assert_eq!((batch.1, batch.2, batch.3), (30, 70, 2));
        let forward = top.iter().find(|r| r.0 == "epoch;batch;forward").unwrap();
        assert_eq!((forward.1, forward.3), (40, 2));
    }

    #[test]
    fn unpaired_end_is_an_error() {
        let events = vec![ev("loose", 5, false)];
        let err = Profile::build(&events).unwrap_err();
        assert!(err.contains("unpaired end"), "{err}");
    }

    #[test]
    fn name_mismatch_is_an_error() {
        let events = vec![ev("a", 0, true), ev("b", 5, false)];
        let err = Profile::build(&events).unwrap_err();
        assert!(err.contains("nesting mismatch"), "{err}");
    }

    #[test]
    fn span_open_at_eof_is_an_error() {
        let events = vec![ev("a", 0, true)];
        let err = Profile::build(&events).unwrap_err();
        assert!(err.contains("still open"), "{err}");
    }

    #[test]
    fn folded_stacks_use_exclusive_time() {
        let events =
            vec![ev("a", 0, true), ev("b", 10, true), ev("b", 30, false), ev("a", 50, false)];
        let p = Profile::build(&events).unwrap();
        let folded = p.folded_stacks();
        assert!(folded.contains("a 30\n"), "{folded}");
        assert!(folded.contains("a;b 20\n"), "{folded}");
    }

    #[test]
    fn threads_fold_independently() {
        let events = vec![
            SpanEvent { name: "x".into(), tid: 1, ts_us: 0, begin: true },
            SpanEvent { name: "y".into(), tid: 2, ts_us: 0, begin: true },
            SpanEvent { name: "y".into(), tid: 2, ts_us: 7, begin: false },
            SpanEvent { name: "x".into(), tid: 1, ts_us: 5, begin: false },
        ];
        let p = Profile::build(&events).unwrap();
        assert_eq!(p.total_us(), 12);
    }

    #[test]
    fn mem_lines_are_skipped_by_the_span_parser_but_still_validated() {
        let ok = "{\"ev\":\"mem_alloc\",\"id\":1,\"bytes\":64,\"live_bytes\":64,\
                  \"tid\":1,\"ts_us\":5,\"path\":\"a;b\"}\n\
                  {\"ev\":\"mem_free\",\"id\":1,\"bytes\":64,\"live_bytes\":0,\
                  \"tid\":1,\"ts_us\":9}\n";
        assert!(parse_jsonl(ok).unwrap().is_empty());
        let bad = "{\"ev\":\"mem_alloc\",\"bytes\":64,\"ts_us\":5}\n";
        let err = parse_jsonl(bad).unwrap_err();
        assert!(err.contains("line 1") && err.contains("\"id\""), "{err}");
    }

    #[test]
    fn malformed_skipped_lines_are_line_numbered_errors() {
        let text = "{\"ev\":\"span_begin\",\"name\":\"a\",\"tid\":1,\"ts_us\":0,\"depth\":0}\n\
                    {\"ev\":\"counter\",\"name\":\"x\",\"value\":1}\n";
        let err = parse_jsonl(text).unwrap_err();
        assert!(err.contains("line 2") && err.contains("ts_us"), "{err}");
        let neg = "{\"ev\":\"span_begin\",\"name\":\"a\",\"tid\":-1,\"ts_us\":0,\"depth\":0}\n";
        let err = parse_jsonl(neg).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
    }

    #[test]
    fn chrome_parse_skips_mem_object_events() {
        let text = r#"[
{"name":"buf","cat":"mem","ph":"N","id":"0x1","ts":1,"pid":1,"tid":1,"args":{"bytes":64,"path":"a"}},
{"name":"epoch","cat":"seqrec","ph":"B","ts":0,"pid":1,"tid":1},
{"name":"buf","cat":"mem","ph":"D","id":"0x1","ts":9,"pid":1,"tid":1,"args":{"bytes":64}},
{"name":"epoch","cat":"seqrec","ph":"E","ts":30,"pid":1,"tid":1}
]"#;
        let events = parse_chrome(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(Profile::build(&events).unwrap().total_us(), 30);
    }

    #[test]
    fn auto_detects_format() {
        assert!(parse_auto("[]").unwrap().is_empty());
        assert!(parse_auto("").unwrap().is_empty());
        assert!(parse_auto("{oops").is_err());
    }

    #[test]
    fn request_events_parse_from_jsonl_and_fold_by_stage() {
        let text = "\
{\"ev\":\"request\",\"req\":1,\"user\":7,\"stage\":\"enqueue\",\"tid\":1,\"ts_us\":0,\"dur_us\":10}\n\
{\"ev\":\"span_begin\",\"name\":\"x\",\"tid\":1,\"ts_us\":3,\"depth\":0}\n\
{\"ev\":\"span_end\",\"name\":\"x\",\"tid\":1,\"ts_us\":5,\"dur_us\":2,\"depth\":0}\n\
{\"ev\":\"request\",\"req\":1,\"user\":7,\"stage\":\"encode\",\"tid\":2,\"ts_us\":10,\"dur_us\":30}\n\
{\"ev\":\"request\",\"req\":2,\"user\":9,\"stage\":\"enqueue\",\"tid\":1,\"ts_us\":5,\"dur_us\":20}\n";
        // Request lines must not break the span parser...
        assert_eq!(parse_jsonl(text).unwrap().len(), 2);
        // ...and fold into a per-stage profile.
        let events = parse_requests_jsonl(text).unwrap();
        assert_eq!(events.len(), 3);
        let p = RequestProfile::build(&events);
        assert_eq!(p.requests(), 2);
        assert_eq!(p.total_us(), 60);
        let enqueue = &p.stages()[0];
        assert_eq!(enqueue.stage, "enqueue");
        assert_eq!(
            (enqueue.count, enqueue.total_us, enqueue.min_us, enqueue.max_us),
            (2, 30, 10, 20)
        );
        assert_eq!(p.stages()[1].stage, "encode");
        let table = p.render();
        assert!(table.contains("enqueue"), "{table}");
    }

    #[test]
    fn request_events_parse_from_chrome_x_events() {
        let text = r#"[
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"seqrec"}},
{"name":"req.score","cat":"serve","ph":"X","ts":40,"dur":25,"pid":1,"tid":3,"args":{"req":5,"user":11}},
{"name":"epoch","cat":"seqrec","ph":"B","ts":0,"pid":1,"tid":1},
{"name":"epoch","cat":"seqrec","ph":"E","ts":30,"pid":1,"tid":1}
]"#;
        let events = parse_requests_chrome(text).unwrap();
        assert_eq!(
            events,
            vec![RequestEvent {
                req: 5,
                user: 11,
                stage: "score".to_string(),
                tid: 3,
                ts_us: 40,
                dur_us: 25,
            }]
        );
        // The span parser still skips X events.
        assert_eq!(parse_chrome(text).unwrap().len(), 2);
        assert_eq!(parse_requests_auto(text).unwrap().len(), 1);
    }
}
