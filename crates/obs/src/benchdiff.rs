//! Bench-report comparison: the regression gate behind
//! `scripts/bench_gate.sh`.
//!
//! Compares a freshly generated `BENCH_train.json` against the committed
//! baseline row-by-row (keyed by `method` + `dataset`) with per-metric
//! relative tolerances that only fire in the *worse* direction:
//!
//! * `secs_per_epoch`, `peak_mib`, and `whatif_peak_mib` regress by
//!   **growing**;
//! * `seqs_per_sec` and `gemm_gflops_per_sec` regress by **shrinking**.
//!
//! Improvements never fail the gate (they are reported as such), and
//! zero-valued baselines (e.g. `gemm_gflops_per_sec` for the GEMM-free
//! baselines) are skipped — a relative tolerance on zero is meaningless.

use crate::json::{self, Value};

/// Direction in which a metric gets worse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Worse {
    /// Larger values are worse (time, memory).
    Higher,
    /// Smaller values are worse (throughput).
    Lower,
}

/// One tracked metric: its JSON key, regression direction, and relative
/// tolerance (`0.25` = allow 25% drift in the worse direction).
#[derive(Clone, Debug)]
pub struct MetricSpec {
    /// JSON field name inside a bench row.
    pub key: &'static str,
    /// Which direction counts as a regression.
    pub worse: Worse,
    /// Allowed relative drift in the worse direction.
    pub tolerance: f64,
}

/// The default gate: generous enough to absorb timer noise on a loaded
/// machine, tight enough to catch a real kernel or allocator regression.
pub fn default_specs() -> Vec<MetricSpec> {
    vec![
        MetricSpec { key: "secs_per_epoch", worse: Worse::Higher, tolerance: 0.30 },
        MetricSpec { key: "seqs_per_sec", worse: Worse::Lower, tolerance: 0.30 },
        MetricSpec { key: "gemm_gflops_per_sec", worse: Worse::Lower, tolerance: 0.30 },
        MetricSpec { key: "peak_mib", worse: Worse::Higher, tolerance: 0.10 },
        // The perfect-reuse floor should only move when the allocation
        // schedule itself changes — same tight band as the observed peak.
        MetricSpec { key: "whatif_peak_mib", worse: Worse::Higher, tolerance: 0.10 },
    ]
}

/// The serving gate (`BENCH_serve.json`): latency quantiles regress by
/// growing; throughput and cache efficiency regress by shrinking. Serve
/// latency on a shared machine is far noisier than epoch timings, hence
/// the wider bands; the cache hit rate is a property of the seeded
/// workload generator, not the clock, so its band stays tight.
pub fn serve_specs() -> Vec<MetricSpec> {
    vec![
        MetricSpec { key: "p50_us", worse: Worse::Higher, tolerance: 0.75 },
        MetricSpec { key: "p99_us", worse: Worse::Higher, tolerance: 1.00 },
        MetricSpec { key: "items_per_sec", worse: Worse::Lower, tolerance: 0.40 },
        MetricSpec { key: "cache_hit_rate", worse: Worse::Lower, tolerance: 0.05 },
        // Queue depth at p99 is quantised to coarse histogram buckets and
        // swings hard with scheduler noise; only a multiple-bucket jump
        // should fail the gate.
        MetricSpec { key: "queue_depth_p99", worse: Worse::Higher, tolerance: 2.0 },
        MetricSpec { key: "batch_occupancy_mean_pct", worse: Worse::Lower, tolerance: 0.60 },
        // The SLO verdict is binary (1 = met, 0 = burned): any drop is a
        // regression, and a zero tolerance survives smoke's tolerance
        // scaling (0 × N = 0).
        MetricSpec { key: "slo_ok", worse: Worse::Lower, tolerance: 0.0 },
    ]
}

/// A metric set with every tolerance scaled by `factor` — the smoke mode
/// used in CI, where a tiny run on a shared machine needs loose gates.
pub fn scale_specs(mut specs: Vec<MetricSpec>, factor: f64) -> Vec<MetricSpec> {
    for s in &mut specs {
        s.tolerance *= factor;
    }
    specs
}

/// [`default_specs`] scaled by `factor`.
pub fn scaled_specs(factor: f64) -> Vec<MetricSpec> {
    scale_specs(default_specs(), factor)
}

/// One metric comparison on one row.
#[derive(Clone, Debug)]
pub struct Delta {
    /// `method/dataset` row key.
    pub row: String,
    /// Metric key.
    pub metric: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Fresh value.
    pub fresh: f64,
    /// Signed relative change `(fresh - base) / base`.
    pub rel_change: f64,
    /// Whether the change exceeds the tolerance in the worse direction.
    pub regressed: bool,
}

/// The outcome of comparing two bench reports.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every metric comparison made.
    pub deltas: Vec<Delta>,
    /// Row keys present in the baseline but missing from the fresh report.
    pub missing_rows: Vec<String>,
    /// `(baseline, fresh)` top-level thread counts when both reports record
    /// one and they differ — timings at different pool sizes are not
    /// comparable, so this fails the gate outright.
    pub thread_mismatch: Option<(f64, f64)>,
}

impl DiffReport {
    /// All regressions (tolerance exceeded in the worse direction).
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// `true` when the gate should fail: any regression, missing row, or
    /// thread-count mismatch.
    pub fn failed(&self) -> bool {
        !self.missing_rows.is_empty()
            || self.thread_mismatch.is_some()
            || self.deltas.iter().any(|d| d.regressed)
    }

    /// Human-readable gate summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:<22} {:>14} {:>14} {:>9}  status\n",
            "row", "metric", "baseline", "fresh", "change"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<28} {:<22} {:>14.4} {:>14.4} {:>+8.1}%  {}\n",
                d.row,
                d.metric,
                d.base,
                d.fresh,
                d.rel_change * 100.0,
                if d.regressed { "REGRESSED" } else { "ok" },
            ));
        }
        for row in &self.missing_rows {
            out.push_str(&format!("{row:<28} MISSING from fresh report\n"));
        }
        if let Some((b, f)) = self.thread_mismatch {
            out.push_str(&format!(
                "thread count mismatch: baseline ran at {b} thread(s), fresh at {f} — \
                 timings are not comparable (set SEQREC_THREADS to match)\n"
            ));
        }
        let n_reg = self.regressions().len();
        if self.failed() {
            out.push_str(&format!(
                "GATE FAILED: {n_reg} regression(s), {} missing row(s){}\n",
                self.missing_rows.len(),
                if self.thread_mismatch.is_some() { ", thread-count mismatch" } else { "" }
            ));
        } else {
            out.push_str(&format!("GATE OK: {} comparisons, no regressions\n", self.deltas.len()));
        }
        out
    }
}

fn rows_of(report: &Value) -> Result<Vec<(String, &Value)>, String> {
    let rows = match report.get("rows") {
        Some(Value::Arr(items)) => items,
        _ => return Err("bench report has no \"rows\" array".to_string()),
    };
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let method = row
            .get("method")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("row {i}: missing \"method\""))?;
        let dataset = row
            .get("dataset")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("row {i}: missing \"dataset\""))?;
        out.push((format!("{method}/{dataset}"), row));
    }
    Ok(out)
}

/// Compares a fresh bench report against a baseline under the given metric
/// specs. Rows are matched by `method` + `dataset`; extra rows in the fresh
/// report are ignored (new benchmarks are not regressions).
///
/// # Errors
/// Returns a message when either document is not valid JSON or lacks the
/// bench-report shape.
pub fn diff(
    baseline_text: &str,
    fresh_text: &str,
    specs: &[MetricSpec],
) -> Result<DiffReport, String> {
    let baseline =
        json::parse(baseline_text).map_err(|e| format!("baseline: invalid JSON: {e}"))?;
    let fresh = json::parse(fresh_text).map_err(|e| format!("fresh report: invalid JSON: {e}"))?;
    let base_rows = rows_of(&baseline).map_err(|e| format!("baseline: {e}"))?;
    let fresh_rows = rows_of(&fresh).map_err(|e| format!("fresh report: {e}"))?;

    let mut report = DiffReport::default();
    // Reports generated since the pool became multi-threaded carry a
    // numeric top-level `threads`; old baselines had a prose string there,
    // which `as_f64` rejects, so the check degrades gracefully on them.
    if let (Some(b), Some(f)) = (
        baseline.get("threads").and_then(Value::as_f64),
        fresh.get("threads").and_then(Value::as_f64),
    ) {
        if b != f {
            report.thread_mismatch = Some((b, f));
        }
    }
    for (key, base_row) in &base_rows {
        let Some((_, fresh_row)) = fresh_rows.iter().find(|(k, _)| k == key) else {
            report.missing_rows.push(key.clone());
            continue;
        };
        for spec in specs {
            let (Some(base), Some(fresh)) = (
                base_row.get(spec.key).and_then(Value::as_f64),
                fresh_row.get(spec.key).and_then(Value::as_f64),
            ) else {
                continue;
            };
            if base == 0.0 {
                continue;
            }
            let rel_change = (fresh - base) / base;
            let regressed = match spec.worse {
                Worse::Higher => rel_change > spec.tolerance,
                Worse::Lower => rel_change < -spec.tolerance,
            };
            report.deltas.push(Delta {
                row: key.clone(),
                metric: spec.key,
                base,
                fresh,
                rel_change,
                regressed,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &str) -> String {
        format!("{{\"rows\":[{rows}]}}")
    }

    fn row(method: &str, spe: f64, sps: f64, gflops: f64, mib: f64) -> String {
        format!(
            "{{\"method\":\"{method}\",\"dataset\":\"beauty\",\"secs_per_epoch\":{spe},\
             \"seqs_per_sec\":{sps},\"gemm_gflops_per_sec\":{gflops},\"peak_mib\":{mib},\
             \"whatif_peak_mib\":{whatif}}}",
            whatif = mib * 0.5
        )
    }

    #[test]
    fn identical_reports_pass() {
        let text = report(&row("SASRec", 1.0, 100.0, 20.0, 50.0));
        let d = diff(&text, &text, &default_specs()).unwrap();
        assert!(!d.failed(), "{}", d.render());
        assert_eq!(d.deltas.len(), 5);
    }

    #[test]
    fn slower_epoch_beyond_tolerance_regresses() {
        let base = report(&row("SASRec", 1.0, 100.0, 20.0, 50.0));
        let fresh = report(&row("SASRec", 1.5, 100.0, 20.0, 50.0));
        let d = diff(&base, &fresh, &default_specs()).unwrap();
        assert!(d.failed());
        let regs = d.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "secs_per_epoch");
    }

    #[test]
    fn throughput_drop_regresses_but_gain_does_not() {
        let base = report(&row("SASRec", 1.0, 100.0, 20.0, 50.0));
        let slower = report(&row("SASRec", 1.0, 60.0, 20.0, 50.0));
        assert!(diff(&base, &slower, &default_specs()).unwrap().failed());
        let faster = report(&row("SASRec", 1.0, 300.0, 80.0, 50.0));
        assert!(!diff(&base, &faster, &default_specs()).unwrap().failed());
    }

    #[test]
    fn memory_growth_uses_its_own_tighter_tolerance() {
        let base = report(&row("SASRec", 1.0, 100.0, 20.0, 100.0));
        let within = report(&row("SASRec", 1.0, 100.0, 20.0, 108.0));
        assert!(!diff(&base, &within, &default_specs()).unwrap().failed());
        let beyond = report(&row("SASRec", 1.0, 100.0, 20.0, 115.0));
        assert!(diff(&base, &beyond, &default_specs()).unwrap().failed());
    }

    #[test]
    fn zero_baseline_metrics_are_skipped() {
        let base = report(&row("BPR-MF", 1.0, 100.0, 0.0, 50.0));
        let fresh = report(&row("BPR-MF", 1.0, 100.0, 0.0, 50.0));
        let d = diff(&base, &fresh, &default_specs()).unwrap();
        assert!(d.deltas.iter().all(|x| x.metric != "gemm_gflops_per_sec"));
        assert!(!d.failed());
    }

    #[test]
    fn missing_row_fails_the_gate() {
        let base = report(&format!(
            "{},{}",
            row("SASRec", 1.0, 100.0, 20.0, 50.0),
            row("GRU4Rec", 2.0, 50.0, 10.0, 60.0)
        ));
        let fresh = report(&row("SASRec", 1.0, 100.0, 20.0, 50.0));
        let d = diff(&base, &fresh, &default_specs()).unwrap();
        assert!(d.failed());
        assert_eq!(d.missing_rows, vec!["GRU4Rec/beauty".to_string()]);
    }

    #[test]
    fn extra_fresh_rows_are_not_regressions() {
        let base = report(&row("SASRec", 1.0, 100.0, 20.0, 50.0));
        let fresh = report(&format!(
            "{},{}",
            row("SASRec", 1.0, 100.0, 20.0, 50.0),
            row("NewModel", 9.0, 1.0, 1.0, 500.0)
        ));
        assert!(!diff(&base, &fresh, &default_specs()).unwrap().failed());
    }

    #[test]
    fn scaled_specs_loosen_every_tolerance() {
        let base = report(&row("SASRec", 1.0, 100.0, 20.0, 50.0));
        let fresh = report(&row("SASRec", 1.5, 100.0, 20.0, 50.0));
        assert!(diff(&base, &fresh, &default_specs()).unwrap().failed());
        assert!(!diff(&base, &fresh, &scaled_specs(3.0)).unwrap().failed());
    }

    #[test]
    fn slo_verdict_drop_regresses_even_under_smoke_scaling() {
        let serve_row = |slo: f64| {
            format!(
                "{{\"rows\":[{{\"method\":\"SASRec\",\"dataset\":\"beauty\",\
                 \"p50_us\":500.0,\"p99_us\":2000.0,\"slo_ok\":{slo}}}]}}"
            )
        };
        let base = serve_row(1.0);
        let burned = serve_row(0.0);
        let d = diff(&base, &burned, &serve_specs()).unwrap();
        assert!(d.failed());
        assert_eq!(d.regressions().len(), 1);
        assert_eq!(d.regressions()[0].metric, "slo_ok");
        // The 10× smoke scaling must not excuse a verdict flip (0 × 10 = 0).
        assert!(diff(&base, &burned, &scale_specs(serve_specs(), 10.0)).unwrap().failed());
        // An unchanged verdict passes.
        assert!(!diff(&base, &base, &serve_specs()).unwrap().failed());
    }

    #[test]
    fn malformed_reports_error_with_context() {
        assert!(diff("{oops", "{}", &default_specs()).unwrap_err().contains("baseline"));
        assert!(diff("{}", "[]", &default_specs()).unwrap_err().contains("rows"));
    }

    #[test]
    fn thread_count_mismatch_fails_the_gate() {
        let r = row("SASRec", 1.0, 100.0, 20.0, 50.0);
        let base = format!("{{\"threads\":1,\"rows\":[{r}]}}");
        let fresh = format!("{{\"threads\":4,\"rows\":[{r}]}}");
        let d = diff(&base, &fresh, &default_specs()).unwrap();
        assert_eq!(d.thread_mismatch, Some((1.0, 4.0)));
        assert!(d.failed());
        assert!(d.render().contains("thread count mismatch"), "{}", d.render());
        // Matching counts, or a legacy prose `threads` string, pass.
        assert!(!diff(&fresh, &fresh, &default_specs()).unwrap().failed());
        let legacy = format!("{{\"threads\":\"1 (serial)\",\"rows\":[{r}]}}");
        assert!(!diff(&legacy, &fresh, &default_specs()).unwrap().failed());
    }
}
