//! `seqrec-prof`: folds a JSONL or Chrome span trace (produced via
//! `SEQREC_OBS=jsonl=...` / `chrome=...`) into a hierarchical
//! inclusive/exclusive time profile.
//!
//! ```text
//! seqrec-prof TRACE [--top N] [--folded PATH] [--mem]
//! ```
//!
//! Prints the full span hierarchy (inclusive/exclusive ms, % of wall
//! clock, call counts), then the top-N call paths by exclusive time.
//! `--folded PATH` additionally writes collapsed stacks
//! (`epoch;batch;forward 1234` lines) for inferno-flamegraph or
//! speedscope.
//!
//! A trace holding serve request events (`bench_serve` under
//! `SEQREC_OBS=jsonl=...`) additionally gets a per-stage request-latency
//! profile (enqueue/batch/encode/score/topk/reply).
//!
//! `--mem` switches to the memory analysis of a trace recorded with
//! `SEQREC_OBS=mem=...`: bytes-at-peak attributed per span path and per
//! op, buffer-lifetime statistics, and the what-if arena report (the
//! theoretical minimum peak under perfect reuse — the memory planner's
//! target).
//!
//! Malformed trace lines are hard errors with a line-numbered diagnostic
//! and a nonzero exit, never silent skips.

use std::process::ExitCode;

use seqrec_obs::memprof::{parse_mem_auto, MemProfile};
use seqrec_obs::profile::{parse_auto, parse_requests_auto, Profile, RequestProfile};

const USAGE: &str = "\
usage: seqrec-prof TRACE [--top N] [--folded PATH] [--mem]
  TRACE          JSONL (SEQREC_OBS=jsonl=...) or Chrome trace
                 (SEQREC_OBS=chrome=...) file; format auto-detected
  --top N        how many call paths to list by exclusive time (default 15)
  --folded PATH  also write collapsed stacks for inferno/speedscope
  --mem          memory analysis of a SEQREC_OBS=mem=... trace: peak
                 breakdown by span path/op, buffer lifetimes, and the
                 what-if arena (perfect-reuse minimum peak) report";

struct Args {
    trace: String,
    top: usize,
    folded: Option<String>,
    mem: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut trace = None;
    let mut top = 15usize;
    let mut folded = None;
    let mut mem = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|_| format!("invalid --top value `{v}`"))?;
            }
            "--folded" => {
                folded = Some(it.next().ok_or("--folded needs a path")?.clone());
            }
            "--mem" => mem = true,
            other if !other.starts_with('-') && trace.is_none() => {
                trace = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Args { trace: trace.ok_or("missing TRACE argument")?, top, folded, mem })
}

fn run_mem(trace: &str, text: &str, top: usize) -> Result<(), String> {
    let events = parse_mem_auto(text)?;
    if events.is_empty() {
        return Err("no mem events in trace (was the run missing SEQREC_OBS=mem=...?)".to_string());
    }
    let profile = MemProfile::build(&events)?;
    println!("trace: {trace} ({} mem events)\n", events.len());
    print!("{}", profile.render(top));
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("seqrec-prof: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&args.trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("seqrec-prof: cannot read {}: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    };

    if args.mem {
        return match run_mem(&args.trace, &text, args.top) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("seqrec-prof: {}: {e}", args.trace);
                ExitCode::FAILURE
            }
        };
    }

    let events = match parse_auto(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("seqrec-prof: {}: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    };
    let profile = match Profile::build(&events) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("seqrec-prof: {}: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    };

    let total = profile.total_us();
    println!(
        "trace: {} ({} span events, {:.3} ms wall clock in top-level spans)\n",
        args.trace,
        events.len(),
        total as f64 / 1e3
    );
    println!("== span hierarchy ==");
    print!("{}", profile.render_tree());

    println!("\n== top {} call paths by exclusive time ==", args.top);
    println!("{:>12} {:>12} {:>8}  path", "excl(ms)", "incl(ms)", "calls");
    for (path, excl, incl, count) in profile.top_exclusive(args.top) {
        println!("{:>12.3} {:>12.3} {:>8}  {}", excl as f64 / 1e3, incl as f64 / 1e3, count, path);
    }

    match parse_requests_auto(&text) {
        Ok(reqs) if !reqs.is_empty() => {
            println!("\n== serve request stages ==");
            print!("{}", RequestProfile::build(&reqs).render());
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("seqrec-prof: {}: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.folded {
        if let Err(e) = std::fs::write(path, profile.folded_stacks()) {
            eprintln!("seqrec-prof: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nfolded stacks written to {path} (inferno-flamegraph / speedscope)");
    }
    ExitCode::SUCCESS
}
