//! `bench-diff`: compares a fresh `BENCH_train.json` against the committed
//! baseline and exits non-zero when any tracked metric regresses beyond
//! its tolerance. This is the core of `scripts/bench_gate.sh`.
//!
//! ```text
//! bench-diff BASELINE FRESH [--tolerance-scale X]
//! ```
//!
//! Tracked metrics and worse-directions: `secs_per_epoch` (up),
//! `seqs_per_sec` (down), `gemm_gflops_per_sec` (down),
//! `peak_tensor_mib` (up). Improvements never fail the gate.

use std::process::ExitCode;

use seqrec_obs::benchdiff::{diff, scaled_specs};

const USAGE: &str = "\
usage: bench-diff BASELINE FRESH [--tolerance-scale X]
  BASELINE            committed bench report (e.g. BENCH_train.json)
  FRESH               freshly generated bench report to gate
  --tolerance-scale X multiply every tolerance by X (CI smoke mode uses a
                      loose scale to absorb tiny-run timer noise)";

fn run(argv: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut scale = 1.0f64;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--tolerance-scale" => {
                let v = it.next().ok_or("--tolerance-scale needs a value")?;
                scale = v.parse().map_err(|_| format!("invalid --tolerance-scale `{v}`"))?;
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(format!("--tolerance-scale must be positive, got `{v}`"));
                }
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let [baseline, fresh] = paths.as_slice() else {
        return Err("expected exactly BASELINE and FRESH paths".to_string());
    };
    let base_text =
        std::fs::read_to_string(baseline).map_err(|e| format!("cannot read {baseline}: {e}"))?;
    let fresh_text =
        std::fs::read_to_string(fresh).map_err(|e| format!("cannot read {fresh}: {e}"))?;
    let report = diff(&base_text, &fresh_text, &scaled_specs(scale))?;
    print!("{}", report.render());
    Ok(report.failed())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench-diff: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
