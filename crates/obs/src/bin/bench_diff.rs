//! `bench-diff`: compares a fresh `BENCH_train.json` against the committed
//! baseline and exits non-zero when any tracked metric regresses beyond
//! its tolerance. This is the core of `scripts/bench_gate.sh`.
//!
//! ```text
//! bench-diff BASELINE FRESH [--specs train|serve] [--tolerance-scale X]
//! ```
//!
//! Tracked metrics and worse-directions with `--specs train` (the
//! default): `secs_per_epoch` (up), `seqs_per_sec` (down),
//! `gemm_gflops_per_sec` (down), `peak_mib` (up), and the perfect-reuse
//! floor `whatif_peak_mib` (up). With
//! `--specs serve` (for `BENCH_serve.json`): `p50_us`/`p99_us`/
//! `queue_depth_p99` (up), `items_per_sec`/`cache_hit_rate`/
//! `batch_occupancy_mean_pct` (down), and the binary SLO verdict
//! `slo_ok` (any drop fails, even in smoke mode). Improvements never
//! fail the gate.

use std::process::ExitCode;

use seqrec_obs::benchdiff::{default_specs, diff, scale_specs, serve_specs};

const USAGE: &str = "\
usage: bench-diff BASELINE FRESH [--specs train|serve] [--tolerance-scale X]
  BASELINE            committed bench report (e.g. BENCH_train.json)
  FRESH               freshly generated bench report to gate
  --specs NAME        metric set: `train` (default, BENCH_train.json) or
                      `serve` (BENCH_serve.json latency/throughput/cache)
  --tolerance-scale X multiply every tolerance by X (CI smoke mode uses a
                      loose scale to absorb tiny-run timer noise)";

fn run(argv: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut scale = 1.0f64;
    let mut specs = default_specs();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--specs" => {
                let v = it.next().ok_or("--specs needs a value")?;
                specs = match v.as_str() {
                    "train" => default_specs(),
                    "serve" => serve_specs(),
                    other => return Err(format!("unknown --specs `{other}` (train|serve)")),
                };
            }
            "--tolerance-scale" => {
                let v = it.next().ok_or("--tolerance-scale needs a value")?;
                scale = v.parse().map_err(|_| format!("invalid --tolerance-scale `{v}`"))?;
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(format!("--tolerance-scale must be positive, got `{v}`"));
                }
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let [baseline, fresh] = paths.as_slice() else {
        return Err("expected exactly BASELINE and FRESH paths".to_string());
    };
    let base_text =
        std::fs::read_to_string(baseline).map_err(|e| format!("cannot read {baseline}: {e}"))?;
    let fresh_text =
        std::fs::read_to_string(fresh).map_err(|e| format!("cannot read {fresh}: {e}"))?;
    let report = diff(&base_text, &fresh_text, &scale_specs(specs, scale))?;
    print!("{}", report.render());
    Ok(report.failed())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench-diff: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
