//! Prometheus-style text exposition of the metric registry.
//!
//! [`render`] turns a [`crate::metrics::snapshot`] into the classic
//! text-based exposition format (`# TYPE` comments, cumulative
//! `_bucket{le="..."}` series, `_sum`/`_count`), and [`parse`] reads it
//! back — the shim `serde_json` is serialize-only, so round-trip tests and
//! the CI scrape validator need a hand-rolled parser, the same pattern as
//! [`crate::json`].
//!
//! Naming: registry names are dotted (`serve.latency_us`); exposition
//! names replace `.` with `_` and gain a `seqrec_` prefix
//! (`seqrec_serve_latency_us`). Rolling-window instruments keep their
//! `.window` suffix (`seqrec_serve_latency_us_window_bucket{...}`) and
//! carry the window length in a `seqrec_obs_window_us` gauge so scrapers
//! know what span the quantiles cover.
//!
//! Histogram `_bucket` series are **cumulative** (each `le` bucket counts
//! every sample at or below the bound, `+Inf` counts everything), exactly
//! like Prometheus — even though the in-memory registry stores disjoint
//! per-bucket counts.

use crate::metrics::{MetricReading, MetricValue};

/// Prefix for every exposed series.
const PREFIX: &str = "seqrec_";

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_hist(
    out: &mut String,
    name: &str,
    bounds: &[u64],
    counts: &[u64],
    overflow: u64,
    sum: u64,
) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for (b, c) in bounds.iter().zip(counts) {
        cum += c;
        out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cum}\n"));
    }
    // The +Inf bucket (and _count) is the computed cumulative total, not a
    // separately-read atomic, so one scrape is always self-consistent.
    cum += overflow;
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
    out.push_str(&format!("{name}_sum {sum}\n"));
    out.push_str(&format!("{name}_count {cum}\n"));
}

/// Renders `readings` in the Prometheus text exposition format.
pub fn render(readings: &[MetricReading]) -> String {
    let mut out = String::with_capacity(4096);
    let mut window_us: Option<u64> = None;
    for r in readings {
        let name = sanitize(r.name);
        match &r.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge { current, peak } => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {current}\n"));
                out.push_str(&format!("# TYPE {name}_peak gauge\n{name}_peak {peak}\n"));
            }
            MetricValue::Histogram { bounds, counts, overflow, sum, .. } => {
                push_hist(&mut out, &name, bounds, counts, *overflow, *sum);
            }
            MetricValue::Window { window_us: w, bounds, counts, overflow, sum, .. } => {
                window_us = Some(*w);
                push_hist(&mut out, &name, bounds, counts, *overflow, *sum);
            }
            MetricValue::WindowCount { window_us: w, value } => {
                window_us = Some(*w);
                out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
            }
        }
    }
    if let Some(w) = window_us {
        out.push_str(&format!("# TYPE seqrec_obs_window_us gauge\nseqrec_obs_window_us {w}\n"));
    }
    out
}

/// Renders the current registry ([`crate::metrics::snapshot`]).
pub fn render_current() -> String {
    render(&crate::metrics::snapshot())
}

// --- parser ------------------------------------------------------------------

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Series name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order (empty when the series has no labels).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: type declarations plus every sample.
#[derive(Debug, Default)]
pub struct Exposition {
    /// `# TYPE <name> <kind>` declarations in source order.
    pub types: Vec<(String, String)>,
    /// Every sample line in source order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The declared type of a metric family, if any.
    pub fn type_of(&self, family: &str) -> Option<&str> {
        self.types.iter().find(|(n, _)| n == family).map(|(_, k)| k.as_str())
    }

    /// The single unlabelled sample named `name`, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name && s.labels.is_empty()).map(|s| s.value)
    }

    /// The cumulative bucket samples of histogram `family`, as
    /// `(le-label, value)` pairs in source order (`+Inf` last).
    pub fn buckets(&self, family: &str) -> Vec<(String, f64)> {
        let series = format!("{family}_bucket");
        self.samples
            .iter()
            .filter(|s| s.name == series)
            .filter_map(|s| s.label("le").map(|le| (le.to_string(), s.value)))
            .collect()
    }

    /// Checks structural invariants of every declared histogram: buckets
    /// present, cumulative (non-decreasing), ending in `+Inf`, and
    /// `_count` equal to the `+Inf` bucket. Returns a description of the
    /// first violation.
    pub fn validate_histograms(&self) -> Result<(), String> {
        for (family, kind) in &self.types {
            if kind != "histogram" {
                continue;
            }
            let buckets = self.buckets(family);
            if buckets.is_empty() {
                return Err(format!("histogram {family} has no _bucket samples"));
            }
            let mut prev = f64::NEG_INFINITY;
            let mut prev_bound = f64::NEG_INFINITY;
            for (le, v) in &buckets {
                if *v < prev {
                    return Err(format!("histogram {family} buckets not cumulative at le={le}"));
                }
                let bound =
                    if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap_or(f64::NAN) };
                if bound.is_nan() || bound <= prev_bound {
                    return Err(format!(
                        "histogram {family} bucket bounds not ascending at le={le}"
                    ));
                }
                prev = *v;
                prev_bound = bound;
            }
            let (last_le, last_v) = buckets.last().expect("non-empty");
            if last_le != "+Inf" {
                return Err(format!("histogram {family} does not end in a +Inf bucket"));
            }
            match self.value(&format!("{family}_count")) {
                Some(count) if count == *last_v => {}
                Some(count) => {
                    return Err(format!(
                        "histogram {family}: _count {count} != +Inf bucket {last_v}"
                    ));
                }
                None => return Err(format!("histogram {family} has no _count sample")),
            }
            if self.value(&format!("{family}_sum")).is_none() {
                return Err(format!("histogram {family} has no _sum sample"));
            }
        }
        Ok(())
    }
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label without `=` in {{{s}}}"))?;
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value in {{{s}}}"));
        }
        // Label values here never contain escaped quotes (they are numeric
        // bounds or +Inf), so scanning for the closing quote is enough.
        let close = rest[1..].find('"').ok_or_else(|| format!("unterminated label in {{{s}}}"))?;
        let value = rest[1..1 + close].to_string();
        labels.push((key, value));
        rest = rest[2 + close..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Parses text in the Prometheus exposition format. Unknown comment lines
/// (`# HELP`, …) are skipped; malformed sample lines are errors.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name =
                    parts.next().ok_or(format!("line {}: # TYPE without name", lineno + 1))?;
                let kind =
                    parts.next().ok_or(format!("line {}: # TYPE without kind", lineno + 1))?;
                out.types.push((name.to_string(), kind.to_string()));
            }
            continue;
        }
        // `name{labels} value` or `name value`.
        let (series, value_str) = if let Some(open) = line.find('{') {
            let close =
                line.rfind('}').ok_or(format!("line {}: unterminated labels", lineno + 1))?;
            if close < open {
                return Err(format!("line {}: `}}` before `{{`", lineno + 1));
            }
            let labels = parse_labels(&line[open + 1..close])
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            (
                Sample { name: line[..open].trim().to_string(), labels, value: 0.0 },
                line[close + 1..].trim(),
            )
        } else {
            let (name, v) = line
                .split_once(char::is_whitespace)
                .ok_or(format!("line {}: sample without value: {line}", lineno + 1))?;
            (Sample { name: name.to_string(), labels: Vec::new(), value: 0.0 }, v.trim())
        };
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse().map_err(|_| format!("line {}: bad value `{v}`", lineno + 1))?,
        };
        out.samples.push(Sample { value, ..series });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricValue;

    fn reading(name: &'static str, value: MetricValue) -> MetricReading {
        MetricReading { name, value }
    }

    #[test]
    fn counter_and_gauge_round_trip() {
        let text = render(&[
            reading("serve.requests", MetricValue::Counter(42)),
            reading("serve.queue", MetricValue::Gauge { current: 3, peak: 17 }),
        ]);
        let exp = parse(&text).unwrap();
        assert_eq!(exp.type_of("seqrec_serve_requests"), Some("counter"));
        assert_eq!(exp.value("seqrec_serve_requests"), Some(42.0));
        assert_eq!(exp.type_of("seqrec_serve_queue"), Some("gauge"));
        assert_eq!(exp.value("seqrec_serve_queue"), Some(3.0));
        assert_eq!(exp.value("seqrec_serve_queue_peak"), Some(17.0));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_validated() {
        static BOUNDS: &[u64] = &[10, 100, 1_000];
        let text = render(&[reading(
            "serve.latency_us",
            MetricValue::Histogram {
                bounds: BOUNDS,
                counts: vec![5, 3, 0],
                overflow: 2,
                total: 10,
                sum: 1234,
            },
        )]);
        let exp = parse(&text).unwrap();
        exp.validate_histograms().unwrap();
        let buckets = exp.buckets("seqrec_serve_latency_us");
        assert_eq!(
            buckets,
            vec![
                ("10".to_string(), 5.0),
                ("100".to_string(), 8.0),
                ("1000".to_string(), 8.0),
                ("+Inf".to_string(), 10.0),
            ]
        );
        assert_eq!(exp.value("seqrec_serve_latency_us_count"), Some(10.0));
        assert_eq!(exp.value("seqrec_serve_latency_us_sum"), Some(1234.0));
    }

    #[test]
    fn window_metrics_expose_the_window_length() {
        static BOUNDS: &[u64] = &[50];
        let text = render(&[
            reading(
                "serve.latency_us.window",
                MetricValue::Window {
                    window_us: 10_000_000,
                    bounds: BOUNDS,
                    counts: vec![1],
                    overflow: 0,
                    total: 1,
                    sum: 40,
                },
            ),
            reading(
                "serve.cache.hits.window",
                MetricValue::WindowCount { window_us: 10_000_000, value: 9 },
            ),
        ]);
        let exp = parse(&text).unwrap();
        exp.validate_histograms().unwrap();
        assert_eq!(exp.type_of("seqrec_serve_latency_us_window"), Some("histogram"));
        assert_eq!(exp.value("seqrec_serve_cache_hits_window"), Some(9.0));
        assert_eq!(exp.value("seqrec_obs_window_us"), Some(10_000_000.0));
    }

    #[test]
    fn full_registry_renders_and_parses() {
        let text = render_current();
        let exp = parse(&text).unwrap();
        exp.validate_histograms().unwrap();
        assert!(exp.value("seqrec_serve_requests").is_some());
        assert!(exp.type_of("seqrec_serve_latency_us").is_some());
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        assert!(parse("seqrec_x").is_err());
        assert!(parse("seqrec_x{le=\"10\" 5").is_err());
        assert!(parse("seqrec_x notanumber").is_err());
        // Unknown comments are fine.
        assert!(parse("# HELP seqrec_x whatever\n").is_ok());
    }

    #[test]
    fn validator_catches_noncumulative_buckets() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"10\"} 5\n\
                    h_bucket{le=\"100\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 1\nh_count 5\n";
        let exp = parse(text).unwrap();
        assert!(exp.validate_histograms().is_err());
    }
}
