//! A minimal JSON writer and parser.
//!
//! The sinks need escaping ([`write_str`]); the trace-format tests and the
//! CI smoke tooling need to read emitted traces back, and the offline
//! `serde_json` shim is serialise-only — so a small recursive-descent
//! parser lives here too. It handles the full JSON grammar the sinks emit
//! (objects, arrays, strings with `\uXXXX` escapes, numbers, booleans,
//! null); it is not meant as a general-purpose JSON library.

use std::collections::BTreeMap;

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic for tests.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
///
/// # Errors
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Sinks never emit surrogate pairs; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_escaped_strings() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn roundtrips_through_the_parser() {
        let mut s = String::new();
        write_str(&mut s, "quote \" slash \\ newline \n tab \t done");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str().unwrap(), "quote \" slash \\ newline \n tab \t done");
    }

    #[test]
    fn parses_sink_shaped_objects() {
        let v =
            parse(r#"{"ev":"span_end","name":"batch","ts_us":12,"dur_us":3,"ok":true}"#).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("span_end"));
        assert_eq!(v.get("ts_us").unwrap().as_f64(), Some(12.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let v = parse(r#"[1, -2.5, 3e2, [], {"a": null}]"#).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(300.0));
        assert_eq!(arr[4].get("a"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1}x"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }
}
