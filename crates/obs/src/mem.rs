//! Allocation lifetime tracing for the tensor buffer layer.
//!
//! The accounting `Buf` newtype in `seqrec-tensor` reports every real
//! buffer allocation and free here. When memory tracing is **off** (the
//! default) the whole module costs one relaxed atomic load per allocation
//! and nothing per free. When on, each traced allocation gets a monotonic
//! buffer id and fans out to up to two consumers:
//!
//! * the installed **sink** (`SEQREC_OBS=mem=all` or `mem=N`): emits
//!   [`crate::Event::MemAlloc`]/[`crate::Event::MemFree`] events carrying
//!   the buffer id, size, the owning span path captured from the calling
//!   thread's span stack, and the live-bytes level — the stream
//!   `seqrec-prof --mem` folds into a peak breakdown and what-if report;
//! * the in-process **interval recorder** ([`record_start`] /
//!   [`record_stop`]): collects `(alloc, free, bytes)` intervals without
//!   any sink, so `bench_train` can compute the what-if arena peak for
//!   every method it times.
//!
//! Sampling keeps big runs tractable: `mem=N` emits only buffers whose id
//! is divisible by `N`. Because the predicate depends on the id alone, a
//! sampled allocation's free is always emitted too — alloc/free events
//! pair up at any sampling rate. Attribution sums only equal the observed
//! peak at `mem=all`; sampled traces are estimates.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::sink;
use crate::span;

/// One buffer lifetime captured by the interval recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Allocation timestamp (µs since the trace epoch).
    pub start_us: u64,
    /// Free timestamp; `None` when the buffer was still live when
    /// recording stopped.
    pub end_us: Option<u64>,
    /// Buffer size in bytes.
    pub bytes: u64,
    /// Global event sequence number of the allocation (orders events that
    /// share a microsecond).
    pub alloc_seq: u64,
    /// Global event sequence number of the free, when freed.
    pub free_seq: Option<u64>,
}

/// True when any consumer (sink mode or recorder) wants events. The single
/// relaxed load every `Buf` allocation pays.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Sink sampling modulus: 0 = sink emission off, `n >= 1` = emit buffers
/// with `id % n == 0` (`mem=all` sets 1).
static SINK_SAMPLE: AtomicU64 = AtomicU64::new(0);
/// Recorder-on flag (duplicated out of the mutex for the fast path).
static RECORDING: AtomicBool = AtomicBool::new(false);
/// Monotonic buffer ids; 0 is reserved for "allocated while tracing was
/// off" so frees of such buffers can be skipped without any bookkeeping.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
/// Monotonic event sequence numbers for the recorder.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
/// Live tensor bytes tracked by this module alone. Same level as the
/// `tensor.live_bytes` gauge, but immune to [`crate::metrics::reset_all`],
/// so [`LeakCheck`] deltas stay valid across mid-run metric resets (e.g.
/// `bench_train` resetting per-method counters while a model is live).
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

struct RecState {
    /// Buffers allocated but not yet freed: id → (start_us, alloc_seq, bytes).
    live: HashMap<u64, (u64, u64, u64)>,
    /// Completed lifetimes.
    closed: Vec<Interval>,
}

static RECORDER: Mutex<Option<RecState>> = Mutex::new(None);

fn recorder_slot() -> std::sync::MutexGuard<'static, Option<RecState>> {
    RECORDER.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn refresh_active() {
    ACTIVE.store(SINK_SAMPLE.load(Relaxed) > 0 || RECORDING.load(Relaxed), Relaxed);
}

/// Enables (`Some(n)`, `n >= 1`) or disables (`None`) mem-event emission
/// into the installed sink. Set by [`crate::init_with`] from the `mem=`
/// directive and cleared when the [`crate::ObsGuard`] drops.
pub fn set_sink_mode(sample: Option<u64>) {
    SINK_SAMPLE.store(sample.map_or(0, |n| n.max(1)), Relaxed);
    refresh_active();
}

/// The active sink sampling modulus (0 = off).
pub fn sink_sample() -> u64 {
    SINK_SAMPLE.load(Relaxed)
}

/// Starts (or restarts) the in-process interval recorder. Buffers already
/// live are not retroactively recorded; only allocations from this call
/// on are.
pub fn record_start() {
    *recorder_slot() = Some(RecState { live: HashMap::new(), closed: Vec::new() });
    RECORDING.store(true, Relaxed);
    refresh_active();
}

/// Stops the recorder and returns every captured lifetime. Buffers still
/// live get `end_us: None` — the leak set, which what-if planning treats
/// as occupied to the end of the window.
pub fn record_stop() -> Vec<Interval> {
    RECORDING.store(false, Relaxed);
    refresh_active();
    let state = recorder_slot().take();
    let Some(mut state) = state else {
        return Vec::new();
    };
    let mut out = std::mem::take(&mut state.closed);
    for (_, (start_us, alloc_seq, bytes)) in state.live.drain() {
        out.push(Interval { start_us, end_us: None, bytes, alloc_seq, free_seq: None });
    }
    out.sort_by_key(|iv| iv.alloc_seq);
    out
}

/// Reports one buffer allocation of `bytes` bytes. Returns the buffer id
/// the caller must hand back to [`on_free`] when the buffer drops, or 0
/// when tracing is off (the free of an id-0 buffer is a no-op).
#[inline]
pub fn on_alloc(bytes: usize) -> u64 {
    LIVE_BYTES.fetch_add(bytes as i64, Relaxed);
    if !ACTIVE.load(Relaxed) {
        return 0;
    }
    alloc_slow(bytes as u64)
}

#[cold]
fn alloc_slow(bytes: u64) -> u64 {
    let id = NEXT_ID.fetch_add(1, Relaxed);
    let seq = NEXT_SEQ.fetch_add(1, Relaxed);
    let ts_us = sink::now_us();
    if RECORDING.load(Relaxed) {
        if let Some(state) = recorder_slot().as_mut() {
            state.live.insert(id, (ts_us, seq, bytes));
        }
    }
    let n = SINK_SAMPLE.load(Relaxed);
    if n > 0 && id.is_multiple_of(n) && sink::enabled() {
        crate::metrics::MEM_TRACED_ALLOCS.incr();
        let path = span::current_path();
        sink::dispatch(&crate::Event::MemAlloc {
            id,
            bytes,
            live_bytes: crate::metrics::TENSOR_LIVE_BYTES.get(),
            tid: sink::tid(),
            ts_us,
            path: &path,
        });
    }
    id
}

/// Reports the free of a buffer previously returned by [`on_alloc`].
/// Id 0 (allocated while tracing was off) is ignored.
#[inline]
pub fn on_free(id: u64, bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as i64, Relaxed);
    if id == 0 {
        return;
    }
    free_slow(id, bytes as u64);
}

#[cold]
fn free_slow(id: u64, bytes: u64) {
    let ts_us = sink::now_us();
    if RECORDING.load(Relaxed) {
        let seq = NEXT_SEQ.fetch_add(1, Relaxed);
        if let Some(state) = recorder_slot().as_mut() {
            if let Some((start_us, alloc_seq, b)) = state.live.remove(&id) {
                state.closed.push(Interval {
                    start_us,
                    end_us: Some(ts_us),
                    bytes: b,
                    alloc_seq,
                    free_seq: Some(seq),
                });
            }
        }
    }
    let n = SINK_SAMPLE.load(Relaxed);
    if n > 0 && id.is_multiple_of(n) && sink::enabled() {
        crate::metrics::MEM_TRACED_FREES.incr();
        sink::dispatch(&crate::Event::MemFree {
            id,
            bytes,
            live_bytes: crate::metrics::TENSOR_LIVE_BYTES.get(),
            tid: sink::tid(),
            ts_us,
        });
    }
}

/// End-of-scope leak sentinel over the module's own live-bytes level
/// (not the resettable `tensor.live_bytes` gauge): captures the level at
/// construction; [`LeakCheck::leaked_bytes`] reports how far the level
/// now sits above it. Wrap a model's whole lifetime (construction,
/// training, drop) — anything still live afterwards escaped its owner.
/// Mid-run `metrics::reset_all()` calls do not disturb the delta.
pub struct LeakCheck {
    start_level: i64,
}

impl LeakCheck {
    /// Captures the current live-bytes level.
    #[must_use]
    pub fn start() -> LeakCheck {
        LeakCheck { start_level: LIVE_BYTES.load(Relaxed) }
    }

    /// Bytes live now in excess of the level at [`LeakCheck::start`]
    /// (0 when the level fell or held).
    pub fn leaked_bytes(&self) -> u64 {
        (LIVE_BYTES.load(Relaxed) - self.start_level).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink/recorder/live-level state is process-global, so every test
    // in this module serialises on one lock and leaves the state balanced
    // (sink off, recorder off, allocs matched by frees) before returning.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn off_mode_assigns_id_zero_and_free_is_a_noop() {
        let _g = serial();
        set_sink_mode(None);
        assert_eq!(on_alloc(1024), 0);
        on_free(0, 1024); // must not panic or touch anything
    }

    #[test]
    fn recorder_captures_lifetimes_and_leaks() {
        let _g = serial();
        record_start();
        let a = on_alloc(100);
        let b = on_alloc(200);
        assert!(a > 0 && b > a);
        on_free(a, 100);
        let intervals = record_stop();
        assert_eq!(intervals.len(), 2);
        let freed = intervals.iter().find(|iv| iv.bytes == 100).expect("freed interval");
        assert!(freed.end_us.is_some() && freed.free_seq.is_some());
        let leaked = intervals.iter().find(|iv| iv.bytes == 200).expect("live interval");
        assert!(leaked.end_us.is_none() && leaked.free_seq.is_none());
        // Frees after recording stopped are ignored, not mis-counted.
        on_free(b, 200);
        assert!(record_stop().is_empty());
    }

    #[test]
    fn intervals_come_back_in_allocation_order() {
        let _g = serial();
        record_start();
        let ids: Vec<u64> = (0..5).map(|i| on_alloc(8 * (i + 1))).collect();
        for &id in ids.iter().rev() {
            on_free(id, 0); // bytes argument unused by the recorder path
        }
        let intervals = record_stop();
        let seqs: Vec<u64> = intervals.iter().map(|iv| iv.alloc_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert!(intervals.iter().all(|iv| iv.free_seq.unwrap() > iv.alloc_seq));
    }

    #[test]
    fn leak_check_measures_level_growth_and_survives_metric_resets() {
        let _g = serial();
        let check = LeakCheck::start();
        let id = on_alloc(4096);
        assert_eq!(check.leaked_bytes(), 4096);
        // A mid-run metric reset (as bench_train does between methods) must
        // not disturb the delta — the leak level is not the gauge.
        crate::metrics::reset_all();
        assert_eq!(check.leaked_bytes(), 4096);
        on_free(id, 4096);
        assert_eq!(check.leaked_bytes(), 0);
        // Level below the start: clamped, not negative.
        on_free(0, 1024);
        assert_eq!(check.leaked_bytes(), 0);
        on_alloc(1024);
    }
}
