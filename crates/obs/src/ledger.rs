//! The run ledger: a durable per-run directory making every experiment
//! reproducible from disk alone.
//!
//! Layout of one run directory (`runs/<name>-<seed>/` by convention):
//!
//! ```text
//! config.json     full hyperparameters + seed (+ augmentation rates)
//! env.json        environment snapshot taken at run start
//! metrics.jsonl   one JSON object per epoch (loss, HR@10, timing, dynamics)
//! dynamics.jsonl  one JSON object per optimiser step (loss, grad norms,
//!                 update:parameter ratios) — written by the fit loops
//! report.json     the final training report (including any anomaly)
//! ```
//!
//! The ledger is pure std: callers serialise their own structs (with the
//! workspace `serde_json`) and hand the ledger finished JSON text. Every
//! write validates through [`crate::json::parse`] first, so a ledger can
//! never contain a file that strict JSON parsers reject — a provenance
//! record that does not parse is worse than no record.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::json;

/// A run directory being written.
#[derive(Debug)]
pub struct RunLedger {
    dir: PathBuf,
}

impl RunLedger {
    /// Creates (or re-opens, truncating the JSONL streams) the run
    /// directory at `dir`. Reusing a directory overwrites the previous run
    /// of the same name — runs are keyed by `<name>-<seed>` so a repeated
    /// invocation is the same experiment.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<RunLedger> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // Truncate append-mode streams from any previous run in this dir.
        for stream in ["metrics.jsonl", "dynamics.jsonl"] {
            let p = dir.join(stream);
            if p.exists() {
                fs::remove_file(&p)?;
            }
        }
        Ok(RunLedger { dir })
    }

    /// Convenience constructor for the `root/<name>-<seed>` convention.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn create_named(
        root: impl AsRef<Path>,
        name: &str,
        seed: u64,
    ) -> std::io::Result<RunLedger> {
        Self::create(root.as_ref().join(format!("{name}-{seed}")))
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `config.json`.
    ///
    /// # Panics
    /// Panics when `json_text` is not valid JSON or the file cannot be
    /// written — a silently incomplete ledger defeats its purpose.
    pub fn write_config(&self, json_text: &str) {
        self.write_json_file("config.json", json_text);
    }

    /// Writes `report.json` (the final training/experiment report).
    ///
    /// # Panics
    /// Panics when `json_text` is not valid JSON or the file cannot be
    /// written.
    pub fn write_report(&self, json_text: &str) {
        self.write_json_file("report.json", json_text);
    }

    /// Appends one object to `metrics.jsonl` (one line per epoch).
    ///
    /// # Panics
    /// Panics when `json_text` is not a valid JSON document or the file
    /// cannot be appended to.
    pub fn append_metrics(&self, json_text: &str) {
        self.append_jsonl("metrics.jsonl", json_text);
    }

    /// Appends one object to `dynamics.jsonl` (one line per optimiser step).
    ///
    /// # Panics
    /// Panics when `json_text` is not a valid JSON document or the file
    /// cannot be appended to.
    pub fn append_dynamics(&self, json_text: &str) {
        self.append_jsonl("dynamics.jsonl", json_text);
    }

    /// Takes the environment snapshot and writes `env.json`: OS, CPU count,
    /// package version, threading note, and the `SEQREC_OBS` directives in
    /// effect — everything needed to interpret the run's timings later.
    pub fn write_env_snapshot(&self) {
        let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
        let mut s = String::with_capacity(256);
        s.push_str("{\"os\":");
        json::write_str(&mut s, std::env::consts::OS);
        s.push_str(",\"arch\":");
        json::write_str(&mut s, std::env::consts::ARCH);
        s.push_str(&format!(",\"hardware_cpus\":{cpus}"));
        let (threads, threads_source) = configured_threads(cpus);
        s.push_str(&format!(",\"threads_used\":{threads},\"threads_source\":"));
        json::write_str(&mut s, threads_source);
        s.push_str(",\"threading_note\":");
        json::write_str(
            &mut s,
            "in-tree work-stealing rayon shim; threads_used is the global pool size \
             (serial fallback at 1)",
        );
        s.push_str(",\"package_version\":");
        json::write_str(&mut s, env!("CARGO_PKG_VERSION"));
        s.push_str(",\"seqrec_obs\":");
        json::write_str(&mut s, &std::env::var("SEQREC_OBS").unwrap_or_default());
        s.push_str(",\"unix_time_secs\":");
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        s.push_str(&now.to_string());
        s.push('}');
        self.write_json_file("env.json", &s);
    }

    /// The path a trace file should use to live inside this run directory
    /// (pass it to `SEQREC_OBS=jsonl=...`/`chrome=...` or a sink
    /// constructor).
    pub fn trace_path(&self, file_name: &str) -> PathBuf {
        self.dir.join(file_name)
    }

    fn write_json_file(&self, name: &str, json_text: &str) {
        json::parse(json_text).unwrap_or_else(|e| {
            panic!("refusing to write invalid JSON to ledger {name}: {e}\n{json_text}")
        });
        let path = self.dir.join(name);
        let mut f =
            File::create(&path).unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        writeln!(f, "{json_text}")
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }

    fn append_jsonl(&self, name: &str, json_text: &str) {
        json::parse(json_text).unwrap_or_else(|e| {
            panic!("refusing to append invalid JSON to ledger {name}: {e}\n{json_text}")
        });
        let path = self.dir.join(name);
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
        writeln!(f, "{json_text}")
            .unwrap_or_else(|e| panic!("cannot append {}: {e}", path.display()));
    }
}

/// The thread count the rayon shim's global pool will use, and where that
/// number came from. This mirrors the sizing rule in `shims/rayon` —
/// `SEQREC_THREADS` when set to a positive integer, else the machine's
/// available parallelism — because `seqrec-obs` is intentionally
/// dependency-free and cannot ask the pool directly.
fn configured_threads(hardware_cpus: usize) -> (usize, &'static str) {
    if let Ok(v) = std::env::var("SEQREC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return (n, "SEQREC_THREADS");
            }
        }
    }
    (hardware_cpus.max(1), "available_parallelism")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("seqrec_ledger_{tag}_{}", std::process::id()))
    }

    #[test]
    fn writes_a_complete_run_directory() {
        let root = tmp_dir("full");
        let ledger = RunLedger::create_named(&root, "unit", 7).unwrap();
        ledger.write_config(r#"{"model":"test","seed":7}"#);
        ledger.write_env_snapshot();
        ledger.append_metrics(r#"{"epoch":0,"loss":1.5}"#);
        ledger.append_metrics(r#"{"epoch":1,"loss":1.2}"#);
        ledger.write_report(r#"{"best":0.5}"#);

        let dir = root.join("unit-7");
        let config = std::fs::read_to_string(dir.join("config.json")).unwrap();
        assert_eq!(json::parse(&config).unwrap().get("seed").unwrap().as_f64(), Some(7.0));
        let env = std::fs::read_to_string(dir.join("env.json")).unwrap();
        let env = json::parse(&env).unwrap();
        assert!(env.get("hardware_cpus").unwrap().as_f64().unwrap() >= 1.0);
        assert_eq!(env.get("os").unwrap().as_str(), Some(std::env::consts::OS));
        let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        assert_eq!(metrics.lines().count(), 2);
        for line in metrics.lines() {
            json::parse(line).unwrap();
        }
        assert!(dir.join("report.json").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn recreating_a_run_truncates_the_jsonl_streams() {
        let root = tmp_dir("trunc");
        let ledger = RunLedger::create_named(&root, "unit", 1).unwrap();
        ledger.append_metrics(r#"{"epoch":0}"#);
        ledger.append_dynamics(r#"{"step":1}"#);
        drop(ledger);
        let ledger = RunLedger::create_named(&root, "unit", 1).unwrap();
        ledger.append_metrics(r#"{"epoch":0}"#);
        let metrics = std::fs::read_to_string(ledger.dir().join("metrics.jsonl")).unwrap();
        assert_eq!(metrics.lines().count(), 1, "stale lines survived re-creation");
        assert!(!ledger.dir().join("dynamics.jsonl").exists(), "stale dynamics stream kept");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    #[should_panic(expected = "refusing to write invalid JSON")]
    fn invalid_json_is_rejected() {
        let root = tmp_dir("invalid");
        let ledger = RunLedger::create_named(&root, "unit", 2).unwrap();
        ledger.write_config("{not json");
    }

    #[test]
    fn trace_path_lives_inside_the_run_dir() {
        let root = tmp_dir("trace");
        let ledger = RunLedger::create_named(&root, "unit", 3).unwrap();
        assert!(ledger.trace_path("trace.json").starts_with(ledger.dir()));
        let _ = std::fs::remove_dir_all(&root);
    }
}
