//! The NT-Xent contrastive loss (Eq. 3 of the paper).
//!
//! Given projected representations of two augmented views per user, the
//! loss pulls the two views of the same user together and pushes the other
//! `2(N-1)` in-batch views away, measured by cosine similarity with
//! temperature `τ`. Implemented as one `2N × 2N` similarity matmul followed
//! by a fused softmax cross-entropy — the `nt_xent` criterion bench compares
//! this against a per-pair loop.

use seqrec_tensor::nn::Step;
use seqrec_tensor::{Tensor, Var};

/// Computes NT-Xent over a batch: `z1[i]` and `z2[i]` are the two views of
/// user `i` (`[N, d]` each). Returns the scalar mean loss over all `2N`
/// anchors.
///
/// # Panics
/// Panics if the shapes differ or `tau <= 0`.
pub fn nt_xent(step: &mut Step, z1: Var, z2: Var, tau: f32) -> Var {
    assert!(tau > 0.0, "temperature must be positive, got {tau}");
    let n = {
        let (s1, s2) = (step.tape.value(z1).shape(), step.tape.value(z2).shape());
        assert_eq!(s1, s2, "view shapes differ: {s1} vs {s2}");
        assert_eq!(s1.rank(), 2, "views must be [N, d], got {s1}");
        s1.dim(0)
    };
    assert!(n >= 2, "NT-Xent needs at least 2 users per batch for negatives");

    // [2N, d] unit rows → cosine similarities via one matmul.
    let z = step.tape.concat0(z1, z2);
    let zn = step.tape.normalize_rows(z, 1e-12);
    let sim = step.tape.matmul_nt(zn, zn);
    let sim = step.tape.scale(sim, 1.0 / tau);

    // Remove self-similarity from every softmax row.
    let two_n = 2 * n;
    let mut diag = Tensor::zeros([two_n, two_n]);
    for i in 0..two_n {
        diag.data_mut()[i * two_n + i] = -1e9;
    }
    let masked = step.tape.add_const(sim, &diag);

    // Row i's positive is its other view: i+N for the first half, i-N after.
    let targets: Vec<u32> =
        (0..two_n).map(|i| if i < n { (i + n) as u32 } else { (i - n) as u32 }).collect();
    let losses = step.tape.softmax_cross_entropy(masked, &targets);
    step.tape.mean_all(losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_tensor::init::{rng, uniform};

    fn loss_of(z1: Tensor, z2: Tensor, tau: f32) -> f32 {
        let mut step = Step::new();
        let a = step.tape.leaf(z1);
        let b = step.tape.leaf(z2);
        let l = nt_xent(&mut step, a, b, tau);
        step.tape.value(l).item()
    }

    /// Orthogonal users whose two views are identical vectors: the positive
    /// dominates, loss should be far below the uniform baseline `ln(2N-1)`.
    #[test]
    fn aligned_views_give_low_loss() {
        let z = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let low = loss_of(z.clone(), z, 0.1);
        assert!(low < 0.01, "aligned loss {low}");
    }

    #[test]
    fn mismatched_views_give_high_loss() {
        // each user's second view equals the OTHER user's first view
        let z1 = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let z2 = Tensor::from_vec([2, 2], vec![0.0, 1.0, 1.0, 0.0]);
        let high = loss_of(z1.clone(), z2, 0.1);
        let aligned = loss_of(z1.clone(), z1, 0.1);
        assert!(high > aligned + 1.0, "high {high} vs aligned {aligned}");
    }

    #[test]
    fn random_views_sit_near_the_uniform_baseline() {
        let mut r = rng(11);
        let n = 16;
        let z1 = uniform([n, 8], -1.0, 1.0, &mut r);
        let z2 = uniform([n, 8], -1.0, 1.0, &mut r);
        let l = loss_of(z1, z2, 10.0); // huge tau → similarities ≈ uniform
        let baseline = ((2 * n - 1) as f32).ln();
        assert!((l - baseline).abs() < 0.05, "loss {l} vs ln(2N-1) {baseline}");
    }

    #[test]
    fn loss_is_scale_invariant_thanks_to_cosine() {
        let mut r = rng(12);
        let z1 = uniform([4, 6], -1.0, 1.0, &mut r);
        let z2 = uniform([4, 6], -1.0, 1.0, &mut r);
        let a = loss_of(z1.clone(), z2.clone(), 0.5);
        let b = loss_of(z1.scale(7.0), z2.scale(0.1), 0.5);
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }

    #[test]
    fn gradient_pulls_views_together() {
        // One optimisation step on z1 must increase cos(z1[i], z2[i]).
        let mut r = rng(13);
        let z1 = uniform([4, 6], -0.5, 0.5, &mut r);
        let z2 = uniform([4, 6], -0.5, 0.5, &mut r);
        let cos = |a: &Tensor, b: &Tensor| -> f32 {
            let mut total = 0.0;
            for i in 0..4 {
                let ra = &a.data()[i * 6..(i + 1) * 6];
                let rb = &b.data()[i * 6..(i + 1) * 6];
                let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
                let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
                let nb: f32 = rb.iter().map(|x| x * x).sum::<f32>().sqrt();
                total += dot / (na * nb);
            }
            total / 4.0
        };
        let before = cos(&z1, &z2);

        let mut step = Step::new();
        let a = step.tape.leaf(z1.clone());
        let b = step.tape.leaf(z2.clone());
        let l = nt_xent(&mut step, a, b, 0.5);
        let grads = step.tape.backward(l);
        let g = grads.get(a).unwrap();
        let z1_new = z1.sub(&g.scale(0.5));
        let after = cos(&z1_new, &z2);
        assert!(after > before, "cosine went {before} -> {after}");
    }

    #[test]
    fn gradcheck_nt_xent() {
        let mut r = rng(14);
        let z1 = uniform([3, 4], -1.0, 1.0, &mut r).map(|x| x + 0.4 * x.signum());
        let z2 = uniform([3, 4], -1.0, 1.0, &mut r).map(|x| x + 0.4 * x.signum());
        seqrec_tensor::gradcheck::assert_gradients(
            |s, v| nt_xent(s, v[0], v[1], 0.7),
            &[z1, z2],
            1e-2,
            5e-3,
        );
    }

    /// Eq. 13 worked out on paper for a 2×2 batch. With z1 = z2 = I₂ the
    /// four anchors are e₁, e₂, e₁, e₂; every anchor sees its positive at
    /// cosine 1 and its two in-batch negatives at cosine 0, so
    ///
    /// ```text
    /// ℓ = −log( e^{1/τ} / (e^{1/τ} + e⁰ + e⁰) ) = ln(2 + e^{1/τ}) − 1/τ
    /// ```
    ///
    /// identically for all anchors. At τ = 0.5 that is ln(2 + e²) − 2 =
    /// 0.239543…; at τ = 1 it is ln(2 + e) − 1 = 0.551444….
    #[test]
    fn hand_computed_2x2_aligned() {
        let z = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let at_half = loss_of(z.clone(), z.clone(), 0.5);
        assert!((at_half - 0.239_543).abs() < 1e-4, "τ=0.5: got {at_half}");
        let at_one = loss_of(z.clone(), z, 1.0);
        assert!((at_one - 0.551_444).abs() < 1e-4, "τ=1: got {at_one}");
    }

    /// The adversarial sibling: z2 swaps the rows of z1, so each anchor's
    /// positive is orthogonal (cos 0) while one *negative* sits at cos 1:
    ///
    /// ```text
    /// ℓ = −log( e⁰ / (e⁰ + e^{1/τ} + e⁰) ) = ln(2 + e^{1/τ})
    /// ```
    ///
    /// i.e. exactly 1/τ above the aligned case — 2.239543… at τ = 0.5.
    #[test]
    fn hand_computed_2x2_swapped() {
        let z1 = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let z2 = Tensor::from_vec([2, 2], vec![0.0, 1.0, 1.0, 0.0]);
        let l = loss_of(z1, z2, 0.5);
        assert!((l - 2.239_543).abs() < 1e-4, "τ=0.5 swapped: got {l}");
    }

    /// Swapping the two views cannot change the loss: the 2N anchors are
    /// the same set, just enumerated in a different order.
    #[test]
    fn loss_is_symmetric_in_the_views() {
        for seed in 0..10 {
            let mut r = rng(100 + seed);
            let z1 = uniform([5, 7], -1.0, 1.0, &mut r);
            let z2 = uniform([5, 7], -1.0, 1.0, &mut r);
            let ab = loss_of(z1.clone(), z2.clone(), 0.4);
            let ba = loss_of(z2, z1, 0.4);
            assert!((ab - ba).abs() < 1e-5, "seed {seed}: {ab} vs {ba}");
        }
    }

    /// With identical views every anchor's positive is its own argmax
    /// similarity, so raising τ can only flatten the softmax away from the
    /// correct answer: the loss must increase monotonically in τ, from ~0
    /// (τ → 0 sharpens onto the positive) toward ln(2N−1) (τ → ∞).
    #[test]
    fn loss_is_monotone_in_temperature() {
        let taus = [0.1f32, 0.2, 0.5, 1.0, 2.0, 5.0];
        for seed in 0..10 {
            let mut r = rng(200 + seed);
            let z = uniform([4, 6], -1.0, 1.0, &mut r);
            let mut prev = f32::NEG_INFINITY;
            for &tau in &taus {
                let l = loss_of(z.clone(), z.clone(), tau);
                assert!(l > prev, "seed {seed}: loss not increasing at τ={tau}: {l} ≤ {prev}");
                prev = l;
            }
            let cap = (2.0f32 * 4.0 - 1.0).ln();
            assert!(prev < cap, "seed {seed}: τ=5 loss {prev} above ln(2N−1) {cap}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_single_user_batches() {
        let z = Tensor::from_vec([1, 2], vec![1.0, 0.0]);
        loss_of(z.clone(), z, 0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_temperature() {
        let z = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        loss_of(z.clone(), z, 0.0);
    }
}
