//! # cl4srec
//!
//! A faithful Rust implementation of **Contrastive Learning for Sequential
//! Recommendation** (CL4SRec, Xie et al.; arXiv title *Contrastive
//! Pre-training for Sequential Recommendation* / CP4Rec):
//!
//! * [`augment`] — the three stochastic sequence augmentations of §3.3
//!   (item crop, item mask, item reorder) plus composition.
//! * [`ntxent`] — the NT-Xent contrastive loss of Eq. 3 (cosine
//!   similarity, temperature τ, in-batch negatives).
//! * [`model`] — the two-stage pipeline: contrastive pre-training of the
//!   Transformer user encoder with a throwaway linear projection head,
//!   then next-item fine-tuning (Eq. 15).
//!
//! ```no_run
//! use cl4srec::augment::AugmentationSet;
//! use cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
//! use seqrec_data::synthetic::{generate_dataset, SyntheticConfig};
//! use seqrec_data::Split;
//! use seqrec_models::TrainOptions;
//!
//! let dataset = generate_dataset(&SyntheticConfig::beauty(0.05));
//! let split = Split::leave_one_out(&dataset);
//! let mut model = Cl4sRec::new(Cl4sRecConfig::small(dataset.num_items()), 42);
//! let augs = AugmentationSet::paper_full(0.6, 0.5, 0.5, model.mask_token());
//! model.fit(&split, &augs, &PretrainOptions::default(), &TrainOptions::default());
//! ```

#![warn(missing_docs)]

pub mod augment;
pub mod model;
pub mod ntxent;

pub use augment::{Augmentation, AugmentationSet, Crop, Identity, Mask, Reorder};
pub use model::{Cl4sRec, Cl4sRecConfig, PretrainOptions, PretrainReport};
pub use ntxent::nt_xent;
