//! The CL4SRec model: contrastive pre-training + fine-tuning (§3.2, §3.5).
//!
//! Pre-training (Figure 1): each user sequence is transformed by two
//! operators sampled from the augmentation set `𝒜`; both views pass through
//! the shared Transformer encoder `f(·)` and a linear projection `g(·)`;
//! NT-Xent (Eq. 3) is minimised over in-batch negatives. Fine-tuning throws
//! the projection away and optimises the standard next-item objective
//! (Eq. 15) from the pre-trained encoder weights.

use rayon::prelude::*;
use seqrec_data::batch::{epoch_batches, pad_left};
use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_models::checkpoint::{self, CheckpointError, Checkpointable, TensorData};
use seqrec_models::common::{
    AnomalyPolicy, AnomalyReport, EarlyStopper, EpochClock, FitSession, TrainOptions, TrainReport,
};
use seqrec_models::dp;
use seqrec_models::encoder::EncoderConfig;
use seqrec_models::sasrec::SasRec;
use seqrec_obs::json::Value as JsonValue;
use seqrec_tensor::init::{rng, TensorRng};
use seqrec_tensor::nn::{HasParams, Linear, Param, Step};
use seqrec_tensor::optim::{Adam, AdamConfig};
use seqrec_tensor::Var;
use serde::{Deserialize, Serialize};

use crate::augment::AugmentationSet;
use crate::ntxent::nt_xent;

/// CL4SRec hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cl4sRecConfig {
    /// The shared user-representation encoder.
    pub encoder: EncoderConfig,
    /// NT-Xent softmax temperature τ (Eq. 3).
    pub tau: f32,
}

impl Cl4sRecConfig {
    /// Defaults used by the experiments: the small encoder and τ = 0.5.
    pub fn small(num_items: usize) -> Self {
        Cl4sRecConfig { encoder: EncoderConfig::small(num_items), tau: 0.5 }
    }

    /// The paper-scale encoder (d = 128).
    pub fn paper(num_items: usize) -> Self {
        Cl4sRecConfig { encoder: EncoderConfig::paper(num_items), tau: 0.5 }
    }
}

/// Pre-training options.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PretrainOptions {
    /// Pre-training epochs.
    pub epochs: usize,
    /// Mini-batch size `N` (the contrastive batch is `2N`).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed (augmentation sampling, dropout, shuffling).
    pub seed: u64,
    /// Stop after this many epochs without a new minimum training loss.
    pub patience: Option<usize>,
    /// Console verbosity: 0 = silent, 1 = one line per epoch, 2 = chatty.
    pub verbosity: u8,
    /// What to do when the contrastive loss or gradients go NaN/Inf.
    pub on_anomaly: AnomalyPolicy,
    /// When set, pre-training writes a run ledger into this directory
    /// (same layout as [`TrainOptions::run_dir`]).
    pub run_dir: Option<String>,
    /// Data-parallel degree: split each contrastive batch into this many
    /// row shards, run forward/backward per shard, and tree-all-reduce
    /// gradients before one Adam step (see [`seqrec_models::dp`]).
    /// Augmented views are identical to a serial pass (per-sequence
    /// substreams), but NT-Xent negatives come from within each shard, so
    /// the sharded objective contrasts against `2·N/shards − 1` negatives
    /// instead of `2N − 1`. 1 (the default) keeps the serial step.
    pub data_parallel: usize,
}

impl Default for PretrainOptions {
    fn default() -> Self {
        PretrainOptions {
            epochs: 20,
            batch_size: 256,
            lr: 1e-3,
            seed: 7,
            patience: Some(3),
            verbosity: 0,
            on_anomaly: AnomalyPolicy::Warn,
            run_dir: None,
            data_parallel: 1,
        }
    }
}

/// Pre-training telemetry.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PretrainReport {
    /// Mean contrastive loss per epoch.
    pub losses: Vec<f32>,
    /// Whether loss-based early stopping triggered.
    pub early_stopped: bool,
    /// Wall-clock seconds per epoch (parallel to `losses`).
    pub epoch_secs: Vec<f64>,
    /// Training throughput per epoch in sequences/second (parallel to
    /// `losses`).
    pub seqs_per_sec: Vec<f64>,
    /// First non-finite observation, if any (the run aborted here under
    /// [`AnomalyPolicy::Abort`]).
    pub anomaly: Option<AnomalyReport>,
    /// Optimiser steps that observed a non-finite quantity.
    pub anomalous_steps: u64,
}

/// The CL4SRec model.
pub struct Cl4sRec {
    sasrec: SasRec,
    proj: Linear,
    cfg: Cl4sRecConfig,
}

impl Cl4sRec {
    /// Builds an untrained model.
    pub fn new(cfg: Cl4sRecConfig, seed: u64) -> Self {
        let mut r = rng(seed.wrapping_add(1));
        let d = cfg.encoder.d;
        Cl4sRec {
            sasrec: SasRec::new(cfg.encoder.clone(), seed),
            // Linear projection g(·) (§3.2.3) — used only during pre-training.
            proj: Linear::new("cl4srec.proj", d, d, &mut r),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &Cl4sRecConfig {
        &self.cfg
    }

    /// The `[mask]` token id for building [`crate::augment::Mask`].
    pub fn mask_token(&self) -> u32 {
        self.cfg.encoder.mask_token()
    }

    /// The wrapped SASRec model (shared encoder).
    pub fn sasrec(&self) -> &SasRec {
        &self.sasrec
    }

    /// The contrastive loss of one batch of raw training sequences
    /// (two augmented views per sequence, NT-Xent over the `2N` batch).
    ///
    /// Augmentation draws a fresh base seed from `r`, then gives every
    /// sequence its own ChaCha substream — see
    /// [`Cl4sRec::contrastive_loss_seeded`] for the determinism contract.
    pub fn contrastive_loss(
        &self,
        step: &mut Step,
        seqs: &[&[u32]],
        augs: &AugmentationSet,
        training: bool,
        r: &mut TensorRng,
    ) -> Var {
        let aug_base = rand::RngCore::next_u64(r);
        self.contrastive_loss_seeded(step, seqs, augs, training, aug_base, 0, r)
    }

    /// [`Cl4sRec::contrastive_loss`] with the augmentation stream made
    /// explicit: sequence `i` of this call samples its two views from an
    /// independent substream seeded `aug_base ^ (offset + i)`. The views
    /// therefore depend only on `(aug_base, offset, i)` — never on worker
    /// count, stealing order, or how the batch is sharded — so the batch
    /// pipeline can run augmentation in parallel, and data-parallel shards
    /// passing their global row offset reproduce exactly the views one
    /// serial pass over the full batch would draw. `r` is still consumed
    /// for dropout on the calling thread.
    #[allow(clippy::too_many_arguments)]
    pub fn contrastive_loss_seeded(
        &self,
        step: &mut Step,
        seqs: &[&[u32]],
        augs: &AugmentationSet,
        training: bool,
        aug_base: u64,
        offset: usize,
        r: &mut TensorRng,
    ) -> Var {
        assert!(seqs.len() >= 2, "need ≥ 2 sequences for in-batch negatives");
        let t = self.cfg.encoder.max_len;
        let n = seqs.len();
        let mut ids1 = Vec::with_capacity(n * t);
        let mut ids2 = Vec::with_capacity(n * t);
        let mut valid1 = Vec::with_capacity(n);
        let mut valid2 = Vec::with_capacity(n);
        {
            let _aug = seqrec_obs::span!("augment");
            let views: Vec<_> = (0..n)
                .into_par_iter()
                .map(|i| {
                    let mut ri = rng(aug_base ^ (offset + i) as u64);
                    let (view1, view2) = augs.two_views(seqs[i], &mut ri);
                    (pad_left(&view1, t), pad_left(&view2, t))
                })
                .collect();
            for ((i1, v1), (i2, v2)) in views {
                ids1.extend(i1);
                ids2.extend(i2);
                valid1.push(v1);
                valid2.push(v2);
            }
        }
        let (z1, z2) = {
            let _fwd = seqrec_obs::span!("forward");
            let enc = self.sasrec.encoder();
            let repr1 = enc.user_repr(step, &ids1, &valid1, training, r);
            let repr2 = enc.user_repr(step, &ids2, &valid2, training, r);
            (self.proj.forward(step, repr1), self.proj.forward(step, repr2))
        };
        let _ntx = seqrec_obs::span!("ntxent");
        nt_xent(step, z1, z2, self.cfg.tau)
    }

    /// One data-parallel contrastive step over `seqs`: contiguous sequence
    /// shards, per-shard NT-Xent (negatives come from *within* the shard —
    /// see [`PretrainOptions::data_parallel`]), loss weighted by the
    /// shard's sequence share inside the tape, deterministic tree
    /// all-reduce of the gradients. Returns the weighted batch loss and
    /// the reduced gradients in `visit` order. The augmented views are the
    /// ones a serial pass with `aug_base` would draw (shards pass their
    /// global offset into the substream seed); shard `s` draws dropout
    /// from `rng(step_seed ^ s)`.
    fn dp_contrastive_step(
        &self,
        seqs: &[&[u32]],
        augs: &AugmentationSet,
        aug_base: u64,
        step_seed: u64,
        shards: usize,
    ) -> (f32, Vec<Option<seqrec_tensor::Tensor>>) {
        let ranges = dp::shard_ranges(seqs.len(), shards);
        let n_total = seqs.len() as f32;
        let per: Vec<_> = (0..ranges.len())
            .into_par_iter()
            .map(|s| {
                let (lo, hi) = ranges[s];
                let w = (hi - lo) as f32 / n_total;
                let mut shard_rng = rng(step_seed ^ s as u64);
                let mut step = Step::new();
                let loss = self.contrastive_loss_seeded(
                    &mut step,
                    &seqs[lo..hi],
                    augs,
                    true,
                    aug_base,
                    lo,
                    &mut shard_rng,
                );
                let scaled = step.tape.scale(loss, w);
                let grads = step.tape.backward(scaled);
                let gvec = dp::grads_in_visit_order(self, &step, &grads);
                (step.tape.value(loss).item(), w, gvec)
            })
            .collect();
        dp::combine_shard_results(per)
    }

    /// The joint objective of Eq. 16: next-item BCE on `batch` plus
    /// `lambda ×` the NT-Xent contrastive loss over `seqs` (the same
    /// sequences the batch was built from).
    ///
    /// Public so the conformance suite can gradcheck and golden-pin the
    /// exact objective [`Cl4sRec::fit_joint`] optimises.
    #[allow(clippy::too_many_arguments)] // Eq. 16 genuinely takes both data streams + λ
    pub fn joint_loss(
        &self,
        step: &mut Step,
        batch: &seqrec_data::batch::NextItemBatch,
        seqs: &[&[u32]],
        augs: &AugmentationSet,
        lambda: f32,
        training: bool,
        r: &mut TensorRng,
    ) -> Var {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        let next = self.sasrec.next_item_loss(step, batch, training, r);
        let cl = self.contrastive_loss(step, seqs, augs, training, r);
        let weighted = step.tape.scale(cl, lambda);
        step.tape.add(next, weighted)
    }

    /// One data-parallel **joint** step (Eq. 16 per shard): each shard
    /// scales its next-item term by its share of valid targets and its
    /// contrastive term by `λ ×` its sequence share inside the tape, so
    /// the tree-reduced gradients match the serial joint gradient exactly
    /// for the next-item term; the contrastive term uses in-shard
    /// negatives as in [`Cl4sRec::dp_contrastive_step`].
    #[allow(clippy::too_many_arguments)]
    fn dp_joint_step(
        &self,
        batch: &seqrec_data::batch::NextItemBatch,
        seqs: &[&[u32]],
        augs: &AugmentationSet,
        lambda: f32,
        aug_base: u64,
        step_seed: u64,
        shards: usize,
    ) -> (f32, Vec<Option<seqrec_tensor::Tensor>>) {
        let ranges = dp::shard_ranges(seqs.len(), shards);
        let total_valid = batch.target_mask.iter().sum::<f32>().max(1.0);
        let n_total = seqs.len() as f32;
        let per: Vec<_> = (0..ranges.len())
            .into_par_iter()
            .map(|s| {
                let (lo, hi) = ranges[s];
                let sub = dp::slice_batch(batch, lo, hi);
                let w_next = sub.target_mask.iter().sum::<f32>() / total_valid;
                let w_seq = (hi - lo) as f32 / n_total;
                let mut shard_rng = rng(step_seed ^ s as u64);
                let mut step = Step::new();
                let next = self.sasrec.next_item_loss(&mut step, &sub, true, &mut shard_rng);
                let cl = self.contrastive_loss_seeded(
                    &mut step,
                    &seqs[lo..hi],
                    augs,
                    true,
                    aug_base,
                    lo,
                    &mut shard_rng,
                );
                let next_w = step.tape.scale(next, w_next);
                let cl_w = step.tape.scale(cl, lambda * w_seq);
                let total = step.tape.add(next_w, cl_w);
                let grads = step.tape.backward(total);
                let gvec = dp::grads_in_visit_order(self, &step, &grads);
                let shard_loss = step.tape.value(next).item() + lambda * step.tape.value(cl).item();
                (shard_loss, w_seq, gvec)
            })
            .collect();
        dp::combine_shard_results(per)
    }

    /// Contrastive pre-training over the split's training sequences.
    pub fn pretrain(
        &mut self,
        split: &Split,
        augs: &AugmentationSet,
        opts: &PretrainOptions,
    ) -> PretrainReport {
        self.pretrain_on_users(split, augs, opts, None)
    }

    /// Pre-training restricted to a user subset (RQ4 sweeps).
    pub fn pretrain_on_users(
        &mut self,
        split: &Split,
        augs: &AugmentationSet,
        opts: &PretrainOptions,
        train_users: Option<&[usize]>,
    ) -> PretrainReport {
        let users: Vec<usize> = train_users
            .map(<[usize]>::to_vec)
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| split.train_sequence(u).len() >= 2)
            .collect();
        assert!(users.len() >= 2, "pre-training needs at least 2 usable users");

        let mut adam = Adam::new(AdamConfig { lr: opts.lr, ..AdamConfig::default() });
        let mut r = rng(opts.seed);
        let mut report = PretrainReport::default();
        let config_json = serde_json::to_string(&self.cfg).expect("config serializes");
        let opts_json = serde_json::to_string(opts).expect("pretrain options serialize");
        let mut session = FitSession::with_policy(
            "CL4SRec-pretrain",
            &config_json,
            &opts_json,
            opts.on_anomaly,
            opts.run_dir.as_deref(),
            opts.verbosity,
        );
        let mut aborted = false;
        // EarlyStopper maximises, so feed it the negated loss.
        let mut stopper = EarlyStopper::new(opts.patience);
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                if chunk.len() < 2 {
                    continue; // a singleton tail batch has no negatives
                }
                let _batch_span = seqrec_obs::span!("batch");
                let seqs: Vec<&[u32]> = chunk.iter().map(|&u| split.train_sequence(u)).collect();
                let shards = dp::effective_shards(opts.data_parallel, seqs.len());
                let (batch_loss, stats) = if shards > 1 {
                    let aug_base = rand::RngCore::next_u64(&mut r);
                    let step_seed = rand::RngCore::next_u64(&mut r);
                    let (loss, reduced) =
                        self.dp_contrastive_step(&seqs, augs, aug_base, step_seed, shards);
                    (loss, adam.step_with_stats_reduced(self, &reduced))
                } else {
                    let mut step = Step::new();
                    let loss = self.contrastive_loss(&mut step, &seqs, augs, true, &mut r);
                    let grads = step.tape.backward(loss);
                    let stats = adam.step_with_stats(self, &step, &grads);
                    (step.tape.value(loss).item(), stats)
                };
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            if opts.verbosity >= 1 {
                seqrec_obs::info!("[cl4srec-pretrain] epoch {epoch}: loss {mean_loss:.4}");
            }
            let mut log = clock.finish(epoch, mean_loss, None);
            session.stamp_epoch(&mut log);
            report.losses.push(mean_loss);
            report.epoch_secs.push(log.train_secs);
            report.seqs_per_sec.push(log.seqs_per_sec);
            if aborted {
                break;
            }
            if stopper.update(-f64::from(mean_loss)) {
                report.early_stopped = true;
                break;
            }
        }
        report.anomaly = session.anomaly().cloned();
        report.anomalous_steps = session.anomalous_steps();
        let report_json = serde_json::to_string(&report).expect("pretrain report serializes");
        session.finish_json(&report_json);
        report
    }

    /// **Joint training** (the ICDE camera-ready variant): optimises
    /// `L = L_next-item + λ·L_contrastive` on each mini-batch in a single
    /// stage, instead of pre-training then fine-tuning. `λ = 0.1` is a
    /// reasonable default at this scale.
    ///
    /// Returns the usual [`TrainReport`]; the reported loss is the joint
    /// objective.
    pub fn fit_joint(
        &mut self,
        split: &Split,
        augs: &AugmentationSet,
        lambda: f32,
        opts: &TrainOptions,
    ) -> TrainReport {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        let users: Vec<usize> = opts
            .train_users
            .clone()
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| split.train_sequence(u).len() >= 2)
            .collect();
        assert!(users.len() >= 2, "joint training needs at least 2 usable users");

        let mut adam = Adam::new(AdamConfig { lr: opts.lr, ..AdamConfig::default() });
        let mut sampler =
            seqrec_data::batch::NegativeSampler::new(split.num_items(), opts.seed ^ 0x7c4);
        let mut r = rng(opts.seed);
        let t = self.cfg.encoder.max_len;

        let mut report = TrainReport::default();
        let mut stopper = EarlyStopper::new(opts.patience);
        let config_json = serde_json::to_string(&self.cfg).expect("config serializes");
        let mut session = FitSession::start("CL4SRec-joint", &config_json, opts);
        let mut aborted = false;
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                if chunk.len() < 2 {
                    continue;
                }
                let _batch_span = seqrec_obs::span!("batch");
                let seqs: Vec<&[u32]> = chunk.iter().map(|&u| split.train_sequence(u)).collect();
                let batch = seqrec_data::batch::next_item_batch(&seqs, t, &mut sampler);
                let shards = dp::effective_shards(opts.data_parallel, seqs.len());
                let (batch_loss, stats) = if shards > 1 {
                    let aug_base = rand::RngCore::next_u64(&mut r);
                    let step_seed = rand::RngCore::next_u64(&mut r);
                    let (loss, reduced) = self
                        .dp_joint_step(&batch, &seqs, augs, lambda, aug_base, step_seed, shards);
                    (loss, adam.step_with_stats_reduced(self, &reduced))
                } else {
                    let mut step = Step::new();
                    let loss =
                        self.joint_loss(&mut step, &batch, &seqs, augs, lambda, true, &mut r);
                    let grads = step.tape.backward(loss);
                    let stats = adam.step_with_stats(self, &step, &grads);
                    (step.tape.value(loss).item(), stats)
                };
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            let hr10 = (!aborted && opts.should_probe(epoch)).then(|| {
                clock.probe(|| {
                    seqrec_models::common::probe_valid_hr10(
                        self,
                        split,
                        opts.valid_probe_users,
                        opts.seed,
                    )
                })
            });
            if opts.verbosity >= 1 {
                match hr10 {
                    Some(h) => seqrec_obs::info!(
                        "[cl4srec-joint] epoch {epoch}: loss {mean_loss:.4}, valid HR@10 {h:.4}"
                    ),
                    None => {
                        seqrec_obs::info!("[cl4srec-joint] epoch {epoch}: loss {mean_loss:.4}")
                    }
                }
            }
            let mut log = clock.finish(epoch, mean_loss, hr10);
            session.stamp_epoch(&mut log);
            report.epochs.push(log);
            if aborted {
                break;
            }
            if hr10.is_some_and(|h| stopper.update(h)) {
                report.early_stopped = true;
                break;
            }
        }
        report.best_valid_hr10 = stopper.best();
        report.finish_timing();
        session.finish(&mut report);
        report
    }

    /// Fine-tuning (§3.5): drops the projection head and optimises Eq. 15
    /// starting from the pre-trained encoder.
    pub fn finetune(&mut self, split: &Split, opts: &TrainOptions) -> TrainReport {
        self.sasrec.fit(split, opts)
    }

    /// The full two-stage pipeline.
    pub fn fit(
        &mut self,
        split: &Split,
        augs: &AugmentationSet,
        pretrain_opts: &PretrainOptions,
        finetune_opts: &TrainOptions,
    ) -> (PretrainReport, TrainReport) {
        let pre = self.pretrain_on_users(
            split,
            augs,
            pretrain_opts,
            finetune_opts.train_users.as_deref(),
        );
        let fine = self.finetune(split, finetune_opts);
        (pre, fine)
    }
}

impl HasParams for Cl4sRec {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.sasrec.visit(f);
        self.proj.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.sasrec.visit_mut(f);
        self.proj.visit_mut(f);
    }
}

impl SequenceScorer for Cl4sRec {
    fn num_items(&self) -> usize {
        self.sasrec.num_items()
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        self.sasrec.score_full_catalog(users, inputs)
    }
}

impl Checkpointable for Cl4sRec {
    const KIND: &'static str = "cl4srec";
    fn manifest_config(&self) -> String {
        serde_json::to_string(self.config()).expect("config serializes")
    }
    fn snapshot(&self) -> Vec<TensorData> {
        checkpoint::snapshot_params(self)
    }
    fn from_manifest_config(cfg: &JsonValue) -> Result<Self, CheckpointError> {
        let enc = cfg
            .get("encoder")
            .ok_or_else(|| CheckpointError::Format("manifest missing \"encoder\"".into()))?;
        let get = |v: &JsonValue, key: &str| {
            v.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                CheckpointError::Format(format!("manifest field {key:?} is not a number"))
            })
        };
        let cfg = Cl4sRecConfig {
            encoder: EncoderConfig {
                num_items: get(enc, "num_items")? as usize,
                d: get(enc, "d")? as usize,
                heads: get(enc, "heads")? as usize,
                layers: get(enc, "layers")? as usize,
                max_len: get(enc, "max_len")? as usize,
                dropout: get(enc, "dropout")? as f32,
            },
            tau: get(cfg, "tau")? as f32,
        };
        Ok(Cl4sRec::new(cfg, 0))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        checkpoint::restore_params(self, tensors)
    }
}

impl StatefulScorer for Cl4sRec {
    fn state_dim(&self) -> usize {
        self.sasrec.state_dim()
    }
    fn encode_users(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<f32> {
        self.sasrec.encode_users(users, inputs)
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        self.sasrec.score_states(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{Crop, Mask, Reorder};
    use seqrec_data::Dataset;

    fn tiny_cfg(num_items: usize) -> Cl4sRecConfig {
        Cl4sRecConfig {
            encoder: EncoderConfig {
                num_items,
                d: 16,
                heads: 2,
                layers: 1,
                max_len: 8,
                dropout: 0.1,
            },
            tau: 0.5,
        }
    }

    fn toy_dataset() -> Dataset {
        let seqs = (0..40).map(|u| (0..8).map(|i| ((u + i) % 12) as u32 + 1).collect()).collect();
        Dataset::new(seqs, 12)
    }

    #[test]
    fn pretraining_reduces_contrastive_loss() {
        let split = Split::leave_one_out(&toy_dataset());
        let mut model = Cl4sRec::new(tiny_cfg(12), 1);
        let augs = AugmentationSet::paper_full(0.6, 0.3, 0.5, model.mask_token());
        let opts =
            PretrainOptions { epochs: 8, batch_size: 16, patience: None, ..Default::default() };
        let report = model.pretrain(&split, &augs, &opts);
        assert_eq!(report.losses.len(), 8);
        let first = report.losses[0];
        let last = *report.losses.last().unwrap();
        assert!(last < first, "contrastive loss went {first} -> {last}");
    }

    #[test]
    fn projection_head_gets_gradients_only_in_pretraining() {
        let split = Split::leave_one_out(&toy_dataset());
        let model = Cl4sRec::new(tiny_cfg(12), 2);
        let augs = AugmentationSet::single(Mask { gamma: 0.4, mask_token: model.mask_token() });
        let seqs: Vec<&[u32]> = (0..4).map(|u| split.train_sequence(u)).collect();
        let mut step = Step::new();
        let mut r = rng(3);
        let loss = model.contrastive_loss(&mut step, &seqs, &augs, true, &mut r);
        let grads = step.tape.backward(loss);
        let mut proj_has_grad = false;
        model.proj.visit(&mut |p| {
            proj_has_grad |= p.grad(&step, &grads).is_some();
        });
        assert!(proj_has_grad, "projection head untouched by contrastive loss");
        // and the encoder receives gradients through both views
        let mut enc_grads = 0;
        model.sasrec.visit(&mut |p| {
            enc_grads += usize::from(p.grad(&step, &grads).is_some());
        });
        assert!(enc_grads > 0);
    }

    #[test]
    fn two_stage_pipeline_runs_end_to_end() {
        let split = Split::leave_one_out(&toy_dataset());
        let mut model = Cl4sRec::new(tiny_cfg(12), 3);
        let augs = AugmentationSet::pair(Crop { eta: 0.6 }, Reorder { beta: 0.5 });
        let pre_opts = PretrainOptions { epochs: 2, batch_size: 16, ..Default::default() };
        let fine_opts = TrainOptions {
            epochs: 2,
            batch_size: 16,
            patience: None,
            valid_probe_users: 10,
            ..Default::default()
        };
        let (pre, fine) = model.fit(&split, &augs, &pre_opts, &fine_opts);
        assert_eq!(pre.losses.len(), 2);
        assert_eq!(fine.epochs_run(), 2);
        // and the model can score
        let scores = model.score_full_catalog(&[0], &[split.train_sequence(0)]);
        assert_eq!(scores[0].len(), 13);
    }

    #[test]
    fn pretrain_loss_starts_near_uniform_baseline() {
        // With random weights and strong dropout the similarities are noisy;
        // the first-epoch loss should sit near ln(2N-1).
        let split = Split::leave_one_out(&toy_dataset());
        let mut model = Cl4sRec::new(tiny_cfg(12), 4);
        let augs = AugmentationSet::single(Crop { eta: 0.5 });
        let opts = PretrainOptions {
            epochs: 1,
            batch_size: 16,
            lr: 0.0, // no updates: observe the initial loss
            patience: None,
            ..Default::default()
        };
        let report = model.pretrain(&split, &augs, &opts);
        let baseline = (2.0f32 * 16.0 - 1.0).ln();
        assert!(
            (report.losses[0] - baseline).abs() < 1.0,
            "initial loss {} vs baseline {baseline}",
            report.losses[0]
        );
    }

    #[test]
    fn joint_training_runs_and_improves_over_random() {
        // A catalog large enough that chance-level HR@10 (10/40) leaves
        // clear headroom for the assertion.
        let seqs = (0..60).map(|u| (0..8).map(|i| ((u + i) % 40) as u32 + 1).collect()).collect();
        let ds = seqrec_data::Dataset::new(seqs, 40);
        let split = Split::leave_one_out(&ds);
        let mut model = Cl4sRec::new(tiny_cfg(40), 6);
        let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token: model.mask_token() });
        let before = seqrec_eval::evaluate(
            &model,
            &split,
            seqrec_eval::EvalTarget::Test,
            &seqrec_eval::EvalOptions::default(),
        );
        let report = model.fit_joint(
            &split,
            &augs,
            0.1,
            &TrainOptions {
                epochs: 10,
                batch_size: 16,
                patience: None,
                valid_probe_users: 10,
                ..Default::default()
            },
        );
        assert_eq!(report.epochs_run(), 10);
        assert!(report.epochs.last().unwrap().loss < report.epochs[0].loss);
        let after = seqrec_eval::evaluate(
            &model,
            &split,
            seqrec_eval::EvalTarget::Test,
            &seqrec_eval::EvalOptions::default(),
        );
        assert!(
            after.ndcg_at(10) > before.ndcg_at(10),
            "NDCG@10 went {} -> {}",
            before.ndcg_at(10),
            after.ndcg_at(10)
        );
    }

    #[test]
    fn joint_with_zero_lambda_is_pure_next_item() {
        // λ = 0 must still train (gradient flows through the next-item term
        // only; the contrastive term is recorded but weighted to nothing).
        let split = Split::leave_one_out(&toy_dataset());
        let mut model = Cl4sRec::new(tiny_cfg(12), 7);
        let augs = AugmentationSet::single(Crop { eta: 0.6 });
        let report = model.fit_joint(
            &split,
            &augs,
            0.0,
            &TrainOptions {
                epochs: 2,
                batch_size: 16,
                patience: None,
                valid_probe_users: 10,
                ..Default::default()
            },
        );
        assert_eq!(report.epochs_run(), 2);
    }

    #[test]
    fn loss_based_early_stopping() {
        let split = Split::leave_one_out(&toy_dataset());
        let mut model = Cl4sRec::new(tiny_cfg(12), 5);
        let augs = AugmentationSet::single(Crop { eta: 0.9 });
        let opts =
            PretrainOptions { epochs: 40, batch_size: 16, patience: Some(2), ..Default::default() };
        let report = model.pretrain(&split, &augs, &opts);
        assert!(report.losses.len() <= 40);
    }
}
