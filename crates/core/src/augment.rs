//! The paper's three stochastic data-augmentation operators (§3.3).
//!
//! Each operator maps a user's interaction sequence to a correlated view
//! while preserving the user's main preference:
//!
//! * [`Crop`] (Eq. 4) — a random contiguous sub-sequence of length
//!   `⌊η·n⌋`: a *local view* of the history.
//! * [`Mask`] (Eq. 5) — a random `⌊γ·n⌋`-subset of positions replaced by the
//!   `[mask]` token: "item dropout".
//! * [`Reorder`] (Eq. 6) — a random contiguous window of length `⌊β·n⌋`
//!   shuffled in place: relaxes the strict-order assumption.
//!
//! [`AugmentationSet`] holds the set `𝒜`; each training example samples two
//! operators (with replacement) and applies them independently, producing
//! the positive pair of Figure 1.

use rand::seq::SliceRandom;
use rand::Rng;
use seqrec_tensor::init::TensorRng;

/// A stochastic sequence transformation.
pub trait Augmentation: Send + Sync {
    /// Applies the operator to `seq`. The result is never empty for a
    /// non-empty input.
    fn apply(&self, seq: &[u32], rng: &mut TensorRng) -> Vec<u32>;
    /// Short operator label ("crop", "mask", "reorder").
    fn name(&self) -> &'static str;
}

/// Item crop (Eq. 4): keep a random contiguous sub-sequence of length
/// `max(1, ⌊η·n⌋)`.
#[derive(Clone, Copy, Debug)]
pub struct Crop {
    /// Kept fraction η ∈ (0, 1]. Small η = strong augmentation.
    pub eta: f64,
}

impl Augmentation for Crop {
    fn apply(&self, seq: &[u32], rng: &mut TensorRng) -> Vec<u32> {
        assert!((0.0..=1.0).contains(&self.eta), "eta {} outside [0,1]", self.eta);
        if seq.is_empty() {
            return Vec::new();
        }
        let n = seq.len();
        let len = ((self.eta * n as f64).floor() as usize).clamp(1, n);
        let start = rng.gen_range(0..=n - len);
        seq[start..start + len].to_vec()
    }
    fn name(&self) -> &'static str {
        "crop"
    }
}

/// Item mask (Eq. 5): replace a random `⌊γ·n⌋`-subset of positions with the
/// `[mask]` token.
#[derive(Clone, Copy, Debug)]
pub struct Mask {
    /// Masked fraction γ ∈ [0, 1]. Large γ = strong augmentation.
    pub gamma: f64,
    /// The `[mask]` token id (`num_items + 1` in this workspace).
    pub mask_token: u32,
}

impl Augmentation for Mask {
    fn apply(&self, seq: &[u32], rng: &mut TensorRng) -> Vec<u32> {
        assert!((0.0..=1.0).contains(&self.gamma), "gamma {} outside [0,1]", self.gamma);
        let n = seq.len();
        let m = (self.gamma * n as f64).floor() as usize;
        let mut out = seq.to_vec();
        let mut positions: Vec<usize> = (0..n).collect();
        positions.shuffle(rng);
        for &p in positions.iter().take(m) {
            out[p] = self.mask_token;
        }
        out
    }
    fn name(&self) -> &'static str {
        "mask"
    }
}

/// Item reorder (Eq. 6): shuffle a random contiguous window of length
/// `⌊β·n⌋`.
#[derive(Clone, Copy, Debug)]
pub struct Reorder {
    /// Reordered fraction β ∈ [0, 1]. Large β = strong augmentation.
    pub beta: f64,
}

impl Augmentation for Reorder {
    fn apply(&self, seq: &[u32], rng: &mut TensorRng) -> Vec<u32> {
        assert!((0.0..=1.0).contains(&self.beta), "beta {} outside [0,1]", self.beta);
        let n = seq.len();
        let len = (self.beta * n as f64).floor() as usize;
        let mut out = seq.to_vec();
        if len < 2 {
            return out; // nothing to permute
        }
        let start = rng.gen_range(0..=n - len);
        out[start..start + len].shuffle(rng);
        out
    }
    fn name(&self) -> &'static str {
        "reorder"
    }
}

/// The identity transformation — useful as an ablation control.
#[derive(Clone, Copy, Debug)]
pub struct Identity;

impl Augmentation for Identity {
    fn apply(&self, seq: &[u32], _rng: &mut TensorRng) -> Vec<u32> {
        seq.to_vec()
    }
    fn name(&self) -> &'static str {
        "identity"
    }
}

/// The augmentation set `𝒜`: two members are sampled per training example.
pub struct AugmentationSet {
    augs: Vec<Box<dyn Augmentation>>,
}

impl AugmentationSet {
    /// Builds a set from boxed operators.
    ///
    /// # Panics
    /// Panics on an empty set.
    pub fn new(augs: Vec<Box<dyn Augmentation>>) -> Self {
        assert!(!augs.is_empty(), "augmentation set must not be empty");
        AugmentationSet { augs }
    }

    /// A single-operator set (the RQ2 setting: both views use the same
    /// operator, applied independently).
    pub fn single(aug: impl Augmentation + 'static) -> Self {
        Self::new(vec![Box::new(aug)])
    }

    /// A two-operator set (the RQ3 composition setting).
    pub fn pair(a: impl Augmentation + 'static, b: impl Augmentation + 'static) -> Self {
        Self::new(vec![Box::new(a), Box::new(b)])
    }

    /// The paper's full set with the given rates: crop(η), mask(γ),
    /// reorder(β).
    pub fn paper_full(eta: f64, gamma: f64, beta: f64, mask_token: u32) -> Self {
        Self::new(vec![
            Box::new(Crop { eta }),
            Box::new(Mask { gamma, mask_token }),
            Box::new(Reorder { beta }),
        ])
    }

    /// Number of operators in the set.
    pub fn len(&self) -> usize {
        self.augs.len()
    }

    /// True when the set is empty (never — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.augs.is_empty()
    }

    /// Operator names, for logging.
    pub fn names(&self) -> Vec<&'static str> {
        self.augs.iter().map(|a| a.name()).collect()
    }

    /// Samples two operators (uniformly, with replacement) and produces the
    /// two correlated views of `seq` (§3.2.1).
    pub fn two_views(&self, seq: &[u32], rng: &mut TensorRng) -> (Vec<u32>, Vec<u32>) {
        let i = rng.gen_range(0..self.augs.len());
        let j = rng.gen_range(0..self.augs.len());
        (self.augs[i].apply(seq, rng), self.augs[j].apply(seq, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_tensor::init::rng;

    const SEQ: &[u32] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

    #[test]
    fn crop_keeps_a_contiguous_fraction() {
        let mut r = rng(1);
        let crop = Crop { eta: 0.5 };
        for _ in 0..50 {
            let out = crop.apply(SEQ, &mut r);
            assert_eq!(out.len(), 5);
            // contiguity: members are consecutive in the original
            let start = out[0] as usize - 1;
            assert_eq!(out, SEQ[start..start + 5].to_vec());
        }
    }

    #[test]
    fn crop_never_empties_a_sequence() {
        let mut r = rng(2);
        let crop = Crop { eta: 0.01 };
        assert_eq!(crop.apply(SEQ, &mut r).len(), 1);
        assert_eq!(crop.apply(&[7], &mut r), vec![7]);
        assert!(crop.apply(&[], &mut r).is_empty());
    }

    #[test]
    fn crop_start_positions_cover_the_range() {
        let mut r = rng(3);
        let crop = Crop { eta: 0.3 };
        let mut starts = std::collections::HashSet::new();
        for _ in 0..200 {
            let out = crop.apply(SEQ, &mut r);
            starts.insert(out[0]);
        }
        assert!(starts.len() > 4, "crop start not random: {starts:?}");
    }

    #[test]
    fn mask_replaces_exactly_the_fraction() {
        let mut r = rng(4);
        let mask = Mask { gamma: 0.3, mask_token: 99 };
        for _ in 0..50 {
            let out = mask.apply(SEQ, &mut r);
            assert_eq!(out.len(), SEQ.len());
            let masked = out.iter().filter(|&&v| v == 99).count();
            assert_eq!(masked, 3);
            // unmasked positions unchanged
            for (o, s) in out.iter().zip(SEQ) {
                assert!(*o == 99 || o == s);
            }
        }
    }

    #[test]
    fn mask_extremes() {
        let mut r = rng(5);
        let none = Mask { gamma: 0.0, mask_token: 99 };
        assert_eq!(none.apply(SEQ, &mut r), SEQ.to_vec());
        let all = Mask { gamma: 1.0, mask_token: 99 };
        assert!(all.apply(SEQ, &mut r).iter().all(|&v| v == 99));
    }

    #[test]
    fn reorder_is_a_permutation_of_a_window() {
        let mut r = rng(6);
        let reorder = Reorder { beta: 0.5 };
        for _ in 0..50 {
            let out = reorder.apply(SEQ, &mut r);
            assert_eq!(out.len(), SEQ.len());
            let mut sorted = out.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, SEQ.to_vec(), "not a permutation");
            // outside some window of length 5, order is untouched: count the
            // positions that moved — they must span at most 5 consecutive.
            let moved: Vec<usize> = out
                .iter()
                .zip(SEQ)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect();
            if let (Some(&first), Some(&last)) = (moved.first(), moved.last()) {
                assert!(last - first < 5, "window exceeded: {moved:?}");
            }
        }
    }

    #[test]
    fn reorder_with_tiny_beta_is_identity() {
        let mut r = rng(7);
        let reorder = Reorder { beta: 0.1 }; // ⌊0.1·10⌋ = 1 → no-op
        assert_eq!(reorder.apply(SEQ, &mut r), SEQ.to_vec());
    }

    #[test]
    fn two_views_are_usually_different() {
        let mut r = rng(8);
        let set = AugmentationSet::paper_full(0.5, 0.5, 0.5, 99);
        assert_eq!(set.len(), 3);
        assert_eq!(set.names(), vec!["crop", "mask", "reorder"]);
        let mut distinct = 0;
        for _ in 0..50 {
            let (a, b) = set.two_views(SEQ, &mut r);
            assert!(!a.is_empty() && !b.is_empty());
            distinct += usize::from(a != b);
        }
        assert!(distinct > 30, "views almost always identical ({distinct}/50)");
    }

    #[test]
    fn identity_is_identity() {
        let mut r = rng(9);
        assert_eq!(Identity.apply(SEQ, &mut r), SEQ.to_vec());
    }

    #[test]
    #[should_panic]
    fn empty_set_is_rejected() {
        AugmentationSet::new(Vec::new());
    }

    #[test]
    #[should_panic]
    fn crop_rejects_bad_eta() {
        let mut r = rng(10);
        Crop { eta: 1.5 }.apply(SEQ, &mut r);
    }
}
