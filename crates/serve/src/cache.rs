//! Per-user encoder-state cache.
//!
//! The expensive half of serving a sequential recommender is encoding the
//! user's history into a representation; scoring that representation
//! against the catalog is one GEMM row. This cache keeps the latest
//! encoder state per user, keyed by a digest of the exact history that
//! produced it — so appending an interaction changes the digest and the
//! stale state is ignored (and replaced) on the next request. Correctness
//! never depends on an explicit invalidation call, but [`UserStateCache::invalidate`]
//! exists for eager eviction when an ingest pipeline knows a user changed.

use std::collections::HashMap;

// Order-sensitive FNV-1a over the history's item ids. Collisions would
// serve a stale state, but at 64 bits a user would need ~2^32 distinct
// histories for a coin-flip chance, far beyond any session's lifetime.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Digest of an interaction history, as used for cache validity checks.
pub fn history_digest(history: &[u32]) -> u64 {
    let mut hash = FNV_OFFSET;
    for item in history {
        for b in item.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

struct Entry {
    digest: u64,
    state: Vec<f32>,
}

/// Latest encoder state per user, validity-checked against the history.
#[derive(Default)]
pub struct UserStateCache {
    entries: HashMap<usize, Entry>,
}

impl UserStateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached state for `user`, only if it was computed from exactly
    /// `history`.
    pub fn get(&self, user: usize, history: &[u32]) -> Option<&[f32]> {
        let e = self.entries.get(&user)?;
        (e.digest == history_digest(history)).then_some(e.state.as_slice())
    }

    /// Stores `state` as `user`'s encoder state for `history`, replacing
    /// any previous entry.
    pub fn put(&mut self, user: usize, history: &[u32], state: Vec<f32>) {
        self.entries.insert(user, Entry { digest: history_digest(history), state });
    }

    /// Evicts `user`'s entry, if any.
    pub fn invalidate(&mut self, user: usize) {
        self.entries.remove(&user);
    }

    /// Number of users with a cached state.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_change_misses() {
        let mut c = UserStateCache::new();
        c.put(3, &[1, 2], vec![0.5]);
        assert_eq!(c.get(3, &[1, 2]), Some(&[0.5][..]));
        assert_eq!(c.get(3, &[1, 2, 9]), None, "appended interaction must miss");
        assert_eq!(c.get(4, &[1, 2]), None, "other user must miss");
        c.invalidate(3);
        assert!(c.is_empty());
    }

    #[test]
    fn digest_is_order_and_length_sensitive() {
        assert_ne!(history_digest(&[1, 2]), history_digest(&[2, 1]));
        assert_ne!(history_digest(&[1]), history_digest(&[1, 1]));
        assert_ne!(history_digest(&[]), history_digest(&[0]));
    }
}
