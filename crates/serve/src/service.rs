//! The scoring service: cache-aware batched scoring and top-K selection.

use seqrec_eval::StatefulScorer;
use seqrec_obs::metrics;
use seqrec_tensor::topk::top_k;

use crate::cache::UserStateCache;

/// One ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Item id (1-based; 0 is the pad id and is never recommended).
    pub item: u32,
    /// The model's score for the item.
    pub score: f32,
}

/// A [`StatefulScorer`] behind a per-user encoder-state cache.
///
/// Scoring a batch encodes only the cache-missing users (in one forward
/// pass), then scores every requested state in one catalog GEMM. The
/// serve-vs-eval parity contract — `score_batch` bit-identical to
/// [`seqrec_eval::SequenceScorer::score_full_catalog`] regardless of which
/// requests hit the cache or shared an encode batch — is pinned by
/// `tests/serve_parity.rs`.
pub struct ScoringService<M> {
    model: M,
    cache: UserStateCache,
}

impl<M: StatefulScorer> ScoringService<M> {
    /// Wraps `model` with an empty cache.
    pub fn new(model: M) -> Self {
        ScoringService { model, cache: UserStateCache::new() }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The user-state cache.
    pub fn cache(&self) -> &UserStateCache {
        &self.cache
    }

    /// Evicts one user's cached state (e.g. after an out-of-band profile
    /// rebuild). Regular history changes need no eviction: the cache keys
    /// states by a digest of the exact history.
    pub fn invalidate_user(&mut self, user: usize) {
        self.cache.invalidate(user);
    }

    /// Resolves every request's encoder state — cache lookups, then one
    /// forward pass over the misses — without scoring. The first stage of
    /// [`score_batch`]; split out so the serving worker can timestamp the
    /// encode/score boundary for request traces.
    ///
    /// [`score_batch`]: ScoringService::score_batch
    pub fn encode_batch(&mut self, users: &[usize], histories: &[&[u32]]) -> EncodedBatch {
        assert_eq!(users.len(), histories.len(), "one history per user");
        metrics::SERVE_REQUESTS.add(users.len() as u64);
        let d = self.model.state_dim();
        let mut states = vec![0.0f32; users.len() * d];
        let mut miss_rows: Vec<usize> = Vec::new();
        for (i, (&u, &h)) in users.iter().zip(histories).enumerate() {
            match self.cache.get(u, h) {
                Some(s) => states[i * d..(i + 1) * d].copy_from_slice(s),
                None => miss_rows.push(i),
            }
        }
        let hits = (users.len() - miss_rows.len()) as u64;
        metrics::SERVE_CACHE_HITS.add(hits);
        metrics::SERVE_CACHE_MISSES.add(miss_rows.len() as u64);
        metrics::SERVE_CACHE_HITS_WINDOW.add(hits);
        metrics::SERVE_CACHE_MISSES_WINDOW.add(miss_rows.len() as u64);
        if !miss_rows.is_empty() {
            let miss_users: Vec<usize> = miss_rows.iter().map(|&i| users[i]).collect();
            let miss_hists: Vec<&[u32]> = miss_rows.iter().map(|&i| histories[i]).collect();
            let encoded = self.model.encode_users(&miss_users, &miss_hists);
            debug_assert_eq!(encoded.len(), miss_rows.len() * d);
            for (j, &i) in miss_rows.iter().enumerate() {
                let row = &encoded[j * d..(j + 1) * d];
                states[i * d..(i + 1) * d].copy_from_slice(row);
                self.cache.put(users[i], histories[i], row.to_vec());
            }
        }
        EncodedBatch { states }
    }

    /// Scores an encoded batch against the full catalog — the second stage
    /// of [`score_batch`].
    ///
    /// [`score_batch`]: ScoringService::score_batch
    pub fn score_encoded(&mut self, batch: &EncodedBatch) -> Vec<Vec<f32>> {
        metrics::SERVE_BATCHES.incr();
        self.model.score_states(&batch.states)
    }

    /// Full catalog scores for each `(user, history)` request — the same
    /// layout as `score_full_catalog`: one `num_items() + 1` row per
    /// request, entry 0 scoring the pad id. Equivalent to
    /// [`encode_batch`] + [`score_encoded`] (same operations, same order).
    ///
    /// [`encode_batch`]: ScoringService::encode_batch
    /// [`score_encoded`]: ScoringService::score_encoded
    pub fn score_batch(&mut self, users: &[usize], histories: &[&[u32]]) -> Vec<Vec<f32>> {
        let encoded = self.encode_batch(users, histories);
        self.score_encoded(&encoded)
    }

    /// The `k` best items per request, scores descending, ties broken by
    /// the smaller item id. The pad id (0) is excluded; `k` above the
    /// catalog size returns the whole catalog ranked.
    pub fn recommend(
        &mut self,
        users: &[usize],
        histories: &[&[u32]],
        k: usize,
    ) -> Vec<Vec<Recommendation>> {
        rank(&self.score_batch(users, histories), k)
    }
}

/// Encoder states for one batch of requests, produced by
/// [`ScoringService::encode_batch`], row `i` holding request `i`'s state.
pub struct EncodedBatch {
    states: Vec<f32>,
}

impl EncodedBatch {
    /// The packed per-request state rows.
    pub fn states(&self) -> &[f32] {
        &self.states
    }
}

/// Top-`k` selection over full-catalog score rows (entry 0 = pad id,
/// excluded) — the ranking stage of [`ScoringService::recommend`].
pub fn rank(scores: &[Vec<f32>], k: usize) -> Vec<Vec<Recommendation>> {
    scores
        .iter()
        .map(|row| {
            // Skip the pad entry; `top_k` indices are then item_id - 1.
            top_k(&row[1..], k)
                .into_iter()
                .map(|e| Recommendation { item: e.index + 1, score: e.score })
                .collect()
        })
        .collect()
}
