//! Micro-batching frontend: a worker thread that coalesces concurrent
//! score requests into one forward pass.
//!
//! Requests arrive on an MPSC channel. The worker takes the first request,
//! then keeps accepting more until either `max_batch` requests are queued
//! or `batch_window` has elapsed since the first one — so a lone request
//! pays at most the window in extra latency, while a burst amortises the
//! encoder forward across the whole batch. The batch then runs through
//! [`ScoringService`], which also de-duplicates encoder work via the
//! per-user state cache.
//!
//! The GEMM engine's batch-size invariance means coalescing never changes
//! scores: a request served in a batch of 64 returns bit-identical results
//! to the same request served alone (`tests/serve_parity.rs`).

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use seqrec_eval::StatefulScorer;
use seqrec_obs::metrics;

use crate::service::{Recommendation, ScoringService};

/// Batching policy for a [`BatchingServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Largest batch one forward pass may serve.
    pub max_batch: usize,
    /// How long the worker waits for more requests after the first one.
    pub batch_window: Duration,
    /// Bound on queued requests before senders block (backpressure).
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_batch: 64, batch_window: Duration::from_micros(500), queue_depth: 1024 }
    }
}

struct Request {
    user: usize,
    history: Vec<u32>,
    k: usize,
    reply: SyncSender<Vec<Recommendation>>,
}

/// A handle for submitting requests to a [`BatchingServer`]; clone one per
/// client thread.
#[derive(Clone)]
pub struct ServeClient {
    tx: SyncSender<Request>,
}

impl ServeClient {
    /// Scores `history` for `user` and returns the top `k` items, blocking
    /// until the server has run the batch containing this request.
    ///
    /// Returns `None` if the server has shut down.
    pub fn recommend(&self, user: usize, history: &[u32], k: usize) -> Option<Vec<Recommendation>> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx.send(Request { user, history: history.to_vec(), k, reply: reply_tx }).ok()?;
        reply_rx.recv().ok()
    }
}

/// A scoring server: one worker thread owning the model and its cache.
pub struct BatchingServer {
    tx: Option<SyncSender<Request>>,
    worker: Option<JoinHandle<()>>,
}

impl BatchingServer {
    /// Starts the worker thread around `model`.
    pub fn spawn<M>(model: M, cfg: ServerConfig) -> Self
    where
        M: StatefulScorer + Send + 'static,
    {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let (tx, rx) = sync_channel(cfg.queue_depth.max(1));
        let worker = std::thread::Builder::new()
            .name("seqrec-serve".into())
            .spawn(move || worker_loop(ScoringService::new(model), rx, cfg))
            .expect("spawn serve worker");
        BatchingServer { tx: Some(tx), worker: Some(worker) }
    }

    /// A new client handle.
    pub fn client(&self) -> ServeClient {
        ServeClient { tx: self.tx.clone().expect("server running") }
    }
}

impl Drop for BatchingServer {
    fn drop(&mut self) {
        // Closing the channel lets the worker drain queued requests and exit.
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

fn worker_loop<M: StatefulScorer>(
    mut service: ScoringService<M>,
    rx: Receiver<Request>,
    cfg: ServerConfig,
) {
    loop {
        let first = match rx.recv() {
            Ok(r) => r,
            Err(_) => return,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + cfg.batch_window;
        while batch.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(r) => batch.push(r),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let started = Instant::now();
        let users: Vec<usize> = batch.iter().map(|r| r.user).collect();
        let histories: Vec<&[u32]> = batch.iter().map(|r| r.history.as_slice()).collect();
        let max_k = batch.iter().map(|r| r.k).max().unwrap_or(0);
        let ranked = service.recommend(&users, &histories, max_k);
        metrics::record_scaled(&metrics::SERVE_BATCH_US, started.elapsed().as_secs_f64(), 1e6);
        for (req, mut recs) in batch.into_iter().zip(ranked) {
            recs.truncate(req.k);
            // A closed reply channel just means the client gave up waiting.
            let _ = req.reply.send(recs);
        }
    }
}
