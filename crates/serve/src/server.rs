//! Micro-batching frontend: a worker thread that coalesces concurrent
//! score requests into one forward pass.
//!
//! Requests arrive on an MPSC channel. The worker takes the first request,
//! then keeps accepting more until either `max_batch` requests are queued
//! or `batch_window` has elapsed since the first one — so a lone request
//! pays at most the window in extra latency, while a burst amortises the
//! encoder forward across the whole batch. The batch then runs through
//! [`ScoringService`], which also de-duplicates encoder work via the
//! per-user state cache.
//!
//! The GEMM engine's batch-size invariance means coalescing never changes
//! scores: a request served in a batch of 64 returns bit-identical results
//! to the same request served alone (`tests/serve_parity.rs`).
//!
//! ## Observability
//!
//! Every request gets a process-monotonic id at submission, and the worker
//! timestamps its lifecycle: **enqueue** (channel wait) → **batch** (wait
//! inside the batching window) → **encode** → **score** → **topk** →
//! **reply**. The six stages tile the request's server-side latency
//! exactly — consecutive stages share a boundary timestamp — and are
//! emitted per request as [`seqrec_obs::Event::Request`] events when a
//! sink is installed (JSONL lines, Chrome `X` slices; `seqrec-prof` folds
//! them into a per-stage profile). Independent of any sink, the worker
//! feeds the always-on serve instruments: queue-depth and batch-occupancy
//! histograms (cumulative + rolling-window), the queue and in-flight
//! gauges, and the client handle records client-observed latency into
//! `SERVE_LATENCY_US`(`_WINDOW`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use seqrec_eval::StatefulScorer;
use seqrec_obs::{metrics, sink};

use crate::service::{rank, Recommendation, ScoringService};

/// Batching policy for a [`BatchingServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Largest batch one forward pass may serve.
    pub max_batch: usize,
    /// How long the worker waits for more requests after the first one.
    pub batch_window: Duration,
    /// Bound on queued requests before senders block (backpressure).
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_batch: 64, batch_window: Duration::from_micros(500), queue_depth: 1024 }
    }
}

/// Source of process-monotonic request ids (shared by every server in the
/// process, so traces from several servers never collide).
static NEXT_REQ_ID: AtomicU64 = AtomicU64::new(1);

struct Request {
    req: u64,
    user: usize,
    history: Vec<u32>,
    k: usize,
    /// When the client submitted, µs since the trace epoch.
    enqueued_us: u64,
    reply: SyncSender<Vec<Recommendation>>,
}

/// A handle for submitting requests to a [`BatchingServer`]; clone one per
/// client thread.
#[derive(Clone)]
pub struct ServeClient {
    tx: SyncSender<Request>,
}

impl ServeClient {
    /// Scores `history` for `user` and returns the top `k` items, blocking
    /// until the server has run the batch containing this request.
    ///
    /// Returns `None` if the server has shut down.
    pub fn recommend(&self, user: usize, history: &[u32], k: usize) -> Option<Vec<Recommendation>> {
        let req = NEXT_REQ_ID.fetch_add(1, Ordering::Relaxed);
        let enqueued_us = sink::now_us();
        let (reply_tx, reply_rx) = sync_channel(1);
        metrics::SERVE_QUEUE.add(1);
        let sent = self
            .tx
            .send(Request { req, user, history: history.to_vec(), k, enqueued_us, reply: reply_tx })
            .is_ok();
        if !sent {
            metrics::SERVE_QUEUE.add(-1);
            return None;
        }
        let out = reply_rx.recv().ok();
        let latency_us = sink::now_us().saturating_sub(enqueued_us);
        metrics::SERVE_LATENCY_US.record(latency_us);
        metrics::SERVE_LATENCY_US_WINDOW.record(latency_us);
        out
    }
}

/// A scoring server: one worker thread owning the model and its cache.
pub struct BatchingServer {
    tx: Option<SyncSender<Request>>,
    worker: Option<JoinHandle<()>>,
}

impl BatchingServer {
    /// Starts the worker thread around `model`.
    pub fn spawn<M>(model: M, cfg: ServerConfig) -> Self
    where
        M: StatefulScorer + Send + 'static,
    {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let (tx, rx) = sync_channel(cfg.queue_depth.max(1));
        let worker = std::thread::Builder::new()
            .name("seqrec-serve".into())
            .spawn(move || worker_loop(ScoringService::new(model), rx, cfg))
            .expect("spawn serve worker");
        BatchingServer { tx: Some(tx), worker: Some(worker) }
    }

    /// A new client handle.
    pub fn client(&self) -> ServeClient {
        ServeClient { tx: self.tx.clone().expect("server running") }
    }
}

impl Drop for BatchingServer {
    fn drop(&mut self) {
        // Closing the channel lets the worker drain queued requests and exit.
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// A request the worker has admitted, with its stage boundary timestamps.
struct Admitted {
    inner: Request,
    admitted_us: u64,
}

fn admit(r: Request) -> Admitted {
    metrics::SERVE_QUEUE.add(-1);
    metrics::SERVE_IN_FLIGHT.add(1);
    Admitted { admitted_us: sink::now_us(), inner: r }
}

fn worker_loop<M: StatefulScorer>(
    mut service: ScoringService<M>,
    rx: Receiver<Request>,
    cfg: ServerConfig,
) {
    loop {
        let first = match rx.recv() {
            Ok(r) => r,
            Err(_) => return,
        };
        let mut batch = vec![admit(first)];
        let deadline = Instant::now() + cfg.batch_window;
        while batch.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(r) => batch.push(admit(r)),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Depth of the backlog left behind once this batch is closed, and
        // how full the batch ran — the two signals that tell an operator
        // whether the window or the model is the bottleneck.
        let backlog = metrics::SERVE_QUEUE.get().max(0) as u64;
        metrics::SERVE_QUEUE_DEPTH.record(backlog);
        metrics::SERVE_QUEUE_DEPTH_WINDOW.record(backlog);
        let occupancy_pct = (batch.len() * 100 / cfg.max_batch) as u64;
        metrics::SERVE_BATCH_OCCUPANCY_PCT.record(occupancy_pct);
        metrics::SERVE_BATCH_OCCUPANCY_PCT_WINDOW.record(occupancy_pct);

        let t_exec = sink::now_us();
        let started = Instant::now();
        let users: Vec<usize> = batch.iter().map(|r| r.inner.user).collect();
        let histories: Vec<&[u32]> = batch.iter().map(|r| r.inner.history.as_slice()).collect();
        let max_k = batch.iter().map(|r| r.inner.k).max().unwrap_or(0);
        let encoded = service.encode_batch(&users, &histories);
        let t_encoded = sink::now_us();
        let scores = service.score_encoded(&encoded);
        let t_scored = sink::now_us();
        let ranked = rank(&scores, max_k);
        let t_topk = sink::now_us();
        metrics::record_scaled(&metrics::SERVE_BATCH_US, started.elapsed().as_secs_f64(), 1e6);

        let tracing = sink::enabled();
        let tid = sink::tid();
        for (r, mut recs) in batch.into_iter().zip(ranked) {
            recs.truncate(r.inner.k);
            // A closed reply channel just means the client gave up waiting.
            if r.inner.reply.send(recs).is_err() {
                metrics::SERVE_ERRORS.incr();
            }
            metrics::SERVE_IN_FLIGHT.add(-1);
            if tracing {
                // Six stages sharing boundary timestamps: their durations
                // telescope to exactly (reply end − enqueue start).
                let t_done = sink::now_us();
                let stages = [
                    ("enqueue", r.inner.enqueued_us, r.admitted_us),
                    ("batch", r.admitted_us, t_exec),
                    ("encode", t_exec, t_encoded),
                    ("score", t_encoded, t_scored),
                    ("topk", t_scored, t_topk),
                    ("reply", t_topk, t_done),
                ];
                for (stage, from, to) in stages {
                    sink::dispatch(&seqrec_obs::Event::Request {
                        req: r.inner.req,
                        user: r.inner.user as u64,
                        stage,
                        tid,
                        ts_us: from,
                        dur_us: to.saturating_sub(from),
                    });
                }
            }
        }
    }
}
