//! Service-level objectives over the rolling metric windows.
//!
//! An [`SloPolicy`] states the contract — "p-quantile latency at most
//! `target_us`, with at most `budget` of requests allowed over the target,
//! and at most `error_budget` of requests allowed to fail". Evaluation
//! reads the live rolling windows ([`seqrec_obs::metrics`]); the **burn
//! rate** is the observed breach fraction divided by the budget, so 1.0
//! means the budget is exactly spent and anything above it means the SLO
//! is burning. `bench_serve` records the verdict per method in
//! `BENCH_serve.json` (`slo_ok`, numeric so `bench_diff --specs serve`
//! can gate on it) and in the run ledger's `report.json`.
//!
//! Latency breaches are counted at histogram-bucket resolution: a request
//! breaches when it lands in a bucket whose bound exceeds the target, so a
//! target aligned with a bucket bound ([`SERVE_LATENCY_BOUNDS`]) is exact
//! and an unaligned target rounds the threshold down to the previous
//! bound.
//!
//! [`SERVE_LATENCY_BOUNDS`]: seqrec_obs::metrics::SERVE_LATENCY_BOUNDS

use seqrec_obs::metrics::{self, WindowSnapshot};

/// One latency/error objective.
#[derive(Clone, Copy, Debug)]
pub struct SloPolicy {
    /// Latency target in microseconds (align with a bucket bound of
    /// `SERVE_LATENCY_US` for exact counting).
    pub target_us: u64,
    /// Fraction of requests allowed above the target (e.g. `0.01` =
    /// "99% of requests under target").
    pub budget: f64,
    /// Fraction of requests allowed to error (`0.0` = none).
    pub error_budget: f64,
}

impl Default for SloPolicy {
    /// The serving default: 99% of requests under 20 ms, no errors.
    fn default() -> Self {
        SloPolicy { target_us: 20_000, budget: 0.01, error_budget: 0.0 }
    }
}

/// The outcome of evaluating an [`SloPolicy`].
#[derive(Clone, Copy, Debug)]
pub struct SloReport {
    /// The evaluated latency target (µs).
    pub target_us: u64,
    /// Requests observed in the window.
    pub total: u64,
    /// Requests above the latency target.
    pub breaches: u64,
    /// `breaches / total` (0 on an empty window).
    pub breach_rate: f64,
    /// `breach_rate / budget`; above 1.0 the latency budget is burning.
    /// Infinite when a zero budget is breached.
    pub burn_rate: f64,
    /// Errors observed (from the error counter delta handed in).
    pub errors: u64,
    /// `errors / total` divided by the error budget, mirroring
    /// `burn_rate`.
    pub error_burn_rate: f64,
    /// The verdict: both burn rates at or under 1.0.
    pub ok: bool,
}

impl SloReport {
    /// The verdict as a bench-report field: 1.0 when met, 0.0 when
    /// burning. Numeric (not boolean) so the hand-rolled bench-diff JSON
    /// reader can gate on it.
    pub fn ok_as_f64(&self) -> f64 {
        if self.ok {
            1.0
        } else {
            0.0
        }
    }
}

/// Evaluates `policy` against an explicit latency distribution — the pure
/// core of [`evaluate`], also used on cumulative histograms and in tests.
/// `errors` is the error count accumulated over the same span.
pub fn evaluate_counts(
    bounds: &[u64],
    counts: &[u64],
    overflow: u64,
    errors: u64,
    policy: &SloPolicy,
) -> SloReport {
    let total: u64 = counts.iter().sum::<u64>() + overflow;
    let met: u64 =
        bounds.iter().zip(counts).filter(|(b, _)| **b <= policy.target_us).map(|(_, c)| *c).sum();
    let breaches = total - met;
    let rate = |part: u64, budget: f64| -> (f64, f64) {
        if total == 0 {
            return (0.0, 0.0);
        }
        let r = part as f64 / total as f64;
        let burn = if budget > 0.0 {
            r / budget
        } else if r > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        (r, burn)
    };
    let (breach_rate, burn_rate) = rate(breaches, policy.budget);
    let (_, error_burn_rate) = rate(errors, policy.error_budget);
    SloReport {
        target_us: policy.target_us,
        total,
        breaches,
        breach_rate,
        burn_rate,
        errors,
        error_burn_rate,
        ok: burn_rate <= 1.0 && error_burn_rate <= 1.0,
    }
}

/// Evaluates `policy` against a rolling-window latency snapshot.
pub fn evaluate_window(window: &WindowSnapshot, errors: u64, policy: &SloPolicy) -> SloReport {
    evaluate_counts(window.bounds, &window.counts, window.overflow, errors, policy)
}

/// Evaluates `policy` against the live serve-latency rolling window and
/// the current error counter — the "is the SLO burning *right now*" read.
pub fn evaluate(policy: &SloPolicy) -> SloReport {
    let window = metrics::SERVE_LATENCY_US_WINDOW.window_snapshot();
    evaluate_window(&window, metrics::SERVE_ERRORS.get(), policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[u64] = &[1_000, 5_000, 20_000, 100_000];

    #[test]
    fn within_budget_is_ok() {
        // 990 fast, 10 slow, 1% budget at 20ms → exactly spent, still ok.
        let report = evaluate_counts(
            BOUNDS,
            &[500, 490, 0, 10],
            0,
            0,
            &SloPolicy { target_us: 20_000, budget: 0.01, error_budget: 0.0 },
        );
        assert_eq!(report.total, 1_000);
        assert_eq!(report.breaches, 10);
        assert!((report.burn_rate - 1.0).abs() < 1e-12);
        assert!(report.ok);
    }

    #[test]
    fn breaches_above_budget_burn() {
        let report = evaluate_counts(
            BOUNDS,
            &[900, 0, 0, 80],
            20,
            0,
            &SloPolicy { target_us: 20_000, budget: 0.01, error_budget: 0.0 },
        );
        assert_eq!(report.breaches, 100);
        assert!(report.burn_rate > 1.0);
        assert!(!report.ok);
        assert_eq!(report.ok_as_f64(), 0.0);
    }

    #[test]
    fn overflow_samples_always_breach() {
        let report = evaluate_counts(BOUNDS, &[0; 4], 5, 0, &SloPolicy::default());
        assert_eq!(report.breaches, 5);
        assert!(!report.ok);
    }

    #[test]
    fn errors_with_zero_budget_fail_the_slo() {
        let fine = evaluate_counts(BOUNDS, &[100, 0, 0, 0], 0, 0, &SloPolicy::default());
        assert!(fine.ok);
        let errored = evaluate_counts(BOUNDS, &[100, 0, 0, 0], 0, 1, &SloPolicy::default());
        assert!(errored.error_burn_rate.is_infinite());
        assert!(!errored.ok);
    }

    #[test]
    fn empty_window_is_vacuously_ok() {
        let report = evaluate_counts(BOUNDS, &[0; 4], 0, 0, &SloPolicy::default());
        assert_eq!(report.total, 0);
        assert!(report.ok);
        assert_eq!(report.ok_as_f64(), 1.0);
    }

    #[test]
    fn live_evaluation_reads_the_rolling_window() {
        metrics::SERVE_LATENCY_US_WINDOW.reset();
        for _ in 0..99 {
            metrics::SERVE_LATENCY_US_WINDOW.record(400);
        }
        metrics::SERVE_LATENCY_US_WINDOW.record(3_000_000);
        let report = evaluate(&SloPolicy { target_us: 20_000, budget: 0.02, error_budget: 1.0 });
        assert_eq!(report.total, 100);
        assert_eq!(report.breaches, 1);
        assert!(report.ok, "1% breaches inside a 2% budget: {report:?}");
        metrics::SERVE_LATENCY_US_WINDOW.reset();
    }
}
