//! # seqrec-serve
//!
//! Serving stack for the CL4SRec reproduction: load a trained model from a
//! versioned checkpoint (`seqrec_models::checkpoint`), wrap it in a
//! cache-aware [`ScoringService`], and front it with a [`BatchingServer`]
//! that coalesces concurrent requests into single forward passes.
//!
//! The stack's correctness contract is **serve-vs-eval parity**: any score
//! the serving path produces is bit-identical to what the offline
//! evaluator (`seqrec_eval`) would compute for the same user and history —
//! through the state cache, through micro-batching, and through the SIMD
//! top-K kernel (`seqrec_tensor::topk`, exact total order with
//! deterministic index tie-breaks). `tests/serve_parity.rs` and
//! `tests/serve_cache.rs` pin the contract for every model in the zoo.
//!
//! Layers:
//!
//! * [`AnyModel`] — kind-dispatched checkpoint loading;
//! * [`UserStateCache`] — per-user encoder states keyed by a digest of the
//!   exact history, so stale states can never be served;
//! * [`ScoringService`] — batched scoring: one encoder pass for the cache
//!   misses, one catalog GEMM for everyone, SIMD top-K per row;
//! * [`BatchingServer`] / [`ServeClient`] — a worker thread that batches
//!   requests within a latency window;
//! * [`ExpoServer`] — a std-only TCP endpoint exposing the live metric
//!   registry (rolling-window latency/queue/occupancy quantiles) in the
//!   Prometheus text format;
//! * [`SloPolicy`] / [`slo::evaluate`] — latency/error objectives scored
//!   against the rolling windows, gated by `bench_diff --specs serve`.
//!
//! Observability: every request is traced through its lifecycle stages
//! (enqueue → batch → encode → score → topk → reply) onto the installed
//! `seqrec_obs` sink — see the [`server`] module docs.
//!
//! Threading: the worker owns the model; the model's own forward pass uses
//! the global worker pool, so `SEQREC_THREADS` bounds serving parallelism
//! exactly as it bounds training (see TESTING.md § Serving).

#![warn(missing_docs)]

pub mod cache;
pub mod expo;
pub mod model;
pub mod server;
pub mod service;
pub mod slo;

pub use cache::{history_digest, UserStateCache};
pub use expo::ExpoServer;
pub use model::AnyModel;
pub use server::{BatchingServer, ServeClient, ServerConfig};
pub use service::{EncodedBatch, Recommendation, ScoringService};
pub use slo::{SloPolicy, SloReport};
