//! Kind-dispatched checkpoint loading: any model in the zoo behind one
//! [`StatefulScorer`] value.

use std::path::Path;

use cl4srec::model::Cl4sRec;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_models::checkpoint::{load_from_bytes, manifest_kind, CheckpointError, Checkpointable};
use seqrec_models::{Bert4Rec, BprMf, Caser, Fpmc, Gru4Rec, Ncf, Pop, SasRec};

/// Any checkpointable model in the zoo.
// One long-lived value per serving process; the variant size spread is
// irrelevant and boxing would only add a pointer chase per dispatch.
#[allow(clippy::large_enum_variant)]
pub enum AnyModel {
    /// Popularity baseline.
    Pop(Pop),
    /// BPR matrix factorisation.
    BprMf(BprMf),
    /// Neural collaborative filtering.
    Ncf(Ncf),
    /// Factorised personalised Markov chain.
    Fpmc(Fpmc),
    /// Convolutional sequence embedding.
    Caser(Caser),
    /// GRU session encoder.
    Gru4Rec(Gru4Rec),
    /// Bidirectional transformer.
    Bert4Rec(Bert4Rec),
    /// Unidirectional transformer.
    SasRec(SasRec),
    /// Contrastive-pretrained SASRec.
    Cl4sRec(Cl4sRec),
}

macro_rules! dispatch {
    ($self:expr, $m:pat => $body:expr) => {
        match $self {
            AnyModel::Pop($m) => $body,
            AnyModel::BprMf($m) => $body,
            AnyModel::Ncf($m) => $body,
            AnyModel::Fpmc($m) => $body,
            AnyModel::Caser($m) => $body,
            AnyModel::Gru4Rec($m) => $body,
            AnyModel::Bert4Rec($m) => $body,
            AnyModel::SasRec($m) => $body,
            AnyModel::Cl4sRec($m) => $body,
        }
    };
}

impl AnyModel {
    /// Loads whichever model kind the checkpoint's manifest declares.
    pub fn load_from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let kind = manifest_kind(bytes)?;
        match kind.as_str() {
            Pop::KIND => Ok(AnyModel::Pop(load_from_bytes(bytes)?)),
            BprMf::KIND => Ok(AnyModel::BprMf(load_from_bytes(bytes)?)),
            Ncf::KIND => Ok(AnyModel::Ncf(load_from_bytes(bytes)?)),
            Fpmc::KIND => Ok(AnyModel::Fpmc(load_from_bytes(bytes)?)),
            Caser::KIND => Ok(AnyModel::Caser(load_from_bytes(bytes)?)),
            Gru4Rec::KIND => Ok(AnyModel::Gru4Rec(load_from_bytes(bytes)?)),
            Bert4Rec::KIND => Ok(AnyModel::Bert4Rec(load_from_bytes(bytes)?)),
            SasRec::KIND => Ok(AnyModel::SasRec(load_from_bytes(bytes)?)),
            Cl4sRec::KIND => Ok(AnyModel::Cl4sRec(load_from_bytes(bytes)?)),
            other => {
                Err(CheckpointError::Format(format!("unknown model kind {other:?} in manifest")))
            }
        }
    }

    /// Loads a checkpoint file of any known kind.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("reading {}: {e}", path.display())))?;
        Self::load_from_bytes(&bytes)
    }

    /// The manifest kind tag of the wrapped model.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyModel::Pop(_) => Pop::KIND,
            AnyModel::BprMf(_) => BprMf::KIND,
            AnyModel::Ncf(_) => Ncf::KIND,
            AnyModel::Fpmc(_) => Fpmc::KIND,
            AnyModel::Caser(_) => Caser::KIND,
            AnyModel::Gru4Rec(_) => Gru4Rec::KIND,
            AnyModel::Bert4Rec(_) => Bert4Rec::KIND,
            AnyModel::SasRec(_) => SasRec::KIND,
            AnyModel::Cl4sRec(_) => Cl4sRec::KIND,
        }
    }
}

impl SequenceScorer for AnyModel {
    fn num_items(&self) -> usize {
        dispatch!(self, m => m.num_items())
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        dispatch!(self, m => m.score_full_catalog(users, inputs))
    }
}

impl StatefulScorer for AnyModel {
    fn state_dim(&self) -> usize {
        dispatch!(self, m => m.state_dim())
    }
    fn encode_users(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<f32> {
        dispatch!(self, m => m.encode_users(users, inputs))
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        dispatch!(self, m => m.score_states(states))
    }
}
