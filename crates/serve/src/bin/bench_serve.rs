//! Serving-latency benchmark: spins up the full serving stack — train (or
//! init) a model, round-trip it through a versioned checkpoint, load it
//! behind [`seqrec_serve::AnyModel`], and drive the [`BatchingServer`] at a
//! fixed offered load from several client threads.
//!
//! ```text
//! cargo run --release -p seqrec-serve --bin bench_serve -- \
//!     --scale 0.005 --requests 2000 --qps 2000 --k 10 --out BENCH_serve.json
//! ```
//!
//! Reports p50/p99 request latency, catalog items scored per second, the
//! user-state cache hit rate, queue-depth and batch-occupancy
//! distributions, and the SLO verdict, per method — the same report shape
//! `bench_diff --specs serve` gates (`scripts/bench_gate.sh`). The workload
//! replays a seeded, popularity-skewed user stream, so the cache hit rate
//! is a deterministic function of `--seed`/`--requests`, not of timing.
//!
//! `--expo ADDR` additionally serves the live Prometheus-style exposition
//! endpoint for the whole run and scrapes it once over real TCP halfway
//! through the first method's request stream, failing the bench if the
//! mid-serve snapshot does not parse or lacks the live windowed series.
//! Unless `--no-ledger`, each run writes a run-ledger directory
//! (`runs/bench_serve-<seed>/`) whose `report.json` records the SLO
//! verdict per method.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use seqrec_data::synthetic::{generate_dataset, SyntheticConfig};
use seqrec_data::Split;
use seqrec_eval::SequenceScorer;
use seqrec_models::checkpoint;
use seqrec_models::{EncoderConfig, Pop, SasRec, TrainOptions};
use seqrec_obs::ledger::RunLedger;
use seqrec_obs::metrics;
use seqrec_serve::{expo, slo, AnyModel, BatchingServer, ExpoServer, ServerConfig, SloPolicy};
use serde::Serialize;

struct Args {
    scale: f64,
    epochs: usize,
    requests: usize,
    qps: f64,
    k: usize,
    clients: usize,
    seed: u64,
    out: Option<String>,
    expo: Option<String>,
    runs_dir: Option<String>,
    slo_target_us: u64,
    slo_budget: f64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.005,
            epochs: 0,
            requests: 2000,
            qps: 2000.0,
            k: 10,
            clients: 4,
            seed: 42,
            out: None,
            expo: None,
            runs_dir: Some("runs".to_string()),
            slo_target_us: 20_000,
            slo_budget: 0.01,
        }
    }
}

const USAGE: &str = "\
usage: bench_serve [--scale X] [--epochs N] [--requests N] [--qps X]
                   [--k N] [--clients N] [--seed N] [--out PATH]
                   [--expo ADDR] [--runs-dir DIR | --no-ledger]
                   [--slo-target-us N] [--slo-budget X]
  --scale X     synthetic `beauty` dataset scale (default 0.005)
  --epochs N    SASRec training epochs before serving (default 0: serving
                cost does not depend on the weights)
  --requests N  total requests offered per method (default 2000)
  --qps X       offered load, requests/second across all clients (default 2000)
  --k N         top-K size per request (default 10)
  --clients N   concurrent client threads (default 4)
  --seed N      workload + model seed (default 42)
  --out PATH    also write the JSON report to PATH
  --expo ADDR   serve the live metrics exposition on ADDR (e.g.
                127.0.0.1:0) and self-scrape it once mid-serve
  --runs-dir DIR  run-ledger root (default `runs`; report.json records the
                SLO verdict)
  --no-ledger   skip the run ledger
  --slo-target-us N  latency SLO target, µs (default 20000; align with a
                serve.latency_us bucket bound for exact counting)
  --slo-budget X  fraction of requests allowed over target (default 0.01)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--scale" => {
                args.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--epochs" => {
                args.epochs = val("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--requests" => {
                args.requests =
                    val("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--qps" => args.qps = val("--qps")?.parse().map_err(|e| format!("--qps: {e}"))?,
            "--k" => args.k = val("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--clients" => {
                args.clients = val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = Some(val("--out")?.to_string()),
            "--expo" => args.expo = Some(val("--expo")?.to_string()),
            "--runs-dir" => args.runs_dir = Some(val("--runs-dir")?.to_string()),
            "--no-ledger" => args.runs_dir = None,
            "--slo-target-us" => {
                args.slo_target_us =
                    val("--slo-target-us")?.parse().map_err(|e| format!("--slo-target-us: {e}"))?
            }
            "--slo-budget" => {
                args.slo_budget =
                    val("--slo-budget")?.parse().map_err(|e| format!("--slo-budget: {e}"))?
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if args.requests == 0 || args.clients == 0 || !(args.qps.is_finite() && args.qps > 0.0) {
        return Err("--requests, --clients and --qps must be positive".to_string());
    }
    if !(args.slo_budget.is_finite() && args.slo_budget >= 0.0) {
        return Err("--slo-budget must be a non-negative fraction".to_string());
    }
    Ok(args)
}

impl Args {
    fn slo_policy(&self) -> SloPolicy {
        SloPolicy { target_us: self.slo_target_us, budget: self.slo_budget, error_budget: 0.0 }
    }
}

/// One method's measured serving performance.
#[derive(Clone, Debug, Serialize)]
struct ServeRow {
    /// Method label (matches the training bench's naming).
    method: String,
    /// Dataset preset the workload was drawn from.
    dataset: String,
    /// Requests completed.
    requests: usize,
    /// Median request latency, µs (client-observed, includes batching wait).
    p50_us: f64,
    /// 99th-percentile request latency, µs.
    p99_us: f64,
    /// Mean request latency, µs.
    mean_us: f64,
    /// Catalog items scored per wall second (requests × (num_items+1) / secs).
    items_per_sec: f64,
    /// Fraction of requests whose encoder state came from the cache.
    cache_hit_rate: f64,
    /// Forward batches the server ran (lower = better coalescing).
    batches: u64,
    /// Achieved request throughput (sanity check against the offered qps).
    achieved_qps: f64,
    /// Median queue depth observed at batch close (bucket bound, from the
    /// cumulative `serve.queue_depth` histogram).
    queue_depth_p50: f64,
    /// 99th-percentile queue depth at batch close.
    queue_depth_p99: f64,
    /// Mean batch occupancy, percent of `max_batch` actually served.
    batch_occupancy_mean_pct: f64,
    /// The latency SLO target the verdict was scored against, µs.
    slo_target_us: f64,
    /// Requests over the SLO target (bucket-resolution count).
    slo_breaches: f64,
    /// Breach rate over budget; above 1.0 the SLO is burning.
    slo_burn_rate: f64,
    /// The SLO verdict: 1.0 met, 0.0 burning (numeric so `bench_diff`
    /// can gate on it).
    slo_ok: f64,
}

/// Deterministic splitmix64 stream for the workload generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Serves `requests` against `model` at the offered load and measures
/// client-observed latency.
fn bench_model(model: AnyModel, split: &Split, args: &Args, method: &str) -> ServeRow {
    let num_items = model.num_items();
    seqrec_obs::metrics::reset_all();
    let server = BatchingServer::spawn(model, ServerConfig::default());

    // Popularity-skewed user stream (x² skew): popular users repeat, so
    // the cache sees a realistic mix of hits and misses.
    let num_users = split.num_users();
    let mut rng = Rng(args.seed);
    let schedule: Vec<usize> = (0..args.requests)
        .map(|_| ((rng.unit() * rng.unit() * num_users as f64) as usize).min(num_users - 1))
        .collect();

    let interval = Duration::from_secs_f64(1.0 / args.qps);
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(args.requests)));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..args.clients {
            let client = server.client();
            let latencies = Arc::clone(&latencies);
            let schedule = &schedule;
            scope.spawn(move || {
                let mut mine = Vec::new();
                for (i, &user) in schedule.iter().enumerate() {
                    if i % args.clients != c {
                        continue;
                    }
                    // Open-loop pacing: request i is due at started + i·interval.
                    let due = started + interval * i as u32;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let sent = Instant::now();
                    let recs = client
                        .recommend(user, split.train_sequence(user), args.k)
                        .expect("server alive");
                    assert!(recs.len() <= args.k);
                    mine.push(sent.elapsed().as_secs_f64() * 1e6);
                }
                latencies.lock().expect("latency lock").extend(mine);
            });
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();
    drop(server);

    let mut lat = Arc::try_unwrap(latencies).expect("clients done").into_inner().expect("lock");
    lat.sort_by(|a, b| a.total_cmp(b));
    let hits = metrics::SERVE_CACHE_HITS.get();
    let total = metrics::SERVE_REQUESTS.get();

    // Distribution + SLO readouts come from the cumulative histograms, not
    // the rolling windows, so the report is a complete account of the run
    // regardless of how long it took relative to the window.
    let queue = &metrics::SERVE_QUEUE_DEPTH;
    let occupancy = &metrics::SERVE_BATCH_OCCUPANCY_PCT;
    let occupancy_mean =
        if occupancy.total() > 0 { occupancy.sum() as f64 / occupancy.total() as f64 } else { 0.0 };
    let slo = slo::evaluate_counts(
        metrics::SERVE_LATENCY_US.bounds(),
        &metrics::SERVE_LATENCY_US.counts(),
        metrics::SERVE_LATENCY_US.overflow(),
        metrics::SERVE_ERRORS.get(),
        &args.slo_policy(),
    );

    ServeRow {
        method: method.to_string(),
        dataset: "beauty".to_string(),
        requests: lat.len(),
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
        mean_us: lat.iter().sum::<f64>() / lat.len().max(1) as f64,
        items_per_sec: lat.len() as f64 * (num_items + 1) as f64 / wall_secs,
        cache_hit_rate: if total > 0 { hits as f64 / total as f64 } else { 0.0 },
        batches: metrics::SERVE_BATCHES.get(),
        achieved_qps: lat.len() as f64 / wall_secs,
        queue_depth_p50: queue.quantile(0.50).unwrap_or(0) as f64,
        queue_depth_p99: queue.quantile(0.99).unwrap_or(0) as f64,
        batch_occupancy_mean_pct: occupancy_mean,
        slo_target_us: slo.target_us as f64,
        slo_breaches: slo.breaches as f64,
        slo_burn_rate: slo.burn_rate,
        slo_ok: slo.ok_as_f64(),
    }
}

/// Round-trips `model` through the checkpoint format and loads it back as
/// an [`AnyModel`] — every benched method serves from a loaded checkpoint,
/// exactly like production would.
fn through_checkpoint<M: checkpoint::Checkpointable>(model: &M) -> AnyModel {
    let bytes = checkpoint::save_to_vec(model);
    AnyModel::load_from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("checkpoint round trip for {}: {e}", M::KIND))
}

#[derive(Clone, Debug, Serialize)]
struct BenchServeReport {
    generated_by: String,
    note: String,
    threads: usize,
    threads_source: String,
    scale: f64,
    epochs: usize,
    offered_qps: f64,
    k: usize,
    clients: usize,
    seed: u64,
    slo_target_us: u64,
    slo_budget: f64,
    rows: Vec<ServeRow>,
}

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("bench_serve: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let dataset = generate_dataset(&SyntheticConfig::beauty(args.scale));
    let split = Split::leave_one_out(&dataset);
    let num_items = dataset.num_items();
    seqrec_obs::info!(
        "[bench_serve] beauty @ {}: {} users, {} items",
        args.scale,
        split.num_users(),
        num_items
    );

    let mut sasrec = SasRec::new(EncoderConfig::small(num_items), args.seed);
    if args.epochs > 0 {
        sasrec.fit(
            &split,
            &TrainOptions {
                epochs: args.epochs,
                seed: args.seed,
                patience: None,
                probe_every: 0,
                ..Default::default()
            },
        );
    }
    let pop = Pop::fit(&split);

    // Live exposition + mid-serve self-scrape: the watcher waits until the
    // first method is halfway through its request stream, scrapes the
    // endpoint over real TCP, and fails the bench if the snapshot does not
    // parse, its histograms are inconsistent, or the rolling latency
    // window is empty (i.e. the scrape was not actually live).
    let expo_server = args.expo.as_deref().map(|a| {
        ExpoServer::bind(a).unwrap_or_else(|e| panic!("bench_serve: cannot bind --expo {a}: {e}"))
    });
    let scrape_watcher = expo_server.as_ref().map(|server| {
        let addr = server.addr();
        let halfway = (args.requests / 2).max(1) as u64;
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(120);
            while metrics::SERVE_REQUESTS.get() < halfway {
                assert!(Instant::now() < deadline, "mid-serve scrape: no traffic within 120s");
                std::thread::sleep(Duration::from_millis(2));
            }
            let body = expo::scrape(addr).expect("mid-serve scrape over TCP");
            let exp = seqrec_obs::expo::parse(&body).expect("mid-serve exposition parses");
            exp.validate_histograms().expect("mid-serve histograms self-consistent");
            for series in [
                "seqrec_serve_latency_us_window",
                "seqrec_serve_queue_depth_window",
                "seqrec_serve_batch_occupancy_pct_window",
            ] {
                assert_eq!(exp.type_of(series), Some("histogram"), "{series} missing");
            }
            let live = exp.value("seqrec_serve_latency_us_window_count").unwrap_or(0.0);
            assert!(live > 0.0, "rolling latency window empty mid-serve: not a live scrape");
            seqrec_obs::info!(
                "[bench_serve] mid-serve scrape ok: {} samples in the latency window",
                live
            );
        })
    });

    let mut rows = Vec::new();
    for (method, model) in
        [("SASRec", through_checkpoint(&sasrec)), ("Pop", through_checkpoint(&pop))]
    {
        let row = bench_model(model, &split, &args, method);
        seqrec_obs::info!(
            "[bench_serve] {method}: p50 {:.0}µs, p99 {:.0}µs, {:.2}M items/s, {:.0}% cache \
             hits, SLO {} (burn {:.2})",
            row.p50_us,
            row.p99_us,
            row.items_per_sec / 1e6,
            row.cache_hit_rate * 100.0,
            if row.slo_ok == 1.0 { "met" } else { "BURNING" },
            row.slo_burn_rate
        );
        rows.push(row);
    }
    if let Some(watcher) = scrape_watcher {
        watcher.join().expect("mid-serve scrape watcher");
    }
    drop(expo_server);

    let report = BenchServeReport {
        generated_by: "scripts/bench_serve.sh".to_string(),
        note: "client-observed latency at fixed offered load; includes the \
               micro-batching window; every model served from a loaded checkpoint"
            .to_string(),
        threads: rayon::current_num_threads(),
        threads_source: if std::env::var_os("SEQREC_THREADS").is_some() {
            "SEQREC_THREADS".to_string()
        } else {
            "available_parallelism".to_string()
        },
        scale: args.scale,
        epochs: args.epochs,
        offered_qps: args.qps,
        k: args.k,
        clients: args.clients,
        seed: args.seed,
        slo_target_us: args.slo_target_us,
        slo_budget: args.slo_budget,
        rows,
    };
    let text = serde_json::to_string_pretty(&report).expect("serialisable report");
    println!("{text}");
    if let Some(p) = &args.out {
        std::fs::write(p, format!("{text}\n")).unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        seqrec_obs::info!("[bench_serve] report written to {p}");
    }
    if let Some(root) = &args.runs_dir {
        let ledger = RunLedger::create_named(root, "bench_serve", args.seed)
            .unwrap_or_else(|e| panic!("cannot create run ledger under {root}: {e}"));
        #[derive(Serialize)]
        struct LedgerConfig {
            bin: String,
            scale: f64,
            epochs: usize,
            requests: usize,
            offered_qps: f64,
            k: usize,
            clients: usize,
            seed: u64,
            slo_target_us: u64,
            slo_budget: f64,
        }
        let config = LedgerConfig {
            bin: "bench_serve".to_string(),
            scale: args.scale,
            epochs: args.epochs,
            requests: args.requests,
            offered_qps: args.qps,
            k: args.k,
            clients: args.clients,
            seed: args.seed,
            slo_target_us: args.slo_target_us,
            slo_budget: args.slo_budget,
        };
        ledger.write_config(&serde_json::to_string_pretty(&config).expect("config json"));
        ledger.write_env_snapshot();
        // report.json carries the full bench report — per-method SLO
        // verdicts included — so a run directory is self-describing.
        ledger.write_report(&text);
        seqrec_obs::info!("[bench_serve] run ledger at {}", ledger.dir().display());
    }
}
