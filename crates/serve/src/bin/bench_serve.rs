//! Serving-latency benchmark: spins up the full serving stack — train (or
//! init) a model, round-trip it through a versioned checkpoint, load it
//! behind [`seqrec_serve::AnyModel`], and drive the [`BatchingServer`] at a
//! fixed offered load from several client threads.
//!
//! ```text
//! cargo run --release -p seqrec-serve --bin bench_serve -- \
//!     --scale 0.005 --requests 2000 --qps 2000 --k 10 --out BENCH_serve.json
//! ```
//!
//! Reports p50/p99 request latency, catalog items scored per second, and
//! the user-state cache hit rate, per method — the same report shape
//! `bench_diff --specs serve` gates (`scripts/bench_gate.sh`). The workload
//! replays a seeded, popularity-skewed user stream, so the cache hit rate
//! is a deterministic function of `--seed`/`--requests`, not of timing.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use seqrec_data::synthetic::{generate_dataset, SyntheticConfig};
use seqrec_data::Split;
use seqrec_eval::SequenceScorer;
use seqrec_models::checkpoint;
use seqrec_models::{EncoderConfig, Pop, SasRec, TrainOptions};
use seqrec_serve::{AnyModel, BatchingServer, ServerConfig};
use serde::Serialize;

struct Args {
    scale: f64,
    epochs: usize,
    requests: usize,
    qps: f64,
    k: usize,
    clients: usize,
    seed: u64,
    out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.005,
            epochs: 0,
            requests: 2000,
            qps: 2000.0,
            k: 10,
            clients: 4,
            seed: 42,
            out: None,
        }
    }
}

const USAGE: &str = "\
usage: bench_serve [--scale X] [--epochs N] [--requests N] [--qps X]
                   [--k N] [--clients N] [--seed N] [--out PATH]
  --scale X     synthetic `beauty` dataset scale (default 0.005)
  --epochs N    SASRec training epochs before serving (default 0: serving
                cost does not depend on the weights)
  --requests N  total requests offered per method (default 2000)
  --qps X       offered load, requests/second across all clients (default 2000)
  --k N         top-K size per request (default 10)
  --clients N   concurrent client threads (default 4)
  --seed N      workload + model seed (default 42)
  --out PATH    also write the JSON report to PATH";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--scale" => {
                args.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--epochs" => {
                args.epochs = val("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--requests" => {
                args.requests =
                    val("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--qps" => args.qps = val("--qps")?.parse().map_err(|e| format!("--qps: {e}"))?,
            "--k" => args.k = val("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--clients" => {
                args.clients = val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = Some(val("--out")?.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if args.requests == 0 || args.clients == 0 || !(args.qps.is_finite() && args.qps > 0.0) {
        return Err("--requests, --clients and --qps must be positive".to_string());
    }
    Ok(args)
}

/// One method's measured serving performance.
#[derive(Clone, Debug, Serialize)]
struct ServeRow {
    /// Method label (matches the training bench's naming).
    method: String,
    /// Dataset preset the workload was drawn from.
    dataset: String,
    /// Requests completed.
    requests: usize,
    /// Median request latency, µs (client-observed, includes batching wait).
    p50_us: f64,
    /// 99th-percentile request latency, µs.
    p99_us: f64,
    /// Mean request latency, µs.
    mean_us: f64,
    /// Catalog items scored per wall second (requests × (num_items+1) / secs).
    items_per_sec: f64,
    /// Fraction of requests whose encoder state came from the cache.
    cache_hit_rate: f64,
    /// Forward batches the server ran (lower = better coalescing).
    batches: u64,
    /// Achieved request throughput (sanity check against the offered qps).
    achieved_qps: f64,
}

/// Deterministic splitmix64 stream for the workload generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Serves `requests` against `model` at the offered load and measures
/// client-observed latency.
fn bench_model(model: AnyModel, split: &Split, args: &Args, method: &str) -> ServeRow {
    let num_items = model.num_items();
    seqrec_obs::metrics::reset_all();
    let server = BatchingServer::spawn(model, ServerConfig::default());

    // Popularity-skewed user stream (x² skew): popular users repeat, so
    // the cache sees a realistic mix of hits and misses.
    let num_users = split.num_users();
    let mut rng = Rng(args.seed);
    let schedule: Vec<usize> = (0..args.requests)
        .map(|_| ((rng.unit() * rng.unit() * num_users as f64) as usize).min(num_users - 1))
        .collect();

    let interval = Duration::from_secs_f64(1.0 / args.qps);
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(args.requests)));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..args.clients {
            let client = server.client();
            let latencies = Arc::clone(&latencies);
            let schedule = &schedule;
            scope.spawn(move || {
                let mut mine = Vec::new();
                for (i, &user) in schedule.iter().enumerate() {
                    if i % args.clients != c {
                        continue;
                    }
                    // Open-loop pacing: request i is due at started + i·interval.
                    let due = started + interval * i as u32;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let sent = Instant::now();
                    let recs = client
                        .recommend(user, split.train_sequence(user), args.k)
                        .expect("server alive");
                    assert!(recs.len() <= args.k);
                    mine.push(sent.elapsed().as_secs_f64() * 1e6);
                }
                latencies.lock().expect("latency lock").extend(mine);
            });
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();
    drop(server);

    let mut lat = Arc::try_unwrap(latencies).expect("clients done").into_inner().expect("lock");
    lat.sort_by(|a, b| a.total_cmp(b));
    let hits = seqrec_obs::metrics::SERVE_CACHE_HITS.get();
    let total = seqrec_obs::metrics::SERVE_REQUESTS.get();
    ServeRow {
        method: method.to_string(),
        dataset: "beauty".to_string(),
        requests: lat.len(),
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
        mean_us: lat.iter().sum::<f64>() / lat.len().max(1) as f64,
        items_per_sec: lat.len() as f64 * (num_items + 1) as f64 / wall_secs,
        cache_hit_rate: if total > 0 { hits as f64 / total as f64 } else { 0.0 },
        batches: seqrec_obs::metrics::SERVE_BATCHES.get(),
        achieved_qps: lat.len() as f64 / wall_secs,
    }
}

/// Round-trips `model` through the checkpoint format and loads it back as
/// an [`AnyModel`] — every benched method serves from a loaded checkpoint,
/// exactly like production would.
fn through_checkpoint<M: checkpoint::Checkpointable>(model: &M) -> AnyModel {
    let bytes = checkpoint::save_to_vec(model);
    AnyModel::load_from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("checkpoint round trip for {}: {e}", M::KIND))
}

#[derive(Clone, Debug, Serialize)]
struct BenchServeReport {
    generated_by: String,
    note: String,
    threads: usize,
    threads_source: String,
    scale: f64,
    epochs: usize,
    offered_qps: f64,
    k: usize,
    clients: usize,
    seed: u64,
    rows: Vec<ServeRow>,
}

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("bench_serve: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let dataset = generate_dataset(&SyntheticConfig::beauty(args.scale));
    let split = Split::leave_one_out(&dataset);
    let num_items = dataset.num_items();
    seqrec_obs::info!(
        "[bench_serve] beauty @ {}: {} users, {} items",
        args.scale,
        split.num_users(),
        num_items
    );

    let mut sasrec = SasRec::new(EncoderConfig::small(num_items), args.seed);
    if args.epochs > 0 {
        sasrec.fit(
            &split,
            &TrainOptions {
                epochs: args.epochs,
                seed: args.seed,
                patience: None,
                probe_every: 0,
                ..Default::default()
            },
        );
    }
    let pop = Pop::fit(&split);

    let mut rows = Vec::new();
    for (method, model) in
        [("SASRec", through_checkpoint(&sasrec)), ("Pop", through_checkpoint(&pop))]
    {
        let row = bench_model(model, &split, &args, method);
        seqrec_obs::info!(
            "[bench_serve] {method}: p50 {:.0}µs, p99 {:.0}µs, {:.2}M items/s, {:.0}% cache hits",
            row.p50_us,
            row.p99_us,
            row.items_per_sec / 1e6,
            row.cache_hit_rate * 100.0
        );
        rows.push(row);
    }

    let report = BenchServeReport {
        generated_by: "scripts/bench_serve.sh".to_string(),
        note: "client-observed latency at fixed offered load; includes the \
               micro-batching window; every model served from a loaded checkpoint"
            .to_string(),
        threads: rayon::current_num_threads(),
        threads_source: if std::env::var_os("SEQREC_THREADS").is_some() {
            "SEQREC_THREADS".to_string()
        } else {
            "available_parallelism".to_string()
        },
        scale: args.scale,
        epochs: args.epochs,
        offered_qps: args.qps,
        k: args.k,
        clients: args.clients,
        seed: args.seed,
        rows,
    };
    let text = serde_json::to_string_pretty(&report).expect("serialisable report");
    println!("{text}");
    if let Some(p) = &args.out {
        std::fs::write(p, format!("{text}\n")).unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        seqrec_obs::info!("[bench_serve] report written to {p}");
    }
}
