//! Live metrics exposition: a std-only TCP endpoint serving the
//! Prometheus-style text rendering of the whole metric registry
//! ([`seqrec_obs::expo`]).
//!
//! [`ExpoServer::bind`] spawns one listener thread; every connection gets
//! a fresh [`seqrec_obs::metrics::snapshot`] rendered as an HTTP/1.0
//! response, so a scrape mid-run sees the live rolling-window quantiles
//! (p50/p99 serve latency, queue depth, batch occupancy, cache hit rate),
//! not a shutdown summary. The protocol handling is deliberately minimal —
//! read until the blank line, ignore the request, answer, close — enough
//! for `curl`, Prometheus, and the in-tree [`scrape`] helper.
//!
//! The offline twin is the `SEQREC_OBS=expo=PATH` directive, which dumps
//! the same rendering to a file when the obs guard drops.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running exposition endpoint; dropping it stops the listener thread.
pub struct ExpoServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
}

impl ExpoServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving scrapes on a background thread.
    pub fn bind(addr: &str) -> std::io::Result<ExpoServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new().name("seqrec-expo".into()).spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::Acquire) {
                    return;
                }
                if let Ok(stream) = stream {
                    // A slow or stuck scraper must not wedge the
                    // endpoint: bounded I/O, one request per connection.
                    let _ = serve_one(stream);
                }
            }
        })?;
        Ok(ExpoServer { addr, shutdown, listener: Some(handle) })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ExpoServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Drain the request head (we answer every path the same way). Stop at
    // the header/body separator or a size cap, whichever first.
    let mut head = [0u8; 4096];
    let mut n = 0;
    while n < head.len() {
        let got = stream.read(&mut head[n..])?;
        if got == 0 {
            break;
        }
        n += got;
        if head[..n].windows(4).any(|w| w == b"\r\n\r\n")
            || head[..n].windows(2).any(|w| w == b"\n\n")
        {
            break;
        }
    }
    let body = seqrec_obs::expo::render_current();
    let response = format!(
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Scrapes an exposition endpoint once over real TCP and returns the body
/// (headers stripped).
pub fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: seqrec\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("non-UTF-8 response: {e}"))
    })?;
    match text.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::other(format!(
            "scrape failed: {}",
            head.lines().next().unwrap_or("empty response")
        ))),
        None => Err(std::io::Error::other("response without header/body separator")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_round_trips_through_real_tcp() {
        seqrec_obs::metrics::SERVE_REQUESTS.add(3);
        let server = ExpoServer::bind("127.0.0.1:0").expect("bind loopback");
        let body = scrape(server.addr()).expect("scrape");
        let exp = seqrec_obs::expo::parse(&body).expect("parse exposition");
        exp.validate_histograms().expect("histograms well-formed");
        assert!(exp.value("seqrec_serve_requests").unwrap_or(0.0) >= 3.0);
        assert_eq!(exp.type_of("seqrec_serve_latency_us_window"), Some("histogram"));
    }

    #[test]
    fn endpoint_survives_consecutive_scrapes_and_stops_on_drop() {
        let server = ExpoServer::bind("127.0.0.1:0").expect("bind loopback");
        let addr = server.addr();
        for _ in 0..3 {
            assert!(scrape(addr).is_ok());
        }
        drop(server);
        // The listener is gone: a fresh connect must fail or yield no data.
        assert!(scrape(addr).is_err());
    }
}
