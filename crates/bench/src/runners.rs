//! Shared experiment runners: dataset preparation and per-method training.

use std::time::Instant;

use cl4srec::augment::{AugmentationSet, Mask};
use cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use seqrec_data::synthetic::{generate_dataset, SyntheticConfig};
use seqrec_data::{Dataset, Split};
use seqrec_eval::{evaluate, EvalOptions, EvalTarget, RankingMetrics, SequenceScorer};
use seqrec_models::{
    Bert4Rec, Bert4RecConfig, BprMf, BprMfConfig, Caser, CaserConfig, EncoderConfig, Fpmc,
    FpmcConfig, Gru4Rec, Gru4RecConfig, Ncf, NcfConfig, Pop, SasRec, TrainOptions,
};

use seqrec_obs::ledger::RunLedger;

use crate::args::ExpArgs;

/// The run ledger of one experiments-binary invocation:
/// `<runs_dir>/<bin>-<seed>/` holds the experiment's config.json,
/// env.json, a metrics.jsonl line per trained method, and the final
/// report.json, while each individual fit writes its own complete
/// sub-ledger (per-epoch metrics, per-step dynamics) under `fits/`.
pub struct ExpRun {
    ledger: Option<RunLedger>,
    root: Option<String>,
}

impl ExpRun {
    /// Opens the ledger for `bin` (or a no-op handle under `--no-ledger`).
    ///
    /// # Panics
    /// Panics when the ledger directory cannot be created.
    pub fn start(bin: &str, args: &ExpArgs) -> ExpRun {
        match &args.runs_dir {
            None => ExpRun { ledger: None, root: None },
            Some(runs_dir) => {
                let dir = format!("{runs_dir}/{bin}-{}", args.seed);
                let ledger = RunLedger::create(&dir)
                    .unwrap_or_else(|e| panic!("cannot create run ledger at {dir}: {e}"));
                let mut cfg = String::with_capacity(256);
                cfg.push_str("{\"binary\":");
                seqrec_obs::json::write_str(&mut cfg, bin);
                cfg.push_str(",\"args\":");
                cfg.push_str(&serde_json::to_string(args).expect("args serialize"));
                cfg.push('}');
                ledger.write_config(&cfg);
                ledger.write_env_snapshot();
                seqrec_obs::info!("run ledger: {dir}/");
                ExpRun { ledger: Some(ledger), root: Some(dir) }
            }
        }
    }

    /// A no-op handle that writes nothing (tests, ad-hoc callers).
    pub fn disabled() -> ExpRun {
        ExpRun { ledger: None, root: None }
    }

    /// The run-ledger directory for one fit inside this experiment
    /// (threaded into `TrainOptions::run_dir` / `PretrainOptions::run_dir`).
    pub fn fit_dir(&self, label: &str) -> Option<String> {
        self.root.as_ref().map(|r| format!("{r}/fits/{label}"))
    }

    /// Appends one method's summary metrics to the experiment's
    /// metrics.jsonl.
    pub fn log_result(&self, method: &str, dataset: &str, metrics: &RankingMetrics, secs: f64) {
        if let Some(l) = &self.ledger {
            let mut line = String::with_capacity(256);
            line.push_str("{\"method\":");
            seqrec_obs::json::write_str(&mut line, method);
            line.push_str(",\"dataset\":");
            seqrec_obs::json::write_str(&mut line, dataset);
            line.push_str(&format!(",\"secs\":{secs},\"metrics\":"));
            line.push_str(&serde_json::to_string(metrics).expect("metrics serialize"));
            line.push('}');
            l.append_metrics(&line);
        }
    }

    /// Writes the experiment's final report.json.
    pub fn finish(&self, report: &impl serde::Serialize) {
        if let Some(l) = &self.ledger {
            l.write_report(&serde_json::to_string_pretty(report).expect("report serializes"));
        }
    }
}

/// A generated dataset plus its leave-one-out split.
pub struct Prepared {
    /// Dataset label (beauty/sports/toys/yelp).
    pub name: String,
    /// The generated, 5-core-filtered dataset.
    pub dataset: Dataset,
    /// Its leave-one-out split.
    pub split: Split,
}

/// Generates the named preset at `scale` and splits it.
///
/// # Panics
/// Panics on an unknown dataset name.
pub fn prepare(name: &str, scale: f64) -> Prepared {
    let cfg = match name {
        "beauty" => SyntheticConfig::beauty(scale),
        "sports" => SyntheticConfig::sports(scale),
        "toys" => SyntheticConfig::toys(scale),
        "yelp" => SyntheticConfig::yelp(scale),
        other => panic!("unknown dataset `{other}`"),
    };
    let dataset = generate_dataset(&cfg);
    let split = Split::leave_one_out(&dataset);
    Prepared { name: name.to_string(), dataset, split }
}

/// Training options derived from the experiment args.
pub fn train_opts(args: &ExpArgs) -> TrainOptions {
    TrainOptions {
        epochs: args.epochs,
        seed: args.seed,
        verbosity: args.verbosity,
        valid_probe_users: 200,
        on_anomaly: args.on_anomaly,
        ..Default::default()
    }
}

/// Pre-training options derived from the experiment args.
pub fn pretrain_opts(args: &ExpArgs) -> PretrainOptions {
    PretrainOptions {
        epochs: args.pretrain_epochs,
        seed: args.seed,
        verbosity: args.verbosity,
        on_anomaly: args.on_anomaly,
        ..Default::default()
    }
}

/// Evaluates a trained model on the test targets with the paper's cut-offs.
pub fn eval_test(model: &impl SequenceScorer, split: &Split) -> RankingMetrics {
    evaluate(model, split, EvalTarget::Test, &EvalOptions::default())
}

/// Trains and evaluates one named method; returns metrics and wall seconds.
/// Method names match the paper's Table 2 columns. Each fit writes its
/// run-ledger sub-directory under the experiment's ledger (see [`ExpRun`]).
pub fn run_method(
    name: &str,
    prep: &Prepared,
    args: &ExpArgs,
    run: &ExpRun,
) -> (RankingMetrics, f64) {
    let t0 = Instant::now();
    let split = &prep.split;
    let num_items = prep.dataset.num_items();
    let mut opts = train_opts(args);
    opts.run_dir = run.fit_dir(&format!("{name}-{}", prep.name));
    let metrics = match name {
        "Pop" => {
            let model = Pop::fit(split);
            eval_test(&model, split)
        }
        "BPR-MF" => {
            let mut model =
                BprMf::new(BprMfConfig::default(), split.num_users(), num_items, args.seed);
            model.fit(split, &opts);
            eval_test(&model, split)
        }
        "FPMC" => {
            let mut model =
                Fpmc::new(FpmcConfig::default(), split.num_users(), num_items, args.seed);
            model.fit(split, &opts);
            eval_test(&model, split)
        }
        "Caser" => {
            let mut model = Caser::new(CaserConfig::small(num_items), split.num_users(), args.seed);
            model.fit(split, &opts);
            eval_test(&model, split)
        }
        "BERT4Rec" => {
            let mut model = Bert4Rec::new(Bert4RecConfig::small(num_items), args.seed);
            model.fit(split, &opts);
            eval_test(&model, split)
        }
        "NCF" => {
            let mut model = Ncf::new(NcfConfig::default(), split.num_users(), num_items, args.seed);
            model.fit(split, &opts);
            eval_test(&model, split)
        }
        "GRU4Rec" => {
            let mut model = Gru4Rec::new(Gru4RecConfig::small(num_items), args.seed);
            model.fit(split, &opts);
            eval_test(&model, split)
        }
        "SASRec" => {
            let mut model = SasRec::new(EncoderConfig::small(num_items), args.seed);
            model.fit(split, &opts);
            eval_test(&model, split)
        }
        "SASRec_BPR" => {
            // stage 1: BPR-MF item factors
            let mut bpr =
                BprMf::new(BprMfConfig::default(), split.num_users(), num_items, args.seed);
            let mut bpr_opts = opts.clone();
            bpr_opts.run_dir = run.fit_dir(&format!("SASRec_BPR-stage1-{}", prep.name));
            bpr.fit(split, &bpr_opts);
            // stage 2: warm-started SASRec
            let mut model = SasRec::new(EncoderConfig::small(num_items), args.seed);
            model.warm_start_items(bpr.item_factors());
            model.fit(split, &opts);
            eval_test(&model, split)
        }
        "CL4SRec" => {
            let mut model = Cl4sRec::new(Cl4sRecConfig::small(num_items), args.seed);
            // Table 2 default: the item-mask operator at γ = 0.5 (the
            // setting the paper also uses for its RQ4 experiments).
            let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token: model.mask_token() });
            let mut pre = pretrain_opts(args);
            pre.run_dir = run.fit_dir(&format!("CL4SRec-pretrain-{}", prep.name));
            model.fit(split, &augs, &pre, &opts);
            eval_test(&model, split)
        }
        other => panic!("unknown method `{other}`"),
    };
    let secs = t0.elapsed().as_secs_f64();
    run.log_result(name, &prep.name, &metrics, secs);
    (metrics, secs)
}

/// Trains a CL4SRec variant with an explicit augmentation set (Figures 4-5)
/// and an optional training-user subset (Figure 6). `label` names the
/// variant's run-ledger directories under the experiment's ledger.
pub fn run_cl4srec_with(
    prep: &Prepared,
    augs: &AugmentationSet,
    args: &ExpArgs,
    train_users: Option<Vec<usize>>,
    run: &ExpRun,
    label: &str,
) -> (RankingMetrics, f64) {
    let t0 = Instant::now();
    let mut model = Cl4sRec::new(Cl4sRecConfig::small(prep.dataset.num_items()), args.seed);
    let mut pre = pretrain_opts(args);
    pre.run_dir = run.fit_dir(&format!("{label}-pretrain-{}", prep.name));
    let mut fine = train_opts(args);
    fine.train_users = train_users;
    fine.run_dir = run.fit_dir(&format!("{label}-{}", prep.name));
    model.fit(&prep.split, augs, &pre, &fine);
    let secs = t0.elapsed().as_secs_f64();
    let metrics = eval_test(&model, &prep.split);
    run.log_result(label, &prep.name, &metrics, secs);
    (metrics, secs)
}

/// Trains a plain SASRec with an optional training-user subset (the dashed
/// baseline in Figures 4 and 6).
pub fn run_sasrec_with(
    prep: &Prepared,
    args: &ExpArgs,
    train_users: Option<Vec<usize>>,
    run: &ExpRun,
    label: &str,
) -> (RankingMetrics, f64) {
    let t0 = Instant::now();
    let mut model = SasRec::new(EncoderConfig::small(prep.dataset.num_items()), args.seed);
    let mut opts = train_opts(args);
    opts.train_users = train_users;
    opts.run_dir = run.fit_dir(&format!("{label}-{}", prep.name));
    model.fit(&prep.split, &opts);
    let secs = t0.elapsed().as_secs_f64();
    let metrics = eval_test(&model, &prep.split);
    run.log_result(label, &prep.name, &metrics, secs);
    (metrics, secs)
}

/// Table 2's method order (the arXiv version's baselines).
pub const METHOD_ORDER: [&str; 7] =
    ["Pop", "BPR-MF", "NCF", "GRU4Rec", "SASRec", "SASRec_BPR", "CL4SRec"];

/// Extended method order matching the ICDE camera-ready comparison (adds
/// FPMC, Caser and BERT4Rec).
pub const METHOD_ORDER_EXTENDED: [&str; 10] = [
    "Pop",
    "BPR-MF",
    "FPMC",
    "NCF",
    "GRU4Rec",
    "Caser",
    "BERT4Rec",
    "SASRec",
    "SASRec_BPR",
    "CL4SRec",
];

/// Writes `value` as pretty JSON to `path` when `path` is `Some`.
pub fn maybe_write_json(path: &Option<String>, value: &impl serde::Serialize) {
    if let Some(p) = path {
        let text = serde_json::to_string_pretty(value).expect("serialisable results");
        std::fs::write(p, text).unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        seqrec_obs::info!("results written to {p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_generates_nonempty_split() {
        let prep = prepare("beauty", 0.01);
        assert!(prep.split.num_users() > 10);
        assert_eq!(prep.name, "beauty");
    }

    #[test]
    #[should_panic]
    fn prepare_rejects_unknown_names() {
        prepare("movielens", 0.01);
    }

    #[test]
    fn pop_runs_end_to_end() {
        let prep = prepare("toys", 0.01);
        let args = ExpArgs { epochs: 1, pretrain_epochs: 1, ..ExpArgs::defaults() };
        let (m, secs) = run_method("Pop", &prep, &args, &ExpRun::disabled());
        assert_eq!(m.users, prep.split.num_users());
        assert!(secs >= 0.0);
    }
}
