//! # seqrec-bench
//!
//! Experiment harness for the CL4SRec reproduction: shared runners and
//! argument parsing used by the experiment binaries in the
//! `seqrec-experiments` crate (`table1`, `table2`, `table2x`, `fig4`,
//! `fig5`, `fig6`, `ablation`), plus criterion micro-benchmarks under
//! `benches/` (aggregated into the `all_benches` target for slow machines).
//!
//! Every binary accepts `--scale`, `--epochs`, `--pretrain-epochs`,
//! `--seed`, `--datasets` and `--out` so the experiments can be run closer
//! to paper scale (`--scale 1.0`) on a big machine or at laptop scale (the
//! defaults). Results are printed as markdown and written as JSON for
//! provenance (EXPERIMENTS.md records both).

#![warn(missing_docs)]

pub mod args;
pub mod runners;
pub mod seed_matmul;

pub use args::ExpArgs;
pub use runners::{prepare, Prepared};
