//! Minimal command-line parsing for the experiment binaries.
//!
//! Hand-rolled (no clap): the flag set is tiny and fixed, and keeping the
//! dependency list short was a workspace constraint.

use std::process::exit;

use seqrec_models::common::AnomalyPolicy;
use serde::Serialize;

/// Common experiment options.
#[derive(Clone, Debug, Serialize)]
pub struct ExpArgs {
    /// Fraction of the paper's dataset sizes to generate (Table 1 presets
    /// scaled down). Defaults keep a full run in CPU-minutes.
    pub scale: f64,
    /// Fine-tuning / baseline-training epochs.
    pub epochs: usize,
    /// Contrastive pre-training epochs.
    pub pretrain_epochs: usize,
    /// Global seed.
    pub seed: u64,
    /// Dataset names to run (subset of beauty/sports/toys/yelp).
    pub datasets: Vec<String>,
    /// Path for the JSON results dump (None = print only).
    pub out: Option<String>,
    /// Per-epoch logging: 0 = silent, 1 (`-v`) = per-epoch lines,
    /// 2 (`-vv`) = debug diagnostics.
    pub verbosity: u8,
    /// Root directory for run ledgers (`<runs_dir>/<bin>-<seed>/`); None
    /// (`--no-ledger`) disables the ledger entirely.
    pub runs_dir: Option<String>,
    /// Anomaly policy threaded into every fit (warn or abort).
    pub on_anomaly: AnomalyPolicy,
    /// Data-parallel shard count threaded into the fit loops (1 = the
    /// classic serial step; see `TrainOptions::data_parallel`).
    pub data_parallel: usize,
}

impl ExpArgs {
    /// Defaults tuned so each binary finishes in minutes on a laptop.
    pub fn defaults() -> Self {
        ExpArgs {
            scale: 0.04,
            epochs: 25,
            pretrain_epochs: 12,
            seed: 42,
            datasets: vec!["beauty".into(), "sports".into(), "toys".into(), "yelp".into()],
            out: None,
            verbosity: 0,
            runs_dir: Some("runs".into()),
            on_anomaly: AnomalyPolicy::Warn,
            data_parallel: 1,
        }
    }

    /// Parses `std::env::args`, exiting with usage on error. `name` and
    /// `what` feed the `--help` text.
    pub fn parse(name: &str, what: &str) -> Self {
        let mut args = Self::defaults();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |flag: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => args.scale = parse_or_die(&take("--scale"), "--scale"),
                "--epochs" => args.epochs = parse_or_die(&take("--epochs"), "--epochs"),
                "--pretrain-epochs" => {
                    args.pretrain_epochs =
                        parse_or_die(&take("--pretrain-epochs"), "--pretrain-epochs");
                }
                "--seed" => args.seed = parse_or_die(&take("--seed"), "--seed"),
                "--data-parallel" => {
                    args.data_parallel =
                        parse_or_die::<usize>(&take("--data-parallel"), "--data-parallel").max(1);
                }
                "--datasets" => {
                    args.datasets = take("--datasets")
                        .split(',')
                        .map(|s| s.trim().to_lowercase())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                "--out" => args.out = Some(take("--out")),
                "--runs-dir" => args.runs_dir = Some(take("--runs-dir")),
                "--no-ledger" => args.runs_dir = None,
                "--on-anomaly" => {
                    args.on_anomaly =
                        AnomalyPolicy::parse(&take("--on-anomaly")).unwrap_or_else(|e| {
                            eprintln!("{e}");
                            exit(2);
                        });
                }
                "--verbose" | "-v" => args.verbosity = args.verbosity.max(1),
                "-vv" => args.verbosity = 2,
                "--help" | "-h" => {
                    println!(
                        "{name}: {what}\n\n\
                         options:\n\
                         \x20 --scale <f>            dataset scale vs Table 1 sizes (default 0.04)\n\
                         \x20 --epochs <n>           training epochs (default 25, early stopping applies)\n\
                         \x20 --pretrain-epochs <n>  contrastive pre-training epochs (default 12)\n\
                         \x20 --seed <n>             RNG seed (default 42)\n\
                         \x20 --data-parallel <n>    gradient shards per step (default 1 = serial step)\n\
                         \x20 --datasets <a,b,..>    subset of beauty,sports,toys,yelp\n\
                         \x20 --out <path>           write JSON results here\n\
                         \x20 --runs-dir <dir>       run-ledger root (default runs/)\n\
                         \x20 --no-ledger            disable the run ledger\n\
                         \x20 --on-anomaly <p>       warn (default) or abort on NaN/Inf dynamics\n\
                         \x20 --verbose | -v         per-epoch logs (-vv for debug)\n\
                         \x20 env SEQREC_THREADS     worker-pool size (default: available parallelism; 1 = serial)\n\
                         \x20 env SEQREC_OBS         telemetry sinks: console=LEVEL,jsonl=PATH,chrome=PATH,detail\n\
                         \x20                        (SEQREC_OBS=help prints the full grammar)"
                    );
                    exit(0);
                }
                other => {
                    eprintln!("unknown flag `{other}` (try --help)");
                    exit(2);
                }
            }
        }
        for d in &args.datasets {
            if !matches!(d.as_str(), "beauty" | "sports" | "toys" | "yelp") {
                eprintln!("unknown dataset `{d}` (expected beauty,sports,toys,yelp)");
                exit(2);
            }
        }
        args
    }
}

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse `{s}` for {flag}");
        exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_four_datasets() {
        let a = ExpArgs::defaults();
        assert_eq!(a.datasets.len(), 4);
        assert!(a.scale > 0.0 && a.scale < 1.0);
    }
}
