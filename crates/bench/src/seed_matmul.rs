//! Frozen copies of the seed's matmul kernels, kept as the baseline side of
//! the `matmul` benchmark group.
//!
//! These are the row-loop kernels `seqrec_tensor::linalg` shipped with
//! before the packed/blocked GEMM engine replaced them: axpy rows for
//! `nn`/`tn`, dot products for `nt`, rayon fan-out per output row past a
//! work threshold, and the (now removed) data-dependent `x == 0.0` skip.
//! Benchmarks compare the current engine against these so speedups are
//! measured against the real seed implementation rather than the naive
//! triple loop. Do not "fix" or optimise this module — its value is that it
//! stays identical to the seed.

use rayon::prelude::*;
use seqrec_tensor::Tensor;

/// Same fan-out threshold the seed used.
const PAR_THRESHOLD: usize = 1 << 15;

/// Seed `C = A·B` on row-major `[m,k]·[k,n]` tensors.
pub fn matmul_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    kernel_nn(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// Seed `C = A·Bᵀ` with `b` stored `[n,k]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (n, k2) = dims2(b);
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    kernel_nt(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// Seed `C = Aᵀ·B` with `a` stored `[k,m]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    kernel_tn(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// Seed batched `A·Bᵀ` (`[ba,m,k]·[ba,n,k]`), serial per batch below the
/// threshold and — exactly as in the seed — serial whenever `ba == 1`.
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let d = a.shape().dims();
    let (ba, m, k) = (d[0], d[1], d[2]);
    let dbv = b.shape().dims();
    let n = dbv[1];
    assert_eq!(ba, dbv[0]);
    assert_eq!(k, dbv[2]);
    let (as_, bs) = (a.data(), b.data());
    let (a_stride, b_stride) = (m * k, n * k);
    let mut out = vec![0.0f32; ba * m * n];
    let run = |(i, chunk): (usize, &mut [f32])| {
        let av = &as_[i * a_stride..(i + 1) * a_stride];
        let bv = &bs[i * b_stride..(i + 1) * b_stride];
        kernel_nt_serial(av, bv, chunk, m, k, n);
    };
    if ba * m * k * n >= PAR_THRESHOLD && ba > 1 {
        out.par_chunks_mut(m * n).enumerate().for_each(run);
    } else {
        out.chunks_mut(m * n).enumerate().for_each(run);
    }
    Tensor::from_vec([ba, m, n], out)
}

fn dims2(t: &Tensor) -> (usize, usize) {
    (t.shape().dim(0), t.shape().dim(1))
}

fn kernel_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m * k * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            nn_row(&a[i * k..(i + 1) * k], b, row, k, n);
        });
    } else {
        for (i, row) in out.chunks_mut(n).enumerate().take(m) {
            nn_row(&a[i * k..(i + 1) * k], b, row, k, n);
        }
    }
}

#[inline]
fn nn_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
    for p in 0..k {
        let x = a_row[p];
        if x == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += x * bv;
        }
    }
}

fn kernel_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m * k * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            nt_row(&a[i * k..(i + 1) * k], b, row, k);
        });
    } else {
        kernel_nt_serial(a, b, out, m, k, n);
    }
}

fn kernel_nt_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, _n: usize) {
    for (i, row) in out.chunks_mut(out.len() / m).enumerate().take(m) {
        nt_row(&a[i * k..(i + 1) * k], b, row, k);
    }
}

#[inline]
fn nt_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
    for (j, o) in out_row.iter_mut().enumerate() {
        let b_row = &b[j * k..(j + 1) * k];
        let mut acc = 0.0f32;
        for (&x, &y) in a_row.iter().zip(b_row) {
            acc += x * y;
        }
        *o = acc;
    }
}

fn kernel_tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m * k * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            for p in 0..k {
                let x = a[p * m + i];
                if x == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in row.iter_mut().zip(b_row) {
                    *o += x * bv;
                }
            }
        });
    } else {
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for i in 0..m {
                let x = a_row[i];
                if x == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += x * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_tensor::init::{rng, uniform};
    use seqrec_tensor::linalg;

    /// The baseline must agree with the current engine, otherwise the bench
    /// compares different computations.
    #[test]
    fn seed_kernels_match_current_engine() {
        let mut r = rng(42);
        let a = uniform([33, 20], -1.0, 1.0, &mut r);
        let b = uniform([20, 27], -1.0, 1.0, &mut r);
        assert!(matmul_nn(&a, &b).max_diff(&linalg::matmul_nn(&a, &b)) <= 1e-4);

        let bt = uniform([27, 20], -1.0, 1.0, &mut r);
        assert!(matmul_nt(&a, &bt).max_diff(&linalg::matmul_nt(&a, &bt)) <= 1e-4);

        let at = uniform([20, 33], -1.0, 1.0, &mut r);
        assert!(matmul_tn(&at, &b).max_diff(&linalg::matmul_tn(&at, &b)) <= 1e-4);

        let q = uniform([4, 9, 8], -1.0, 1.0, &mut r);
        let kk = uniform([4, 11, 8], -1.0, 1.0, &mut r);
        assert!(bmm_nt(&q, &kk).max_diff(&linalg::bmm_nt(&q, &kk)) <= 1e-4);
    }
}
