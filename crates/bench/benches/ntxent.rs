//! Ablation bench: the NT-Xent loss via one `2N×2N` similarity matmul +
//! fused cross-entropy (the library implementation) against a per-pair
//! reference that computes each similarity row independently.

use cl4srec::ntxent::nt_xent;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqrec_tensor::init::{rng, uniform};
use seqrec_tensor::nn::Step;
use seqrec_tensor::Tensor;
use std::hint::black_box;

/// Reference implementation: explicit loops, forward value only.
fn nt_xent_naive(z1: &Tensor, z2: &Tensor, tau: f32) -> f32 {
    let n = z1.shape().dim(0);
    let d = z1.shape().dim(1);
    let row = |i: usize| -> &[f32] {
        if i < n {
            &z1.data()[i * d..(i + 1) * d]
        } else {
            &z2.data()[(i - n) * d..(i - n + 1) * d]
        }
    };
    let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
    let cos = |a: &[f32], b: &[f32]| {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        dot / (norm(a) * norm(b))
    };
    let mut total = 0.0f64;
    for i in 0..2 * n {
        let pos = if i < n { i + n } else { i - n };
        let mut denom = 0.0f64;
        let mut pos_term = 0.0f64;
        for j in 0..2 * n {
            if j == i {
                continue;
            }
            let e = ((cos(row(i), row(j)) / tau) as f64).exp();
            denom += e;
            if j == pos {
                pos_term = e;
            }
        }
        total += -(pos_term / denom).ln();
    }
    (total / (2 * n) as f64) as f32
}

fn bench_ntxent(c: &mut Criterion) {
    let mut group = c.benchmark_group("nt_xent");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let mut r = rng(1);
        let z1 = uniform([n, 64], -1.0, 1.0, &mut r);
        let z2 = uniform([n, 64], -1.0, 1.0, &mut r);
        group.bench_with_input(BenchmarkId::new("matmul_fused_fwd_bwd", n), &n, |bench, _| {
            bench.iter(|| {
                let mut step = Step::new();
                let a = step.tape.leaf(z1.clone());
                let b = step.tape.leaf(z2.clone());
                let l = nt_xent(&mut step, a, b, 0.5);
                let grads = step.tape.backward(l);
                black_box(grads.get(a).is_some());
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_pairwise_fwd_only", n), &n, |bench, _| {
            bench.iter(|| black_box(nt_xent_naive(&z1, &z2, 0.5)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ntxent);
criterion_main!(benches);
