//! Cost of the Transformer encoder: forward only (inference/scoring) vs
//! forward + backward (one training step) at the paper's sequence length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqrec_data::batch::pad_left;
use seqrec_models::encoder::{EncoderConfig, TransformerEncoder};
use seqrec_tensor::init::rng;
use seqrec_tensor::nn::Step;
use std::hint::black_box;

fn make_batch(b: usize, t: usize, num_items: usize) -> (Vec<u32>, Vec<Vec<bool>>) {
    let mut ids = Vec::with_capacity(b * t);
    let mut valid = Vec::with_capacity(b);
    for u in 0..b {
        let seq: Vec<u32> =
            (0..10 + u % 20).map(|i| ((u * 7 + i * 3) % num_items) as u32 + 1).collect();
        let (i, v) = pad_left(&seq, t);
        ids.extend(i);
        valid.push(v);
    }
    (ids, valid)
}

fn bench_attention(c: &mut Criterion) {
    let cfg =
        EncoderConfig { num_items: 1000, d: 64, heads: 2, layers: 2, max_len: 50, dropout: 0.2 };
    let mut r = rng(1);
    let enc = TransformerEncoder::new(cfg, &mut r);

    let mut group = c.benchmark_group("encoder");
    group.sample_size(10);
    for &b in &[32usize, 128] {
        let (ids, valid) = make_batch(b, 50, 1000);
        group.bench_with_input(BenchmarkId::new("forward", b), &b, |bench, _| {
            bench.iter(|| {
                let mut step = Step::new();
                let mut r2 = rng(0);
                let out = enc.user_repr(&mut step, black_box(&ids), &valid, false, &mut r2);
                black_box(step.tape.value(out).at(0));
            });
        });
        group.bench_with_input(BenchmarkId::new("forward_backward", b), &b, |bench, _| {
            bench.iter(|| {
                let mut step = Step::new();
                let mut r2 = rng(0);
                let out = enc.user_repr(&mut step, black_box(&ids), &valid, true, &mut r2);
                let sq = step.tape.mul(out, out);
                let loss = step.tape.sum_all(sq);
                let grads = step.tape.backward(loss);
                black_box(grads.get(out).is_some());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
