//! Single-binary aggregation of every criterion bench in this crate.
//!
//! Each sibling file remains a standalone `[[bench]]`-able module, but on
//! slow single-core machines linking six criterion binaries dominates the
//! wall clock — this target compiles them once. `cargo bench --bench
//! all_benches` runs everything.

#[path = "attention.rs"]
mod attention_benches;
#[path = "augment.rs"]
mod augment_benches;
#[path = "batching.rs"]
mod batching_benches;
#[path = "matmul.rs"]
mod matmul_benches;
#[path = "ntxent.rs"]
mod ntxent_benches;
#[path = "ranking.rs"]
mod ranking_benches;

criterion::criterion_main!(
    matmul_benches::benches,
    augment_benches::benches,
    attention_benches::benches,
    ntxent_benches::benches,
    ranking_benches::benches,
    batching_benches::benches
);
