//! Throughput of the three augmentation operators and of producing the
//! two-view positive pair — the per-batch preprocessing cost of
//! contrastive pre-training.

use cl4srec::augment::{Augmentation, AugmentationSet, Crop, Mask, Reorder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqrec_tensor::init::rng;
use std::hint::black_box;

fn bench_augment(c: &mut Criterion) {
    let mut group = c.benchmark_group("augment");
    let seq: Vec<u32> = (1..=50).collect();
    let ops: Vec<(&str, Box<dyn Augmentation>)> = vec![
        ("crop", Box::new(Crop { eta: 0.6 })),
        ("mask", Box::new(Mask { gamma: 0.5, mask_token: 99 })),
        ("reorder", Box::new(Reorder { beta: 0.5 })),
    ];
    for (name, op) in &ops {
        group.bench_with_input(BenchmarkId::new("op", name), name, |bench, _| {
            let mut r = rng(1);
            bench.iter(|| op.apply(black_box(&seq), &mut r));
        });
    }
    group.bench_function("two_views_full_set", |bench| {
        let set = AugmentationSet::paper_full(0.6, 0.5, 0.5, 99);
        let mut r = rng(2);
        bench.iter(|| set.two_views(black_box(&seq), &mut r));
    });
    group.bench_function("two_views_batch256", |bench| {
        let set = AugmentationSet::paper_full(0.6, 0.5, 0.5, 99);
        let mut r = rng(3);
        bench.iter(|| {
            for _ in 0..256 {
                black_box(set.two_views(black_box(&seq), &mut r));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_augment);
criterion_main!(benches);
