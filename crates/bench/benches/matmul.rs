//! Matmul engine benchmarks with GFLOP/s reporting on the shapes the paper's
//! training loop actually produces (DESIGN.md "key design decisions").
//!
//! Three-way comparison per shape:
//! * `blocked_*` — the current packed/blocked GEMM engine,
//! * `seed_*`    — the seed's row-loop kernels, frozen in
//!   [`seqrec_bench::seed_matmul`],
//! * `naive`     — the triple loop, small square shapes only (it is far too
//!   slow at the paper shapes to be worth the bench time).
//!
//! Every benchmark id encodes its dimensions as `<m>x<k>x<n>` (batched:
//! `<ba>x<m>x<k>x<n>`), and throughput is declared as
//! `Throughput::Elements(flops)` with `flops = 2·∏dims`, so the reported
//! element rate *is* FLOP/s. `scripts/bench_matmul.sh` turns these into
//! `BENCH_matmul.json`.
//!
//! Paper shapes (batch 64, seq len 50, d=64, 2 heads, |V|≈4096, NT-Xent
//! batch 2N=512):
//! * attention scores `[B·h, T, dh]·[B·h, T, dh]ᵀ` → bmm_nt 128×50×32×50
//!   (and the 64-batch variant kept from the seed bench),
//! * output projection `[B·T, d]·[d, |V|]` → nn 3200×64×4096 (acceptance
//!   shape 512×64×4096 kept as well),
//! * NT-Xent similarity `[2N, d]·[2N, d]ᵀ` → nt 512×64×512.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seqrec_bench::seed_matmul;
use seqrec_tensor::init::{rng, uniform};
use seqrec_tensor::linalg;
use seqrec_tensor::Tensor;
use std::hint::black_box;

fn flops2d(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

fn dims_id(dims: &[usize]) -> String {
    dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x")
}

fn pair(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut r = rng(seed);
    let a = uniform([m, k], -1.0, 1.0, &mut r);
    let b = uniform([k, n], -1.0, 1.0, &mut r);
    (a, b)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);

    // Square sweep retained from the seed bench, now with the seed kernels
    // as the baseline and FLOP/s attached. 256² is an acceptance shape.
    for &n in &[32usize, 128, 256] {
        let (a, b) = pair(n, n, n, 1);
        let id = dims_id(&[n, n, n]);
        group.throughput(Throughput::Elements(flops2d(n, n, n)));
        group.bench_with_input(BenchmarkId::new("blocked_nn", &id), &n, |bench, _| {
            bench.iter(|| linalg::matmul_nn(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("seed_nn", &id), &n, |bench, _| {
            bench.iter(|| seed_matmul::matmul_nn(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("naive", &id), &n, |bench, _| {
            bench.iter(|| linalg::matmul_naive(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("blocked_nt", &id), &n, |bench, _| {
            bench.iter(|| linalg::matmul_nt(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("seed_nt", &id), &n, |bench, _| {
            bench.iter(|| seed_matmul::matmul_nt(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("blocked_tn", &id), &n, |bench, _| {
            bench.iter(|| linalg::matmul_tn(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("seed_tn", &id), &n, |bench, _| {
            bench.iter(|| seed_matmul::matmul_tn(black_box(&a), black_box(&b)));
        });
    }

    // Projection layer [B·T, d]·[d, |V|]: the dominant cost of a training
    // step. 512×64×4096 is the acceptance shape; 3200×64×4096 is the full
    // batch-64 paper shape.
    for &(m, k, n) in &[(512usize, 64usize, 4096usize), (3200, 64, 4096)] {
        let (a, b) = pair(m, k, n, 2);
        let id = dims_id(&[m, k, n]);
        group.throughput(Throughput::Elements(flops2d(m, k, n)));
        group.bench_with_input(BenchmarkId::new("blocked_nn", &id), &m, |bench, _| {
            bench.iter(|| linalg::matmul_nn(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("seed_nn", &id), &m, |bench, _| {
            bench.iter(|| seed_matmul::matmul_nn(black_box(&a), black_box(&b)));
        });
    }

    // NT-Xent similarity matrix [2N, d]·[2N, d]ᵀ at the paper's 2N=512.
    {
        let (m, k, n) = (512usize, 64usize, 512usize);
        let mut r = rng(3);
        let z1 = uniform([m, k], -1.0, 1.0, &mut r);
        let z2 = uniform([n, k], -1.0, 1.0, &mut r);
        let id = dims_id(&[m, k, n]);
        group.throughput(Throughput::Elements(flops2d(m, k, n)));
        group.bench_with_input(BenchmarkId::new("blocked_nt", &id), &m, |bench, _| {
            bench.iter(|| linalg::matmul_nt(black_box(&z1), black_box(&z2)));
        });
        group.bench_with_input(BenchmarkId::new("seed_nt", &id), &m, |bench, _| {
            bench.iter(|| seed_matmul::matmul_nt(black_box(&z1), black_box(&z2)));
        });
    }
    group.finish();

    // Attention scores: [B·h, T, dh] · [B·h, T, dh]ᵀ.
    let mut group = c.benchmark_group("bmm_attention_shape");
    group.sample_size(20);
    for &bh in &[64usize, 128] {
        let (t, dh) = (50usize, 32usize);
        let mut r = rng(4);
        let q = uniform([bh, t, dh], -1.0, 1.0, &mut r);
        let k = uniform([bh, t, dh], -1.0, 1.0, &mut r);
        let id = dims_id(&[bh, t, dh, t]);
        group.throughput(Throughput::Elements((bh as u64) * flops2d(t, dh, t)));
        group.bench_with_input(BenchmarkId::new("blocked_bmm_nt", &id), &bh, |bench, _| {
            bench.iter(|| linalg::bmm_nt(black_box(&q), black_box(&k)));
        });
        group.bench_with_input(BenchmarkId::new("seed_bmm_nt", &id), &bh, |bench, _| {
            bench.iter(|| seed_matmul::bmm_nt(black_box(&q), black_box(&k)));
        });
    }

    // Single-batch bmm at a size where the seed's `ba == 1` serial fallback
    // hurt: the current engine routes this through the parallel 2D path.
    {
        let (m, k, n) = (512usize, 64usize, 512usize);
        let mut r = rng(5);
        let q = uniform([1, m, k], -1.0, 1.0, &mut r);
        let kk = uniform([1, n, k], -1.0, 1.0, &mut r);
        let id = dims_id(&[1, m, k, n]);
        group.throughput(Throughput::Elements(flops2d(m, k, n)));
        group.bench_with_input(BenchmarkId::new("blocked_bmm_nt", &id), &m, |bench, _| {
            bench.iter(|| linalg::bmm_nt(black_box(&q), black_box(&kk)));
        });
        group.bench_with_input(BenchmarkId::new("seed_bmm_nt", &id), &m, |bench, _| {
            bench.iter(|| seed_matmul::bmm_nt(black_box(&q), black_box(&kk)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
