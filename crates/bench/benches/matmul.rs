//! Ablation bench: blocked/axpy matmul kernels vs the naive triple loop
//! (DESIGN.md "key design decisions"). Also covers the transposed kernels
//! used by the backward passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqrec_tensor::init::{rng, uniform};
use seqrec_tensor::linalg;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[32usize, 128, 256] {
        let mut r = rng(1);
        let a = uniform([n, n], -1.0, 1.0, &mut r);
        let b = uniform([n, n], -1.0, 1.0, &mut r);
        group.bench_with_input(BenchmarkId::new("blocked_nn", n), &n, |bench, _| {
            bench.iter(|| linalg::matmul_nn(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| linalg::matmul_naive(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| linalg::matmul_nt(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| linalg::matmul_tn(black_box(&a), black_box(&b)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bmm_attention_shape");
    group.sample_size(20);
    // the attention score shape: [B*h, T, dh] x [B*h, T, dh]^T
    let mut r = rng(2);
    let q = uniform([64, 50, 32], -1.0, 1.0, &mut r);
    let k = uniform([64, 50, 32], -1.0, 1.0, &mut r);
    group.bench_function("bmm_nt_64x50x32", |bench| {
        bench.iter(|| linalg::bmm_nt(black_box(&q), black_box(&k)));
    });
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
