//! Full-catalog evaluation cost: scoring a user batch against every item
//! (one `users×d · d×V` matmul) and computing target ranks — the paper's
//! no-sampled-metrics protocol (§4.1.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqrec_eval::rank_of_target;
use seqrec_tensor::init::{rng, uniform};
use seqrec_tensor::linalg;
use std::hint::black_box;

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking");
    group.sample_size(20);
    for &v in &[1_000usize, 12_000] {
        let mut r = rng(1);
        let reprs = uniform([256, 64], -1.0, 1.0, &mut r);
        let table = uniform([v + 1, 64], -1.0, 1.0, &mut r);
        group.bench_with_input(BenchmarkId::new("score_256_users", v), &v, |bench, _| {
            bench.iter(|| linalg::matmul_nt(black_box(&reprs), black_box(&table)));
        });

        let scores = linalg::matmul_nt(&reprs, &table);
        let exclude: Vec<u32> = (1..30).collect();
        group.bench_with_input(BenchmarkId::new("rank_256_targets", v), &v, |bench, _| {
            bench.iter(|| {
                let mut acc = 0usize;
                for row in scores.data().chunks(v + 1) {
                    acc += rank_of_target(black_box(row), 42, &exclude);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
