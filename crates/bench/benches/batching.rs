//! Batching-pipeline cost: left-padding, negative sampling and assembling a
//! full next-item training batch.

use criterion::{criterion_group, criterion_main, Criterion};
use seqrec_data::batch::{epoch_batches, next_item_batch, pad_left, NegativeSampler};
use std::collections::HashSet;
use std::hint::black_box;

fn bench_batching(c: &mut Criterion) {
    let seqs: Vec<Vec<u32>> =
        (0..256).map(|u| (0..12).map(|i| ((u * 13 + i * 7) % 5000) as u32 + 1).collect()).collect();
    let seq_refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();

    let mut group = c.benchmark_group("batching");
    group.bench_function("pad_left_256x50", |bench| {
        bench.iter(|| {
            for s in &seq_refs {
                black_box(pad_left(black_box(s), 50));
            }
        });
    });
    group.bench_function("negative_sample_2560", |bench| {
        let mut sampler = NegativeSampler::new(5000, 1);
        let exclude: HashSet<u32> = (1..13).collect();
        bench.iter(|| {
            let mut acc = 0u64;
            for _ in 0..2560 {
                acc += u64::from(sampler.sample(black_box(&exclude)));
            }
            black_box(acc)
        });
    });
    group.bench_function("next_item_batch_256x50", |bench| {
        let mut sampler = NegativeSampler::new(5000, 2);
        bench.iter(|| black_box(next_item_batch(black_box(&seq_refs), 50, &mut sampler)));
    });
    group.bench_function("epoch_shuffle_25k_users", |bench| {
        let users: Vec<usize> = (0..25_000).collect();
        bench.iter(|| black_box(epoch_batches(black_box(&users), 256, 7)));
    });
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
