//! Golden training-step scenarios.
//!
//! Each scenario seeds everything (init, negatives, dropout, augmentations),
//! runs K Adam steps on a fixed tiny batch and records the loss of every
//! step as its raw f32 bit pattern plus an FNV-1a digest of every final
//! parameter. The workspace-root test `tests/golden_training.rs` asserts
//! the records match the fixtures committed under `tests/golden/` —
//! bit-for-bit — and that two consecutive in-process runs agree.
//!
//! Fixtures are plain text (one token pair per line) so regenerating them
//! produces reviewable diffs:
//!
//! ```text
//! golden-v1
//! loss 3f9d70a4
//! param enc.item 9e3779b97f4a7c15
//! ```

use cl4srec::{AugmentationSet, Cl4sRec, Cl4sRecConfig};
use seqrec_data::batch::{next_item_batch, NegativeSampler, NextItemBatch};
use seqrec_models::{EncoderConfig, SasRec};
use seqrec_tensor::init::rng;
use seqrec_tensor::nn::Step;
use seqrec_tensor::optim::{Adam, AdamConfig};

use crate::digest::digest_params;

/// Optimizer steps per golden scenario.
pub const GOLDEN_STEPS: usize = 6;

/// A recorded training trajectory: per-step loss bits and final parameter
/// digests in visit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenRecord {
    /// `f32::to_bits` of the loss at each step.
    pub losses: Vec<u32>,
    /// `(parameter name, FNV-1a digest of its final bits)`.
    pub params: Vec<(String, u64)>,
}

impl GoldenRecord {
    /// Serialises to the fixture text format.
    pub fn to_text(&self) -> String {
        let mut s = String::from("golden-v1\n");
        for &l in &self.losses {
            s.push_str(&format!("loss {l:08x}\n"));
        }
        for (name, d) in &self.params {
            s.push_str(&format!("param {name} {d:016x}\n"));
        }
        s
    }

    /// Parses the fixture text format.
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("golden-v1") => {}
            other => return Err(format!("bad fixture header: {other:?}")),
        }
        let mut record = GoldenRecord { losses: Vec::new(), params: Vec::new() };
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["loss", bits] => {
                    let v = u32::from_str_radix(bits, 16)
                        .map_err(|e| format!("bad loss bits {bits:?}: {e}"))?;
                    record.losses.push(v);
                }
                ["param", name, digest] => {
                    let v = u64::from_str_radix(digest, 16)
                        .map_err(|e| format!("bad digest {digest:?}: {e}"))?;
                    record.params.push(((*name).to_string(), v));
                }
                _ => return Err(format!("unrecognised fixture line: {line:?}")),
            }
        }
        Ok(record)
    }
}

/// The tiny fixed dataset every scenario trains on: 4 users, catalog 10.
pub fn golden_sequences() -> Vec<Vec<u32>> {
    vec![vec![1, 3, 5, 7, 9], vec![2, 4, 6, 8], vec![9, 7, 5, 3, 1], vec![1, 2, 3, 4, 5, 6]]
}

fn golden_encoder_config() -> EncoderConfig {
    // Non-zero dropout on purpose: the trajectory then also pins the
    // ChaCha8 stream, catching the shim-vs-registry RNG drift PR 1 fixed.
    EncoderConfig { num_items: 10, d: 8, heads: 2, layers: 1, max_len: 6, dropout: 0.1 }
}

fn golden_batch(t: usize) -> NextItemBatch {
    let seqs = golden_sequences();
    let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
    let mut sampler = NegativeSampler::new(10, 13);
    next_item_batch(&refs, t, &mut sampler)
}

/// SASRec scenario: [`GOLDEN_STEPS`] Adam steps of the next-item BCE loss
/// (Eq. 15) on one fixed batch.
pub fn run_sasrec_golden() -> GoldenRecord {
    let cfg = golden_encoder_config();
    let t = cfg.max_len;
    let mut model = SasRec::new(cfg, 7);
    let batch = golden_batch(t);
    let mut adam = Adam::new(AdamConfig { lr: 1e-2, ..AdamConfig::default() });
    let mut r = rng(17);

    let mut losses = Vec::with_capacity(GOLDEN_STEPS);
    for _ in 0..GOLDEN_STEPS {
        let mut step = Step::new();
        let loss = model.next_item_loss(&mut step, &batch, true, &mut r);
        losses.push(step.tape.value(loss).item().to_bits());
        let grads = step.tape.backward(loss);
        adam.step(&mut model, &step, &grads);
    }
    GoldenRecord { losses, params: digest_params(&model) }
}

/// CL4SRec scenario: [`GOLDEN_STEPS`] Adam steps of the joint objective
/// (Eq. 16, λ = 0.1) — next-item BCE plus NT-Xent over two augmented views
/// drawn from the paper's full crop/mask/reorder set. Pins the augmentation
/// RNG stream on top of everything the SASRec scenario pins.
pub fn run_cl4srec_golden() -> GoldenRecord {
    let cfg = Cl4sRecConfig { encoder: golden_encoder_config(), tau: 0.5 };
    let t = cfg.encoder.max_len;
    let mut model = Cl4sRec::new(cfg, 7);
    let augs = AugmentationSet::paper_full(0.6, 0.5, 0.5, model.mask_token());
    let seqs = golden_sequences();
    let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
    let batch = golden_batch(t);
    let mut adam = Adam::new(AdamConfig { lr: 1e-2, ..AdamConfig::default() });
    let mut r = rng(23);

    let mut losses = Vec::with_capacity(GOLDEN_STEPS);
    for _ in 0..GOLDEN_STEPS {
        let mut step = Step::new();
        let loss = model.joint_loss(&mut step, &batch, &refs, &augs, 0.1, true, &mut r);
        losses.push(step.tape.value(loss).item().to_bits());
        let grads = step.tape.backward(loss);
        adam.step(&mut model, &step, &grads);
    }
    GoldenRecord { losses, params: digest_params(&model) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let rec = GoldenRecord {
            losses: vec![0x3f80_0000, 0x4000_0000],
            params: vec![("enc.item".to_string(), 0xdead_beef_cafe_f00d)],
        };
        let parsed = GoldenRecord::from_text(&rec.to_text()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(GoldenRecord::from_text("nope\n").is_err());
        assert!(GoldenRecord::from_text("golden-v1\nloss zz\n").is_err());
        assert!(GoldenRecord::from_text("golden-v1\nwat 1 2 3\n").is_err());
    }
}
