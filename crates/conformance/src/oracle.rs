//! Naive scalar reference implementations ("the oracle").
//!
//! Every function here is written straight from the mathematical definition,
//! independently of the optimized engine in `seqrec-tensor`/`cl4srec`:
//! plain nested loops, no blocking, no fused backward tricks, f64
//! accumulation wherever a sum appears. The differential fuzzers in
//! `tests/` hold the engine to these within tight tolerances on adversarial
//! shapes.
//!
//! Inputs and outputs are plain `&[f32]` slices plus explicit dimensions so
//! the oracle shares no code (not even shape plumbing) with the engine.

use rand::seq::SliceRandom;
use rand::Rng;
use seqrec_tensor::init::TensorRng;

// ---------------------------------------------------------------------------
// activations
// ---------------------------------------------------------------------------

/// `max(0, x)` elementwise.
pub fn relu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| if v > 0.0 { v } else { 0.0 }).collect()
}

/// `1 / (1 + e^{-x})` elementwise, computed in f64 from the definition.
pub fn sigmoid(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| (1.0 / (1.0 + (-v as f64).exp())) as f32).collect()
}

/// `tanh(x)` elementwise (f64).
pub fn tanh(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| (v as f64).tanh() as f32).collect()
}

/// `ln(1 + e^x)` elementwise (f64). Valid for the bounded inputs the
/// fuzzers generate; the engine's stabilised form must agree there.
pub fn softplus(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| (1.0 + (v as f64).exp()).ln() as f32).collect()
}

// ---------------------------------------------------------------------------
// basic elementwise / reductions
// ---------------------------------------------------------------------------

/// Elementwise `a + b`.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Elementwise `a - b`.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Elementwise `a ∘ b`.
pub fn mul(a: &[f32], b: &[f32]) -> Vec<f32> {
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// `c · a` elementwise.
pub fn scale(a: &[f32], c: f32) -> Vec<f32> {
    a.iter().map(|&x| x * c).collect()
}

/// Adds a length-`d` bias to every row of an `[rows, d]` matrix.
pub fn add_bias(x: &[f32], bias: &[f32], d: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(x.len());
    for row in x.chunks(d) {
        for (v, b) in row.iter().zip(bias) {
            out.push(v + b);
        }
    }
    out
}

/// Multiplies every row of an `[rows, d]` matrix by a length-`d` gain.
pub fn mul_bias(x: &[f32], gamma: &[f32], d: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(x.len());
    for row in x.chunks(d) {
        for (v, g) in row.iter().zip(gamma) {
            out.push(v * g);
        }
    }
    out
}

/// `[B, T, d] + [T, d]` broadcast over the batch axis.
pub fn add_broadcast_batch(x: &[f32], m: &[f32], b: usize, t: usize, d: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(b * t * d);
    for bi in 0..b {
        for i in 0..t * d {
            out.push(x[bi * t * d + i] + m[i]);
        }
    }
    out
}

/// Sum of all elements, accumulated in f64.
pub fn sum_all(x: &[f32]) -> f32 {
    x.iter().map(|&v| v as f64).sum::<f64>() as f32
}

/// Mean of all elements, accumulated in f64.
pub fn mean_all(x: &[f32]) -> f32 {
    (x.iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64) as f32
}

/// Per-row sums of an `[n, d]` matrix.
pub fn sum_rows(x: &[f32], d: usize) -> Vec<f32> {
    x.chunks(d).map(|row| row.iter().map(|&v| v as f64).sum::<f64>() as f32).collect()
}

/// `Σ(x ∘ w) / Σw` (both sums over every element, f64).
pub fn masked_mean(x: &[f32], w: &[f32]) -> f32 {
    let num: f64 = x.iter().zip(w).map(|(&a, &b)| a as f64 * b as f64).sum();
    let den: f64 = w.iter().map(|&b| b as f64).sum();
    (num / den) as f32
}

// ---------------------------------------------------------------------------
// embedding / structural
// ---------------------------------------------------------------------------

/// Gathers rows of a `[v, d]` table: output `[ids.len(), d]`.
pub fn embedding(table: &[f32], d: usize, ids: &[u32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(ids.len() * d);
    for &id in ids {
        let id = id as usize;
        out.extend_from_slice(&table[id * d..(id + 1) * d]);
    }
    out
}

/// `[B, T, d] -> [B*h, T, d/h]`, heads laid out batch-major then head:
/// output row `(bi*h + hi, ti)` holds input columns `hi*dh..(hi+1)*dh` of
/// `(bi, ti)`.
pub fn split_heads(x: &[f32], b: usize, t: usize, d: usize, h: usize) -> Vec<f32> {
    let dh = d / h;
    let mut out = vec![0.0f32; b * t * d];
    for bi in 0..b {
        for hi in 0..h {
            for ti in 0..t {
                for k in 0..dh {
                    out[((bi * h + hi) * t + ti) * dh + k] = x[(bi * t + ti) * d + hi * dh + k];
                }
            }
        }
    }
    out
}

/// Inverse of [`split_heads`]: `[B*h, T, dh] -> [B, T, dh*h]`.
pub fn merge_heads(x: &[f32], b: usize, t: usize, dh: usize, h: usize) -> Vec<f32> {
    let d = dh * h;
    let mut out = vec![0.0f32; b * t * d];
    for bi in 0..b {
        for hi in 0..h {
            for ti in 0..t {
                for k in 0..dh {
                    out[(bi * t + ti) * d + hi * dh + k] = x[((bi * h + hi) * t + ti) * dh + k];
                }
            }
        }
    }
    out
}

/// Timestep `ti` of every batch row: `[B, T, d] -> [B, d]`.
pub fn select_time(x: &[f32], b: usize, t: usize, d: usize, ti: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(b * d);
    for bi in 0..b {
        out.extend_from_slice(&x[(bi * t + ti) * d..(bi * t + ti) * d + d]);
    }
    out
}

/// Arbitrary `(batch, time)` gathers from `[B, T, d]` into `[N, d]`.
pub fn gather_positions(x: &[f32], t: usize, d: usize, positions: &[(usize, usize)]) -> Vec<f32> {
    let mut out = Vec::with_capacity(positions.len() * d);
    for &(bi, ti) in positions {
        out.extend_from_slice(&x[(bi * t + ti) * d..(bi * t + ti) * d + d]);
    }
    out
}

/// Concatenation along axis 0 of two row-major blocks.
pub fn concat0(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// `[N, da] ++ [N, db] -> [N, da+db]` along the last axis.
pub fn concat_last(a: &[f32], b: &[f32], da: usize, db: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    for (ra, rb) in a.chunks(da).zip(b.chunks(db)) {
        out.extend_from_slice(ra);
        out.extend_from_slice(rb);
    }
    out
}

/// Multiplies row `i` of an `[rows, d]` matrix by `weights[i]`.
pub fn scale_rows(x: &[f32], weights: &[f32], d: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(x.len());
    for (row, &w) in x.chunks(d).zip(weights) {
        for &v in row {
            out.push(v * w);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// matmul
// ---------------------------------------------------------------------------

/// `[m,k]·[k,n] -> [m,n]` by the definition, f64 accumulators.
pub fn matmul_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a[i * k + p] as f64 * b[p * n + j] as f64;
            }
            out[i * n + j] = acc as f32;
        }
    }
    out
}

/// `[m,k]·([n,k])ᵀ -> [m,n]`.
pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a[i * k + p] as f64 * b[j * k + p] as f64;
            }
            out[i * n + j] = acc as f32;
        }
    }
    out
}

/// Batched `[batch,m,k]·[batch,k,n] -> [batch,m,n]`.
pub fn bmm_nn(a: &[f32], b: &[f32], batch: usize, m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(batch * m * n);
    for bi in 0..batch {
        out.extend(matmul_nn(
            &a[bi * m * k..(bi + 1) * m * k],
            &b[bi * k * n..(bi + 1) * k * n],
            m,
            k,
            n,
        ));
    }
    out
}

/// Batched `[batch,m,k]·[batch,n,k] -> [batch,m,n]` (right operand
/// transposed).
pub fn bmm_nt(a: &[f32], b: &[f32], batch: usize, m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(batch * m * n);
    for bi in 0..batch {
        out.extend(matmul_nt(
            &a[bi * m * k..(bi + 1) * m * k],
            &b[bi * n * k..(bi + 1) * n * k],
            m,
            k,
            n,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// softmax / norm
// ---------------------------------------------------------------------------

/// Row softmax of an `[rows, d]` matrix, f64 with max subtraction (the
/// subtraction changes nothing mathematically; it keeps the oracle finite on
/// the same masked inputs the engine accepts).
pub fn softmax(x: &[f32], d: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(x.len());
    for row in x.chunks(d) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let exps: Vec<f64> = row.iter().map(|&v| (v as f64 - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        out.extend(exps.iter().map(|&e| (e / sum) as f32));
    }
    out
}

/// Per-row `(x - μ) / sqrt(var + eps)` of an `[rows, d]` matrix (f64).
pub fn layernorm(x: &[f32], d: usize, eps: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(x.len());
    for row in x.chunks(d) {
        let mean: f64 = row.iter().map(|&v| v as f64).sum::<f64>() / d as f64;
        let var: f64 =
            row.iter().map(|&v| (v as f64 - mean) * (v as f64 - mean)).sum::<f64>() / d as f64;
        let inv = 1.0 / (var + eps as f64).sqrt();
        out.extend(row.iter().map(|&v| ((v as f64 - mean) * inv) as f32));
    }
    out
}

/// Per-row `x / max(‖x‖₂, eps)` of an `[rows, d]` matrix (f64).
pub fn normalize_rows(x: &[f32], d: usize, eps: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(x.len());
    for row in x.chunks(d) {
        let norm = row.iter().map(|&v| v as f64 * v as f64).sum::<f64>().sqrt();
        let inv = 1.0 / norm.max(eps as f64);
        out.extend(row.iter().map(|&v| (v as f64 * inv) as f32));
    }
    out
}

/// The engine's dropout mask, reproduced draw-for-draw: element `i` survives
/// (scaled by `1/(1-p)`) iff the `i`-th `rng.gen::<f32>()` draw is below
/// `1 - p`. Call with the same seeded RNG state the engine will consume.
pub fn dropout_mask(n: usize, p: f32, rng: &mut TensorRng) -> Vec<f32> {
    let keep = 1.0 - p;
    (0..n).map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 }).collect()
}

// ---------------------------------------------------------------------------
// masks / loss
// ---------------------------------------------------------------------------

/// Causal + padding additive attention mask (0 allowed, −1e9 blocked):
/// query `q` sees key `k` iff `k ≤ q` and `valid[b][k]`.
pub fn causal_padding_mask(valid: &[Vec<bool>], t: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; valid.len() * t * t];
    for (bi, v) in valid.iter().enumerate() {
        for q in 0..t {
            for k in 0..t {
                if k > q || !v[k] {
                    out[(bi * t + q) * t + k] = -1e9;
                }
            }
        }
    }
    out
}

/// Padding-only (bidirectional) additive attention mask.
pub fn padding_mask(valid: &[Vec<bool>], t: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; valid.len() * t * t];
    for (bi, v) in valid.iter().enumerate() {
        for q in 0..t {
            for k in 0..t {
                if !v[k] {
                    out[(bi * t + q) * t + k] = -1e9;
                }
            }
        }
    }
    out
}

/// Adds a `[B, T, T]` mask to `[B*h, T, T]` scores, broadcast over heads.
pub fn add_attn_mask(scores: &[f32], mask: &[f32], b: usize, h: usize, t: usize) -> Vec<f32> {
    let stride = t * t;
    let mut out = scores.to_vec();
    for bi in 0..b {
        for hi in 0..h {
            for i in 0..stride {
                out[(bi * h + hi) * stride + i] += mask[bi * stride + i];
            }
        }
    }
    out
}

/// Per-row `-ln softmax(logits)[target]` of `[n, c]` logits (f64 softmax).
pub fn softmax_cross_entropy(logits: &[f32], c: usize, targets: &[u32]) -> Vec<f32> {
    let probs = softmax(logits, c);
    probs
        .chunks(c)
        .zip(targets)
        .map(|(row, &t)| -((row[t as usize] as f64).max(1e-30).ln()) as f32)
        .collect()
}

/// `-log σ(pos) - log(1 - σ(neg))` elementwise (f64, from the definition).
pub fn bce_pairwise(pos: &[f32], neg: &[f32]) -> Vec<f32> {
    pos.iter()
        .zip(neg)
        .map(|(&p, &n)| {
            let sp = 1.0 / (1.0 + (-p as f64).exp());
            let sn = 1.0 / (1.0 + (-n as f64).exp());
            (-(sp.ln()) - (1.0 - sn).ln()) as f32
        })
        .collect()
}

/// `-log σ(pos - neg)` elementwise (f64).
pub fn bpr(pos: &[f32], neg: &[f32]) -> Vec<f32> {
    pos.iter()
        .zip(neg)
        .map(|(&p, &n)| {
            let s = 1.0 / (1.0 + (-(p as f64 - n as f64)).exp());
            (-s.ln()) as f32
        })
        .collect()
}

// ---------------------------------------------------------------------------
// window (Caser convolutions)
// ---------------------------------------------------------------------------

/// im2col unfolding: `[B, T, d] -> [B, T-h+1, h*d]`.
pub fn unfold_windows(x: &[f32], b: usize, t: usize, d: usize, h: usize) -> Vec<f32> {
    let w = t - h + 1;
    let mut out = Vec::with_capacity(b * w * h * d);
    for bi in 0..b {
        for wi in 0..w {
            for j in 0..h * d {
                out.push(x[(bi * t + wi) * d + j]);
            }
        }
    }
    out
}

/// Max over the time axis: `[B, T, n] -> [B, n]`.
pub fn max_over_dim1(x: &[f32], b: usize, t: usize, n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(b * n);
    for bi in 0..b {
        for ni in 0..n {
            let mut best = f32::NEG_INFINITY;
            for ti in 0..t {
                best = best.max(x[(bi * t + ti) * n + ni]);
            }
            out.push(best);
        }
    }
    out
}

/// `[B, T, d] -> [B, d, T]`.
pub fn transpose12(x: &[f32], b: usize, t: usize, d: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; b * t * d];
    for bi in 0..b {
        for ti in 0..t {
            for di in 0..d {
                out[(bi * d + di) * t + ti] = x[(bi * t + ti) * d + di];
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// NT-Xent (Eq. 3 / Eq. 13)
// ---------------------------------------------------------------------------

/// The NT-Xent contrastive loss, straight from Eq. 13: L2-normalise the `2N`
/// stacked embeddings `[z1; z2]`, form the cosine-similarity matrix divided
/// by `tau`, exclude self-similarity, and average the cross-entropy of each
/// row against its positive partner (`i ↔ i+n`). All arithmetic in f64.
pub fn nt_xent(z1: &[f32], z2: &[f32], n: usize, d: usize, tau: f32) -> f32 {
    assert!(n >= 2 && z1.len() == n * d && z2.len() == n * d);
    let tau = tau as f64;
    // normalise rows of the stacked [2n, d] matrix
    let mut z = Vec::with_capacity(2 * n);
    for row in z1.chunks(d).chain(z2.chunks(d)) {
        let norm = row.iter().map(|&v| v as f64 * v as f64).sum::<f64>().sqrt().max(1e-12);
        z.push(row.iter().map(|&v| v as f64 / norm).collect::<Vec<f64>>());
    }
    let m = 2 * n;
    let mut total = 0.0f64;
    for i in 0..m {
        let partner = if i < n { i + n } else { i - n };
        // log-sum-exp over all similarities except self
        let sims: Vec<f64> = (0..m)
            .filter(|&k| k != i)
            .map(|k| z[i].iter().zip(&z[k]).map(|(a, b)| a * b).sum::<f64>() / tau)
            .collect();
        let max = sims.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lse = max + sims.iter().map(|s| (s - max).exp()).sum::<f64>().ln();
        let pos = z[i].iter().zip(&z[partner]).map(|(a, b)| a * b).sum::<f64>() / tau;
        total += lse - pos;
    }
    (total / m as f64) as f32
}

// ---------------------------------------------------------------------------
// augmentations (Eq. 4–6)
// ---------------------------------------------------------------------------
//
// The operators are stochastic, so the oracle shares the *randomness source*
// with the engine (same seeded ChaCha stream, same draw order) but applies
// its own independently-written transformation logic. With equal seeds the
// engine must reproduce the oracle exactly.

/// Item crop (Eq. 4): keep `max(1, ⌊η·n⌋)` consecutive items starting at a
/// uniformly drawn offset.
pub fn crop(seq: &[u32], eta: f64, rng: &mut TensorRng) -> Vec<u32> {
    if seq.is_empty() {
        return Vec::new();
    }
    let n = seq.len();
    let mut len = (eta * n as f64).floor() as usize;
    if len < 1 {
        len = 1;
    }
    if len > n {
        len = n;
    }
    let start = rng.gen_range(0..=n - len);
    seq[start..start + len].to_vec()
}

/// Item mask (Eq. 5): replace the first `⌊γ·n⌋` entries of a shuffled
/// position list with `mask_token`.
pub fn mask(seq: &[u32], gamma: f64, mask_token: u32, rng: &mut TensorRng) -> Vec<u32> {
    let n = seq.len();
    let m = (gamma * n as f64).floor() as usize;
    let mut positions: Vec<usize> = (0..n).collect();
    positions.shuffle(rng);
    let mut out = seq.to_vec();
    for &p in positions.iter().take(m) {
        out[p] = mask_token;
    }
    out
}

/// Item reorder (Eq. 6): shuffle a window of `⌊β·n⌋` consecutive items at a
/// uniformly drawn offset (identity when the window has fewer than 2 items).
pub fn reorder(seq: &[u32], beta: f64, rng: &mut TensorRng) -> Vec<u32> {
    let n = seq.len();
    let len = (beta * n as f64).floor() as usize;
    let mut out = seq.to_vec();
    if len < 2 {
        return out;
    }
    let start = rng.gen_range(0..=n - len);
    out[start..start + len].shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matmul_identity() {
        // [2,2] identity times arbitrary matrix
        let i = vec![1.0, 0.0, 0.0, 1.0];
        let a = vec![3.0, -1.0, 2.0, 5.0];
        assert_eq!(matmul_nn(&i, &a, 2, 2, 2), a);
        assert_eq!(matmul_nt(&a, &i, 2, 2, 2), a);
    }

    #[test]
    fn oracle_softmax_rows_sum_to_one() {
        let s = softmax(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 3);
        let r0: f32 = s[..3].iter().sum();
        let r1: f32 = s[3..].iter().sum();
        assert!((r0 - 1.0).abs() < 1e-6 && (r1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn oracle_ntxent_uniform_views_hit_the_ln_baseline() {
        // identical unit embeddings: every similarity is 1, so the loss is
        // exactly ln(2n-1)
        let n = 4;
        let d = 3;
        let z: Vec<f32> = (0..n * d).map(|i| if i % d == 0 { 1.0 } else { 0.0 }).collect();
        let l = nt_xent(&z, &z, n, d, 1.0) as f64;
        let expect = ((2 * n - 1) as f64).ln();
        assert!((l - expect).abs() < 1e-6, "{l} vs {expect}");
    }

    #[test]
    fn oracle_crop_len_and_contiguity() {
        let mut r = seqrec_tensor::init::rng(11);
        let seq: Vec<u32> = (1..=10).collect();
        let out = crop(&seq, 0.5, &mut r);
        assert_eq!(out.len(), 5);
        let start = out[0] as usize - 1;
        assert_eq!(out, seq[start..start + 5].to_vec());
    }
}
