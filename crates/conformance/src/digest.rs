//! Bit-exact digests of tensors and parameter states.
//!
//! The golden training fixtures pin whole trajectories: per-step losses are
//! stored as raw f32 bit patterns and final parameter values as FNV-1a
//! digests over their exact bits. Any change that perturbs a single ULP
//! anywhere in a parameter flips its digest.

use seqrec_tensor::nn::HasParams;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Order-sensitive FNV-1a over a byte stream.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = FNV_OFFSET;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over the exact little-endian bit patterns of a slice of f32s.
/// `0.0` and `-0.0` digest differently — bit-for-bit means bit-for-bit.
pub fn digest_f32s(xs: &[f32]) -> u64 {
    fnv1a(xs.iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

/// Digests every parameter of a model in visit order as
/// `(name, fnv1a(value bits))` pairs.
pub fn digest_params<M: HasParams + ?Sized>(model: &M) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    model.visit(&mut |p| {
        out.push((p.name().to_string(), digest_f32s(p.value().data())));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // classic FNV-1a test vectors
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(*b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_order_and_bit_sensitive() {
        let a = digest_f32s(&[1.0, 2.0]);
        let b = digest_f32s(&[2.0, 1.0]);
        assert_ne!(a, b);
        assert_ne!(digest_f32s(&[0.0]), digest_f32s(&[-0.0]));
        assert_eq!(digest_f32s(&[1.0, 2.0]), a);
    }
}
