//! # seqrec-conformance
//!
//! The correctness subsystem pinning the optimized engine to the math of the
//! paper. Three layers:
//!
//! * [`oracle`] — naive, scalar, obviously-correct reference implementations
//!   of every public tensor op, the NT-Xent loss (Eq. 3/13) and the three
//!   augmentation operators (Eq. 4–6). No blocking, no fusion, no
//!   stabilisation tricks beyond f64 accumulation: each function is short
//!   enough to verify by eye against the paper.
//! * [`digest`] — order-sensitive FNV-1a digests over exact f32 bit
//!   patterns, used by the golden training fixtures to pin whole parameter
//!   states bit-for-bit.
//! * [`golden`] — seeded tiny training scenarios (K optimizer steps on a
//!   synthetic dataset) recorded as text fixtures under `tests/golden/`;
//!   any engine, RNG or optimizer change that alters a training trajectory
//!   fails tier-1.
//!
//! The differential proptest fuzzers and whole-model gradchecks live in this
//! crate's `tests/` directory; the golden assertions live in the workspace
//! root's `tests/golden_training.rs` so they run with the root package's
//! tier-1 suite.

#![warn(missing_docs)]

pub mod digest;
pub mod golden;
pub mod oracle;
