//! One-batch overfit smoke tests: every baseline, trained with Adam on a
//! fixed 4-user synthetic batch, must strictly reduce its own training
//! objective over 20 steps.
//!
//! Gradchecks verify *directions* element-by-element but tolerate tiny
//! relative errors; a sign flip or off-by-one indexing bug confined to a
//! small parameter slice can hide below their tolerance yet still poison
//! optimisation. Descent on the actual objective is the complementary
//! end-to-end signal. Stochastic objectives (cloze masks, augmentations)
//! reseed their RNG every step so each test optimises one fixed
//! deterministic function.

use cl4srec::{AugmentationSet, Cl4sRec, Cl4sRecConfig};
use seqrec_data::batch::{next_item_batch, NegativeSampler, NextItemBatch};
use seqrec_models::{
    Bert4Rec, Bert4RecConfig, BprMf, BprMfConfig, Caser, CaserConfig, EncoderConfig, Fpmc,
    FpmcConfig, Gru4Rec, Gru4RecConfig, Ncf, NcfConfig, SasRec,
};
use seqrec_tensor::init::rng;
use seqrec_tensor::nn::{HasParams, Step};
use seqrec_tensor::optim::{Adam, AdamConfig};
use seqrec_tensor::Var;

const STEPS: usize = 20;

/// The 4-user synthetic dataset (catalog 10) shared by every smoke test.
fn seqs() -> Vec<Vec<u32>> {
    vec![vec![1, 3, 5, 7, 9], vec![2, 4, 6, 8], vec![9, 7, 5, 3, 1], vec![1, 2, 3, 4, 5, 6]]
}

fn batch(t: usize) -> NextItemBatch {
    let s = seqs();
    let refs: Vec<&[u32]> = s.iter().map(Vec::as_slice).collect();
    let mut sampler = NegativeSampler::new(10, 31);
    next_item_batch(&refs, t, &mut sampler)
}

fn encoder_cfg() -> EncoderConfig {
    EncoderConfig { num_items: 10, d: 8, heads: 2, layers: 1, max_len: 6, dropout: 0.0 }
}

/// Runs `STEPS` Adam steps of `loss_fn` and asserts the recorded losses
/// strictly decrease: every step below the previous one, within a small
/// slack for Adam's occasional overshoot, and the final loss strictly —
/// and substantially — below the first.
fn assert_overfits<M: HasParams>(
    name: &str,
    model: &mut M,
    mut loss_fn: impl FnMut(&M, &mut Step) -> Var,
) {
    let mut adam = Adam::new(AdamConfig { lr: 1e-2, ..AdamConfig::default() });
    let mut losses = Vec::with_capacity(STEPS);
    for _ in 0..STEPS {
        let mut step = Step::new();
        let loss = loss_fn(model, &mut step);
        losses.push(step.tape.value(loss).item());
        let grads = step.tape.backward(loss);
        adam.step(model, &step, &grads);
    }
    let (first, last) = (losses[0], losses[STEPS - 1]);
    assert!(last < first, "{name}: loss did not decrease over {STEPS} steps: {losses:?}");
    assert!(last < 0.9 * first, "{name}: loss barely moved ({first} → {last}): {losses:?}");
    // Strict descent step-to-step, with 2% slack for Adam overshoot.
    for w in losses.windows(2) {
        assert!(w[1] < w[0] * 1.02 + 1e-4, "{name}: loss jumped {} → {}: {losses:?}", w[0], w[1]);
    }
}

#[test]
fn overfit_sasrec() {
    let mut model = SasRec::new(encoder_cfg(), 71);
    let b = batch(6);
    assert_overfits("sasrec", &mut model, |m, step| m.next_item_loss(step, &b, true, &mut rng(70)));
}

#[test]
fn overfit_bert4rec() {
    let cfg = Bert4RecConfig { encoder: encoder_cfg(), mask_prob: 0.3 };
    let mut model = Bert4Rec::new(cfg, 72);
    let s = seqs();
    assert_overfits("bert4rec", &mut model, |m, step| {
        let refs: Vec<&[u32]> = s.iter().map(Vec::as_slice).collect();
        // reseeded every step: one fixed cloze mask to overfit
        m.cloze_loss(step, &refs, true, &mut rng(70))
    });
}

#[test]
fn overfit_gru4rec() {
    let cfg = Gru4RecConfig { num_items: 10, d: 8, max_len: 6, dropout: 0.0 };
    let mut model = Gru4Rec::new(cfg, 73);
    let b = batch(6);
    assert_overfits("gru4rec", &mut model, |m, step| {
        m.next_item_loss(step, &b, true, &mut rng(70))
    });
}

#[test]
fn overfit_caser() {
    let cfg = CaserConfig {
        num_items: 10,
        d: 8,
        window: 3,
        heights: vec![2],
        n_h: 2,
        n_v: 1,
        dropout: 0.0,
    };
    let mut model = Caser::new(cfg, 4, 74);
    let ids = [1, 3, 5, 2, 4, 6, 9, 7, 5, 1, 2, 3]; // four windows of L=3
    let u_ids = [0, 1, 2, 3];
    let pos = [7, 8, 3, 4];
    let neg = [2, 9, 8, 9];
    assert_overfits("caser", &mut model, |m, step| {
        m.bce_loss(step, &ids, &u_ids, &pos, &neg, true, &mut rng(70))
    });
}

#[test]
fn overfit_fpmc() {
    let mut model = Fpmc::new(FpmcConfig { d: 8, weight_decay: 0.0 }, 4, 10, 75);
    let u_ids = [0, 1, 2, 3];
    let last = [5, 6, 3, 5];
    let pos = [7, 8, 1, 6];
    let neg = [2, 9, 8, 9];
    assert_overfits("fpmc", &mut model, |m, step| m.bpr_loss(step, &u_ids, &last, &pos, &neg));
}

#[test]
fn overfit_ncf() {
    let mut model = Ncf::new(NcfConfig { d: 8 }, 4, 10, 76);
    let u_ids = [0, 1, 2, 3];
    let pos = [7, 8, 1, 6];
    let neg = [2, 9, 8, 9];
    assert_overfits("ncf", &mut model, |m, step| m.bce_loss(step, &u_ids, &pos, &neg));
}

#[test]
fn overfit_bprmf() {
    let mut model = BprMf::new(BprMfConfig { d: 8, weight_decay: 0.0 }, 4, 10, 77);
    let u_ids = [0, 1, 2, 3];
    let pos = [7, 8, 1, 6];
    let neg = [2, 9, 8, 9];
    assert_overfits("bprmf", &mut model, |m, step| m.bpr_loss(step, &u_ids, &pos, &neg));
}

/// The paper's model on its joint objective (Eq. 16) — the augmentation
/// stream is reseeded every step so both views stay fixed.
#[test]
fn overfit_cl4srec_joint() {
    let cfg = Cl4sRecConfig { encoder: encoder_cfg(), tau: 0.5 };
    let mut model = Cl4sRec::new(cfg, 78);
    let augs = AugmentationSet::paper_full(0.6, 0.5, 0.5, model.mask_token());
    let s = seqs();
    let b = batch(6);
    assert_overfits("cl4srec", &mut model, |m, step| {
        let refs: Vec<&[u32]> = s.iter().map(Vec::as_slice).collect();
        m.joint_loss(step, &b, &refs, &augs, 0.1, true, &mut rng(70))
    });
}
