//! Whole-model finite-difference gradient checks.
//!
//! `check_param_gradients` perturbs every element of every parameter of a
//! fully assembled model and compares the central difference against the
//! backward pass of the exact training objective each model's `fit`
//! optimises. Configs are tiny (d = 4, one layer, T = 5) so the full sweep
//! stays fast, and dropout is 0 so each loss is a deterministic function of
//! the parameters (BERT4Rec's cloze masking and CL4SRec's augmentations draw
//! from a freshly reseeded stream inside the closure instead).

use cl4srec::{AugmentationSet, Cl4sRec, Cl4sRecConfig};
use seqrec_data::batch::{next_item_batch, NegativeSampler, NextItemBatch};
use seqrec_models::{
    Bert4Rec, Bert4RecConfig, BprMf, BprMfConfig, Caser, CaserConfig, EncoderConfig, Fpmc,
    FpmcConfig, Gru4Rec, Gru4RecConfig, Ncf, NcfConfig, SasRec,
};
use seqrec_tensor::gradcheck::check_param_gradients;
use seqrec_tensor::init::{rng, uniform};
use seqrec_tensor::nn::HasParams;

/// The acceptance bar for every whole-model check.
const TOL: f64 = 1e-3;
const EPS: f32 = 1e-2;

/// Re-initialises every parameter at O(1) scale before checking.
///
/// The paper's 0.02-std truncated-normal init leaves LayerNorm inputs with
/// variance ~1e-3, so `1/σ` amplifies by ~30× and the loss surface curves
/// sharply: central differences in f32 then disagree with the (correct)
/// analytic gradient by percents no matter the step size. Gradient checking
/// is a property of the *code*, not the init, so every model is probed at a
/// well-conditioned random point instead.
fn recondition<M: HasParams + ?Sized>(model: &mut M, seed: u64) {
    let mut r = rng(seed);
    model.visit_mut(&mut |p| {
        let shape = p.value().shape().clone();
        *p.value_mut() = uniform(shape, -0.5, 0.5, &mut r);
    });
}

fn tiny_encoder() -> EncoderConfig {
    EncoderConfig { num_items: 8, d: 4, heads: 2, layers: 1, max_len: 5, dropout: 0.0 }
}

fn tiny_seqs() -> Vec<Vec<u32>> {
    vec![vec![1, 2, 3, 4], vec![5, 6, 7], vec![2, 5, 8]]
}

fn tiny_batch() -> NextItemBatch {
    let seqs = tiny_seqs();
    let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
    let mut sampler = NegativeSampler::new(8, 3);
    next_item_batch(&refs, 5, &mut sampler)
}

fn assert_report(model: &str, report: seqrec_tensor::gradcheck::GradCheckReport) {
    assert!(
        report.max_rel_err <= TOL,
        "{model}: whole-model gradcheck failed: {report:?} (tol {TOL})"
    );
}

#[test]
fn gradcheck_sasrec() {
    let mut model = SasRec::new(tiny_encoder(), 41);
    recondition(&mut model, 141);
    let batch = tiny_batch();
    let report = check_param_gradients(
        &mut model,
        |m, step| m.next_item_loss(step, &batch, true, &mut rng(5)),
        EPS,
    );
    assert_report("sasrec", report);
}

#[test]
fn gradcheck_bert4rec() {
    let cfg = Bert4RecConfig { encoder: tiny_encoder(), mask_prob: 0.3 };
    let mut model = Bert4Rec::new(cfg, 42);
    recondition(&mut model, 142);
    let seqs = tiny_seqs();
    let report = check_param_gradients(
        &mut model,
        |m, step| {
            let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
            // reseeded every call: identical cloze masks for every FD probe
            m.cloze_loss(step, &refs, true, &mut rng(6))
        },
        EPS,
    );
    assert_report("bert4rec", report);
}

#[test]
fn gradcheck_gru4rec() {
    let cfg = Gru4RecConfig { num_items: 8, d: 4, max_len: 5, dropout: 0.0 };
    let mut model = Gru4Rec::new(cfg, 43);
    recondition(&mut model, 143);
    let batch = tiny_batch();
    let report = check_param_gradients(
        &mut model,
        |m, step| m.next_item_loss(step, &batch, true, &mut rng(7)),
        EPS,
    );
    assert_report("gru4rec", report);
}

#[test]
fn gradcheck_caser() {
    let cfg = CaserConfig {
        num_items: 8,
        d: 4,
        window: 3,
        heights: vec![2],
        n_h: 2,
        n_v: 1,
        dropout: 0.0,
    };
    let mut model = Caser::new(cfg, 3, 44);
    recondition(&mut model, 144);
    let ids = [1, 2, 3, 0, 4, 5, 6, 7, 8]; // three left-padded windows of L=3
    let u_ids = [0, 1, 2];
    let pos = [4, 6, 1];
    let neg = [2, 8, 5];
    let report = check_param_gradients(
        &mut model,
        |m, step| m.bce_loss(step, &ids, &u_ids, &pos, &neg, true, &mut rng(8)),
        EPS,
    );
    assert_report("caser", report);
}

#[test]
fn gradcheck_fpmc() {
    let mut model = Fpmc::new(FpmcConfig { d: 4, weight_decay: 0.0 }, 3, 8, 45);
    recondition(&mut model, 145);
    let u_ids = [0, 1, 2];
    let last = [3, 7, 5];
    let pos = [4, 6, 1];
    let neg = [2, 8, 5];
    let report = check_param_gradients(
        &mut model,
        |m, step| m.bpr_loss(step, &u_ids, &last, &pos, &neg),
        EPS,
    );
    assert_report("fpmc", report);
}

#[test]
fn gradcheck_ncf() {
    let mut model = Ncf::new(NcfConfig { d: 4 }, 3, 8, 46);
    recondition(&mut model, 146);
    let u_ids = [0, 1, 2];
    let pos = [4, 6, 1];
    let neg = [2, 8, 5];
    let report =
        check_param_gradients(&mut model, |m, step| m.bce_loss(step, &u_ids, &pos, &neg), EPS);
    assert_report("ncf", report);
}

#[test]
fn gradcheck_bprmf() {
    let mut model = BprMf::new(BprMfConfig { d: 4, weight_decay: 0.0 }, 3, 8, 47);
    recondition(&mut model, 147);
    let u_ids = [0, 1, 2];
    let pos = [4, 6, 1];
    let neg = [2, 8, 5];
    let report =
        check_param_gradients(&mut model, |m, step| m.bpr_loss(step, &u_ids, &pos, &neg), EPS);
    assert_report("bprmf", report);
}

/// The tentpole's capstone: Eq. 16 — BCE next-item loss plus λ·NT-Xent over
/// two augmented views — gradchecked through the shared encoder, the
/// projection head, and both loss branches at once.
#[test]
fn gradcheck_cl4srec_joint() {
    let cfg = Cl4sRecConfig { encoder: tiny_encoder(), tau: 0.5 };
    let mut model = Cl4sRec::new(cfg, 48);
    recondition(&mut model, 148);
    let augs = AugmentationSet::paper_full(0.6, 0.5, 0.5, model.mask_token());
    let seqs = tiny_seqs();
    let batch = tiny_batch();
    let report = check_param_gradients(
        &mut model,
        |m, step| {
            let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
            // reseeded every call: identical augmented views per FD probe
            m.joint_loss(step, &batch, &refs, &augs, 0.1, true, &mut rng(9))
        },
        EPS,
    );
    assert_report("cl4srec_joint", report);
}
