//! Differential fuzzing of the optimized tensor engine against the scalar
//! oracle, one section per module of `crates/tensor/src/ops/`:
//! activations, basic, embedding, loss, mask, matmul, norm, softmax, window.
//!
//! Shapes are drawn adversarially small and unaligned (every dim down to 1,
//! non-tile-multiple matmul sizes, batch = 1, padded attention rows) because
//! that is where blocked/packed kernels get their edge handling wrong.
//! Structural ops (gathers, reshapes, concats, transposes, masks) must match
//! the oracle bit-for-bit; float ops that reduce or fuse are held to a
//! relative tolerance far below the 1e-3 the gradchecks allow.

use proptest::prelude::*;
use rand::Rng;
use seqrec_conformance::oracle;
use seqrec_tensor::init::rng;
use seqrec_tensor::ops::{causal_padding_mask, padding_mask};
use seqrec_tensor::{Shape, Tape, Tensor, Var};

/// Deterministic test data: `n` uniform draws in `[-3, 3)` from a seeded
/// ChaCha stream, so proptest shrinks over `(seed, dims)` instead of huge
/// float vectors.
fn data(seed: u64, n: usize) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(-3.0f32..3.0)).collect()
}

fn leaf(tape: &mut Tape, shape: impl Into<Shape>, d: &[f32]) -> Var {
    tape.leaf(Tensor::from_vec(shape, d.to_vec()))
}

/// Engine and oracle agree elementwise within `tol` relative error
/// (`|a-b| / max(1, |a|, |b|)`).
fn assert_close(tag: &str, engine: &[f32], oracle: &[f32], tol: f32) {
    assert_eq!(engine.len(), oracle.len(), "{tag}: length mismatch");
    for (i, (&a, &b)) in engine.iter().zip(oracle).enumerate() {
        let denom = 1.0f32.max(a.abs()).max(b.abs());
        let rel = (a - b).abs() / denom;
        assert!(rel <= tol, "{tag}[{i}]: engine {a} vs oracle {b} (rel {rel:.3e})");
    }
}

/// Structural ops must match bit-for-bit.
fn assert_bits(tag: &str, engine: &[f32], oracle: &[f32]) {
    assert_eq!(engine.len(), oracle.len(), "{tag}: length mismatch");
    for (i, (&a, &b)) in engine.iter().zip(oracle).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{tag}[{i}]: engine {a} vs oracle {b}");
    }
}

// ---------------------------------------------------------------------------
// ops/activations.rs
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_activations(seed in 0u64..1_000_000, n in 1usize..48) {
        let x = data(seed, n);
        let mut t = Tape::new();
        let v = leaf(&mut t, [n], &x);
        let r = t.relu(v);
        let s = t.sigmoid(v);
        let th = t.tanh(v);
        let sp = t.softplus(v);
        assert_bits("relu", t.value(r).data(), &oracle::relu(&x));
        assert_close("sigmoid", t.value(s).data(), &oracle::sigmoid(&x), 1e-6);
        assert_close("tanh", t.value(th).data(), &oracle::tanh(&x), 1e-6);
        assert_close("softplus", t.value(sp).data(), &oracle::softplus(&x), 1e-6);
    }
}

// ---------------------------------------------------------------------------
// ops/basic.rs
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_elementwise(seed in 0u64..1_000_000, n in 1usize..48) {
        let a = data(seed, n);
        let b = data(seed ^ 0x9e37, n);
        let c = data(seed ^ 0x79b9, 1)[0];
        let mut t = Tape::new();
        let va = leaf(&mut t, [n], &a);
        let vb = leaf(&mut t, [n], &b);
        let add = t.add(va, vb);
        let sub = t.sub(va, vb);
        let mul = t.mul(va, vb);
        let sc = t.scale(va, c);
        assert_bits("add", t.value(add).data(), &oracle::add(&a, &b));
        assert_bits("sub", t.value(sub).data(), &oracle::sub(&a, &b));
        assert_bits("mul", t.value(mul).data(), &oracle::mul(&a, &b));
        assert_bits("scale", t.value(sc).data(), &oracle::scale(&a, c));
    }

    #[test]
    fn diff_bias_and_broadcast(seed in 0u64..1_000_000, b in 1usize..5, tt in 1usize..7, d in 1usize..9) {
        let x = data(seed, b * tt * d);
        let bias = data(seed ^ 1, d);
        let m = data(seed ^ 2, tt * d);
        let mut t = Tape::new();
        let vx2 = leaf(&mut t, [b * tt, d], &x);
        let vbias = leaf(&mut t, [d], &bias);
        let vx3 = leaf(&mut t, [b, tt, d], &x);
        let vm = leaf(&mut t, [tt, d], &m);
        let ab = t.add_bias(vx2, vbias);
        let mb = t.mul_bias(vx2, vbias);
        let bc = t.add_broadcast_batch(vx3, vm);
        assert_bits("add_bias", t.value(ab).data(), &oracle::add_bias(&x, &bias, d));
        assert_bits("mul_bias", t.value(mb).data(), &oracle::mul_bias(&x, &bias, d));
        assert_bits("add_broadcast_batch", t.value(bc).data(), &oracle::add_broadcast_batch(&x, &m, b, tt, d));
    }

    #[test]
    fn diff_reductions(seed in 0u64..1_000_000, n in 1usize..9, d in 1usize..9) {
        let x = data(seed, n * d);
        // 0/1 weights with at least one survivor (engine panics on all-zero)
        let mut w: Vec<f32> = data(seed ^ 3, n * d).iter().map(|&v| f32::from(v > 0.0)).collect();
        w[0] = 1.0;
        let mut t = Tape::new();
        let vx = leaf(&mut t, [n, d], &x);
        let sa = t.sum_all(vx);
        let ma = t.mean_all(vx);
        let sr = t.sum_rows(vx);
        let mm = t.masked_mean(vx, &Tensor::from_vec([n, d], w.clone()));
        assert_close("sum_all", t.value(sa).data(), &[oracle::sum_all(&x)], 1e-5);
        assert_close("mean_all", t.value(ma).data(), &[oracle::mean_all(&x)], 1e-5);
        assert_close("sum_rows", t.value(sr).data(), &oracle::sum_rows(&x, d), 1e-5);
        assert_close("masked_mean", t.value(mm).data(), &[oracle::masked_mean(&x, &w)], 1e-5);
    }
}

// ---------------------------------------------------------------------------
// ops/embedding.rs
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_embedding_gathers(seed in 0u64..1_000_000, v in 1usize..12, d in 1usize..9, n in 1usize..16) {
        let table = data(seed, v * d);
        let mut r = rng(seed ^ 4);
        let ids: Vec<u32> = (0..n).map(|_| r.gen_range(0..v as u32)).collect();
        let mut t = Tape::new();
        let vt = leaf(&mut t, [v, d], &table);
        let e = t.embedding(vt, &ids, &[n]);
        assert_bits("embedding", t.value(e).data(), &oracle::embedding(&table, d, &ids));
    }

    #[test]
    fn diff_heads_and_time(seed in 0u64..1_000_000, b in 1usize..4, tt in 1usize..7, h in 1usize..4, dh in 1usize..4) {
        let d = h * dh;
        let x = data(seed, b * tt * d);
        let mut r = rng(seed ^ 5);
        let ti = r.gen_range(0..tt);
        let positions: Vec<(usize, usize)> =
            (0..b + 1).map(|_| (r.gen_range(0..b), r.gen_range(0..tt))).collect();
        let mut t = Tape::new();
        let vx = leaf(&mut t, [b, tt, d], &x);
        let sh = t.split_heads(vx, h);
        let rt = t.merge_heads(sh, h);
        let st = t.select_time(vx, ti);
        let lt = t.last_time(vx);
        let gp = t.gather_positions(vx, &positions);
        assert_bits("split_heads", t.value(sh).data(), &oracle::split_heads(&x, b, tt, d, h));
        // merge ∘ split is the identity, and matches the oracle pair
        assert_bits("merge_heads", t.value(rt).data(), &x);
        assert_bits("select_time", t.value(st).data(), &oracle::select_time(&x, b, tt, d, ti));
        assert_bits("last_time", t.value(lt).data(), &oracle::select_time(&x, b, tt, d, tt - 1));
        assert_bits("gather_positions", t.value(gp).data(), &oracle::gather_positions(&x, tt, d, &positions));
    }

    #[test]
    fn diff_concat_and_scale_rows(seed in 0u64..1_000_000, n in 1usize..7, m in 1usize..7, da in 1usize..8, db in 1usize..8) {
        let a = data(seed, n * da);
        let b = data(seed ^ 6, n * db);
        let c = data(seed ^ 19, m * da);
        let w = data(seed ^ 7, n);
        let mut t = Tape::new();
        let va = leaf(&mut t, [n, da], &a);
        let vb = leaf(&mut t, [n, db], &b);
        let vc = leaf(&mut t, [m, da], &c);
        let c0 = t.concat0(va, vc);
        let cl = t.concat_last(va, vb);
        let sr = t.scale_rows_const(va, &w);
        assert_bits("concat0", t.value(c0).data(), &oracle::concat0(&a, &c));
        assert_bits("concat_last", t.value(cl).data(), &oracle::concat_last(&a, &b, da, db));
        assert_bits("scale_rows_const", t.value(sr).data(), &oracle::scale_rows(&a, &w, da));
    }
}

// ---------------------------------------------------------------------------
// ops/loss.rs
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_losses(seed in 0u64..1_000_000, n in 1usize..9, c in 1usize..9) {
        let logits = data(seed, n * c);
        let pos = data(seed ^ 8, n);
        let neg = data(seed ^ 9, n);
        let mut r = rng(seed ^ 10);
        let targets: Vec<u32> = (0..n).map(|_| r.gen_range(0..c as u32)).collect();
        let mut t = Tape::new();
        let vl = leaf(&mut t, [n, c], &logits);
        let vp = leaf(&mut t, [n], &pos);
        let vn = leaf(&mut t, [n], &neg);
        let ce = t.softmax_cross_entropy(vl, &targets);
        let bce = t.bce_pairwise(vp, vn);
        let bpr = t.bpr(vp, vn);
        assert_close("softmax_cross_entropy", t.value(ce).data(),
            &oracle::softmax_cross_entropy(&logits, c, &targets), 1e-5);
        assert_close("bce_pairwise", t.value(bce).data(), &oracle::bce_pairwise(&pos, &neg), 1e-5);
        assert_close("bpr", t.value(bpr).data(), &oracle::bpr(&pos, &neg), 1e-5);
    }
}

// ---------------------------------------------------------------------------
// ops/mask.rs
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_masks(seed in 0u64..1_000_000, b in 1usize..5, h in 1usize..4, tt in 1usize..7) {
        let mut r = rng(seed ^ 11);
        // left-padded validity rows with at least one real position, the
        // shape every model feeds these builders
        let valid: Vec<Vec<bool>> = (0..b)
            .map(|_| {
                let real = r.gen_range(1..=tt);
                (0..tt).map(|i| i >= tt - real).collect()
            })
            .collect();
        let causal = causal_padding_mask(&valid, tt);
        let pad = padding_mask(&valid, tt);
        assert_bits("causal_padding_mask", causal.data(), &oracle::causal_padding_mask(&valid, tt));
        assert_bits("padding_mask", pad.data(), &oracle::padding_mask(&valid, tt));

        let scores = data(seed, b * h * tt * tt);
        let mut t = Tape::new();
        let vs = leaf(&mut t, [b * h, tt, tt], &scores);
        let masked = t.add_attn_mask(vs, &causal, h);
        assert_bits("add_attn_mask", t.value(masked).data(),
            &oracle::add_attn_mask(&scores, causal.data(), b, h, tt));
    }
}

// ---------------------------------------------------------------------------
// ops/matmul.rs — the blocked/packed GEMM engine on non-tile-multiple shapes
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn diff_matmul(seed in 0u64..1_000_000, m in 1usize..34, k in 1usize..34, n in 1usize..34) {
        let a = data(seed, m * k);
        let b = data(seed ^ 12, k * n);
        let bt = data(seed ^ 13, n * k);
        let mut t = Tape::new();
        let va = leaf(&mut t, [m, k], &a);
        let vb = leaf(&mut t, [k, n], &b);
        let vbt = leaf(&mut t, [n, k], &bt);
        let nn = t.matmul(va, vb);
        let nt = t.matmul_nt(va, vbt);
        assert_close("matmul", t.value(nn).data(), &oracle::matmul_nn(&a, &b, m, k, n), 1e-4);
        assert_close("matmul_nt", t.value(nt).data(), &oracle::matmul_nt(&a, &bt, m, k, n), 1e-4);
    }

    #[test]
    fn diff_bmm(seed in 0u64..1_000_000, batch in 1usize..5, m in 1usize..10, k in 1usize..10, n in 1usize..10) {
        let a = data(seed, batch * m * k);
        let b = data(seed ^ 14, batch * k * n);
        let bt = data(seed ^ 15, batch * n * k);
        let mut t = Tape::new();
        let va = leaf(&mut t, [batch, m, k], &a);
        let vb = leaf(&mut t, [batch, k, n], &b);
        let vbt = leaf(&mut t, [batch, n, k], &bt);
        let nn = t.bmm(va, vb);
        let nt = t.bmm_nt(va, vbt);
        assert_close("bmm", t.value(nn).data(), &oracle::bmm_nn(&a, &b, batch, m, k, n), 1e-4);
        assert_close("bmm_nt", t.value(nt).data(), &oracle::bmm_nt(&a, &bt, batch, m, k, n), 1e-4);
    }

    #[test]
    fn diff_matmul_last_and_reshape(seed in 0u64..1_000_000, b in 1usize..4, tt in 1usize..6, k in 1usize..10, n in 1usize..10) {
        let x = data(seed, b * tt * k);
        let w = data(seed ^ 16, k * n);
        let mut t = Tape::new();
        let vx = leaf(&mut t, [b, tt, k], &x);
        let vw = leaf(&mut t, [k, n], &w);
        let ml = t.matmul_last(vx, vw);
        let rs = t.reshape(vx, [b * tt, k]);
        // matmul_last is matmul on the flattened batch
        assert_close("matmul_last", t.value(ml).data(), &oracle::matmul_nn(&x, &w, b * tt, k, n), 1e-4);
        assert_bits("reshape", t.value(rs).data(), &x);
        prop_assert_eq!(t.value(rs).shape().dims(), &[b * tt, k]);
    }
}

// ---------------------------------------------------------------------------
// ops/norm.rs
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_norms(seed in 0u64..1_000_000, n in 1usize..9, d in 1usize..17) {
        let x = data(seed, n * d);
        let mut t = Tape::new();
        let vx = leaf(&mut t, [n, d], &x);
        let ln = t.layernorm(vx, 1e-5);
        let nr = t.normalize_rows(vx, 1e-6);
        assert_close("layernorm", t.value(ln).data(), &oracle::layernorm(&x, d, 1e-5), 1e-4);
        assert_close("normalize_rows", t.value(nr).data(), &oracle::normalize_rows(&x, d, 1e-6), 1e-5);
    }

    #[test]
    fn diff_dropout(seed in 0u64..1_000_000, n in 1usize..48, p in 0.05f32..0.9) {
        let x = data(seed, n);
        // engine and oracle consume the same seeded stream
        let mut engine_rng = rng(seed ^ 17);
        let mut oracle_rng = rng(seed ^ 17);
        let mut t = Tape::new();
        let vx = leaf(&mut t, [n], &x);
        let dr = t.dropout(vx, p, true, &mut engine_rng);
        let mask = oracle::dropout_mask(n, p, &mut oracle_rng);
        let expect: Vec<f32> = x.iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        assert_bits("dropout", t.value(dr).data(), &expect);
        // identity paths must not consume any randomness
        let before = engine_rng.gen::<f32>().to_bits();
        let mut t2 = Tape::new();
        let vx2 = leaf(&mut t2, [n], &x);
        let eval_off = t2.dropout(vx2, p, false, &mut oracle_rng);
        let p_zero = t2.dropout(vx2, 0.0, true, &mut oracle_rng);
        assert_bits("dropout(eval)", t2.value(eval_off).data(), &x);
        assert_bits("dropout(p=0)", t2.value(p_zero).data(), &x);
        prop_assert_eq!(before, oracle_rng.gen::<f32>().to_bits());
    }
}

// ---------------------------------------------------------------------------
// ops/softmax.rs
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_softmax(seed in 0u64..1_000_000, n in 1usize..9, d in 1usize..17) {
        let mut x = data(seed, n * d);
        // adversarial: mask out some entries the way attention does, keeping
        // at least one unmasked entry per row
        let mut r = rng(seed ^ 18);
        for row in x.chunks_mut(d) {
            let keep = r.gen_range(0..d);
            for (i, v) in row.iter_mut().enumerate() {
                if i != keep && r.gen_bool(0.3) {
                    *v += -1e9;
                }
            }
        }
        let mut t = Tape::new();
        let vx = leaf(&mut t, [n, d], &x);
        let sm = t.softmax(vx);
        assert_close("softmax", t.value(sm).data(), &oracle::softmax(&x, d), 1e-5);
    }
}

// ---------------------------------------------------------------------------
// ops/window.rs
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_window_ops(seed in 0u64..1_000_000, b in 1usize..4, tt in 1usize..8, d in 1usize..7, h in 1usize..8) {
        let h = h.min(tt); // unfold needs h <= T
        let x = data(seed, b * tt * d);
        let mut t = Tape::new();
        let vx = leaf(&mut t, [b, tt, d], &x);
        let uf = t.unfold_windows(vx, h);
        let mx = t.max_over_dim1(vx);
        let tr = t.transpose12(vx);
        assert_bits("unfold_windows", t.value(uf).data(), &oracle::unfold_windows(&x, b, tt, d, h));
        assert_bits("max_over_dim1", t.value(mx).data(), &oracle::max_over_dim1(&x, b, tt, d));
        assert_bits("transpose12", t.value(tr).data(), &oracle::transpose12(&x, b, tt, d));
    }
}
