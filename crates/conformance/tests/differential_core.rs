//! Differential fuzzing of `cl4srec` (NT-Xent and the augmentation
//! operators) against the oracle.
//!
//! The augmentations are stochastic, so engine and oracle consume the same
//! seeded ChaCha stream: the draws must line up AND the independently
//! written transformation logic must agree, element-for-element. NT-Xent is
//! deterministic and held to the f64 oracle on adversarial batch shapes
//! (N = 2, d = 1).

use cl4srec::{nt_xent, Augmentation, AugmentationSet, Crop, Mask, Reorder};
use proptest::prelude::*;
use rand::Rng;
use seqrec_conformance::oracle;
use seqrec_tensor::init::{rng, TensorRng};
use seqrec_tensor::nn::Step;
use seqrec_tensor::Tensor;

fn data(seed: u64, n: usize) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(-3.0f32..3.0)).collect()
}

fn seq(seed: u64, n: usize) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(1..100u32)).collect()
}

proptest! {
    #[test]
    fn diff_nt_xent(seed in 0u64..1_000_000, n in 2usize..9, d in 1usize..9, tau in 0.1f32..2.0) {
        let z1 = data(seed, n * d);
        let z2 = data(seed ^ 1, n * d);
        let mut step = Step::new();
        let v1 = step.tape.leaf(Tensor::from_vec([n, d], z1.clone()));
        let v2 = step.tape.leaf(Tensor::from_vec([n, d], z2.clone()));
        let l = nt_xent(&mut step, v1, v2, tau);
        let engine = step.tape.value(l).item();
        let expect = oracle::nt_xent(&z1, &z2, n, d, tau);
        let rel = (engine - expect).abs() / 1.0f32.max(expect.abs());
        prop_assert!(rel <= 1e-4, "engine {engine} vs oracle {expect} (rel {rel:.3e})");
    }

    #[test]
    fn diff_crop(seed in 0u64..1_000_000, n in 1usize..30, eta in 0.0f64..=1.0) {
        let s = seq(seed ^ 2, n);
        let mut er: TensorRng = rng(seed);
        let mut or: TensorRng = rng(seed);
        let engine = Crop { eta }.apply(&s, &mut er);
        let expect = oracle::crop(&s, eta, &mut or);
        prop_assert_eq!(engine, expect);
    }

    #[test]
    fn diff_mask(seed in 0u64..1_000_000, n in 1usize..30, gamma in 0.0f64..=1.0) {
        let s = seq(seed ^ 3, n);
        let mut er: TensorRng = rng(seed);
        let mut or: TensorRng = rng(seed);
        let engine = Mask { gamma, mask_token: 999 }.apply(&s, &mut er);
        let expect = oracle::mask(&s, gamma, 999, &mut or);
        prop_assert_eq!(engine, expect);
    }

    #[test]
    fn diff_reorder(seed in 0u64..1_000_000, n in 1usize..30, beta in 0.0f64..=1.0) {
        let s = seq(seed ^ 4, n);
        let mut er: TensorRng = rng(seed);
        let mut or: TensorRng = rng(seed);
        let engine = Reorder { beta }.apply(&s, &mut er);
        let expect = oracle::reorder(&s, beta, &mut or);
        prop_assert_eq!(engine, expect);
    }

    /// `two_views` draws two operator indices then applies both operators
    /// from the same stream; the oracle replays the identical protocol with
    /// its own transformation code.
    #[test]
    fn diff_two_views(seed in 0u64..1_000_000, n in 1usize..30,
                      eta in 0.05f64..=1.0, gamma in 0.0f64..=1.0, beta in 0.0f64..=1.0) {
        let s = seq(seed ^ 5, n);
        let mask_token = 999;
        let augs = AugmentationSet::paper_full(eta, gamma, beta, mask_token);
        let mut er: TensorRng = rng(seed);
        let mut or: TensorRng = rng(seed);
        let (v1, v2) = augs.two_views(&s, &mut er);
        let i = or.gen_range(0..3usize);
        let j = or.gen_range(0..3usize);
        let apply = |which: usize, r: &mut TensorRng| match which {
            0 => oracle::crop(&s, eta, r),
            1 => oracle::mask(&s, gamma, mask_token, r),
            _ => oracle::reorder(&s, beta, r),
        };
        let e1 = apply(i, &mut or);
        let e2 = apply(j, &mut or);
        prop_assert_eq!(v1, e1);
        prop_assert_eq!(v2, e2);
    }
}
