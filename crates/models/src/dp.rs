//! Data-parallel training building blocks.
//!
//! A data-parallel step splits one mini-batch into `N` contiguous row
//! shards, runs forward/backward per shard (each shard on its own tape, so
//! shards can execute on different pool workers), and combines the shard
//! gradients with a **deterministic pairwise tree all-reduce**: shard `2k`
//! adds shard `2k+1`, then the halved list repeats, always in shard-index
//! order. The reduction tree's shape depends only on the shard count —
//! never on which worker finished first — so a data-parallel run is
//! reproducible for a fixed `data_parallel` setting.
//!
//! Each shard scales its loss *inside the tape* by its share of the batch
//! (valid-target count for the next-item objective) before backward; the
//! summed shard gradients then equal the full-batch masked-mean gradient
//! exactly, up to the float re-association inherent in the tree sum — the
//! equivalence suite bounds that at ≤1e-6 relative.

use seqrec_data::batch::NextItemBatch;
use seqrec_tensor::nn::{HasParams, Step};
use seqrec_tensor::{Gradients, Tensor};

/// Splits `n_rows` into at most `shards` contiguous, near-equal,
/// non-empty ranges. Fewer ranges come back when there aren't enough rows.
pub fn shard_ranges(n_rows: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, n_rows.max(1));
    let base = n_rows / shards;
    let extra = n_rows % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for s in 0..shards {
        let hi = lo + base + usize::from(s < extra);
        if hi > lo {
            out.push((lo, hi));
        }
        lo = hi;
    }
    out
}

/// Clones every parameter gradient of `step` into a `visit`-order vector —
/// the shard-local half of the all-reduce, and the exact layout
/// [`seqrec_tensor::optim::Adam::step_with_stats_reduced`] consumes.
pub fn grads_in_visit_order<M: HasParams + ?Sized>(
    model: &M,
    step: &Step,
    grads: &Gradients,
) -> Vec<Option<Tensor>> {
    let mut out = Vec::new();
    model.visit(&mut |p| out.push(p.grad(step, grads).cloned()));
    out
}

/// Deterministic pairwise tree all-reduce over per-shard gradient vectors
/// (each in `visit` order). Parameters a shard never touched stay `None`
/// and merge as identity.
pub fn tree_reduce(mut shards: Vec<Vec<Option<Tensor>>>) -> Vec<Option<Tensor>> {
    while shards.len() > 1 {
        let mut next = Vec::with_capacity(shards.len().div_ceil(2));
        let mut it = shards.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(add_grad_vecs(a, b)),
                None => next.push(a),
            }
        }
        shards = next;
    }
    shards.pop().unwrap_or_default()
}

fn add_grad_vecs(a: Vec<Option<Tensor>>, b: Vec<Option<Tensor>>) -> Vec<Option<Tensor>> {
    assert_eq!(a.len(), b.len(), "shard gradient vectors must align");
    a.into_iter()
        .zip(b)
        .map(|pair| match pair {
            (Some(x), Some(y)) => {
                assert_eq!(x.shape(), y.shape(), "shard gradient shapes must align");
                let data = x.data().iter().zip(y.data()).map(|(p, q)| p + q).collect();
                Some(Tensor::from_vec(x.shape().clone(), data))
            }
            (Some(x), None) | (None, Some(x)) => Some(x),
            (None, None) => None,
        })
        .collect()
}

/// The row slice `[lo, hi)` of a next-item batch, as its own batch. The
/// negatives were sampled when the full batch was built, so the sharded
/// step consumes exactly the sampler stream the serial step would.
pub fn slice_batch(batch: &NextItemBatch, lo: usize, hi: usize) -> NextItemBatch {
    assert!(lo < hi && hi <= batch.b, "shard [{lo},{hi}) outside batch of {}", batch.b);
    let t = batch.t;
    NextItemBatch {
        inputs: batch.inputs[lo * t..hi * t].to_vec(),
        pos: batch.pos[lo * t..hi * t].to_vec(),
        neg: batch.neg[lo * t..hi * t].to_vec(),
        target_mask: batch.target_mask[lo * t..hi * t].to_vec(),
        valid: batch.valid[lo..hi].to_vec(),
        b: hi - lo,
        t,
    }
}

/// The effective shard count for a batch of `n_rows`: the configured
/// `data_parallel` degree, capped so every shard keeps at least two rows
/// (in-batch objectives need a pair), and 1 when the mode is off.
pub fn effective_shards(data_parallel: usize, n_rows: usize) -> usize {
    if data_parallel <= 1 {
        return 1;
    }
    data_parallel.min(n_rows / 2).max(1)
}

/// Combines per-shard `(loss, weight, grads)` results: records the shard
/// loss spread, then returns the weighted batch loss and the tree-reduced
/// gradient vector (in shard-index order, as always).
pub fn combine_shard_results(
    per: Vec<(f32, f32, Vec<Option<Tensor>>)>,
) -> (f32, Vec<Option<Tensor>>) {
    let losses: Vec<f32> = per.iter().map(|(l, _, _)| *l).collect();
    observe_shard_spread(&losses);
    let loss = per.iter().map(|(l, w, _)| l * w).sum();
    let reduced = tree_reduce(per.into_iter().map(|(_, _, g)| g).collect());
    (loss, reduced)
}

/// Records the spread of per-shard losses (max − min, in milli-units) so
/// shard divergence is visible next to PR 5's per-group gradient norms.
pub fn observe_shard_spread(losses: &[f32]) {
    if losses.len() < 2 {
        return;
    }
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &l in losses {
        lo = lo.min(l);
        hi = hi.max(l);
    }
    seqrec_obs::metrics::record_scaled(
        &seqrec_obs::metrics::DP_SHARD_LOSS_SPREAD_MILLI,
        f64::from(hi - lo),
        1e3,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_and_balance() {
        assert_eq!(shard_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(shard_ranges(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(shard_ranges(3, 8), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(shard_ranges(7, 1), vec![(0, 7)]);
        assert!(shard_ranges(0, 4).is_empty());
    }

    #[test]
    fn tree_reduce_is_a_fixed_shape_sum() {
        let g = |v: f32| Some(Tensor::from_vec([2], vec![v, v * 10.0]));
        let shards = vec![vec![g(1.0), None], vec![g(2.0), g(5.0)], vec![g(3.0), None]];
        let r = tree_reduce(shards);
        assert_eq!(r[0].as_ref().unwrap().data(), &[6.0, 60.0]);
        assert_eq!(r[1].as_ref().unwrap().data(), &[5.0, 50.0]);
        assert!(tree_reduce(Vec::new()).is_empty());
    }

    #[test]
    fn effective_shards_respects_row_budget() {
        assert_eq!(effective_shards(4, 32), 4);
        assert_eq!(effective_shards(4, 6), 3); // ≥2 rows per shard
        assert_eq!(effective_shards(4, 3), 1);
        assert_eq!(effective_shards(1, 32), 1);
    }
}
