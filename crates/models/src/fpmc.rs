//! FPMC (Rendle et al., WWW 2010): Factorizing Personalized Markov Chains.
//!
//! The classic pre-deep-learning sequential baseline (cited as [40] by the
//! paper and included in the ICDE camera-ready comparison): a matrix
//! factorisation term models long-term preference and a factorised
//! first-order Markov term models the transition from the previous item:
//!
//! `score(u, l, i) = ⟨v_u^{U,I}, v_i^{I,U}⟩ + ⟨v_l^{L,I}, v_i^{I,L}⟩`
//!
//! trained with BPR over (user, last-item, positive, negative) quadruples.

use std::collections::HashSet;

use seqrec_data::batch::{epoch_batches, NegativeSampler};
use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_tensor::init::{self, rng};
use seqrec_tensor::nn::{HasParams, Param, Step};
use seqrec_tensor::optim::{Adam, AdamConfig};
use seqrec_tensor::{linalg, Tensor, Var};
use serde::{Deserialize, Serialize};

use crate::common::{EarlyStopper, EpochClock, FitSession, TrainOptions, TrainReport};

/// FPMC hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FpmcConfig {
    /// Latent dimension of both the MF and the Markov factorisation.
    pub d: usize,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Default for FpmcConfig {
    fn default() -> Self {
        FpmcConfig { d: 64, weight_decay: 1e-5 }
    }
}

/// The FPMC model.
pub struct Fpmc {
    cfg: FpmcConfig,
    /// `v^{U,I}`: user factors.
    user_ui: Param,
    /// `v^{I,U}`: item factors against users.
    item_iu: Param,
    /// `v^{L,I}`: previous-item factors.
    last_li: Param,
    /// `v^{I,L}`: item factors against the previous item.
    item_il: Param,
    num_users: usize,
    num_items: usize,
}

impl Fpmc {
    /// Builds an untrained model (item tables carry a pad row 0).
    pub fn new(cfg: FpmcConfig, num_users: usize, num_items: usize, seed: u64) -> Self {
        let mut r = rng(seed);
        let d = cfg.d;
        let v = num_items + 1;
        Fpmc {
            user_ui: Param::new("fpmc.user_ui", init::normal([num_users, d], 0.05, &mut r)),
            item_iu: Param::new("fpmc.item_iu", init::normal([v, d], 0.05, &mut r)),
            last_li: Param::new("fpmc.last_li", init::normal([v, d], 0.05, &mut r)),
            item_il: Param::new("fpmc.item_il", init::normal([v, d], 0.05, &mut r)),
            cfg,
            num_users,
            num_items,
        }
    }

    /// The hyper-parameters this model was built with.
    pub fn config(&self) -> &FpmcConfig {
        &self.cfg
    }

    /// Number of users the embedding table covers.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Mean BPR loss over a batch of `(user, previous item, positive,
    /// negative)` transitions — Eq. 7 of Rendle et al. with the two additive
    /// factorisations `v^{U,I}·v^{I,U}` and `v^{L,I}·v^{I,L}`.
    ///
    /// Public so the conformance suite can gradcheck and golden-pin the
    /// exact training objective `fit` optimises.
    pub fn bpr_loss(
        &self,
        step: &mut Step,
        u_ids: &[u32],
        last_ids: &[u32],
        pos_ids: &[u32],
        neg_ids: &[u32],
    ) -> Var {
        let n = u_ids.len();
        assert!(n > 0 && last_ids.len() == n && pos_ids.len() == n && neg_ids.len() == n);
        let (ut, iut) = (self.user_ui.var(step), self.item_iu.var(step));
        let (lt, ilt) = (self.last_li.var(step), self.item_il.var(step));
        let ue = step.tape.embedding(ut, u_ids, &[n]);
        let le = step.tape.embedding(lt, last_ids, &[n]);
        let pos_iu = step.tape.embedding(iut, pos_ids, &[n]);
        let pos_il = step.tape.embedding(ilt, pos_ids, &[n]);
        let neg_iu = step.tape.embedding(iut, neg_ids, &[n]);
        let neg_il = step.tape.embedding(ilt, neg_ids, &[n]);

        let score = |step: &mut Step, iu: Var, il: Var| {
            let mf = step.tape.mul(ue, iu);
            let mf = step.tape.sum_rows(mf);
            let mc = step.tape.mul(le, il);
            let mc = step.tape.sum_rows(mc);
            step.tape.add(mf, mc)
        };
        let pos = score(step, pos_iu, pos_il);
        let neg = score(step, neg_iu, neg_il);
        let losses = step.tape.bpr(pos, neg);
        step.tape.mean_all(losses)
    }

    /// Trains with BPR on every consecutive `(prev → next)` transition of
    /// every training sequence, once per epoch.
    pub fn fit(&mut self, split: &Split, opts: &TrainOptions) -> TrainReport {
        assert_eq!(split.num_users(), self.num_users, "split/model user mismatch");
        let users: Vec<usize> = opts
            .train_users
            .clone()
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| split.train_sequence(u).len() >= 2)
            .collect();
        assert!(!users.is_empty(), "no user has a training transition");
        let mut adam = Adam::new(AdamConfig {
            lr: opts.lr,
            weight_decay: self.cfg.weight_decay,
            ..AdamConfig::default()
        });
        let mut sampler = NegativeSampler::new(split.num_items(), opts.seed ^ 0xf3);

        let mut report = TrainReport::default();
        let mut stopper = EarlyStopper::new(opts.patience);
        let config_json = serde_json::to_string(&self.cfg).expect("config serializes");
        let mut session = FitSession::start("FPMC", &config_json, opts);
        let mut aborted = false;
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                let _batch_span = seqrec_obs::span!("batch");
                let mut u_ids = Vec::new();
                let mut last_ids = Vec::new();
                let mut pos_ids = Vec::new();
                let mut neg_ids = Vec::new();
                for &u in &chunk {
                    let seq = split.train_sequence(u);
                    let exclude: HashSet<u32> = seq.iter().copied().collect();
                    for w in seq.windows(2) {
                        u_ids.push(u as u32);
                        last_ids.push(w[0]);
                        pos_ids.push(w[1]);
                        neg_ids.push(sampler.sample(&exclude));
                    }
                }
                let mut step = Step::new();
                let loss = {
                    let _fwd = seqrec_obs::span!("forward");
                    self.bpr_loss(&mut step, &u_ids, &last_ids, &pos_ids, &neg_ids)
                };
                let grads = step.tape.backward(loss);
                let stats = adam.step_with_stats(self, &step, &grads);
                let batch_loss = step.tape.value(loss).item();
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            let hr10 = (!aborted && opts.should_probe(epoch)).then(|| {
                clock.probe(|| {
                    crate::common::probe_valid_hr10(self, split, opts.valid_probe_users, opts.seed)
                })
            });
            if opts.verbosity >= 1 {
                match hr10 {
                    Some(h) => seqrec_obs::info!(
                        "[fpmc] epoch {epoch}: loss {mean_loss:.4}, valid HR@10 {h:.4}"
                    ),
                    None => seqrec_obs::info!("[fpmc] epoch {epoch}: loss {mean_loss:.4}"),
                }
            }
            let mut log = clock.finish(epoch, mean_loss, hr10);
            session.stamp_epoch(&mut log);
            report.epochs.push(log);
            if aborted {
                break;
            }
            if hr10.is_some_and(|h| stopper.update(h)) {
                report.early_stopped = true;
                break;
            }
        }
        report.best_valid_hr10 = stopper.best();
        report.finish_timing();
        session.finish(&mut report);
        report
    }
}

impl HasParams for Fpmc {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.user_ui);
        f(&self.item_iu);
        f(&self.last_li);
        f(&self.item_il);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.user_ui);
        f(&mut self.item_iu);
        f(&mut self.last_li);
        f(&mut self.item_il);
    }
}

impl SequenceScorer for Fpmc {
    fn num_items(&self) -> usize {
        self.num_items
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        self.score_states(&self.encode_users(users, inputs))
    }
}

impl StatefulScorer for Fpmc {
    /// State row = user factor (`d`) followed by last-item factor (`d`).
    fn state_dim(&self) -> usize {
        2 * self.cfg.d
    }
    fn encode_users(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<f32> {
        assert_eq!(users.len(), inputs.len());
        let d = self.cfg.d;
        let mut states = Vec::with_capacity(users.len() * 2 * d);
        for (&u, seq) in users.iter().zip(inputs) {
            assert!(u < self.num_users, "unknown user {u}");
            states.extend_from_slice(&self.user_ui.value().data()[u * d..(u + 1) * d]);
            let last = seq.last().copied().unwrap_or(0) as usize;
            states.extend_from_slice(&self.last_li.value().data()[last * d..(last + 1) * d]);
        }
        states
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        let d = self.cfg.d;
        let v = self.num_items + 1;
        let b = states.len() / (2 * d);
        // De-interleave into the MF (user × item_iu) and MC (last-item ×
        // item_il) operands — two matmuls plus an elementwise add, exactly
        // the structure the evaluator path has always used.
        let mut u_rows = Vec::with_capacity(b * d);
        let mut l_rows = Vec::with_capacity(b * d);
        for row in states.chunks(2 * d) {
            u_rows.extend_from_slice(&row[..d]);
            l_rows.extend_from_slice(&row[d..]);
        }
        let mf = linalg::matmul_nt(&Tensor::from_vec([b, d], u_rows), self.item_iu.value());
        let mc = linalg::matmul_nt(&Tensor::from_vec([b, d], l_rows), self.item_il.value());
        mf.add(&mc).data().chunks(v).map(<[f32]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;
    use seqrec_eval::{evaluate, EvalOptions, EvalTarget};

    /// Deterministic first-order chain: item i is always followed by
    /// i % n + 1 — exactly what a Markov factorisation should nail.
    fn chain_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let seqs = (0..users)
            .map(|u| (0..len).map(|i| ((u + i) % num_items) as u32 + 1).collect::<Vec<u32>>())
            .collect();
        Dataset::new(seqs, num_items)
    }

    #[test]
    fn learns_first_order_transitions() {
        let ds = chain_dataset(8, 60, 8);
        let split = Split::leave_one_out(&ds);
        let mut model = Fpmc::new(FpmcConfig { d: 16, weight_decay: 0.0 }, split.num_users(), 8, 1);
        let opts = TrainOptions {
            epochs: 30,
            batch_size: 32,
            lr: 5e-3,
            patience: None,
            valid_probe_users: 20,
            ..Default::default()
        };
        let report = model.fit(&split, &opts);
        assert!(report.epochs.last().unwrap().loss < report.epochs[0].loss);
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        assert!(m.hr_at(5) > 0.5, "HR@5 = {} on a deterministic chain", m.hr_at(5));
    }

    #[test]
    fn scoring_depends_on_user_and_last_item_only() {
        let ds = chain_dataset(8, 10, 6);
        let split = Split::leave_one_out(&ds);
        let model = Fpmc::new(FpmcConfig { d: 8, ..Default::default() }, split.num_users(), 8, 2);
        let a = model.score_full_catalog(&[0], &[&[1, 2, 3]]);
        let b = model.score_full_catalog(&[0], &[&[7, 5, 3]]); // same last item
        assert_eq!(a, b, "only the last item should matter for the MC term");
        let c = model.score_full_catalog(&[0], &[&[1, 2, 4]]);
        assert_ne!(a, c, "a different last item must change scores");
        let d2 = model.score_full_catalog(&[1], &[&[1, 2, 3]]);
        assert_ne!(a, d2, "a different user must change scores");
    }

    #[test]
    fn empty_history_falls_back_to_pad_transition() {
        let ds = chain_dataset(8, 10, 6);
        let split = Split::leave_one_out(&ds);
        let model = Fpmc::new(FpmcConfig { d: 8, ..Default::default() }, split.num_users(), 8, 3);
        let s = model.score_full_catalog(&[0], &[&[]]);
        assert_eq!(s[0].len(), 9);
        assert!(s[0].iter().all(|v| v.is_finite()));
    }
}
