//! GRU4Rec (Hidasi et al., 2016): recurrent sequential recommendation.
//!
//! A from-scratch GRU cell unrolled over the left-padded sequence. For a
//! fair comparison (and following the paper's re-implementation practice)
//! training uses the same per-position positive/negative BCE as SASRec.

use seqrec_data::batch::{
    epoch_batches, next_item_batch, pad_left, NegativeSampler, NextItemBatch,
};
use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_tensor::init::{rng, TensorRng};
use seqrec_tensor::nn::{Embedding, HasParams, Linear, Param, Step};
use seqrec_tensor::optim::{Adam, AdamConfig};
use seqrec_tensor::{linalg, Tensor, Var};
use serde::{Deserialize, Serialize};

use crate::common::{EarlyStopper, EpochClock, FitSession, TrainOptions, TrainReport};

/// GRU4Rec hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Gru4RecConfig {
    /// Catalog size.
    pub num_items: usize,
    /// Embedding and hidden width.
    pub d: usize,
    /// Maximum unrolled length (matches the Transformer's `T = 50`).
    pub max_len: usize,
    /// Dropout on the embedded inputs.
    pub dropout: f32,
}

impl Gru4RecConfig {
    /// Width-64 configuration used by the scaled experiments.
    pub fn small(num_items: usize) -> Self {
        Gru4RecConfig { num_items, d: 64, max_len: 50, dropout: 0.1 }
    }
}

/// A single-layer GRU cell.
///
/// `z = σ(x·Wz + h·Uz + bz)`, `r = σ(x·Wr + h·Ur + br)`,
/// `h̃ = tanh(x·Wh + (r∘h)·Uh + bh)`, `h' = (1-z)∘h + z∘h̃`.
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    d: usize,
}

impl GruCell {
    /// Xavier-initialised cell of width `d`.
    pub fn new(name: &str, d: usize, r: &mut TensorRng) -> Self {
        GruCell {
            wz: Linear::new(&format!("{name}.wz"), d, d, r),
            uz: Linear::with_options(&format!("{name}.uz"), d, d, false, r),
            wr: Linear::new(&format!("{name}.wr"), d, d, r),
            ur: Linear::with_options(&format!("{name}.ur"), d, d, false, r),
            wh: Linear::new(&format!("{name}.wh"), d, d, r),
            uh: Linear::with_options(&format!("{name}.uh"), d, d, false, r),
            d,
        }
    }

    /// Hidden width.
    pub fn width(&self) -> usize {
        self.d
    }

    /// One step: `(x_t, h_{t-1}) -> h_t`, both `[B, d]`.
    pub fn step(&self, step: &mut Step, x: Var, h: Var) -> Var {
        let b = step.tape.value(x).shape().dim(0);
        let ones = Tensor::ones([b, self.d]);

        let zx = self.wz.forward(step, x);
        let zh = self.uz.forward(step, h);
        let z_in = step.tape.add(zx, zh);
        let z = step.tape.sigmoid(z_in);

        let rx = self.wr.forward(step, x);
        let rh = self.ur.forward(step, h);
        let r_in = step.tape.add(rx, rh);
        let r = step.tape.sigmoid(r_in);

        let hx = self.wh.forward(step, x);
        let rh_prod = step.tape.mul(r, h);
        let hh = self.uh.forward(step, rh_prod);
        let cand_in = step.tape.add(hx, hh);
        let cand = step.tape.tanh(cand_in);

        // h' = (1 - z) ∘ h + z ∘ h̃
        let neg_z = step.tape.scale(z, -1.0);
        let one_minus_z = step.tape.add_const(neg_z, &ones);
        let keep = step.tape.mul(one_minus_z, h);
        let update = step.tape.mul(z, cand);
        step.tape.add(keep, update)
    }
}

impl HasParams for GruCell {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        for m in [&self.wz, &self.uz, &self.wr, &self.ur, &self.wh, &self.uh] {
            m.visit(f);
        }
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for m in
            [&mut self.wz, &mut self.uz, &mut self.wr, &mut self.ur, &mut self.wh, &mut self.uh]
        {
            m.visit_mut(f);
        }
    }
}

/// The GRU4Rec model.
pub struct Gru4Rec {
    cfg: Gru4RecConfig,
    item_emb: Embedding,
    cell: GruCell,
}

impl Gru4Rec {
    /// Builds an untrained model. The vocabulary reserves pad (0) and the
    /// `[mask]` slot for id-compatibility with the Transformer models.
    pub fn new(cfg: Gru4RecConfig, seed: u64) -> Self {
        let mut r = rng(seed);
        let item_emb = Embedding::new("gru.item", cfg.num_items + 2, cfg.d, &mut r);
        let cell = GruCell::new("gru.cell", cfg.d, &mut r);
        Gru4Rec { cfg, item_emb, cell }
    }

    /// The hyper-parameters this model was built with.
    pub fn config(&self) -> &Gru4RecConfig {
        &self.cfg
    }

    /// Unrolls the GRU over a left-padded batch, returning the hidden state
    /// after every timestep (`Vec` of `[B, d]` vars, length `T`). Padded
    /// steps carry the previous hidden state through unchanged.
    fn unroll(
        &self,
        step: &mut Step,
        ids: &[u32],
        valid: &[Vec<bool>],
        training: bool,
        r: &mut TensorRng,
    ) -> Vec<Var> {
        let (b, t, d) = (valid.len(), self.cfg.max_len, self.cfg.d);
        assert_eq!(ids.len(), b * t);
        let emb = self.item_emb.forward(step, ids, &[b, t]);
        let emb = step.tape.dropout(emb, self.cfg.dropout, training, r);

        let mut h = step.tape.leaf(Tensor::zeros([b, d]));
        let mut states = Vec::with_capacity(t);
        for ti in 0..t {
            let x = step.tape.select_time(emb, ti);
            let h_new = self.cell.step(step, x, h);
            // freeze the state on padded steps
            let m: Vec<f32> = valid.iter().map(|v| f32::from(v[ti])).collect();
            let inv: Vec<f32> = m.iter().map(|&v| 1.0 - v).collect();
            let kept = step.tape.scale_rows_const(h, &inv);
            let advanced = step.tape.scale_rows_const(h_new, &m);
            h = step.tape.add(kept, advanced);
            states.push(h);
        }
        states
    }

    /// Eq. 15-style loss over every valid position.
    ///
    /// Public so the conformance suite can gradcheck and golden-pin the
    /// exact training objective `fit` optimises.
    pub fn next_item_loss(
        &self,
        step: &mut Step,
        batch: &NextItemBatch,
        training: bool,
        r: &mut TensorRng,
    ) -> Var {
        let states = self.unroll(step, &batch.inputs, &batch.valid, training, r);
        let (b, t) = (batch.b, batch.t);
        let mut total: Option<Var> = None;
        for (ti, &h) in states.iter().enumerate() {
            let pos_ids: Vec<u32> = (0..b).map(|bi| batch.pos[bi * t + ti]).collect();
            let neg_ids: Vec<u32> = (0..b).map(|bi| batch.neg[bi * t + ti]).collect();
            let mask: Vec<f32> = (0..b).map(|bi| batch.target_mask[bi * t + ti]).collect();
            if mask.iter().all(|&m| m == 0.0) {
                continue;
            }
            let pe = self.item_emb.forward(step, &pos_ids, &[b]);
            let ne = self.item_emb.forward(step, &neg_ids, &[b]);
            let pos_prod = step.tape.mul(h, pe);
            let pos_logit = step.tape.sum_rows(pos_prod);
            let neg_prod = step.tape.mul(h, ne);
            let neg_logit = step.tape.sum_rows(neg_prod);
            let losses = step.tape.bce_pairwise(pos_logit, neg_logit);
            let masked = step.tape.mul_const(losses, &Tensor::from_vec([b], mask));
            let summed = step.tape.sum_all(masked);
            total = Some(match total {
                Some(acc) => step.tape.add(acc, summed),
                None => summed,
            });
        }
        let total = total.expect("batch had no valid targets");
        let count: f32 = batch.target_mask.iter().sum();
        step.tape.scale(total, 1.0 / count)
    }

    /// Trains with Adam and early stopping (same protocol as SASRec).
    pub fn fit(&mut self, split: &Split, opts: &TrainOptions) -> TrainReport {
        let users: Vec<usize> = opts
            .train_users
            .clone()
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| split.train_sequence(u).len() >= 2)
            .collect();
        assert!(!users.is_empty(), "no trainable users");
        let mut adam = Adam::new(AdamConfig { lr: opts.lr, ..AdamConfig::default() });
        let mut sampler = NegativeSampler::new(split.num_items(), opts.seed ^ 0x94);
        let mut r = rng(opts.seed);

        let mut report = TrainReport::default();
        let mut stopper = EarlyStopper::new(opts.patience);
        let config_json = serde_json::to_string(&self.cfg).expect("config serializes");
        let mut session = FitSession::start("GRU4Rec", &config_json, opts);
        let mut aborted = false;
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                let _batch_span = seqrec_obs::span!("batch");
                let seqs: Vec<&[u32]> = chunk.iter().map(|&u| split.train_sequence(u)).collect();
                let batch = next_item_batch(&seqs, self.cfg.max_len, &mut sampler);
                let mut step = Step::new();
                let loss = {
                    let _fwd = seqrec_obs::span!("forward");
                    self.next_item_loss(&mut step, &batch, true, &mut r)
                };
                let grads = step.tape.backward(loss);
                let stats = adam.step_with_stats(self, &step, &grads);
                let batch_loss = step.tape.value(loss).item();
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            let hr10 = (!aborted && opts.should_probe(epoch)).then(|| {
                clock.probe(|| {
                    crate::common::probe_valid_hr10(self, split, opts.valid_probe_users, opts.seed)
                })
            });
            if opts.verbosity >= 1 {
                match hr10 {
                    Some(h) => seqrec_obs::info!(
                        "[gru4rec] epoch {epoch}: loss {mean_loss:.4}, valid HR@10 {h:.4}"
                    ),
                    None => seqrec_obs::info!("[gru4rec] epoch {epoch}: loss {mean_loss:.4}"),
                }
            }
            let mut log = clock.finish(epoch, mean_loss, hr10);
            session.stamp_epoch(&mut log);
            report.epochs.push(log);
            if aborted {
                break;
            }
            if hr10.is_some_and(|h| stopper.update(h)) {
                report.early_stopped = true;
                break;
            }
        }
        report.best_valid_hr10 = stopper.best();
        report.finish_timing();
        session.finish(&mut report);
        report
    }
}

impl HasParams for Gru4Rec {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.item_emb.visit(f);
        self.cell.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.item_emb.visit_mut(f);
        self.cell.visit_mut(f);
    }
}

impl SequenceScorer for Gru4Rec {
    fn num_items(&self) -> usize {
        self.cfg.num_items
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        self.score_states(&self.encode_users(users, inputs))
    }
}

impl StatefulScorer for Gru4Rec {
    /// State row = the final GRU hidden state `[d]`.
    fn state_dim(&self) -> usize {
        self.cfg.d
    }
    fn encode_users(&self, _users: &[usize], inputs: &[&[u32]]) -> Vec<f32> {
        let t = self.cfg.max_len;
        let mut ids = Vec::with_capacity(inputs.len() * t);
        let mut valid = Vec::with_capacity(inputs.len());
        for s in inputs {
            let (i, v) = pad_left(s, t);
            ids.extend(i);
            valid.push(v);
        }
        let mut step = Step::new();
        let mut r = rng(0);
        let states = self.unroll(&mut step, &ids, &valid, false, &mut r);
        let last = *states.last().expect("max_len > 0");
        step.tape.value(last).data().to_vec()
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        let d = self.cfg.d;
        let repr = Tensor::from_vec([states.len() / d, d], states.to_vec());
        let scores = linalg::matmul_nt(&repr, self.item_emb.table().value());
        let keep = self.cfg.num_items + 1;
        scores.data().chunks(self.cfg.num_items + 2).map(|row| row[..keep].to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;
    use seqrec_eval::{evaluate, EvalOptions, EvalTarget};

    fn tiny_cfg(num_items: usize) -> Gru4RecConfig {
        Gru4RecConfig { num_items, d: 16, max_len: 8, dropout: 0.0 }
    }

    fn cyclic_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let seqs = (0..users)
            .map(|u| (0..len).map(|i| ((u + i) % num_items) as u32 + 1).collect::<Vec<u32>>())
            .collect();
        Dataset::new(seqs, num_items)
    }

    #[test]
    fn cell_gates_interpolate_between_old_and_new() {
        let mut r = rng(80);
        let cell = GruCell::new("c", 4, &mut r);
        let mut step = Step::new();
        let x = step.tape.leaf(Tensor::ones([2, 4]));
        let h = step.tape.leaf(Tensor::zeros([2, 4]));
        let h1 = cell.step(&mut step, x, h);
        let v = step.tape.value(h1);
        // tanh candidate ∈ (-1, 1), gate ∈ (0, 1) → new state strictly inside
        assert!(v.is_finite());
        assert!(v.max_abs() < 1.0);
    }

    #[test]
    fn padded_steps_freeze_the_state() {
        let model = Gru4Rec::new(tiny_cfg(10), 1);
        // same sequence, two different amounts of left padding
        let a = model.score_full_catalog(&[0], &[&[3, 4, 5]]);
        let b = model.score_full_catalog(&[0], &[&[3, 4, 5]]);
        assert_eq!(a, b);
        // hidden state before any real item is zero → a lone pad batch
        // scores identically to another lone pad batch of different length
        let e = model.score_full_catalog(&[0], &[&[]]);
        assert!(e[0].iter().all(|&s| s == 0.0), "empty history must score 0");
    }

    #[test]
    fn loss_decreases_and_learns_successor_rule() {
        let ds = cyclic_dataset(8, 60, 8);
        let split = Split::leave_one_out(&ds);
        let mut model = Gru4Rec::new(tiny_cfg(8), 2);
        let opts = TrainOptions {
            epochs: 12,
            batch_size: 32,
            patience: None,
            valid_probe_users: 10,
            ..Default::default()
        };
        let report = model.fit(&split, &opts);
        assert!(report.epochs.last().unwrap().loss < report.epochs[0].loss);
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        assert!(m.hr_at(5) > 0.4, "HR@5 = {}", m.hr_at(5));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let model = Gru4Rec::new(tiny_cfg(6), 3);
        let mut sampler = NegativeSampler::new(6, 1);
        let seqs: Vec<&[u32]> = vec![&[1, 2, 3, 4]];
        let batch = next_item_batch(&seqs, 8, &mut sampler);
        let mut step = Step::new();
        let mut r = rng(9);
        let loss = model.next_item_loss(&mut step, &batch, true, &mut r);
        let grads = step.tape.backward(loss);
        let mut missing = Vec::new();
        model.visit(&mut |p| {
            if p.grad(&step, &grads).is_none() {
                missing.push(p.name().to_string());
            }
        });
        assert!(missing.is_empty(), "no gradient for {missing:?}");
    }
}
