//! BPR-MF (Rendle et al., 2009): matrix factorisation trained with the
//! pairwise Bayesian Personalised Ranking loss.
//!
//! Non-sequential baseline; also the warm-start source for SASRec_BPR
//! (its learned item factors initialise SASRec's item embeddings).

use std::collections::HashSet;

use seqrec_data::batch::{epoch_batches, NegativeSampler};
use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_tensor::init::{self, rng};
use seqrec_tensor::nn::{HasParams, Param, Step};
use seqrec_tensor::optim::{Adam, AdamConfig};
use seqrec_tensor::{linalg, Tensor, Var};
use serde::{Deserialize, Serialize};

use crate::common::{EarlyStopper, EpochClock, FitSession, TrainOptions, TrainReport};

/// BPR-MF hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BprMfConfig {
    /// Latent dimension (the experiments match the sequence models' `d`).
    pub d: usize,
    /// L2 regularisation applied through decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for BprMfConfig {
    fn default() -> Self {
        BprMfConfig { d: 64, weight_decay: 1e-5 }
    }
}

/// The BPR-MF model: `score(u, i) = p_u · q_i`.
pub struct BprMf {
    cfg: BprMfConfig,
    user_emb: Param,
    item_emb: Param,
    num_users: usize,
    num_items: usize,
}

impl BprMf {
    /// Builds an untrained model for the split's population.
    pub fn new(cfg: BprMfConfig, num_users: usize, num_items: usize, seed: u64) -> Self {
        let mut r = rng(seed);
        BprMf {
            user_emb: Param::new("bpr.user", init::normal([num_users, cfg.d], 0.05, &mut r)),
            // +1 row: index 0 is the (never-trained) pad slot, keeping item
            // ids aligned with the rest of the workspace.
            item_emb: Param::new("bpr.item", init::normal([num_items + 1, cfg.d], 0.05, &mut r)),
            cfg,
            num_users,
            num_items,
        }
    }

    /// The learned `[num_items + 1, d]` item-factor table (row 0 = pad),
    /// used to warm-start SASRec_BPR.
    pub fn item_factors(&self) -> &Tensor {
        self.item_emb.value()
    }

    /// The hyper-parameters this model was built with.
    pub fn config(&self) -> &BprMfConfig {
        &self.cfg
    }

    /// Number of users the embedding table covers.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Mean BPR loss over a batch of `(user, positive, negative)` triples.
    ///
    /// Public so the conformance suite can gradcheck and golden-pin the
    /// exact training objective `fit` optimises.
    pub fn bpr_loss(
        &self,
        step: &mut Step,
        u_ids: &[u32],
        pos_ids: &[u32],
        neg_ids: &[u32],
    ) -> Var {
        let n = u_ids.len();
        assert!(n > 0 && pos_ids.len() == n && neg_ids.len() == n);
        let ut = self.user_emb.var(step);
        let it = self.item_emb.var(step);
        let ue = step.tape.embedding(ut, u_ids, &[n]);
        let pe = step.tape.embedding(it, pos_ids, &[n]);
        let ne = step.tape.embedding(it, neg_ids, &[n]);
        let pos_prod = step.tape.mul(ue, pe);
        let pos_logit = step.tape.sum_rows(pos_prod);
        let neg_prod = step.tape.mul(ue, ne);
        let neg_logit = step.tape.sum_rows(neg_prod);
        let losses = step.tape.bpr(pos_logit, neg_logit);
        step.tape.mean_all(losses)
    }

    /// Trains with Adam on uniformly sampled `(u, i⁺, i⁻)` triples: one
    /// positive per training interaction per epoch.
    pub fn fit(&mut self, split: &Split, opts: &TrainOptions) -> TrainReport {
        assert_eq!(split.num_users(), self.num_users, "split/model user mismatch");
        let users: Vec<usize> = opts
            .train_users
            .clone()
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| !split.train_sequence(u).is_empty())
            .collect();
        let mut adam = Adam::new(AdamConfig {
            lr: opts.lr,
            weight_decay: self.cfg.weight_decay,
            ..AdamConfig::default()
        });
        let mut sampler = NegativeSampler::new(split.num_items(), opts.seed ^ 0xb9);

        let mut report = TrainReport::default();
        let mut stopper = EarlyStopper::new(opts.patience);
        let config_json = serde_json::to_string(&self.cfg).expect("config serializes");
        let mut session = FitSession::start("BPR-MF", &config_json, opts);
        let mut aborted = false;
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                let _batch_span = seqrec_obs::span!("batch");
                // every training interaction of each user is a positive,
                // paired with a fresh sampled negative (one SGD "epoch"
                // covers the whole training matrix, as in the original BPR).
                let mut u_ids = Vec::new();
                let mut pos_ids = Vec::new();
                let mut neg_ids = Vec::new();
                for &u in &chunk {
                    let seq = split.train_sequence(u);
                    let exclude: HashSet<u32> = seq.iter().copied().collect();
                    for &item in seq {
                        u_ids.push(u as u32);
                        pos_ids.push(item);
                        neg_ids.push(sampler.sample(&exclude));
                    }
                }
                let mut step = Step::new();
                let loss = {
                    let _fwd = seqrec_obs::span!("forward");
                    self.bpr_loss(&mut step, &u_ids, &pos_ids, &neg_ids)
                };
                let grads = step.tape.backward(loss);
                let stats = adam.step_with_stats(self, &step, &grads);
                let batch_loss = step.tape.value(loss).item();
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            let hr10 = (!aborted && opts.should_probe(epoch)).then(|| {
                clock.probe(|| {
                    crate::common::probe_valid_hr10(self, split, opts.valid_probe_users, opts.seed)
                })
            });
            if opts.verbosity >= 1 {
                match hr10 {
                    Some(h) => seqrec_obs::info!(
                        "[bpr-mf] epoch {epoch}: loss {mean_loss:.4}, valid HR@10 {h:.4}"
                    ),
                    None => seqrec_obs::info!("[bpr-mf] epoch {epoch}: loss {mean_loss:.4}"),
                }
            }
            let mut log = clock.finish(epoch, mean_loss, hr10);
            session.stamp_epoch(&mut log);
            report.epochs.push(log);
            if aborted {
                break;
            }
            if hr10.is_some_and(|h| stopper.update(h)) {
                report.early_stopped = true;
                break;
            }
        }
        report.best_valid_hr10 = stopper.best();
        report.finish_timing();
        session.finish(&mut report);
        report
    }
}

impl HasParams for BprMf {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.user_emb);
        f(&self.item_emb);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.user_emb);
        f(&mut self.item_emb);
    }
}

impl SequenceScorer for BprMf {
    fn num_items(&self) -> usize {
        self.num_items
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        self.score_states(&self.encode_users(users, inputs))
    }
}

impl StatefulScorer for BprMf {
    fn state_dim(&self) -> usize {
        self.cfg.d
    }
    fn encode_users(&self, users: &[usize], _inputs: &[&[u32]]) -> Vec<f32> {
        let d = self.cfg.d;
        // Gather the queried user rows; the matmul happens in score_states.
        let mut u_rows = Vec::with_capacity(users.len() * d);
        for &u in users {
            assert!(u < self.num_users, "unknown user {u}");
            u_rows.extend_from_slice(&self.user_emb.value().data()[u * d..(u + 1) * d]);
        }
        u_rows
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        let d = self.cfg.d;
        let u_mat = Tensor::from_vec([states.len() / d, d], states.to_vec());
        let scores = linalg::matmul_nt(&u_mat, self.item_emb.value());
        scores.data().chunks(self.num_items + 1).map(<[f32]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;
    use seqrec_eval::{evaluate, EvalOptions, EvalTarget};

    /// Two disjoint user communities with disjoint item sets — easy for MF.
    fn two_communities() -> Dataset {
        let mut seqs = Vec::new();
        for u in 0..30 {
            let base: Vec<u32> =
                if u % 2 == 0 { vec![1, 2, 3, 4, 5] } else { vec![6, 7, 8, 9, 10] };
            // rotate so targets vary within the community
            let rot = u / 2 % 5;
            seqs.push(base[rot..].iter().chain(&base[..rot]).copied().collect());
        }
        Dataset::new(seqs, 10)
    }

    #[test]
    fn learns_community_structure() {
        let ds = two_communities();
        let split = Split::leave_one_out(&ds);
        let mut model = BprMf::new(
            BprMfConfig { d: 8, weight_decay: 0.0 },
            split.num_users(),
            split.num_items(),
            1,
        );
        let opts = TrainOptions {
            epochs: 60,
            batch_size: 16,
            lr: 5e-3,
            patience: None,
            valid_probe_users: 30,
            ..Default::default()
        };
        let report = model.fit(&split, &opts);
        assert!(report.epochs.last().unwrap().loss < report.epochs[0].loss);
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        // within-community items are 4 of ~9 candidates; MF should beat chance
        assert!(m.hr_at(5) > 0.55, "HR@5 = {}", m.hr_at(5));
    }

    #[test]
    fn item_factors_have_pad_row() {
        let model = BprMf::new(BprMfConfig::default(), 3, 7, 2);
        assert_eq!(model.item_factors().shape().dims(), &[8, 64]);
    }

    #[test]
    fn scoring_uses_user_identity_not_history() {
        let ds = two_communities();
        let split = Split::leave_one_out(&ds);
        let model = BprMf::new(BprMfConfig::default(), split.num_users(), 10, 3);
        let a = model.score_full_catalog(&[0], &[&[1, 2]]);
        let b = model.score_full_catalog(&[0], &[&[9, 10]]);
        assert_eq!(a, b, "history must be ignored");
        let c = model.score_full_catalog(&[1], &[&[1, 2]]);
        assert_ne!(a, c, "different users must differ");
    }
}
