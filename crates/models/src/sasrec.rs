//! SASRec (Kang & McAuley, 2018): self-attentive sequential recommendation.
//!
//! The strongest baseline in the paper and the user-representation model
//! inside CL4SRec. Training follows Eq. 15: at every valid position the
//! encoder output is scored against the true next item and one sampled
//! negative with binary cross-entropy.

use rayon::prelude::*;
use seqrec_data::batch::{
    epoch_batches, next_item_batch, pad_left, NegativeSampler, NextItemBatch,
};
use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_tensor::init::{rng, TensorRng};
use seqrec_tensor::nn::{HasParams, Param, Step};
use seqrec_tensor::optim::{Adam, AdamConfig, LrSchedule};
use seqrec_tensor::{linalg, Tensor, Var};

use crate::common::{EarlyStopper, EpochClock, FitSession, TrainOptions, TrainReport};
use crate::dp;
use crate::encoder::{EncoderConfig, TransformerEncoder};

/// The SASRec model: a [`TransformerEncoder`] plus the Eq. 15 training
/// objective and a full-catalog scoring head (shared item embeddings).
pub struct SasRec {
    encoder: TransformerEncoder,
}

impl SasRec {
    /// Builds an untrained model.
    pub fn new(cfg: EncoderConfig, seed: u64) -> Self {
        let mut r = rng(seed);
        SasRec { encoder: TransformerEncoder::new(cfg, &mut r) }
    }

    /// Wraps an existing encoder (CL4SRec hands over its pre-trained
    /// encoder for fine-tuning).
    pub fn from_encoder(encoder: TransformerEncoder) -> Self {
        SasRec { encoder }
    }

    /// The underlying encoder.
    pub fn encoder(&self) -> &TransformerEncoder {
        &self.encoder
    }

    /// Mutable access to the encoder.
    pub fn encoder_mut(&mut self) -> &mut TransformerEncoder {
        &mut self.encoder
    }

    /// Consumes the model, returning the encoder.
    pub fn into_encoder(self) -> TransformerEncoder {
        self.encoder
    }

    /// Warm-starts the item embeddings from an external `[num_items+1, d]`
    /// (or `[num_items+2, d]`) table — the SASRec_BPR baseline initialises
    /// from BPR-MF factors this way. Rows beyond the provided table keep
    /// their current values.
    ///
    /// # Panics
    /// Panics if the widths differ.
    pub fn warm_start_items(&mut self, table: &Tensor) {
        let d = self.encoder.config().d;
        assert_eq!(table.shape().rank(), 2, "warm-start table must be 2-D");
        assert_eq!(table.shape().dim(1), d, "embedding width mismatch");
        let rows = table.shape().dim(0).min(self.encoder.config().vocab());
        let dst = self.encoder.item_embedding_mut().table_mut().value_mut();
        dst.data_mut()[..rows * d].copy_from_slice(&table.data()[..rows * d]);
    }

    /// The Eq. 15 loss for one batch (exposed so CL4SRec can combine it with
    /// the contrastive objective during fine-tuning).
    pub fn next_item_loss(
        &self,
        step: &mut Step,
        batch: &NextItemBatch,
        training: bool,
        r: &mut TensorRng,
    ) -> Var {
        let hidden = self.encoder.encode(step, &batch.inputs, &batch.valid, training, r);
        let d = self.encoder.config().d;
        let flat = step.tape.reshape(hidden, [batch.b * batch.t, d]);
        let pos_e = self.encoder.item_embedding().forward(step, &batch.pos, &[batch.b * batch.t]);
        let neg_e = self.encoder.item_embedding().forward(step, &batch.neg, &[batch.b * batch.t]);
        let pos_prod = step.tape.mul(flat, pos_e);
        let pos_logit = step.tape.sum_rows(pos_prod);
        let neg_prod = step.tape.mul(flat, neg_e);
        let neg_logit = step.tape.sum_rows(neg_prod);
        let losses = step.tape.bce_pairwise(pos_logit, neg_logit);
        let mask = Tensor::from_vec([batch.b * batch.t], batch.target_mask.clone());
        step.tape.masked_mean(losses, &mask)
    }

    /// One data-parallel training step: shard the batch into contiguous
    /// row ranges, run forward/backward per shard (each shard owns its own
    /// tape, so shards can execute on different pool workers), and
    /// tree-all-reduce the shard gradients. Returns the full-batch loss
    /// and the reduced gradients in `visit` order, ready for
    /// [`Adam::step_with_stats_reduced`].
    ///
    /// Each shard's loss is scaled inside its tape by the shard's share of
    /// the batch's valid targets, so the summed shard gradients equal the
    /// serial full-batch masked-mean gradient up to tree-sum
    /// re-association. Shard `s` draws dropout from `rng(step_seed ^ s)`;
    /// the step therefore depends only on `(step_seed, shards)`, never on
    /// worker scheduling.
    fn dp_shard_step(
        &self,
        batch: &NextItemBatch,
        shards: usize,
        step_seed: u64,
    ) -> (f32, Vec<Option<Tensor>>) {
        let ranges = dp::shard_ranges(batch.b, shards);
        let total_valid = batch.target_mask.iter().sum::<f32>().max(1.0);
        let per: Vec<(f32, f32, Vec<Option<Tensor>>)> = (0..ranges.len())
            .into_par_iter()
            .map(|s| {
                let (lo, hi) = ranges[s];
                let sub = dp::slice_batch(batch, lo, hi);
                let w = sub.target_mask.iter().sum::<f32>() / total_valid;
                let mut shard_rng = rng(step_seed ^ s as u64);
                let mut step = Step::new();
                let loss = {
                    let _fwd = seqrec_obs::span!("forward");
                    self.next_item_loss(&mut step, &sub, true, &mut shard_rng)
                };
                let scaled = step.tape.scale(loss, w);
                let grads = step.tape.backward(scaled);
                let gvec = dp::grads_in_visit_order(&self.encoder, &step, &grads);
                (step.tape.value(loss).item(), w, gvec)
            })
            .collect();
        dp::combine_shard_results(per)
    }

    /// Trains with Adam + linear LR decay and early stopping on a
    /// validation HR@10 probe.
    pub fn fit(&mut self, split: &Split, opts: &TrainOptions) -> TrainReport {
        let users: Vec<usize> = opts
            .train_users
            .clone()
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| split.train_sequence(u).len() >= 2)
            .collect();
        assert!(!users.is_empty(), "no trainable users (all sequences too short)");

        let steps_per_epoch = users.len().div_ceil(opts.batch_size);
        let mut adam = Adam::new(AdamConfig {
            lr: opts.lr,
            schedule: LrSchedule::LinearDecay {
                total_steps: (opts.epochs * steps_per_epoch) as u64,
                min_factor: 0.1,
            },
            ..AdamConfig::default()
        });
        let mut sampler = NegativeSampler::new(split.num_items(), opts.seed ^ 0x5a5a);
        let mut r = rng(opts.seed);
        let t = self.encoder.config().max_len;

        let mut report = TrainReport::default();
        let mut stopper = EarlyStopper::new(opts.patience);
        let config_json = serde_json::to_string(self.encoder.config()).expect("config serializes");
        let mut session = FitSession::start("SASRec", &config_json, opts);
        let mut aborted = false;
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                let _batch_span = seqrec_obs::span!("batch");
                let seqs: Vec<&[u32]> = chunk.iter().map(|&u| split.train_sequence(u)).collect();
                let batch = next_item_batch(&seqs, t, &mut sampler);
                let shards = dp::effective_shards(opts.data_parallel, batch.b);
                let (batch_loss, stats) = if shards > 1 {
                    let step_seed = rand::RngCore::next_u64(&mut r);
                    let (loss, reduced) = self.dp_shard_step(&batch, shards, step_seed);
                    (loss, adam.step_with_stats_reduced(&mut self.encoder, &reduced))
                } else {
                    let mut step = Step::new();
                    let loss = {
                        let _fwd = seqrec_obs::span!("forward");
                        self.next_item_loss(&mut step, &batch, true, &mut r)
                    };
                    let grads = step.tape.backward(loss);
                    let stats = adam.step_with_stats(&mut self.encoder, &step, &grads);
                    (step.tape.value(loss).item(), stats)
                };
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;

            let hr10 = (!aborted && opts.should_probe(epoch)).then(|| {
                clock.probe(|| {
                    crate::common::probe_valid_hr10(self, split, opts.valid_probe_users, opts.seed)
                })
            });
            if opts.verbosity >= 1 {
                match hr10 {
                    Some(h) => seqrec_obs::info!(
                        "[sasrec] epoch {epoch}: loss {mean_loss:.4}, valid HR@10 {h:.4}"
                    ),
                    None => seqrec_obs::info!("[sasrec] epoch {epoch}: loss {mean_loss:.4}"),
                }
            }
            let mut log = clock.finish(epoch, mean_loss, hr10);
            session.stamp_epoch(&mut log);
            report.epochs.push(log);
            if aborted {
                break;
            }
            if hr10.is_some_and(|h| stopper.update(h)) {
                report.early_stopped = true;
                break;
            }
        }
        report.best_valid_hr10 = stopper.best();
        report.finish_timing();
        session.finish(&mut report);
        report
    }

    /// Encodes histories into `[B, d]` user representations without
    /// recording gradients (dropout off).
    fn encode_batch(&self, inputs: &[&[u32]]) -> Vec<f32> {
        let t = self.encoder.config().max_len;
        let mut ids = Vec::with_capacity(inputs.len() * t);
        let mut valid = Vec::with_capacity(inputs.len());
        for s in inputs {
            let (i, v) = pad_left(s, t);
            ids.extend(i);
            valid.push(v);
        }
        let mut step = Step::new();
        let mut r = rng(0); // eval mode: dropout disabled, rng unused
        let repr = self.encoder.user_repr(&mut step, &ids, &valid, false, &mut r);
        step.tape.value(repr).data().to_vec()
    }
}

impl HasParams for SasRec {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.encoder.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_mut(f);
    }
}

impl SequenceScorer for SasRec {
    fn num_items(&self) -> usize {
        self.encoder.config().num_items
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        self.score_states(&self.encode_users(users, inputs))
    }
}

impl StatefulScorer for SasRec {
    fn state_dim(&self) -> usize {
        self.encoder.config().d
    }
    fn encode_users(&self, _users: &[usize], inputs: &[&[u32]]) -> Vec<f32> {
        self.encode_batch(inputs)
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        let d = self.encoder.config().d;
        let b = states.len() / d;
        let repr = Tensor::from_vec([b, d], states.to_vec());
        let table = self.encoder.item_embedding().table().value();
        let scores = linalg::matmul_nt(&repr, table); // [B, vocab]
        let keep = self.encoder.config().num_items + 1;
        scores
            .data()
            .chunks(self.encoder.config().vocab())
            .map(|row| row[..keep].to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;
    use seqrec_eval::{evaluate, EvalOptions, EvalTarget};

    fn tiny_cfg(num_items: usize) -> EncoderConfig {
        EncoderConfig { num_items, d: 16, heads: 2, layers: 1, max_len: 8, dropout: 0.1 }
    }

    /// A dataset with a deterministic successor pattern the model must learn:
    /// item i is always followed by i+1 (cyclic over a small alphabet).
    fn cyclic_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let seqs = (0..users)
            .map(|u| (0..len).map(|i| ((u + i) % num_items) as u32 + 1).collect::<Vec<u32>>())
            .collect();
        Dataset::new(seqs, num_items)
    }

    #[test]
    fn loss_decreases_during_training() {
        let ds = cyclic_dataset(10, 60, 8);
        let split = Split::leave_one_out(&ds);
        let mut model = SasRec::new(tiny_cfg(10), 1);
        let opts = TrainOptions {
            epochs: 5,
            batch_size: 32,
            patience: None,
            valid_probe_users: 20,
            ..Default::default()
        };
        let report = model.fit(&split, &opts);
        assert_eq!(report.epochs_run(), 5);
        let first = report.epochs.first().unwrap().loss;
        let last = report.epochs.last().unwrap().loss;
        assert!(last < first, "loss went {first} -> {last}");
    }

    #[test]
    fn learns_the_successor_rule() {
        let ds = cyclic_dataset(10, 80, 8);
        let split = Split::leave_one_out(&ds);
        let mut model = SasRec::new(tiny_cfg(10), 2);
        let opts = TrainOptions {
            epochs: 15,
            batch_size: 32,
            patience: None,
            valid_probe_users: 10,
            ..Default::default()
        };
        model.fit(&split, &opts);
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        assert!(m.hr_at(5) > 0.5, "HR@5 = {} on a deterministic pattern", m.hr_at(5));
    }

    #[test]
    fn scoring_is_deterministic() {
        let model = SasRec::new(tiny_cfg(10), 3);
        let inputs: Vec<&[u32]> = vec![&[1, 2, 3]];
        let a = model.score_full_catalog(&[0], &inputs);
        let b = model.score_full_catalog(&[0], &inputs);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), 11); // ids 0..=10
    }

    #[test]
    fn warm_start_copies_rows() {
        let mut model = SasRec::new(tiny_cfg(5), 4);
        let table = Tensor::full([6, 16], 0.5); // pad + 5 items
        model.warm_start_items(&table);
        let got = model.encoder().item_embedding().table().value();
        assert_eq!(got.data()[..6 * 16], vec![0.5; 6 * 16][..]);
        // the [mask] row (row 6) keeps its original init
        assert!(got.data()[6 * 16..].iter().any(|&v| v != 0.5));
    }

    #[test]
    fn early_stopping_halts_training() {
        let ds = cyclic_dataset(6, 30, 6);
        let split = Split::leave_one_out(&ds);
        let mut model = SasRec::new(tiny_cfg(6), 5);
        let opts = TrainOptions {
            epochs: 50,
            batch_size: 16,
            patience: Some(1),
            valid_probe_users: 30,
            ..Default::default()
        };
        let report = model.fit(&split, &opts);
        assert!(report.epochs_run() < 50, "never stopped early");
    }
}
