//! NCF / NeuMF (He et al., 2017): neural collaborative filtering.
//!
//! Non-sequential baseline fusing a GMF branch (elementwise product of user
//! and item factors) with an MLP branch over the concatenated embeddings.

use std::collections::HashSet;

use seqrec_data::batch::{epoch_batches, NegativeSampler};
use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_tensor::init::{self, rng};
use seqrec_tensor::nn::{HasParams, Linear, Param, Step};
use seqrec_tensor::optim::{Adam, AdamConfig};
use seqrec_tensor::Var;
use serde::{Deserialize, Serialize};

use crate::common::{EarlyStopper, EpochClock, FitSession, TrainOptions, TrainReport};

/// NCF hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NcfConfig {
    /// Embedding dimension of each branch.
    pub d: usize,
}

impl Default for NcfConfig {
    fn default() -> Self {
        NcfConfig { d: 64 }
    }
}

/// The NeuMF model: `logit(u,i) = w · [p_u ∘ q_i ; MLP([p'_u ; q'_i])]`.
pub struct Ncf {
    cfg: NcfConfig,
    user_gmf: Param,
    item_gmf: Param,
    user_mlp: Param,
    item_mlp: Param,
    mlp1: Linear,
    mlp2: Linear,
    out: Linear,
    num_users: usize,
    num_items: usize,
}

impl Ncf {
    /// Builds an untrained model.
    pub fn new(cfg: NcfConfig, num_users: usize, num_items: usize, seed: u64) -> Self {
        let mut r = rng(seed);
        let d = cfg.d;
        Ncf {
            user_gmf: Param::new("ncf.user_gmf", init::normal([num_users, d], 0.05, &mut r)),
            item_gmf: Param::new("ncf.item_gmf", init::normal([num_items + 1, d], 0.05, &mut r)),
            user_mlp: Param::new("ncf.user_mlp", init::normal([num_users, d], 0.05, &mut r)),
            item_mlp: Param::new("ncf.item_mlp", init::normal([num_items + 1, d], 0.05, &mut r)),
            mlp1: Linear::new("ncf.mlp1", 2 * d, d, &mut r),
            mlp2: Linear::new("ncf.mlp2", d, d / 2, &mut r),
            out: Linear::new("ncf.out", d + d / 2, 1, &mut r),
            cfg,
            num_users,
            num_items,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NcfConfig {
        &self.cfg
    }

    /// Number of users the embedding tables cover.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Logits for `(user, item)` pairs (both id slices the same length).
    fn forward(&self, step: &mut Step, u_ids: &[u32], i_ids: &[u32]) -> Var {
        assert_eq!(u_ids.len(), i_ids.len());
        let n = u_ids.len();
        let ug_t = self.user_gmf.var(step);
        let ig_t = self.item_gmf.var(step);
        let um_t = self.user_mlp.var(step);
        let im_t = self.item_mlp.var(step);
        let ug = step.tape.embedding(ug_t, u_ids, &[n]);
        let ig = step.tape.embedding(ig_t, i_ids, &[n]);
        let um = step.tape.embedding(um_t, u_ids, &[n]);
        let im = step.tape.embedding(im_t, i_ids, &[n]);

        let gmf = step.tape.mul(ug, ig);
        let mlp_in = step.tape.concat_last(um, im);
        let h1 = self.mlp1.forward(step, mlp_in);
        let a1 = step.tape.relu(h1);
        let h2 = self.mlp2.forward(step, a1);
        let a2 = step.tape.relu(h2);
        let feat = step.tape.concat_last(gmf, a2);
        let logit = self.out.forward(step, feat);
        step.tape.reshape(logit, [n])
    }

    /// Mean pairwise BCE loss over a batch of `(user, positive, negative)`
    /// triples: `-log σ(s(u,i⁺)) - log(1 - σ(s(u,i⁻)))`.
    ///
    /// Public so the conformance suite can gradcheck and golden-pin the
    /// exact training objective `fit` optimises.
    pub fn bce_loss(
        &self,
        step: &mut Step,
        u_ids: &[u32],
        pos_ids: &[u32],
        neg_ids: &[u32],
    ) -> Var {
        assert!(!u_ids.is_empty() && pos_ids.len() == u_ids.len());
        let pos_logit = self.forward(step, u_ids, pos_ids);
        let neg_logit = self.forward(step, u_ids, neg_ids);
        let losses = step.tape.bce_pairwise(pos_logit, neg_logit);
        step.tape.mean_all(losses)
    }

    /// Trains with pointwise BCE on `(u, i⁺)` vs one sampled `(u, i⁻)`.
    pub fn fit(&mut self, split: &Split, opts: &TrainOptions) -> TrainReport {
        assert_eq!(split.num_users(), self.num_users, "split/model user mismatch");
        let users: Vec<usize> = opts
            .train_users
            .clone()
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| !split.train_sequence(u).is_empty())
            .collect();
        let mut adam = Adam::new(AdamConfig { lr: opts.lr, ..AdamConfig::default() });
        let mut sampler = NegativeSampler::new(split.num_items(), opts.seed ^ 0xce);

        let mut report = TrainReport::default();
        let mut stopper = EarlyStopper::new(opts.patience);
        let config_json = serde_json::to_string(&self.cfg).expect("config serializes");
        let mut session = FitSession::start("NCF", &config_json, opts);
        let mut aborted = false;
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                let _batch_span = seqrec_obs::span!("batch");
                // every training interaction is a positive (one epoch covers
                // the whole interaction matrix, as in the NCF paper).
                let mut u_ids = Vec::new();
                let mut pos_ids = Vec::new();
                let mut neg_ids = Vec::new();
                for &u in &chunk {
                    let seq = split.train_sequence(u);
                    let exclude: HashSet<u32> = seq.iter().copied().collect();
                    for &item in seq {
                        u_ids.push(u as u32);
                        pos_ids.push(item);
                        neg_ids.push(sampler.sample(&exclude));
                    }
                }
                let mut step = Step::new();
                let loss = {
                    let _fwd = seqrec_obs::span!("forward");
                    self.bce_loss(&mut step, &u_ids, &pos_ids, &neg_ids)
                };
                let grads = step.tape.backward(loss);
                let stats = adam.step_with_stats(self, &step, &grads);
                let batch_loss = step.tape.value(loss).item();
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            let hr10 = (!aborted && opts.should_probe(epoch)).then(|| {
                clock.probe(|| {
                    crate::common::probe_valid_hr10(self, split, opts.valid_probe_users, opts.seed)
                })
            });
            if opts.verbosity >= 1 {
                match hr10 {
                    Some(h) => seqrec_obs::info!(
                        "[ncf] epoch {epoch}: loss {mean_loss:.4}, valid HR@10 {h:.4}"
                    ),
                    None => seqrec_obs::info!("[ncf] epoch {epoch}: loss {mean_loss:.4}"),
                }
            }
            let mut log = clock.finish(epoch, mean_loss, hr10);
            session.stamp_epoch(&mut log);
            report.epochs.push(log);
            if aborted {
                break;
            }
            if hr10.is_some_and(|h| stopper.update(h)) {
                report.early_stopped = true;
                break;
            }
        }
        report.best_valid_hr10 = stopper.best();
        report.finish_timing();
        session.finish(&mut report);
        report
    }
}

impl HasParams for Ncf {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.user_gmf);
        f(&self.item_gmf);
        f(&self.user_mlp);
        f(&self.item_mlp);
        self.mlp1.visit(f);
        self.mlp2.visit(f);
        self.out.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.user_gmf);
        f(&mut self.item_gmf);
        f(&mut self.user_mlp);
        f(&mut self.item_mlp);
        self.mlp1.visit_mut(f);
        self.mlp2.visit_mut(f);
        self.out.visit_mut(f);
    }
}

impl SequenceScorer for Ncf {
    fn num_items(&self) -> usize {
        self.num_items
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        self.score_states(&self.encode_users(users, inputs))
    }
}

impl StatefulScorer for Ncf {
    /// NCF's MLP couples the user and item towers, so scoring does not
    /// factorise into a state × catalog product; the cacheable state is the
    /// fully scored row itself (`score_states` just re-chunks it).
    fn state_dim(&self) -> usize {
        self.num_items + 1
    }
    fn encode_users(&self, users: &[usize], _inputs: &[&[u32]]) -> Vec<f32> {
        // One forward of (V+1) rows per user; MLP activations dominate, so
        // keep the per-call batch at a single user to bound memory.
        let all_items: Vec<u32> = (0..=self.num_items as u32).collect();
        let mut states = Vec::with_capacity(users.len() * all_items.len());
        for &u in users {
            assert!(u < self.num_users, "unknown user {u}");
            let u_ids = vec![u as u32; all_items.len()];
            let mut step = Step::new();
            let logits = self.forward(&mut step, &u_ids, &all_items);
            states.extend_from_slice(step.tape.value(logits).data());
        }
        states
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        states.chunks(self.num_items + 1).map(<[f32]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;
    use seqrec_eval::{evaluate, EvalOptions, EvalTarget};

    fn two_communities() -> Dataset {
        let mut seqs = Vec::new();
        for u in 0..30 {
            let base: Vec<u32> =
                if u % 2 == 0 { vec![1, 2, 3, 4, 5] } else { vec![6, 7, 8, 9, 10] };
            let rot = u / 2 % 5;
            seqs.push(base[rot..].iter().chain(&base[..rot]).copied().collect());
        }
        Dataset::new(seqs, 10)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let model = Ncf::new(NcfConfig { d: 8 }, 5, 10, 1);
        let s = model.score_full_catalog(&[0, 4], &[&[1], &[2]]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].len(), 11);
        assert_eq!(s, model.score_full_catalog(&[0, 4], &[&[1], &[2]]));
    }

    #[test]
    fn learns_community_structure() {
        let ds = two_communities();
        let split = Split::leave_one_out(&ds);
        let mut model = Ncf::new(NcfConfig { d: 8 }, split.num_users(), 10, 2);
        let opts = TrainOptions {
            epochs: 60,
            batch_size: 16,
            lr: 5e-3,
            patience: None,
            valid_probe_users: 30,
            ..Default::default()
        };
        let report = model.fit(&split, &opts);
        assert!(report.epochs.last().unwrap().loss < report.epochs[0].loss);
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        assert!(m.hr_at(5) > 0.5, "HR@5 = {}", m.hr_at(5));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let model = Ncf::new(NcfConfig { d: 8 }, 3, 5, 3);
        let mut step = Step::new();
        let logits = model.forward(&mut step, &[0, 1], &[2, 3]);
        let sq = step.tape.mul(logits, logits);
        let loss = step.tape.sum_all(sq);
        let grads = step.tape.backward(loss);
        let mut missing = Vec::new();
        model.visit(&mut |p| {
            if p.grad(&step, &grads).is_none() {
                missing.push(p.name().to_string());
            }
        });
        assert!(missing.is_empty(), "no gradient for {missing:?}");
    }
}
