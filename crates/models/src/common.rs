//! Shared training plumbing: options, per-epoch logs with wall-clock
//! timing, early stopping, and the [`EpochClock`] that meters every fit
//! loop (batches, sequences, per-phase seconds) through `seqrec_obs`.

use std::time::Instant;

use seqrec_data::Split;
use seqrec_eval::{evaluate, EvalOptions, EvalTarget, SequenceScorer};
use serde::{Deserialize, Serialize};

/// Options shared by every trainable model in this crate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Maximum training epochs.
    pub epochs: usize,
    /// Mini-batch size (paper: 256).
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-3 with Adam).
    pub lr: f32,
    /// Seed controlling shuffling, negative sampling and dropout.
    pub seed: u64,
    /// Early stopping: stop after this many epochs without validation
    /// improvement (None disables; the paper trains both stages with early
    /// stopping).
    pub patience: Option<usize>,
    /// How many users to sample for the per-epoch validation probe (full
    /// validation every epoch would dominate runtime); the probe still ranks
    /// the entire catalog.
    pub valid_probe_users: usize,
    /// Probe validation every N epochs (1 = every epoch, the paper setup;
    /// 0 disables probing entirely — early stopping then never triggers).
    pub probe_every: usize,
    /// Restrict training to these user indices (RQ4 data-sparsity sweeps);
    /// None trains on everyone.
    pub train_users: Option<Vec<usize>>,
    /// Console verbosity: 0 = silent (tests), 1 = one line per epoch,
    /// 2 = chatty diagnostics. Lines go through `seqrec_obs` so they are
    /// also captured by any installed sink.
    pub verbosity: u8,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 30,
            batch_size: 256,
            lr: 1e-3,
            seed: 42,
            patience: Some(3),
            valid_probe_users: 500,
            probe_every: 1,
            train_users: None,
            verbosity: 0,
        }
    }
}

impl TrainOptions {
    /// True when epoch `epoch` (0-based) should run the validation probe.
    pub fn should_probe(&self, epoch: usize) -> bool {
        self.probe_every > 0 && (epoch + 1).is_multiple_of(self.probe_every)
    }
}

/// One epoch of training telemetry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpochLog {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Validation HR@10 on the probe subset (None when not probed).
    pub valid_hr10: Option<f64>,
    /// Wall-clock seconds spent training this epoch (excluding the probe).
    pub train_secs: f64,
    /// Wall-clock seconds spent in the validation probe (0 when skipped).
    pub probe_secs: f64,
    /// Training sequences consumed this epoch.
    pub sequences: u64,
    /// Training throughput: `sequences / train_secs`.
    pub seqs_per_sec: f64,
}

/// Result of a training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch telemetry.
    pub epochs: Vec<EpochLog>,
    /// Best validation HR@10 observed.
    pub best_valid_hr10: f64,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
    /// Total wall-clock training seconds across epochs (probe excluded).
    pub total_train_secs: f64,
    /// Total wall-clock seconds spent in validation probes.
    pub total_probe_secs: f64,
    /// Sequence throughput over the whole run (`Σ sequences / Σ train_secs`).
    pub mean_seqs_per_sec: f64,
}

impl TrainReport {
    /// Number of epochs actually run.
    pub fn epochs_run(&self) -> usize {
        self.epochs.len()
    }

    /// Final training loss (NaN when no epoch ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.loss)
    }

    /// Fills the aggregate timing fields from the per-epoch logs. Every fit
    /// loop calls this once before returning its report.
    pub fn finish_timing(&mut self) {
        self.total_train_secs = self.epochs.iter().map(|e| e.train_secs).sum();
        self.total_probe_secs = self.epochs.iter().map(|e| e.probe_secs).sum();
        let seqs: u64 = self.epochs.iter().map(|e| e.sequences).sum();
        self.mean_seqs_per_sec =
            if self.total_train_secs > 0.0 { seqs as f64 / self.total_train_secs } else { 0.0 };
    }
}

/// Per-epoch stopwatch shared by every fit loop: meters batches and
/// sequences into the process-global `seqrec_obs` counters, times the
/// validation probe separately from training, and assembles the
/// [`EpochLog`].
pub struct EpochClock {
    epoch_start: Instant,
    batch_start: Instant,
    sequences: u64,
    probe_secs: f64,
}

impl Default for EpochClock {
    fn default() -> Self {
        Self::start()
    }
}

impl EpochClock {
    /// Starts timing an epoch.
    pub fn start() -> Self {
        let now = Instant::now();
        EpochClock { epoch_start: now, batch_start: now, sequences: 0, probe_secs: 0.0 }
    }

    /// Records one finished batch of `n_seqs` training sequences.
    pub fn batch_done(&mut self, n_seqs: usize) {
        self.sequences += n_seqs as u64;
        seqrec_obs::metrics::TRAIN_BATCHES.incr();
        seqrec_obs::metrics::TRAIN_SEQUENCES.add(n_seqs as u64);
        let now = Instant::now();
        let us = now.duration_since(self.batch_start).as_micros() as u64;
        seqrec_obs::metrics::TRAIN_BATCH_US.record(us);
        self.batch_start = now;
    }

    /// Runs `f` inside a `"probe"` span, timing it separately so probe cost
    /// never pollutes training throughput.
    pub fn probe<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let _span = seqrec_obs::span!("probe");
        let t0 = Instant::now();
        let out = f();
        self.probe_secs += t0.elapsed().as_secs_f64();
        out
    }

    /// Closes the epoch and produces its log entry.
    pub fn finish(self, epoch: usize, loss: f32, valid_hr10: Option<f64>) -> EpochLog {
        let train_secs = (self.epoch_start.elapsed().as_secs_f64() - self.probe_secs).max(0.0);
        EpochLog {
            epoch,
            loss,
            valid_hr10,
            train_secs,
            probe_secs: self.probe_secs,
            sequences: self.sequences,
            seqs_per_sec: if train_secs > 0.0 { self.sequences as f64 / train_secs } else { 0.0 },
        }
    }
}

/// Tracks validation progress and decides when to stop.
pub struct EarlyStopper {
    patience: Option<usize>,
    best: f64,
    since_best: usize,
}

impl EarlyStopper {
    /// Creates a stopper; `patience = None` never stops.
    pub fn new(patience: Option<usize>) -> Self {
        EarlyStopper { patience, best: f64::NEG_INFINITY, since_best: 0 }
    }

    /// Best value seen so far.
    pub fn best(&self) -> f64 {
        if self.best.is_finite() {
            self.best
        } else {
            0.0
        }
    }

    /// Feeds a new validation value; returns true when training should stop.
    pub fn update(&mut self, value: f64) -> bool {
        if value > self.best {
            self.best = value;
            self.since_best = 0;
            false
        } else {
            self.since_best += 1;
            self.patience.is_some_and(|p| self.since_best >= p)
        }
    }
}

/// Probes validation HR@10 on a deterministic subset of users.
pub fn probe_valid_hr10(
    model: &impl SequenceScorer,
    split: &Split,
    probe_users: usize,
    seed: u64,
) -> f64 {
    let users = if probe_users >= split.num_users() {
        None
    } else {
        // reuse the split's deterministic subsetting
        let frac = probe_users as f64 / split.num_users() as f64;
        Some(split.train_user_subset(frac.clamp(1e-9, 1.0), seed))
    };
    let opts = EvalOptions { users, ks: vec![10], ..Default::default() };
    evaluate(model, split, EvalTarget::Valid, &opts).hr_at(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_stopper_respects_patience() {
        let mut s = EarlyStopper::new(Some(2));
        assert!(!s.update(0.5));
        assert!(!s.update(0.4)); // 1 bad epoch
        assert!(s.update(0.3)); // 2 bad epochs → stop
        assert_eq!(s.best(), 0.5);
    }

    #[test]
    fn improvement_resets_the_counter() {
        let mut s = EarlyStopper::new(Some(2));
        assert!(!s.update(0.1));
        assert!(!s.update(0.05));
        assert!(!s.update(0.2)); // new best
        assert!(!s.update(0.15));
        assert!(s.update(0.1));
    }

    #[test]
    fn none_patience_never_stops() {
        let mut s = EarlyStopper::new(None);
        for _ in 0..100 {
            assert!(!s.update(0.0));
        }
    }

    #[test]
    fn defaults_match_the_paper() {
        let o = TrainOptions::default();
        assert_eq!(o.batch_size, 256);
        assert!((o.lr - 1e-3).abs() < 1e-9);
    }
}
