//! Shared training plumbing: options, per-epoch logs, early stopping.

use seqrec_data::Split;
use seqrec_eval::{evaluate, EvalOptions, EvalTarget, SequenceScorer};
use serde::{Deserialize, Serialize};

/// Options shared by every trainable model in this crate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Maximum training epochs.
    pub epochs: usize,
    /// Mini-batch size (paper: 256).
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-3 with Adam).
    pub lr: f32,
    /// Seed controlling shuffling, negative sampling and dropout.
    pub seed: u64,
    /// Early stopping: stop after this many epochs without validation
    /// improvement (None disables; the paper trains both stages with early
    /// stopping).
    pub patience: Option<usize>,
    /// How many users to sample for the per-epoch validation probe (full
    /// validation every epoch would dominate runtime); the probe still ranks
    /// the entire catalog.
    pub valid_probe_users: usize,
    /// Restrict training to these user indices (RQ4 data-sparsity sweeps);
    /// None trains on everyone.
    pub train_users: Option<Vec<usize>>,
    /// Print one line per epoch.
    pub verbose: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 30,
            batch_size: 256,
            lr: 1e-3,
            seed: 42,
            patience: Some(3),
            valid_probe_users: 500,
            train_users: None,
            verbose: false,
        }
    }
}

/// One epoch of training telemetry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpochLog {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Validation HR@10 on the probe subset (None when not probed).
    pub valid_hr10: Option<f64>,
}

/// Result of a training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch telemetry.
    pub epochs: Vec<EpochLog>,
    /// Best validation HR@10 observed.
    pub best_valid_hr10: f64,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
}

impl TrainReport {
    /// Number of epochs actually run.
    pub fn epochs_run(&self) -> usize {
        self.epochs.len()
    }

    /// Final training loss (NaN when no epoch ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.loss)
    }
}

/// Tracks validation progress and decides when to stop.
pub struct EarlyStopper {
    patience: Option<usize>,
    best: f64,
    since_best: usize,
}

impl EarlyStopper {
    /// Creates a stopper; `patience = None` never stops.
    pub fn new(patience: Option<usize>) -> Self {
        EarlyStopper { patience, best: f64::NEG_INFINITY, since_best: 0 }
    }

    /// Best value seen so far.
    pub fn best(&self) -> f64 {
        if self.best.is_finite() {
            self.best
        } else {
            0.0
        }
    }

    /// Feeds a new validation value; returns true when training should stop.
    pub fn update(&mut self, value: f64) -> bool {
        if value > self.best {
            self.best = value;
            self.since_best = 0;
            false
        } else {
            self.since_best += 1;
            self.patience.is_some_and(|p| self.since_best >= p)
        }
    }
}

/// Probes validation HR@10 on a deterministic subset of users.
pub fn probe_valid_hr10(
    model: &impl SequenceScorer,
    split: &Split,
    probe_users: usize,
    seed: u64,
) -> f64 {
    let users = if probe_users >= split.num_users() {
        None
    } else {
        // reuse the split's deterministic subsetting
        let frac = probe_users as f64 / split.num_users() as f64;
        Some(split.train_user_subset(frac.clamp(1e-9, 1.0), seed))
    };
    let opts = EvalOptions { users, ks: vec![10], ..Default::default() };
    evaluate(model, split, EvalTarget::Valid, &opts).hr_at(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_stopper_respects_patience() {
        let mut s = EarlyStopper::new(Some(2));
        assert!(!s.update(0.5));
        assert!(!s.update(0.4)); // 1 bad epoch
        assert!(s.update(0.3)); // 2 bad epochs → stop
        assert_eq!(s.best(), 0.5);
    }

    #[test]
    fn improvement_resets_the_counter() {
        let mut s = EarlyStopper::new(Some(2));
        assert!(!s.update(0.1));
        assert!(!s.update(0.05));
        assert!(!s.update(0.2)); // new best
        assert!(!s.update(0.15));
        assert!(s.update(0.1));
    }

    #[test]
    fn none_patience_never_stops() {
        let mut s = EarlyStopper::new(None);
        for _ in 0..100 {
            assert!(!s.update(0.0));
        }
    }

    #[test]
    fn defaults_match_the_paper() {
        let o = TrainOptions::default();
        assert_eq!(o.batch_size, 256);
        assert!((o.lr - 1e-3).abs() < 1e-9);
    }
}
