//! Shared training plumbing: options, per-epoch logs with wall-clock
//! timing, early stopping, and the [`EpochClock`] that meters every fit
//! loop (batches, sequences, per-phase seconds) through `seqrec_obs`.

use std::time::Instant;

use seqrec_data::Split;
use seqrec_eval::{evaluate, EvalOptions, EvalTarget, SequenceScorer};
use seqrec_obs::ledger::RunLedger;
use seqrec_tensor::dynamics::OptimStepStats;
use serde::{Deserialize, Serialize};

/// What a fit loop does when the loss, a gradient, an update or a
/// parameter goes NaN/Inf.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AnomalyPolicy {
    /// Record the anomaly (report + metrics + ledger) and keep training.
    #[default]
    Warn,
    /// Stop training at the offending step; the report and run ledger
    /// still complete, naming the step and parameter group.
    Abort,
}

impl AnomalyPolicy {
    /// Parses the CLI spelling (`warn` / `abort`).
    ///
    /// # Errors
    /// Returns a message listing the accepted spellings.
    pub fn parse(s: &str) -> Result<AnomalyPolicy, String> {
        match s {
            "warn" => Ok(AnomalyPolicy::Warn),
            "abort" => Ok(AnomalyPolicy::Abort),
            other => Err(format!("unknown anomaly policy `{other}` (expected warn|abort)")),
        }
    }
}

impl serde::Serialize for AnomalyPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                AnomalyPolicy::Warn => "warn",
                AnomalyPolicy::Abort => "abort",
            }
            .to_string(),
        )
    }
}

impl serde::Deserialize for AnomalyPolicy {}

/// Record of the first non-finite observation in a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnomalyReport {
    /// Optimiser step counter (1-based) at which the anomaly appeared.
    pub step: u64,
    /// 0-based epoch of the offending step.
    pub epoch: usize,
    /// What went non-finite first: `loss`, `gradient`, `update` or
    /// `parameter`.
    pub kind: String,
    /// Offending parameter group (empty for a loss-only anomaly).
    pub group: String,
    /// Batch loss at the offending step.
    pub loss: f32,
    /// Global gradient norm at the offending step.
    pub grad_norm: f64,
    /// Global update:parameter ratio at the offending step.
    pub update_ratio: f64,
}

/// Options shared by every trainable model in this crate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Maximum training epochs.
    pub epochs: usize,
    /// Mini-batch size (paper: 256).
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-3 with Adam).
    pub lr: f32,
    /// Seed controlling shuffling, negative sampling and dropout.
    pub seed: u64,
    /// Early stopping: stop after this many epochs without validation
    /// improvement (None disables; the paper trains both stages with early
    /// stopping).
    pub patience: Option<usize>,
    /// How many users to sample for the per-epoch validation probe (full
    /// validation every epoch would dominate runtime); the probe still ranks
    /// the entire catalog.
    pub valid_probe_users: usize,
    /// Probe validation every N epochs (1 = every epoch, the paper setup;
    /// 0 disables probing entirely — early stopping then never triggers).
    pub probe_every: usize,
    /// Restrict training to these user indices (RQ4 data-sparsity sweeps);
    /// None trains on everyone.
    pub train_users: Option<Vec<usize>>,
    /// Console verbosity: 0 = silent (tests), 1 = one line per epoch,
    /// 2 = chatty diagnostics. Lines go through `seqrec_obs` so they are
    /// also captured by any installed sink.
    pub verbosity: u8,
    /// What to do when training dynamics go NaN/Inf (see [`AnomalyPolicy`]).
    pub on_anomaly: AnomalyPolicy,
    /// When set, the fit writes a run ledger (config.json, env.json,
    /// metrics.jsonl, dynamics.jsonl, report.json) into this directory.
    /// None (the default) writes nothing — tests and library callers stay
    /// free of filesystem side effects.
    pub run_dir: Option<String>,
    /// Data-parallel degree: split each mini-batch into this many row
    /// shards, run forward/backward per shard (on the thread pool when one
    /// is available), and tree-all-reduce the gradients before a single
    /// optimiser step (see [`crate::dp`]). 1 (the default) keeps the
    /// classic serial step, bit-identical to previous releases.
    pub data_parallel: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 30,
            batch_size: 256,
            lr: 1e-3,
            seed: 42,
            patience: Some(3),
            valid_probe_users: 500,
            probe_every: 1,
            train_users: None,
            verbosity: 0,
            on_anomaly: AnomalyPolicy::Warn,
            run_dir: None,
            data_parallel: 1,
        }
    }
}

impl TrainOptions {
    /// True when epoch `epoch` (0-based) should run the validation probe.
    pub fn should_probe(&self, epoch: usize) -> bool {
        self.probe_every > 0 && (epoch + 1).is_multiple_of(self.probe_every)
    }
}

/// One epoch of training telemetry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpochLog {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Validation HR@10 on the probe subset (None when not probed).
    pub valid_hr10: Option<f64>,
    /// Wall-clock seconds spent training this epoch (excluding the probe).
    pub train_secs: f64,
    /// Wall-clock seconds spent in the validation probe (0 when skipped).
    pub probe_secs: f64,
    /// Training sequences consumed this epoch.
    pub sequences: u64,
    /// Training throughput: `sequences / train_secs`.
    pub seqs_per_sec: f64,
    /// Mean global gradient L2 norm over the epoch's optimiser steps
    /// (0 when dynamics were not recorded).
    pub grad_norm: f64,
    /// Largest global gradient L2 norm seen this epoch (Inf if any step
    /// went non-finite).
    pub max_grad_norm: f64,
    /// Mean global update:parameter ratio over the epoch's steps.
    pub update_ratio: f64,
}

/// Result of a training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch telemetry.
    pub epochs: Vec<EpochLog>,
    /// Best validation HR@10 observed.
    pub best_valid_hr10: f64,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
    /// Total wall-clock training seconds across epochs (probe excluded).
    pub total_train_secs: f64,
    /// Total wall-clock seconds spent in validation probes.
    pub total_probe_secs: f64,
    /// Sequence throughput over the whole run (`Σ sequences / Σ train_secs`).
    pub mean_seqs_per_sec: f64,
    /// First non-finite observation, if any (the run aborted here under
    /// [`AnomalyPolicy::Abort`]).
    pub anomaly: Option<AnomalyReport>,
    /// How many optimiser steps observed a non-finite quantity.
    pub anomalous_steps: u64,
    /// High-water mark of the `tensor.live_bytes` gauge over the process
    /// so far at session close, in MiB (0 until [`FitSession::finish`]
    /// stamps it).
    pub peak_tensor_mib: f64,
}

impl TrainReport {
    /// Number of epochs actually run.
    pub fn epochs_run(&self) -> usize {
        self.epochs.len()
    }

    /// Final training loss (NaN when no epoch ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.loss)
    }

    /// Fills the aggregate timing fields from the per-epoch logs. Every fit
    /// loop calls this once before returning its report.
    pub fn finish_timing(&mut self) {
        self.total_train_secs = self.epochs.iter().map(|e| e.train_secs).sum();
        self.total_probe_secs = self.epochs.iter().map(|e| e.probe_secs).sum();
        let seqs: u64 = self.epochs.iter().map(|e| e.sequences).sum();
        self.mean_seqs_per_sec =
            if self.total_train_secs > 0.0 { seqs as f64 / self.total_train_secs } else { 0.0 };
    }
}

/// Per-epoch stopwatch shared by every fit loop: meters batches and
/// sequences into the process-global `seqrec_obs` counters, times the
/// validation probe separately from training, and assembles the
/// [`EpochLog`].
pub struct EpochClock {
    epoch_start: Instant,
    batch_start: Instant,
    sequences: u64,
    probe_secs: f64,
}

impl Default for EpochClock {
    fn default() -> Self {
        Self::start()
    }
}

impl EpochClock {
    /// Starts timing an epoch.
    pub fn start() -> Self {
        let now = Instant::now();
        EpochClock { epoch_start: now, batch_start: now, sequences: 0, probe_secs: 0.0 }
    }

    /// Records one finished batch of `n_seqs` training sequences.
    pub fn batch_done(&mut self, n_seqs: usize) {
        self.sequences += n_seqs as u64;
        seqrec_obs::metrics::TRAIN_BATCHES.incr();
        seqrec_obs::metrics::TRAIN_SEQUENCES.add(n_seqs as u64);
        let now = Instant::now();
        let us = now.duration_since(self.batch_start).as_micros() as u64;
        seqrec_obs::metrics::TRAIN_BATCH_US.record(us);
        self.batch_start = now;
    }

    /// Runs `f` inside a `"probe"` span, timing it separately so probe cost
    /// never pollutes training throughput.
    pub fn probe<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let _span = seqrec_obs::span!("probe");
        let t0 = Instant::now();
        let out = f();
        self.probe_secs += t0.elapsed().as_secs_f64();
        out
    }

    /// Closes the epoch and produces its log entry.
    pub fn finish(self, epoch: usize, loss: f32, valid_hr10: Option<f64>) -> EpochLog {
        let train_secs = (self.epoch_start.elapsed().as_secs_f64() - self.probe_secs).max(0.0);
        EpochLog {
            epoch,
            loss,
            valid_hr10,
            train_secs,
            probe_secs: self.probe_secs,
            sequences: self.sequences,
            seqs_per_sec: if train_secs > 0.0 { self.sequences as f64 / train_secs } else { 0.0 },
            grad_norm: 0.0,
            max_grad_norm: 0.0,
            update_ratio: 0.0,
        }
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

/// Per-run training-dynamics recorder shared by every fit loop: feeds the
/// optimiser-step statistics into the `seqrec_obs` metric registry, watches
/// for NaN/Inf (loss, gradients, updates, parameters) under the configured
/// [`AnomalyPolicy`], and — when [`TrainOptions::run_dir`] is set — writes
/// the run ledger (config/env/metrics/dynamics/report files).
///
/// Usage inside a fit loop:
///
/// ```text
/// let mut session = FitSession::start("SASRec", &config_json, &opts);
/// ...
///   let stats = adam.step_with_stats(&mut model, &step, &grads);
///   if session.observe_step(epoch, loss, &stats) { break 'training; }
/// ...
///   let mut log = clock.finish(epoch, mean_loss, hr10);
///   session.stamp_epoch(&mut log);
/// ...
/// session.finish(&mut report);
/// ```
pub struct FitSession {
    policy: AnomalyPolicy,
    verbosity: u8,
    ledger: Option<RunLedger>,
    anomaly: Option<AnomalyReport>,
    anomalous_steps: u64,
    epoch_steps: u64,
    grad_norm_sum: f64,
    grad_norm_max: f64,
    ratio_sum: f64,
}

impl FitSession {
    /// Opens the session. `config_json` is the model's own hyperparameter
    /// struct serialised to JSON; it lands in the ledger's `config.json`
    /// under `"config"`, next to the full `TrainOptions` under
    /// `"options"`.
    ///
    /// # Panics
    /// Panics when [`TrainOptions::run_dir`] is set but the ledger
    /// directory cannot be created — a run that silently loses its
    /// provenance record is worse than a crash.
    pub fn start(model: &str, config_json: &str, opts: &TrainOptions) -> FitSession {
        FitSession::with_policy(
            model,
            config_json,
            &serde_json::to_string(opts).expect("train options serialize"),
            opts.on_anomaly,
            opts.run_dir.as_deref(),
            opts.verbosity,
        )
    }

    /// Fully-explicit constructor for fit loops whose options struct is not
    /// [`TrainOptions`] (CL4SRec pre-training): `options_json` is whatever
    /// options struct the caller trains with, serialised to JSON.
    ///
    /// # Panics
    /// Panics when `run_dir` is set but the ledger cannot be created.
    pub fn with_policy(
        model: &str,
        config_json: &str,
        options_json: &str,
        policy: AnomalyPolicy,
        run_dir: Option<&str>,
        verbosity: u8,
    ) -> FitSession {
        let ledger = run_dir.map(|dir| {
            let l = RunLedger::create(dir)
                .unwrap_or_else(|e| panic!("cannot create run ledger at {dir}: {e}"));
            let mut cfg = String::with_capacity(256 + config_json.len());
            cfg.push_str("{\"model\":");
            seqrec_obs::json::write_str(&mut cfg, model);
            cfg.push_str(",\"config\":");
            cfg.push_str(config_json);
            cfg.push_str(",\"options\":");
            cfg.push_str(options_json);
            cfg.push('}');
            l.write_config(&cfg);
            l.write_env_snapshot();
            l
        });
        FitSession {
            policy,
            verbosity,
            ledger,
            anomaly: None,
            anomalous_steps: 0,
            epoch_steps: 0,
            grad_norm_sum: 0.0,
            grad_norm_max: 0.0,
            ratio_sum: 0.0,
        }
    }

    /// Feeds one optimiser step (its batch loss and the stats collected by
    /// `Adam::step_with_stats`). Returns `true` when the fit loop must
    /// abort: a non-finite quantity appeared and the policy is
    /// [`AnomalyPolicy::Abort`].
    pub fn observe_step(&mut self, epoch: usize, loss: f32, stats: &OptimStepStats) -> bool {
        use seqrec_obs::metrics;
        metrics::OPTIM_STEPS.incr();
        let grad_norm = stats.grad_norm();
        let ratio = stats.update_ratio();
        metrics::record_scaled(&metrics::GRAD_NORM_MILLI, grad_norm, 1e3);
        metrics::record_scaled(&metrics::UPDATE_RATIO_MICRO, ratio, 1e6);

        self.epoch_steps += 1;
        if grad_norm.is_finite() {
            self.grad_norm_sum += grad_norm;
            if grad_norm > self.grad_norm_max {
                self.grad_norm_max = grad_norm;
            }
        } else {
            self.grad_norm_max = f64::INFINITY;
        }
        if ratio.is_finite() {
            self.ratio_sum += ratio;
        }

        if let Some(l) = &self.ledger {
            l.append_dynamics(&format!(
                "{{\"step\":{},\"epoch\":{epoch},\"loss\":{},\"grad_norm\":{},\
                 \"update_ratio\":{},\"lr\":{},\"clip_scale\":{}}}",
                stats.step,
                json_num(f64::from(loss)),
                json_num(grad_norm),
                json_num(ratio),
                json_num(f64::from(stats.lr)),
                json_num(f64::from(stats.clip_scale)),
            ));
        }

        let first = if loss.is_finite() {
            stats.first_nonfinite().map(|(g, k)| (g.to_string(), k))
        } else {
            Some((String::new(), "loss"))
        };
        if let Some((group, kind)) = first {
            self.anomalous_steps += 1;
            metrics::TRAIN_ANOMALIES.incr();
            if self.anomaly.is_none() {
                if self.verbosity >= 1 {
                    seqrec_obs::info!(
                        "training anomaly at step {} (epoch {epoch}): non-finite {kind}{}{} \
                         (loss {loss}, grad_norm {grad_norm:.3e}); policy {:?}",
                        stats.step,
                        if group.is_empty() { "" } else { " in group " },
                        group,
                        self.policy,
                    );
                }
                self.anomaly = Some(AnomalyReport {
                    step: stats.step,
                    epoch,
                    kind: kind.to_string(),
                    group,
                    loss,
                    grad_norm,
                    update_ratio: ratio,
                });
            }
            if self.policy == AnomalyPolicy::Abort {
                return true;
            }
        }
        false
    }

    /// Fills the epoch log's dynamics fields from the steps observed since
    /// the previous call, resets the accumulators, and appends the log to
    /// the ledger's `metrics.jsonl`.
    pub fn stamp_epoch(&mut self, log: &mut EpochLog) {
        if self.epoch_steps > 0 {
            let n = self.epoch_steps as f64;
            log.grad_norm = self.grad_norm_sum / n;
            log.max_grad_norm = self.grad_norm_max;
            log.update_ratio = self.ratio_sum / n;
        }
        self.epoch_steps = 0;
        self.grad_norm_sum = 0.0;
        self.grad_norm_max = 0.0;
        self.ratio_sum = 0.0;
        if let Some(l) = &self.ledger {
            l.append_metrics(&serde_json::to_string(log).expect("epoch log serializes"));
        }
    }

    /// The first recorded anomaly, if any.
    pub fn anomaly(&self) -> Option<&AnomalyReport> {
        self.anomaly.as_ref()
    }

    /// How many optimiser steps observed a non-finite quantity so far.
    pub fn anomalous_steps(&self) -> u64 {
        self.anomalous_steps
    }

    /// Closes a session whose run reports through a type other than
    /// [`TrainReport`] (CL4SRec pre-training): copy the anomaly state out
    /// via [`FitSession::anomaly`]/[`FitSession::anomalous_steps`] first,
    /// then hand the serialised report here for the ledger.
    pub fn finish_json(self, report_json: &str) {
        if let Some(l) = &self.ledger {
            l.write_report(report_json);
        }
    }

    /// Closes the session: moves the anomaly record into the report,
    /// stamps the tensor-memory high-water mark, and writes the ledger's
    /// final `report.json`. Call after `report.finish_timing()` so the
    /// totals land in the ledger too.
    pub fn finish(self, report: &mut TrainReport) {
        report.anomaly = self.anomaly;
        report.anomalous_steps = self.anomalous_steps;
        report.peak_tensor_mib =
            seqrec_obs::metrics::TENSOR_LIVE_BYTES.peak() as f64 / (1024.0 * 1024.0);
        if let Some(l) = &self.ledger {
            l.write_report(&serde_json::to_string(report).expect("train report serializes"));
        }
    }
}

/// Tracks validation progress and decides when to stop.
pub struct EarlyStopper {
    patience: Option<usize>,
    best: f64,
    since_best: usize,
}

impl EarlyStopper {
    /// Creates a stopper; `patience = None` never stops.
    pub fn new(patience: Option<usize>) -> Self {
        EarlyStopper { patience, best: f64::NEG_INFINITY, since_best: 0 }
    }

    /// Best value seen so far.
    pub fn best(&self) -> f64 {
        if self.best.is_finite() {
            self.best
        } else {
            0.0
        }
    }

    /// Feeds a new validation value; returns true when training should stop.
    pub fn update(&mut self, value: f64) -> bool {
        if value > self.best {
            self.best = value;
            self.since_best = 0;
            false
        } else {
            self.since_best += 1;
            self.patience.is_some_and(|p| self.since_best >= p)
        }
    }
}

/// Probes validation HR@10 on a deterministic subset of users.
pub fn probe_valid_hr10(
    model: &impl SequenceScorer,
    split: &Split,
    probe_users: usize,
    seed: u64,
) -> f64 {
    let users = if probe_users >= split.num_users() {
        None
    } else {
        // reuse the split's deterministic subsetting
        let frac = probe_users as f64 / split.num_users() as f64;
        Some(split.train_user_subset(frac.clamp(1e-9, 1.0), seed))
    };
    let opts = EvalOptions { users, ks: vec![10], ..Default::default() };
    evaluate(model, split, EvalTarget::Valid, &opts).hr_at(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_stopper_respects_patience() {
        let mut s = EarlyStopper::new(Some(2));
        assert!(!s.update(0.5));
        assert!(!s.update(0.4)); // 1 bad epoch
        assert!(s.update(0.3)); // 2 bad epochs → stop
        assert_eq!(s.best(), 0.5);
    }

    #[test]
    fn improvement_resets_the_counter() {
        let mut s = EarlyStopper::new(Some(2));
        assert!(!s.update(0.1));
        assert!(!s.update(0.05));
        assert!(!s.update(0.2)); // new best
        assert!(!s.update(0.15));
        assert!(s.update(0.1));
    }

    #[test]
    fn none_patience_never_stops() {
        let mut s = EarlyStopper::new(None);
        for _ in 0..100 {
            assert!(!s.update(0.0));
        }
    }

    #[test]
    fn defaults_match_the_paper() {
        let o = TrainOptions::default();
        assert_eq!(o.batch_size, 256);
        assert!((o.lr - 1e-3).abs() < 1e-9);
    }
}
