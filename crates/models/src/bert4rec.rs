//! BERT4Rec (Sun et al., CIKM 2019): bidirectional Transformer trained with
//! a cloze objective.
//!
//! Cited as [41] and included in the ICDE camera-ready comparison. Reuses
//! this workspace's [`TransformerEncoder`] in bidirectional mode: random
//! positions are replaced with the `[mask]` token and the model predicts the
//! original item at each masked position with a full-softmax cross-entropy
//! against the (shared) item-embedding table. At inference a `[mask]` is
//! appended after the user's history and its representation scores the
//! catalog.

use rand::Rng;
use seqrec_data::batch::{epoch_batches, pad_left};
use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_tensor::init::{rng, TensorRng};
use seqrec_tensor::nn::{HasParams, Param, Step};
use seqrec_tensor::optim::{Adam, AdamConfig};
use seqrec_tensor::{linalg, Tensor, Var};
use serde::{Deserialize, Serialize};

use crate::common::{EarlyStopper, EpochClock, FitSession, TrainOptions, TrainReport};
use crate::encoder::{EncoderConfig, TransformerEncoder};

/// BERT4Rec hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bert4RecConfig {
    /// The shared Transformer encoder (used bidirectionally).
    pub encoder: EncoderConfig,
    /// Cloze masking probability ρ (BERT4Rec sweeps 0.2–0.6; 0.3 here).
    pub mask_prob: f64,
}

impl Bert4RecConfig {
    /// Width-64 configuration matching the other scaled experiments.
    pub fn small(num_items: usize) -> Self {
        Bert4RecConfig { encoder: EncoderConfig::small(num_items), mask_prob: 0.3 }
    }
}

/// The BERT4Rec model.
pub struct Bert4Rec {
    encoder: TransformerEncoder,
    cfg: Bert4RecConfig,
}

impl Bert4Rec {
    /// Builds an untrained model.
    pub fn new(cfg: Bert4RecConfig, seed: u64) -> Self {
        let mut r = rng(seed);
        Bert4Rec { encoder: TransformerEncoder::new(cfg.encoder.clone(), &mut r), cfg }
    }

    /// The `[mask]` token id.
    pub fn mask_token(&self) -> u32 {
        self.cfg.encoder.mask_token()
    }

    /// The hyper-parameters this model was built with.
    pub fn config(&self) -> &Bert4RecConfig {
        &self.cfg
    }

    /// Cloze loss over one batch of raw training sequences: mask a random
    /// subset of positions (at least one per sequence) and predict the
    /// original items.
    ///
    /// Public so the conformance suite can gradcheck and golden-pin the
    /// exact training objective `fit` optimises.
    pub fn cloze_loss(
        &self,
        step: &mut Step,
        seqs: &[&[u32]],
        training: bool,
        r: &mut TensorRng,
    ) -> Var {
        let t = self.cfg.encoder.max_len;
        let b = seqs.len();
        let mut ids = Vec::with_capacity(b * t);
        let mut valid = Vec::with_capacity(b);
        let mut positions: Vec<(usize, usize)> = Vec::new();
        let mut targets: Vec<u32> = Vec::new();
        for (bi, seq) in seqs.iter().enumerate() {
            let (mut row, v) = pad_left(seq, t);
            let real: Vec<usize> = (0..t).filter(|&i| v[i]).collect();
            assert!(!real.is_empty(), "cannot cloze-train an empty sequence");
            let mut masked_any = false;
            for &i in &real {
                if r.gen::<f64>() < self.cfg.mask_prob {
                    positions.push((bi, i));
                    targets.push(row[i]);
                    row[i] = self.mask_token();
                    masked_any = true;
                }
            }
            if !masked_any {
                // guarantee at least one prediction per sequence (mask the
                // most recent item, which is also the inference setting)
                let i = *real.last().expect("non-empty");
                positions.push((bi, i));
                targets.push(row[i]);
                row[i] = self.mask_token();
            }
            ids.extend(row);
            valid.push(v);
        }
        let hidden = self.encoder.encode_bidirectional(step, &ids, &valid, training, r);
        let masked_repr = step.tape.gather_positions(hidden, &positions);
        let table = self.encoder.item_embedding().full_table(step);
        let logits = step.tape.matmul_nt(masked_repr, table);
        let losses = step.tape.softmax_cross_entropy(logits, &targets);
        step.tape.mean_all(losses)
    }

    /// Trains with Adam on the cloze objective, early-stopping on the usual
    /// validation HR@10 probe.
    pub fn fit(&mut self, split: &Split, opts: &TrainOptions) -> TrainReport {
        let users: Vec<usize> = opts
            .train_users
            .clone()
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| !split.train_sequence(u).is_empty())
            .collect();
        assert!(!users.is_empty(), "no trainable users");
        let mut adam = Adam::new(AdamConfig { lr: opts.lr, ..AdamConfig::default() });
        let mut r = rng(opts.seed);

        let mut report = TrainReport::default();
        let mut stopper = EarlyStopper::new(opts.patience);
        let config_json = serde_json::to_string(&self.cfg).expect("config serializes");
        let mut session = FitSession::start("BERT4Rec", &config_json, opts);
        let mut aborted = false;
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                let _batch_span = seqrec_obs::span!("batch");
                let seqs: Vec<&[u32]> = chunk.iter().map(|&u| split.train_sequence(u)).collect();
                let mut step = Step::new();
                let loss = {
                    let _fwd = seqrec_obs::span!("forward");
                    self.cloze_loss(&mut step, &seqs, true, &mut r)
                };
                let grads = step.tape.backward(loss);
                let stats = adam.step_with_stats(&mut self.encoder, &step, &grads);
                let batch_loss = step.tape.value(loss).item();
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            let hr10 = (!aborted && opts.should_probe(epoch)).then(|| {
                clock.probe(|| {
                    crate::common::probe_valid_hr10(self, split, opts.valid_probe_users, opts.seed)
                })
            });
            if opts.verbosity >= 1 {
                match hr10 {
                    Some(h) => seqrec_obs::info!(
                        "[bert4rec] epoch {epoch}: loss {mean_loss:.4}, valid HR@10 {h:.4}"
                    ),
                    None => seqrec_obs::info!("[bert4rec] epoch {epoch}: loss {mean_loss:.4}"),
                }
            }
            let mut log = clock.finish(epoch, mean_loss, hr10);
            session.stamp_epoch(&mut log);
            report.epochs.push(log);
            if aborted {
                break;
            }
            if hr10.is_some_and(|h| stopper.update(h)) {
                report.early_stopped = true;
                break;
            }
        }
        report.best_valid_hr10 = stopper.best();
        report.finish_timing();
        session.finish(&mut report);
        report
    }
}

impl HasParams for Bert4Rec {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.encoder.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_mut(f);
    }
}

impl SequenceScorer for Bert4Rec {
    fn num_items(&self) -> usize {
        self.cfg.encoder.num_items
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        self.score_states(&self.encode_users(users, inputs))
    }
}

impl StatefulScorer for Bert4Rec {
    /// State row = the bidirectional encoder's output at the appended
    /// prediction `[mask]` position, `[d]`.
    fn state_dim(&self) -> usize {
        self.cfg.encoder.d
    }
    fn encode_users(&self, _users: &[usize], inputs: &[&[u32]]) -> Vec<f32> {
        let t = self.cfg.encoder.max_len;
        let mut ids = Vec::with_capacity(inputs.len() * t);
        let mut valid = Vec::with_capacity(inputs.len());
        for s in inputs {
            // append the prediction [mask] after the history
            let mut with_mask: Vec<u32> = Vec::with_capacity(s.len() + 1);
            with_mask.extend_from_slice(&s[s.len().saturating_sub(t - 1)..]);
            with_mask.push(self.mask_token());
            let (i, v) = pad_left(&with_mask, t);
            ids.extend(i);
            valid.push(v);
        }
        let mut step = Step::new();
        let mut r = rng(0);
        let hidden = self.encoder.encode_bidirectional(&mut step, &ids, &valid, false, &mut r);
        let repr = step.tape.last_time(hidden);
        step.tape.value(repr).data().to_vec()
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        let d = self.cfg.encoder.d;
        let repr = Tensor::from_vec([states.len() / d, d], states.to_vec());
        let scores = linalg::matmul_nt(&repr, self.encoder.item_embedding().table().value());
        let keep = self.cfg.encoder.num_items + 1;
        scores.data().chunks(self.cfg.encoder.vocab()).map(|row| row[..keep].to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;
    use seqrec_eval::{evaluate, EvalOptions, EvalTarget};

    fn tiny_cfg(num_items: usize) -> Bert4RecConfig {
        Bert4RecConfig {
            encoder: EncoderConfig {
                num_items,
                d: 16,
                heads: 2,
                layers: 1,
                max_len: 8,
                dropout: 0.1,
            },
            mask_prob: 0.3,
        }
    }

    fn cyclic_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let seqs = (0..users)
            .map(|u| (0..len).map(|i| ((u + i) % num_items) as u32 + 1).collect::<Vec<u32>>())
            .collect();
        Dataset::new(seqs, num_items)
    }

    #[test]
    fn cloze_training_learns_the_pattern() {
        let ds = cyclic_dataset(8, 80, 8);
        let split = Split::leave_one_out(&ds);
        let mut model = Bert4Rec::new(tiny_cfg(8), 1);
        let opts = TrainOptions {
            epochs: 20,
            batch_size: 32,
            patience: None,
            valid_probe_users: 10,
            ..Default::default()
        };
        let report = model.fit(&split, &opts);
        assert!(report.epochs.last().unwrap().loss < report.epochs[0].loss);
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        assert!(m.hr_at(5) > 0.4, "HR@5 = {} on a deterministic pattern", m.hr_at(5));
    }

    #[test]
    fn scoring_is_deterministic_and_shaped() {
        let model = Bert4Rec::new(tiny_cfg(10), 2);
        let inputs: Vec<&[u32]> = vec![&[1, 2, 3], &[4]];
        let a = model.score_full_catalog(&[0, 1], &inputs);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].len(), 11);
        assert_eq!(a, model.score_full_catalog(&[0, 1], &inputs));
    }

    #[test]
    fn bidirectional_context_is_used() {
        // In a bidirectional encoder, changing an EARLY item must change the
        // representation at the final (mask) position.
        let model = Bert4Rec::new(tiny_cfg(10), 3);
        let a = model.score_full_catalog(&[0], &[&[1, 2, 3, 4]]);
        let b = model.score_full_catalog(&[0], &[&[5, 2, 3, 4]]);
        assert_ne!(a, b, "early context must influence the mask position");
    }

    #[test]
    fn long_histories_are_truncated_to_fit_the_mask() {
        let model = Bert4Rec::new(tiny_cfg(10), 4);
        let long: Vec<u32> = (0..30).map(|i| (i % 10) as u32 + 1).collect();
        let s = model.score_full_catalog(&[0], &[&long]);
        assert!(s[0].iter().all(|v| v.is_finite()));
    }
}
