//! The Transformer user-representation encoder (§3.4 of the paper).
//!
//! This is the `f(·)` shared by SASRec, SASRec_BPR and CL4SRec: an item +
//! learnable-position embedding layer, `L` stacked blocks of multi-head
//! causal self-attention and a position-wise feed-forward network, each
//! wrapped in `LayerNorm(x + Dropout(sublayer(x)))` (Eq. 12/14). Sequences
//! are **left-padded**, so the output at position `T-1` is the user
//! representation (Eq. 13).
//!
//! The vocabulary has two special ids: `0` is padding and `num_items + 1` is
//! the `[mask]` token used by CL4SRec's item-mask augmentation (Eq. 5).

use seqrec_tensor::init::TensorRng;
use seqrec_tensor::nn::{Embedding, HasParams, LayerNorm, Linear, Param, Step};
use seqrec_tensor::ops::{causal_padding_mask, padding_mask};
use seqrec_tensor::{init, Var};
use serde::{Deserialize, Serialize};

/// Transformer encoder hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Catalog size (item ids `1..=num_items`).
    pub num_items: usize,
    /// Model width `d` (the paper uses 128; the scaled experiments 64).
    pub d: usize,
    /// Attention heads (paper: 2).
    pub heads: usize,
    /// Stacked blocks `L` (paper: 2).
    pub layers: usize,
    /// Maximum sequence length `T` (paper: 50).
    pub max_len: usize,
    /// Dropout rate on embeddings, attention weights and sublayers.
    pub dropout: f32,
}

impl EncoderConfig {
    /// The paper's configuration (§4.1.4): `d=128, h=2, L=2, T=50`.
    pub fn paper(num_items: usize) -> Self {
        EncoderConfig { num_items, d: 128, heads: 2, layers: 2, max_len: 50, dropout: 0.2 }
    }

    /// A narrower configuration for CPU-scale experiments; same depth and
    /// length so the architecture is unchanged.
    pub fn small(num_items: usize) -> Self {
        EncoderConfig { num_items, d: 64, heads: 2, layers: 2, max_len: 50, dropout: 0.2 }
    }

    /// The `[mask]` token id (Eq. 5).
    pub fn mask_token(&self) -> u32 {
        (self.num_items + 1) as u32
    }

    /// Vocabulary rows: items + pad + `[mask]`.
    pub fn vocab(&self) -> usize {
        self.num_items + 2
    }

    fn validate(&self) {
        assert!(self.num_items > 0, "empty catalog");
        assert!(self.d > 0 && self.d.is_multiple_of(self.heads), "d must divide heads");
        assert!(self.layers > 0 && self.max_len > 0);
        assert!((0.0..1.0).contains(&self.dropout));
    }
}

struct Block {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    ffn1: Linear,
    ffn2: Linear,
    ln_attn: LayerNorm,
    ln_ffn: LayerNorm,
}

impl Block {
    fn new(name: &str, d: usize, rng: &mut TensorRng) -> Self {
        Block {
            wq: Linear::new(&format!("{name}.wq"), d, d, rng),
            wk: Linear::new(&format!("{name}.wk"), d, d, rng),
            wv: Linear::new(&format!("{name}.wv"), d, d, rng),
            wo: Linear::new(&format!("{name}.wo"), d, d, rng),
            ffn1: Linear::new(&format!("{name}.ffn1"), d, d, rng),
            ffn2: Linear::new(&format!("{name}.ffn2"), d, d, rng),
            ln_attn: LayerNorm::new(&format!("{name}.ln_attn"), d),
            ln_ffn: LayerNorm::new(&format!("{name}.ln_ffn"), d),
        }
    }
}

impl HasParams for Block {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        for m in [&self.wq, &self.wk, &self.wv, &self.wo, &self.ffn1, &self.ffn2] {
            m.visit(f);
        }
        self.ln_attn.visit(f);
        self.ln_ffn.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for m in
            [&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo, &mut self.ffn1, &mut self.ffn2]
        {
            m.visit_mut(f);
        }
        self.ln_attn.visit_mut(f);
        self.ln_ffn.visit_mut(f);
    }
}

/// The stacked-Transformer user encoder.
pub struct TransformerEncoder {
    cfg: EncoderConfig,
    item_emb: Embedding,
    pos_emb: Param,
    blocks: Vec<Block>,
}

impl TransformerEncoder {
    /// Builds an encoder with the paper's truncated-normal initialisation.
    pub fn new(cfg: EncoderConfig, rng: &mut TensorRng) -> Self {
        cfg.validate();
        let item_emb = Embedding::new("enc.item", cfg.vocab(), cfg.d, rng);
        let pos_emb = Param::new("enc.pos", init::paper_default([cfg.max_len, cfg.d], rng));
        let blocks =
            (0..cfg.layers).map(|l| Block::new(&format!("enc.block{l}"), cfg.d, rng)).collect();
        TransformerEncoder { cfg, item_emb, pos_emb, blocks }
    }

    /// The configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// The item-embedding table (shared with the scoring head, and
    /// warm-startable from BPR-MF for the SASRec_BPR baseline).
    pub fn item_embedding(&self) -> &Embedding {
        &self.item_emb
    }

    /// Mutable access to the item-embedding table.
    pub fn item_embedding_mut(&mut self) -> &mut Embedding {
        &mut self.item_emb
    }

    /// Encodes a left-padded batch with **causal** attention (SASRec,
    /// CL4SRec).
    ///
    /// * `ids`: `[B*T]` item ids (0 = pad, possibly `mask_token()`).
    /// * `valid`: per-sequence validity of each position.
    ///
    /// Returns `[B, T, d]` hidden states.
    pub fn encode(
        &self,
        step: &mut Step,
        ids: &[u32],
        valid: &[Vec<bool>],
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        self.encode_inner(step, ids, valid, true, training, rng)
    }

    /// Encodes with **bidirectional** attention (padding mask only) — the
    /// BERT4Rec setting, where every position sees the whole sequence.
    pub fn encode_bidirectional(
        &self,
        step: &mut Step,
        ids: &[u32],
        valid: &[Vec<bool>],
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        self.encode_inner(step, ids, valid, false, training, rng)
    }

    fn encode_inner(
        &self,
        step: &mut Step,
        ids: &[u32],
        valid: &[Vec<bool>],
        causal: bool,
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        let (b, t, d, h) = (valid.len(), self.cfg.max_len, self.cfg.d, self.cfg.heads);
        assert_eq!(ids.len(), b * t, "ids must be [B*T] = [{b}*{t}]");
        let p = self.cfg.dropout;

        // Embedding layer (Eq. 8), with SASRec's √d scaling.
        let mut x = self.item_emb.forward(step, ids, &[b, t]);
        x = step.tape.scale(x, (d as f32).sqrt());
        let pos = self.pos_emb.var(step);
        x = step.tape.add_broadcast_batch(x, pos);
        x = step.tape.dropout(x, p, training, rng);

        // Attention mask, shared by all layers.
        let mask = if causal { causal_padding_mask(valid, t) } else { padding_mask(valid, t) };

        for block in &self.blocks {
            // Multi-head self-attention (Eq. 9-10).
            let q = block.wq.forward(step, x);
            let k = block.wk.forward(step, x);
            let v = block.wv.forward(step, x);
            let qh = step.tape.split_heads(q, h);
            let kh = step.tape.split_heads(k, h);
            let vh = step.tape.split_heads(v, h);
            let scores = step.tape.bmm_nt(qh, kh);
            let scaled = step.tape.scale(scores, 1.0 / ((d / h) as f32).sqrt());
            let masked = step.tape.add_attn_mask(scaled, &mask, h);
            let probs = step.tape.softmax(masked);
            let probs = step.tape.dropout(probs, p, training, rng);
            let ctx = step.tape.bmm(probs, vh);
            let merged = step.tape.merge_heads(ctx, h);
            let mh = block.wo.forward(step, merged);

            // Residual + dropout + LayerNorm (Eq. 12).
            let mh_dropped = step.tape.dropout(mh, p, training, rng);
            let res1 = step.tape.add(x, mh_dropped);
            let f = block.ln_attn.forward(step, res1);

            // Position-wise FFN (Eq. 11).
            let h1 = block.ffn1.forward(step, f);
            let a1 = step.tape.relu(h1);
            let a1 = step.tape.dropout(a1, p, training, rng);
            let h2 = block.ffn2.forward(step, a1);
            let h2_dropped = step.tape.dropout(h2, p, training, rng);
            let res2 = step.tape.add(f, h2_dropped);
            x = block.ln_ffn.forward(step, res2);
        }
        x
    }

    /// The user representation: the hidden state at the final (most recent)
    /// position of each sequence (Eq. 13). Returns `[B, d]`.
    pub fn user_repr(
        &self,
        step: &mut Step,
        ids: &[u32],
        valid: &[Vec<bool>],
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        let hidden = self.encode(step, ids, valid, training, rng);
        step.tape.last_time(hidden)
    }
}

impl HasParams for TransformerEncoder {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.item_emb.visit(f);
        f(&self.pos_emb);
        for b in &self.blocks {
            b.visit(f);
        }
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.item_emb.visit_mut(f);
        f(&mut self.pos_emb);
        for b in &mut self.blocks {
            b.visit_mut(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::batch::pad_left;
    use seqrec_tensor::init::rng;

    fn tiny() -> EncoderConfig {
        EncoderConfig { num_items: 20, d: 8, heads: 2, layers: 2, max_len: 6, dropout: 0.1 }
    }

    fn batch_of(seqs: &[&[u32]], t: usize) -> (Vec<u32>, Vec<Vec<bool>>) {
        let mut ids = Vec::new();
        let mut valid = Vec::new();
        for s in seqs {
            let (i, v) = pad_left(s, t);
            ids.extend(i);
            valid.push(v);
        }
        (ids, valid)
    }

    #[test]
    fn encode_shapes() {
        let mut r = rng(70);
        let enc = TransformerEncoder::new(tiny(), &mut r);
        let (ids, valid) = batch_of(&[&[1, 2, 3], &[4, 5, 6, 7, 8, 9]], 6);
        let mut step = Step::new();
        let out = enc.encode(&mut step, &ids, &valid, false, &mut r);
        assert_eq!(step.tape.value(out).shape().dims(), &[2, 6, 8]);
        let repr = step.tape.last_time(out);
        assert_eq!(step.tape.value(repr).shape().dims(), &[2, 8]);
    }

    #[test]
    fn causality_last_position_ignores_nothing_earlier_positions_ignore_future() {
        // Changing the LAST item must change the user representation;
        // changing it must NOT change hidden states at earlier positions.
        let mut r = rng(71);
        let enc = TransformerEncoder::new(tiny(), &mut r);
        let run = |last: u32| {
            let (ids, valid) = batch_of(&[&[1, 2, 3, 4, 5, last]], 6);
            let mut step = Step::new();
            let mut r2 = rng(0);
            let out = enc.encode(&mut step, &ids, &valid, false, &mut r2);
            step.tape.value(out).data().to_vec()
        };
        let a = run(6);
        let b = run(7);
        let d = 8;
        // positions 0..5 identical
        assert_eq!(a[..5 * d], b[..5 * d], "future leaked into the past");
        // final position differs
        assert_ne!(a[5 * d..], b[5 * d..]);
    }

    #[test]
    fn padding_does_not_leak_into_user_repr() {
        // The same sequence with different amounts of left padding must give
        // (nearly) the same final representation... it does NOT in general
        // because positional embeddings shift; but changing the *pad ids*
        // themselves (impossible by API) or adding more pad positions must
        // not make the repr depend on pad-row embedding values. We verify
        // pad keys are masked: two batches whose only difference is another
        // *batch member* produce identical reprs for the shared member.
        let mut r = rng(72);
        let enc = TransformerEncoder::new(tiny(), &mut r);
        let run = |other: &[u32]| {
            let (ids, valid) = batch_of(&[&[1, 2, 3], other], 6);
            let mut step = Step::new();
            let mut r2 = rng(0);
            let repr = enc.user_repr(&mut step, &ids, &valid, false, &mut r2);
            step.tape.value(repr).data()[..8].to_vec()
        };
        assert_eq!(run(&[9, 10]), run(&[11, 12, 13, 14]));
    }

    #[test]
    fn training_mode_is_stochastic_eval_mode_is_not() {
        let mut r = rng(73);
        let enc = TransformerEncoder::new(tiny(), &mut r);
        let (ids, valid) = batch_of(&[&[1, 2, 3]], 6);
        let run = |training: bool, seed: u64| {
            let mut step = Step::new();
            let mut r2 = rng(seed);
            let out = enc.user_repr(&mut step, &ids, &valid, training, &mut r2);
            step.tape.value(out).data().to_vec()
        };
        assert_eq!(run(false, 1), run(false, 2));
        assert_ne!(run(true, 1), run(true, 2));
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut r = rng(74);
        let enc = TransformerEncoder::new(tiny(), &mut r);
        let (ids, valid) = batch_of(&[&[1, 2, 3, 4]], 6);
        let mut step = Step::new();
        let repr = enc.user_repr(&mut step, &ids, &valid, true, &mut r);
        let sq = step.tape.mul(repr, repr);
        let loss = step.tape.sum_all(sq);
        let grads = step.tape.backward(loss);
        let mut missing = Vec::new();
        enc.visit(&mut |p| {
            if p.grad(&step, &grads).is_none() {
                missing.push(p.name().to_string());
            }
        });
        assert!(missing.is_empty(), "no gradient for {missing:?}");
    }

    #[test]
    fn parameter_count_matches_hand_formula() {
        let cfg = tiny();
        let mut r = rng(75);
        let enc = TransformerEncoder::new(cfg.clone(), &mut r);
        let d = cfg.d;
        let per_block = 6 * (d * d + d) + 2 * (2 * d); // 6 linears + 2 LN
        let expected = cfg.vocab() * d + cfg.max_len * d + cfg.layers * per_block;
        assert_eq!(enc.num_params(), expected);
    }

    #[test]
    fn mask_token_is_in_vocab() {
        let cfg = tiny();
        let mut r = rng(76);
        let enc = TransformerEncoder::new(cfg.clone(), &mut r);
        let (ids, valid) = batch_of(&[&[1, cfg.mask_token(), 3]], 6);
        let mut step = Step::new();
        let out = enc.user_repr(&mut step, &ids, &valid, false, &mut r);
        assert!(step.tape.value(out).is_finite());
    }
}
