//! # seqrec-models
//!
//! Every baseline from the paper's Table 2, implemented from scratch on the
//! [`seqrec_tensor`] autograd engine:
//!
//! * [`Pop`] — global popularity (non-personalised).
//! * [`BprMf`] — matrix factorisation with the BPR pairwise loss.
//! * [`Ncf`] — NeuMF: GMF + MLP fusion.
//! * [`Fpmc`] — factorised personalised Markov chains (first-order).
//! * [`Caser`] — convolutional sequence embedding (horizontal + vertical
//!   filters over the embedded "image").
//! * [`Gru4Rec`] — a from-scratch GRU unrolled over user sequences.
//! * [`Bert4Rec`] — bidirectional Transformer with a cloze objective.
//! * [`SasRec`] — the self-attentive sequential recommender (also the user
//!   encoder inside CL4SRec); `SASRec_BPR` is [`SasRec::warm_start_items`]
//!   fed with [`BprMf::item_factors`].
//!
//! All models implement [`seqrec_eval::SequenceScorer`] and share the same
//! training options, optimiser (Adam, lr 1e-3) and early-stopping protocol,
//! mirroring §4.1.4.

#![warn(missing_docs)]

pub mod bert4rec;
pub mod bprmf;
pub mod caser;
pub mod checkpoint;
pub mod common;
pub mod dp;
pub mod encoder;
pub mod fpmc;
pub mod gru4rec;
pub mod ncf;
pub mod pop;
pub mod sasrec;

pub use bert4rec::{Bert4Rec, Bert4RecConfig};
pub use bprmf::{BprMf, BprMfConfig};
pub use caser::{Caser, CaserConfig};
pub use checkpoint::{CheckpointError, Checkpointable};
pub use common::{EarlyStopper, TrainOptions, TrainReport};
pub use encoder::{EncoderConfig, TransformerEncoder};
pub use fpmc::{Fpmc, FpmcConfig};
pub use gru4rec::{Gru4Rec, Gru4RecConfig};
pub use ncf::{Ncf, NcfConfig};
pub use pop::Pop;
pub use sasrec::SasRec;
