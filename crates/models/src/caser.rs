//! Caser (Tang & Wang, WSDM 2018): Convolutional Sequence Embedding.
//!
//! Cited as [42] and part of the ICDE camera-ready comparison. The last `L`
//! items are embedded into an `L × d` "image"; horizontal filters of
//! heights `2..` capture union-level patterns (max-pooled over time) and
//! vertical filters capture weighted skip-gram-like patterns; the
//! concatenation feeds a fully-connected layer whose output, joined with a
//! user embedding, scores items through an output item matrix with bias.

use std::collections::HashSet;

use seqrec_data::batch::{epoch_batches, pad_left, NegativeSampler};
use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};
use seqrec_tensor::init::{self, rng, TensorRng};
use seqrec_tensor::nn::{Embedding, HasParams, Linear, Param, Step};
use seqrec_tensor::optim::{Adam, AdamConfig};
use seqrec_tensor::{linalg, Tensor, Var};
use serde::{Deserialize, Serialize};

use crate::common::{EarlyStopper, EpochClock, FitSession, TrainOptions, TrainReport};

/// Caser hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CaserConfig {
    /// Catalog size.
    pub num_items: usize,
    /// Embedding dimension.
    pub d: usize,
    /// Markov window `L` (number of recent items forming the "image").
    pub window: usize,
    /// Horizontal filter heights (each height gets `n_h` filters).
    pub heights: Vec<usize>,
    /// Horizontal filters per height.
    pub n_h: usize,
    /// Vertical filters.
    pub n_v: usize,
    /// Dropout on the concatenated convolutional features.
    pub dropout: f32,
}

impl CaserConfig {
    /// The configuration used by the scaled experiments (paper defaults:
    /// `L=5`, heights `2..=L`, `n_h=16`, `n_v=4`).
    pub fn small(num_items: usize) -> Self {
        CaserConfig {
            num_items,
            d: 64,
            window: 5,
            heights: vec![2, 3, 4],
            n_h: 16,
            n_v: 4,
            dropout: 0.2,
        }
    }

    fn validate(&self) {
        assert!(self.num_items > 0 && self.d > 0 && self.window > 0);
        assert!(!self.heights.is_empty(), "need at least one filter height");
        assert!(
            self.heights.iter().all(|&h| h >= 1 && h <= self.window),
            "heights must lie in 1..=window"
        );
        assert!(self.n_h > 0 && self.n_v > 0);
    }
}

/// The Caser model.
pub struct Caser {
    cfg: CaserConfig,
    item_emb: Embedding,
    user_emb: Param,
    /// One filter bank per height: `[h*d, n_h]` with bias.
    h_filters: Vec<Linear>,
    /// Vertical filter bank: `[window, n_v]` (no bias, matching the paper).
    v_filters: Param,
    fc: Linear,
    /// Output item matrix `[num_items+1, 2d]` and bias `[num_items+1]`.
    out_w: Param,
    out_b: Param,
    num_users: usize,
}

impl Caser {
    /// Builds an untrained model.
    pub fn new(cfg: CaserConfig, num_users: usize, seed: u64) -> Self {
        cfg.validate();
        let mut r = rng(seed);
        let d = cfg.d;
        let item_emb = Embedding::new("caser.item", cfg.num_items + 2, d, &mut r);
        let user_emb = Param::new("caser.user", init::normal([num_users, d], 0.05, &mut r));
        let h_filters = cfg
            .heights
            .iter()
            .map(|&h| Linear::new(&format!("caser.h{h}"), h * d, cfg.n_h, &mut r))
            .collect();
        let v_filters = Param::new("caser.v", init::xavier_uniform(cfg.window, cfg.n_v, &mut r));
        let conv_dim = cfg.heights.len() * cfg.n_h + cfg.n_v * d;
        let fc = Linear::new("caser.fc", conv_dim, d, &mut r);
        let out_w =
            Param::new("caser.out_w", init::normal([cfg.num_items + 1, 2 * d], 0.05, &mut r));
        let out_b = Param::new("caser.out_b", Tensor::zeros([cfg.num_items + 1]));
        Caser { cfg, item_emb, user_emb, h_filters, v_filters, fc, out_w, out_b, num_users }
    }

    /// The hyper-parameters this model was built with.
    pub fn config(&self) -> &CaserConfig {
        &self.cfg
    }

    /// Number of users the embedding table covers.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// The convolutional sequence feature `z` joined with the user
    /// embedding: `[B, 2d]`.
    fn joint_repr(
        &self,
        step: &mut Step,
        ids: &[u32],
        u_ids: &[u32],
        training: bool,
        r: &mut TensorRng,
    ) -> Var {
        let (b, l, d) = (u_ids.len(), self.cfg.window, self.cfg.d);
        assert_eq!(ids.len(), b * l);
        let e = self.item_emb.forward(step, ids, &[b, l]);

        // horizontal convolutions: unfold → filter bank → relu → max-pool
        let mut feats: Option<Var> = None;
        for (height, bank) in self.cfg.heights.iter().zip(&self.h_filters) {
            let windows = step.tape.unfold_windows(e, *height);
            let conv = bank.forward(step, windows); // [B, L-h+1, n_h]
            let act = step.tape.relu(conv);
            let pooled = step.tape.max_over_dim1(act); // [B, n_h]
            feats = Some(match feats {
                Some(acc) => step.tape.concat_last(acc, pooled),
                None => pooled,
            });
        }
        // vertical convolution: [B,d,L] · [L,n_v] → [B, d*n_v]
        let et = step.tape.transpose12(e);
        let vf = self.v_filters.var(step);
        let vert = step.tape.matmul_last(et, vf);
        let vert = step.tape.reshape(vert, [b, d * self.cfg.n_v]);
        let conv = step.tape.concat_last(feats.expect("≥1 height"), vert);
        let conv = step.tape.dropout(conv, self.cfg.dropout, training, r);
        let z = self.fc.forward(step, conv);
        let z = step.tape.relu(z);

        let ut = self.user_emb.var(step);
        let pu = step.tape.embedding(ut, u_ids, &[b]);
        step.tape.concat_last(z, pu) // [B, 2d]
    }

    /// Logits of specific items for each row of `repr`.
    fn logits_for(&self, step: &mut Step, repr: Var, item_ids: &[u32]) -> Var {
        let n = item_ids.len();
        let wt = self.out_w.var(step);
        let bt = self.out_b.var(step);
        let w = step.tape.embedding(wt, item_ids, &[n]);
        let bt_matrix = bt.into_matrix(step);
        let bias = step.tape.embedding(bt_matrix, item_ids, &[n]);
        let prod = step.tape.mul(repr, w);
        let dots = step.tape.sum_rows(prod);
        let bias = step.tape.reshape(bias, [n]);
        step.tape.add(dots, bias)
    }

    /// The full training objective over one batch of `(window, user,
    /// positive, negative)` examples: mean pairwise BCE of positive vs
    /// negative logits. `ids` holds `u_ids.len()` left-padded windows of
    /// length `cfg.window`, flattened.
    ///
    /// Public so the conformance suite can gradcheck and golden-pin the
    /// exact training objective `fit` optimises.
    #[allow(clippy::too_many_arguments)] // mirrors the (window, user, pos, neg) batch layout
    pub fn bce_loss(
        &self,
        step: &mut Step,
        ids: &[u32],
        u_ids: &[u32],
        pos_ids: &[u32],
        neg_ids: &[u32],
        training: bool,
        r: &mut TensorRng,
    ) -> Var {
        let repr = self.joint_repr(step, ids, u_ids, training, r);
        let pos = self.logits_for(step, repr, pos_ids);
        let neg = self.logits_for(step, repr, neg_ids);
        let losses = step.tape.bce_pairwise(pos, neg);
        step.tape.mean_all(losses)
    }

    /// Trains on sliding `(last L items → next item)` windows with one
    /// sampled negative per positive.
    pub fn fit(&mut self, split: &Split, opts: &TrainOptions) -> TrainReport {
        assert_eq!(split.num_users(), self.num_users, "split/model user mismatch");
        let users: Vec<usize> = opts
            .train_users
            .clone()
            .unwrap_or_else(|| (0..split.num_users()).collect())
            .into_iter()
            .filter(|&u| split.train_sequence(u).len() >= 2)
            .collect();
        assert!(!users.is_empty(), "no trainable users");
        let mut adam = Adam::new(AdamConfig { lr: opts.lr, ..AdamConfig::default() });
        let mut sampler = NegativeSampler::new(split.num_items(), opts.seed ^ 0xca);
        let mut r = rng(opts.seed);
        let l = self.cfg.window;

        let mut report = TrainReport::default();
        let mut stopper = EarlyStopper::new(opts.patience);
        let config_json = serde_json::to_string(&self.cfg).expect("config serializes");
        let mut session = FitSession::start("Caser", &config_json, opts);
        let mut aborted = false;
        for epoch in 0..opts.epochs {
            let _epoch_span = seqrec_obs::span!("epoch");
            let mut clock = EpochClock::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in epoch_batches(&users, opts.batch_size, opts.seed + epoch as u64) {
                let _batch_span = seqrec_obs::span!("batch");
                let mut ids = Vec::new();
                let mut u_ids = Vec::new();
                let mut pos_ids = Vec::new();
                let mut neg_ids = Vec::new();
                for &u in &chunk {
                    let seq = split.train_sequence(u);
                    let exclude: HashSet<u32> = seq.iter().copied().collect();
                    for t in 1..seq.len() {
                        let start = t.saturating_sub(l);
                        let (win, _) = pad_left(&seq[start..t], l);
                        ids.extend(win);
                        u_ids.push(u as u32);
                        pos_ids.push(seq[t]);
                        neg_ids.push(sampler.sample(&exclude));
                    }
                }
                let mut step = Step::new();
                let loss = {
                    let _fwd = seqrec_obs::span!("forward");
                    self.bce_loss(&mut step, &ids, &u_ids, &pos_ids, &neg_ids, true, &mut r)
                };
                let grads = step.tape.backward(loss);
                let stats = adam.step_with_stats(self, &step, &grads);
                let batch_loss = step.tape.value(loss).item();
                loss_sum += batch_loss as f64;
                batches += 1;
                clock.batch_done(chunk.len());
                if session.observe_step(epoch, batch_loss, &stats) {
                    aborted = true;
                    break;
                }
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            let hr10 = (!aborted && opts.should_probe(epoch)).then(|| {
                clock.probe(|| {
                    crate::common::probe_valid_hr10(self, split, opts.valid_probe_users, opts.seed)
                })
            });
            if opts.verbosity >= 1 {
                match hr10 {
                    Some(h) => seqrec_obs::info!(
                        "[caser] epoch {epoch}: loss {mean_loss:.4}, valid HR@10 {h:.4}"
                    ),
                    None => seqrec_obs::info!("[caser] epoch {epoch}: loss {mean_loss:.4}"),
                }
            }
            let mut log = clock.finish(epoch, mean_loss, hr10);
            session.stamp_epoch(&mut log);
            report.epochs.push(log);
            if aborted {
                break;
            }
            if hr10.is_some_and(|h| stopper.update(h)) {
                report.early_stopped = true;
                break;
            }
        }
        report.best_valid_hr10 = stopper.best();
        report.finish_timing();
        session.finish(&mut report);
        report
    }
}

/// Helper: view a `[n]` bias parameter as an `[n, 1]` table so the shared
/// embedding-gather op can pick per-item biases.
trait BiasAsMatrix {
    fn into_matrix(self, step: &mut Step) -> Var;
}

impl BiasAsMatrix for Var {
    fn into_matrix(self, step: &mut Step) -> Var {
        let n = step.tape.value(self).len();
        step.tape.reshape(self, [n, 1])
    }
}

impl HasParams for Caser {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.item_emb.visit(f);
        f(&self.user_emb);
        for bank in &self.h_filters {
            bank.visit(f);
        }
        f(&self.v_filters);
        self.fc.visit(f);
        f(&self.out_w);
        f(&self.out_b);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.item_emb.visit_mut(f);
        f(&mut self.user_emb);
        for bank in &mut self.h_filters {
            bank.visit_mut(f);
        }
        f(&mut self.v_filters);
        self.fc.visit_mut(f);
        f(&mut self.out_w);
        f(&mut self.out_b);
    }
}

impl SequenceScorer for Caser {
    fn num_items(&self) -> usize {
        self.cfg.num_items
    }
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        self.score_states(&self.encode_users(users, inputs))
    }
}

impl StatefulScorer for Caser {
    /// State row = the `[2d]` joint representation (conv features ++ user
    /// embedding) feeding the output layer.
    fn state_dim(&self) -> usize {
        2 * self.cfg.d
    }
    fn encode_users(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<f32> {
        assert_eq!(users.len(), inputs.len());
        let l = self.cfg.window;
        let mut ids = Vec::with_capacity(users.len() * l);
        let mut u_ids = Vec::with_capacity(users.len());
        for (&u, seq) in users.iter().zip(inputs) {
            assert!(u < self.num_users, "unknown user {u}");
            let start = seq.len().saturating_sub(l);
            let (win, _) = pad_left(&seq[start..], l);
            ids.extend(win);
            u_ids.push(u as u32);
        }
        let mut step = Step::new();
        let mut r = rng(0);
        let repr = self.joint_repr(&mut step, &ids, &u_ids, false, &mut r);
        step.tape.value(repr).data().to_vec()
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        let dim = 2 * self.cfg.d;
        let repr = Tensor::from_vec([states.len() / dim, dim], states.to_vec());
        let scores = linalg::matmul_nt(&repr, self.out_w.value());
        let v = self.cfg.num_items + 1;
        scores
            .data()
            .chunks(v)
            .map(|row| row.iter().zip(self.out_b.value().data()).map(|(&s, &b)| s + b).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;
    use seqrec_eval::{evaluate, EvalOptions, EvalTarget};

    fn tiny_cfg(num_items: usize) -> CaserConfig {
        CaserConfig {
            num_items,
            d: 16,
            window: 4,
            heights: vec![2, 3],
            n_h: 4,
            n_v: 2,
            dropout: 0.0,
        }
    }

    fn cyclic_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let seqs = (0..users)
            .map(|u| (0..len).map(|i| ((u + i) % num_items) as u32 + 1).collect::<Vec<u32>>())
            .collect();
        Dataset::new(seqs, num_items)
    }

    #[test]
    fn learns_local_patterns() {
        let ds = cyclic_dataset(8, 60, 8);
        let split = Split::leave_one_out(&ds);
        let mut model = Caser::new(tiny_cfg(8), split.num_users(), 1);
        let opts = TrainOptions {
            epochs: 20,
            batch_size: 32,
            lr: 3e-3,
            patience: None,
            valid_probe_users: 10,
            ..Default::default()
        };
        let report = model.fit(&split, &opts);
        assert!(report.epochs.last().unwrap().loss < report.epochs[0].loss);
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        assert!(m.hr_at(5) > 0.4, "HR@5 = {} on a deterministic pattern", m.hr_at(5));
    }

    #[test]
    fn scoring_contract_and_determinism() {
        let ds = cyclic_dataset(10, 10, 6);
        let split = Split::leave_one_out(&ds);
        let model = Caser::new(tiny_cfg(10), split.num_users(), 2);
        let inputs: Vec<&[u32]> = vec![&[1, 2, 3], &[4, 5]];
        let s = model.score_full_catalog(&[0, 1], &inputs);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].len(), 11);
        assert_eq!(s, model.score_full_catalog(&[0, 1], &inputs));
    }

    #[test]
    fn user_identity_matters() {
        let ds = cyclic_dataset(10, 10, 6);
        let split = Split::leave_one_out(&ds);
        let model = Caser::new(tiny_cfg(10), split.num_users(), 3);
        let a = model.score_full_catalog(&[0], &[&[1, 2, 3]]);
        let b = model.score_full_catalog(&[1], &[&[1, 2, 3]]);
        assert_ne!(a, b, "Caser joins a user embedding — users must differ");
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let model = Caser::new(tiny_cfg(6), 4, 4);
        let mut step = Step::new();
        let mut r = rng(5);
        let ids: Vec<u32> = vec![1, 2, 3, 4, 2, 3, 4, 5];
        let repr = model.joint_repr(&mut step, &ids, &[0, 1], true, &mut r);
        let pos = model.logits_for(&mut step, repr, &[5, 6]);
        let neg = model.logits_for(&mut step, repr, &[1, 2]);
        let losses = step.tape.bce_pairwise(pos, neg);
        let loss = step.tape.mean_all(losses);
        let grads = step.tape.backward(loss);
        let mut missing = Vec::new();
        model.visit(&mut |p| {
            if p.grad(&step, &grads).is_none() {
                missing.push(p.name().to_string());
            }
        });
        assert!(missing.is_empty(), "no gradient for {missing:?}");
    }
}
