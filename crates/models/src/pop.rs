//! Pop: the non-personalised most-popular baseline.

use seqrec_data::Split;
use seqrec_eval::{SequenceScorer, StatefulScorer};

/// Recommends items by global training-set popularity — identical scores
/// for every user.
pub struct Pop {
    scores: Vec<f32>,
    num_items: usize,
}

impl Pop {
    /// Counts item frequencies over the training sequences of `split`.
    pub fn fit(split: &Split) -> Self {
        let mut counts = vec![0u32; split.num_items() + 1];
        for u in 0..split.num_users() {
            for &it in split.train_sequence(u) {
                counts[it as usize] += 1;
            }
        }
        let scores = counts.iter().map(|&c| c as f32).collect();
        Pop { scores, num_items: split.num_items() }
    }

    /// The popularity score of `item`.
    pub fn popularity(&self, item: u32) -> f32 {
        self.scores[item as usize]
    }

    /// Rebuilds a model from a stored score table (checkpoint load).
    ///
    /// # Panics
    /// Panics unless `scores` has one entry per item id `0..=num_items`.
    pub fn from_scores(scores: Vec<f32>, num_items: usize) -> Self {
        assert_eq!(scores.len(), num_items + 1, "score table length");
        Pop { scores, num_items }
    }

    /// The full score table (index = item id; entry 0 is the pad id).
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }
}

impl SequenceScorer for Pop {
    fn num_items(&self) -> usize {
        self.num_items
    }
    fn score_full_catalog(&self, users: &[usize], _inputs: &[&[u32]]) -> Vec<Vec<f32>> {
        users.iter().map(|_| self.scores.clone()).collect()
    }
}

impl StatefulScorer for Pop {
    fn state_dim(&self) -> usize {
        1 // no per-user state; one placeholder scalar keeps rows countable
    }
    fn encode_users(&self, users: &[usize], _inputs: &[&[u32]]) -> Vec<f32> {
        vec![0.0; users.len()]
    }
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>> {
        states.iter().map(|_| self.scores.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;
    use seqrec_eval::{evaluate, EvalOptions, EvalTarget};

    #[test]
    fn counts_only_training_items() {
        // sequences end with [valid, test]; those two must not count
        let ds = Dataset::new(vec![vec![1, 1, 1, 2, 3], vec![1, 4, 5]], 5);
        let split = Split::leave_one_out(&ds);
        let pop = Pop::fit(&split);
        assert_eq!(pop.popularity(1), 4.0); // 3 from user 0 + 1 from user 1
        assert_eq!(pop.popularity(2), 0.0); // held out as validation
        assert_eq!(pop.popularity(3), 0.0); // held out as test
    }

    #[test]
    fn recommends_popular_items_to_everyone() {
        // 10 users training on item 1 repeatedly, test target is item 1 for
        // a user whose history hasn't covered it... build: popular item 2.
        let mut seqs = vec![vec![2u32, 2, 2, 1, 3]; 8];
        seqs.push(vec![1, 3, 2]); // this user's test target IS the popular item
        let ds = Dataset::new(seqs, 3);
        let split = Split::leave_one_out(&ds);
        let pop = Pop::fit(&split);
        let opts = EvalOptions { users: Some(vec![8]), ..Default::default() };
        let m = evaluate(&pop, &split, EvalTarget::Test, &opts);
        assert_eq!(m.hr_at(5), 1.0);
    }

    #[test]
    fn scores_are_user_independent() {
        let ds = Dataset::new(vec![vec![1, 2, 3], vec![3, 2, 1]], 3);
        let split = Split::leave_one_out(&ds);
        let pop = Pop::fit(&split);
        let s = pop.score_full_catalog(&[0, 1], &[&[1], &[3]]);
        assert_eq!(s[0], s[1]);
    }
}
