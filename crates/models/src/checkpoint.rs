//! Versioned model checkpoints: binary weights + a JSON manifest.
//!
//! ## Format (`SQRC`, version 1)
//!
//! ```text
//! bytes 0..4    magic  b"SQRC"
//! bytes 4..8    u32 LE format version
//! bytes 8..16   u64 LE manifest byte length
//! manifest      UTF-8 JSON (see below)
//! data          for each manifest param, in order: raw little-endian f32s
//! ```
//!
//! The manifest records the model kind, its hyper-parameters, and one entry
//! per parameter tensor:
//!
//! ```json
//! {"format_version": 1,
//!  "kind": "sasrec",
//!  "config": {"num_items": 10, "d": 16, ...},
//!  "params": [{"name": "enc.item", "shape": [12, 16],
//!              "fnv1a": "cbf29ce484222325"}, ...]}
//! ```
//!
//! `fnv1a` is the same order-sensitive FNV-1a over little-endian f32 bit
//! patterns the golden training fixtures use, so a checkpoint digest can be
//! compared directly against a golden record. [`load`] verifies magic,
//! version, kind, every shape against the freshly built skeleton and every
//! digest against the stored bytes — corruption, truncation and version
//! bumps are rejected with a [`CheckpointError`] diagnostic, never a panic.
//! Saving a just-loaded model reproduces the file byte for byte
//! (`tests/checkpoint_roundtrip.rs`).
//!
//! The manifest is parsed with [`seqrec_obs::json`] (the in-tree
//! `serde_json` shim is serialize-only), which is why each model supplies a
//! small hand-rolled config reader in its [`Checkpointable`] impl.

use std::path::Path;

use seqrec_eval::SequenceScorer;
use seqrec_obs::json::{self, Value};
use seqrec_tensor::nn::HasParams;

use crate::{
    Bert4Rec, Bert4RecConfig, BprMf, BprMfConfig, Caser, CaserConfig, EncoderConfig, Fpmc,
    FpmcConfig, Gru4Rec, Gru4RecConfig, Ncf, NcfConfig, Pop, SasRec,
};

/// Magic prefix of every checkpoint file.
pub const MAGIC: &[u8; 4] = b"SQRC";

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// Why a checkpoint could not be written or read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(String),
    /// Malformed, truncated or trailing bytes; bad magic; manifest errors.
    Format(String),
    /// The file uses a format version this build does not understand.
    Version {
        /// Version recorded in the file header.
        found: u32,
    },
    /// The checkpoint holds a different model kind.
    Kind {
        /// Kind the caller asked to load.
        expected: &'static str,
        /// Kind recorded in the manifest.
        found: String,
    },
    /// A stored tensor's shape disagrees with the rebuilt model skeleton.
    Shape {
        /// Parameter name.
        name: String,
        /// Shape the skeleton expects.
        expected: Vec<usize>,
        /// Shape recorded in the manifest.
        found: Vec<usize>,
    },
    /// A stored tensor's bytes do not match its recorded digest.
    Digest {
        /// Parameter name.
        name: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(e) => write!(f, "invalid checkpoint: {e}"),
            CheckpointError::Version { found } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads {FORMAT_VERSION})"
            ),
            CheckpointError::Kind { expected, found } => {
                write!(f, "checkpoint holds a {found:?} model, expected {expected:?}")
            }
            CheckpointError::Shape { name, expected, found } => write!(
                f,
                "parameter {name:?}: stored shape {found:?} does not match the model's {expected:?}"
            ),
            CheckpointError::Digest { name } => {
                write!(f, "parameter {name:?} failed its digest check (corrupt data)")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

// FNV-1a over exact f32 bits — the golden-fixture digest
// (`seqrec_conformance::digest`), reimplemented here because conformance
// depends on this crate.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Order-sensitive FNV-1a over the little-endian bit patterns of `xs`.
pub fn digest_f32s(xs: &[f32]) -> u64 {
    let mut hash = FNV_OFFSET;
    for v in xs {
        for b in v.to_bits().to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// One named tensor travelling through save/load.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorData {
    /// Parameter name (also the optimizer-state key).
    pub name: String,
    /// Row-major dimensions.
    pub dims: Vec<usize>,
    /// `dims.product()` values.
    pub values: Vec<f32>,
}

/// A model that can be checkpointed.
///
/// `snapshot` and `restore` must use the same stable order (for
/// [`HasParams`] models: visit order — use [`snapshot_params`] /
/// [`restore_params`]); `from_manifest_config` rebuilds a skeleton whose
/// weights `restore` then overwrites, so any init seed is acceptable.
pub trait Checkpointable: Sized {
    /// Stable model-kind tag stored in the manifest.
    const KIND: &'static str;
    /// Hyper-parameter JSON object for the manifest (must round-trip
    /// through `from_manifest_config` losslessly).
    fn manifest_config(&self) -> String;
    /// Every weight tensor, in stable order.
    fn snapshot(&self) -> Vec<TensorData>;
    /// Builds an untrained skeleton from a parsed manifest config.
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError>;
    /// Overwrites the skeleton's weights with checkpoint tensors.
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError>;
}

/// [`Checkpointable::snapshot`] for [`HasParams`] models: visit order.
pub fn snapshot_params<M: HasParams>(model: &M) -> Vec<TensorData> {
    let mut out = Vec::new();
    model.visit(&mut |p| {
        let shape = p.value().shape();
        out.push(TensorData {
            name: p.name().to_string(),
            dims: (0..shape.rank()).map(|i| shape.dim(i)).collect(),
            values: p.value().data().to_vec(),
        });
    });
    out
}

/// [`Checkpointable::restore`] for [`HasParams`] models: pairs tensors with
/// parameters in visit order, verifying names and shapes.
pub fn restore_params<M: HasParams>(
    model: &mut M,
    tensors: Vec<TensorData>,
) -> Result<(), CheckpointError> {
    let mut iter = tensors.into_iter();
    let mut err: Option<CheckpointError> = None;
    model.visit_mut(&mut |p| {
        if err.is_some() {
            return;
        }
        let Some(t) = iter.next() else {
            err = Some(CheckpointError::Format(
                "checkpoint holds fewer parameters than the model".into(),
            ));
            return;
        };
        if t.name != p.name() {
            err = Some(CheckpointError::Format(format!(
                "parameter order mismatch: checkpoint has {:?} where the model has {:?}",
                t.name,
                p.name()
            )));
            return;
        }
        let shape = p.value().shape();
        let expected: Vec<usize> = (0..shape.rank()).map(|i| shape.dim(i)).collect();
        if t.dims != expected {
            err = Some(CheckpointError::Shape { name: t.name, expected, found: t.dims });
            return;
        }
        p.value_mut().data_mut().copy_from_slice(&t.values);
    });
    if let Some(e) = err {
        return Err(e);
    }
    if iter.next().is_some() {
        return Err(CheckpointError::Format(
            "checkpoint holds more parameters than the model".into(),
        ));
    }
    Ok(())
}

/// Serialises `model` into the checkpoint byte format.
pub fn save_to_vec<M: Checkpointable>(model: &M) -> Vec<u8> {
    let snap = model.snapshot();
    let mut params = String::new();
    for (i, t) in snap.iter().enumerate() {
        if i > 0 {
            params.push(',');
        }
        params.push_str("{\"name\":");
        json::write_str(&mut params, &t.name);
        params.push_str(",\"shape\":[");
        for (j, d) in t.dims.iter().enumerate() {
            if j > 0 {
                params.push(',');
            }
            params.push_str(&d.to_string());
        }
        params.push_str(&format!("],\"fnv1a\":\"{:016x}\"}}", digest_f32s(&t.values)));
    }
    let manifest = format!(
        "{{\"format_version\":{FORMAT_VERSION},\"kind\":\"{}\",\"config\":{},\"params\":[{params}]}}",
        M::KIND,
        model.manifest_config(),
    );
    let data_len: usize = snap.iter().map(|t| t.values.len() * 4).sum();
    let mut out = Vec::with_capacity(16 + manifest.len() + data_len);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(manifest.len() as u64).to_le_bytes());
    out.extend_from_slice(manifest.as_bytes());
    for t in &snap {
        for v in &t.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    out
}

/// Saves `model` to `path`.
pub fn save<M: Checkpointable>(model: &M, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    std::fs::write(path, save_to_vec(model))
        .map_err(|e| CheckpointError::Io(format!("writing {}: {e}", path.display())))
}

/// Header + manifest of a checkpoint byte stream, plus the data offset.
fn parse_manifest(bytes: &[u8]) -> Result<(Value, usize), CheckpointError> {
    if bytes.len() < 16 {
        return Err(CheckpointError::Format(format!(
            "file is {} bytes, shorter than the 16-byte header",
            bytes.len()
        )));
    }
    if &bytes[0..4] != MAGIC {
        return Err(CheckpointError::Format("bad magic (not a seqrec checkpoint)".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::Version { found: version });
    }
    let mlen = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    // Checked arithmetic throughout: a corrupt length field must surface as
    // a Format error, not an overflow panic.
    let mbytes = 16usize
        .checked_add(mlen)
        .and_then(|end| bytes.get(16..end))
        .ok_or_else(|| CheckpointError::Format("truncated manifest".into()))?;
    let text = std::str::from_utf8(mbytes)
        .map_err(|e| CheckpointError::Format(format!("manifest is not UTF-8: {e}")))?;
    let manifest =
        json::parse(text).map_err(|e| CheckpointError::Format(format!("manifest JSON: {e}")))?;
    let fv = req_u64(&manifest, "format_version")?;
    if fv != u64::from(FORMAT_VERSION) {
        return Err(CheckpointError::Version { found: fv as u32 });
    }
    Ok((manifest, 16 + mlen))
}

/// The model kind recorded in a checkpoint byte stream, without loading it.
pub fn manifest_kind(bytes: &[u8]) -> Result<String, CheckpointError> {
    let (manifest, _) = parse_manifest(bytes)?;
    Ok(req_str(&manifest, "kind")?.to_string())
}

/// Deserialises a model of kind `M` from checkpoint bytes.
pub fn load_from_bytes<M: Checkpointable>(bytes: &[u8]) -> Result<M, CheckpointError> {
    let (manifest, mut off) = parse_manifest(bytes)?;
    let kind = req_str(&manifest, "kind")?;
    if kind != M::KIND {
        return Err(CheckpointError::Kind { expected: M::KIND, found: kind.to_string() });
    }
    let cfg = manifest
        .get("config")
        .ok_or_else(|| CheckpointError::Format("manifest missing \"config\"".into()))?;
    let entries = manifest
        .get("params")
        .and_then(Value::as_arr)
        .ok_or_else(|| CheckpointError::Format("manifest missing \"params\" array".into()))?;

    let mut tensors = Vec::with_capacity(entries.len());
    for e in entries {
        let name = req_str(e, "name")?.to_string();
        let dims: Vec<usize> = e
            .get("shape")
            .and_then(Value::as_arr)
            .ok_or_else(|| {
                CheckpointError::Format(format!("param {name:?} missing \"shape\" array"))
            })?
            .iter()
            .map(|d| {
                d.as_f64().map(|v| v as usize).ok_or_else(|| {
                    CheckpointError::Format(format!("param {name:?} has a non-numeric dim"))
                })
            })
            .collect::<Result<_, _>>()?;
        let digest_hex = req_str(e, "fnv1a")?;
        let want = u64::from_str_radix(digest_hex, 16).map_err(|_| {
            CheckpointError::Format(format!("param {name:?} has a malformed digest"))
        })?;
        let truncated =
            || CheckpointError::Format(format!("truncated data for parameter {name:?}"));
        let n = dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d)).ok_or_else(truncated)?;
        let end = n.checked_mul(4).and_then(|b| off.checked_add(b)).ok_or_else(truncated)?;
        let data = bytes.get(off..end).ok_or_else(truncated)?;
        off = end;
        let values: Vec<f32> = data
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect();
        if digest_f32s(&values) != want {
            return Err(CheckpointError::Digest { name });
        }
        tensors.push(TensorData { name, dims, values });
    }
    if off != bytes.len() {
        return Err(CheckpointError::Format(format!(
            "{} trailing bytes after the last parameter",
            bytes.len() - off
        )));
    }
    let mut model = M::from_manifest_config(cfg)?;
    model.restore(tensors)?;
    Ok(model)
}

/// Loads a model of kind `M` from `path`.
pub fn load<M: Checkpointable>(path: impl AsRef<Path>) -> Result<M, CheckpointError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| CheckpointError::Io(format!("reading {}: {e}", path.display())))?;
    load_from_bytes(&bytes)
}

// --- manifest field readers -------------------------------------------------

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, CheckpointError> {
    v.get(key).ok_or_else(|| CheckpointError::Format(format!("manifest missing {key:?}")))
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, CheckpointError> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| CheckpointError::Format(format!("manifest field {key:?} is not a string")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, CheckpointError> {
    req_f64(v, key).map(|f| f as u64)
}

fn req_f64(v: &Value, key: &str) -> Result<f64, CheckpointError> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| CheckpointError::Format(format!("manifest field {key:?} is not a number")))
}

fn req_usize(v: &Value, key: &str) -> Result<usize, CheckpointError> {
    req_u64(v, key).map(|u| u as usize)
}

fn req_f32(v: &Value, key: &str) -> Result<f32, CheckpointError> {
    req_f64(v, key).map(|f| f as f32)
}

fn encoder_config(v: &Value) -> Result<EncoderConfig, CheckpointError> {
    Ok(EncoderConfig {
        num_items: req_usize(v, "num_items")?,
        d: req_usize(v, "d")?,
        heads: req_usize(v, "heads")?,
        layers: req_usize(v, "layers")?,
        max_len: req_usize(v, "max_len")?,
        dropout: req_f32(v, "dropout")?,
    })
}

// --- per-model impls --------------------------------------------------------

impl Checkpointable for SasRec {
    const KIND: &'static str = "sasrec";
    fn manifest_config(&self) -> String {
        serde_json::to_string(self.encoder().config()).expect("config serializes")
    }
    fn snapshot(&self) -> Vec<TensorData> {
        snapshot_params(self)
    }
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError> {
        Ok(SasRec::new(encoder_config(cfg)?, 0))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        restore_params(self, tensors)
    }
}

impl Checkpointable for Bert4Rec {
    const KIND: &'static str = "bert4rec";
    fn manifest_config(&self) -> String {
        serde_json::to_string(self.config()).expect("config serializes")
    }
    fn snapshot(&self) -> Vec<TensorData> {
        snapshot_params(self)
    }
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError> {
        let cfg = Bert4RecConfig {
            encoder: encoder_config(req(cfg, "encoder")?)?,
            mask_prob: req_f64(cfg, "mask_prob")?,
        };
        Ok(Bert4Rec::new(cfg, 0))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        restore_params(self, tensors)
    }
}

impl Checkpointable for Gru4Rec {
    const KIND: &'static str = "gru4rec";
    fn manifest_config(&self) -> String {
        serde_json::to_string(self.config()).expect("config serializes")
    }
    fn snapshot(&self) -> Vec<TensorData> {
        snapshot_params(self)
    }
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError> {
        Ok(Gru4Rec::new(
            Gru4RecConfig {
                num_items: req_usize(cfg, "num_items")?,
                d: req_usize(cfg, "d")?,
                max_len: req_usize(cfg, "max_len")?,
                dropout: req_f32(cfg, "dropout")?,
            },
            0,
        ))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        restore_params(self, tensors)
    }
}

impl Checkpointable for Caser {
    const KIND: &'static str = "caser";
    fn manifest_config(&self) -> String {
        format!(
            "{{\"model\":{},\"num_users\":{}}}",
            serde_json::to_string(self.config()).expect("config serializes"),
            self.num_users(),
        )
    }
    fn snapshot(&self) -> Vec<TensorData> {
        snapshot_params(self)
    }
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError> {
        let m = req(cfg, "model")?;
        let heights = req(m, "heights")?
            .as_arr()
            .ok_or_else(|| CheckpointError::Format("\"heights\" is not an array".into()))?
            .iter()
            .map(|h| {
                h.as_f64().map(|v| v as usize).ok_or_else(|| {
                    CheckpointError::Format("\"heights\" holds a non-numeric entry".into())
                })
            })
            .collect::<Result<_, _>>()?;
        let model_cfg = CaserConfig {
            num_items: req_usize(m, "num_items")?,
            d: req_usize(m, "d")?,
            window: req_usize(m, "window")?,
            heights,
            n_h: req_usize(m, "n_h")?,
            n_v: req_usize(m, "n_v")?,
            dropout: req_f32(m, "dropout")?,
        };
        Ok(Caser::new(model_cfg, req_usize(cfg, "num_users")?, 0))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        restore_params(self, tensors)
    }
}

impl Checkpointable for Fpmc {
    const KIND: &'static str = "fpmc";
    fn manifest_config(&self) -> String {
        format!(
            "{{\"model\":{},\"num_users\":{},\"num_items\":{}}}",
            serde_json::to_string(self.config()).expect("config serializes"),
            self.num_users(),
            self.num_items(),
        )
    }
    fn snapshot(&self) -> Vec<TensorData> {
        snapshot_params(self)
    }
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError> {
        let m = req(cfg, "model")?;
        let model_cfg =
            FpmcConfig { d: req_usize(m, "d")?, weight_decay: req_f32(m, "weight_decay")? };
        Ok(Fpmc::new(model_cfg, req_usize(cfg, "num_users")?, req_usize(cfg, "num_items")?, 0))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        restore_params(self, tensors)
    }
}

impl Checkpointable for Ncf {
    const KIND: &'static str = "ncf";
    fn manifest_config(&self) -> String {
        format!(
            "{{\"model\":{},\"num_users\":{},\"num_items\":{}}}",
            serde_json::to_string(self.config()).expect("config serializes"),
            self.num_users(),
            self.num_items(),
        )
    }
    fn snapshot(&self) -> Vec<TensorData> {
        snapshot_params(self)
    }
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError> {
        let m = req(cfg, "model")?;
        let model_cfg = NcfConfig { d: req_usize(m, "d")? };
        Ok(Ncf::new(model_cfg, req_usize(cfg, "num_users")?, req_usize(cfg, "num_items")?, 0))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        restore_params(self, tensors)
    }
}

impl Checkpointable for BprMf {
    const KIND: &'static str = "bprmf";
    fn manifest_config(&self) -> String {
        format!(
            "{{\"model\":{},\"num_users\":{},\"num_items\":{}}}",
            serde_json::to_string(self.config()).expect("config serializes"),
            self.num_users(),
            self.num_items(),
        )
    }
    fn snapshot(&self) -> Vec<TensorData> {
        snapshot_params(self)
    }
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError> {
        let m = req(cfg, "model")?;
        let model_cfg =
            BprMfConfig { d: req_usize(m, "d")?, weight_decay: req_f32(m, "weight_decay")? };
        Ok(BprMf::new(model_cfg, req_usize(cfg, "num_users")?, req_usize(cfg, "num_items")?, 0))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        restore_params(self, tensors)
    }
}

impl Checkpointable for Pop {
    const KIND: &'static str = "pop";
    fn manifest_config(&self) -> String {
        format!("{{\"num_items\":{}}}", self.num_items())
    }
    fn snapshot(&self) -> Vec<TensorData> {
        vec![TensorData {
            name: "pop.scores".into(),
            dims: vec![self.scores().len()],
            values: self.scores().to_vec(),
        }]
    }
    fn from_manifest_config(cfg: &Value) -> Result<Self, CheckpointError> {
        let n = req_usize(cfg, "num_items")?;
        Ok(Pop::from_scores(vec![0.0; n + 1], n))
    }
    fn restore(&mut self, tensors: Vec<TensorData>) -> Result<(), CheckpointError> {
        let n = self.num_items();
        let [t] = <[TensorData; 1]>::try_from(tensors).map_err(|v| {
            CheckpointError::Format(format!("pop checkpoint holds {} tensors, expected 1", v.len()))
        })?;
        if t.name != "pop.scores" {
            return Err(CheckpointError::Format(format!(
                "pop checkpoint holds {:?}, expected \"pop.scores\"",
                t.name
            )));
        }
        if t.dims != [n + 1] {
            return Err(CheckpointError::Shape {
                name: t.name,
                expected: vec![n + 1],
                found: t.dims,
            });
        }
        *self = Pop::from_scores(t.values, n);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncoderConfig;

    // The models themselves don't derive `Debug`, so `unwrap_err` is out.
    fn err_of<M: Checkpointable>(bytes: &[u8]) -> CheckpointError {
        match load_from_bytes::<M>(bytes) {
            Ok(_) => panic!("checkpoint unexpectedly loaded"),
            Err(e) => e,
        }
    }

    fn tiny_sasrec() -> SasRec {
        let cfg =
            EncoderConfig { num_items: 7, d: 8, heads: 2, layers: 1, max_len: 4, dropout: 0.1 };
        SasRec::new(cfg, 42)
    }

    #[test]
    fn roundtrip_preserves_every_bit() {
        let model = tiny_sasrec();
        let bytes = save_to_vec(&model);
        let loaded: SasRec = load_from_bytes(&bytes).expect("loads");
        let (a, b) = (model.snapshot(), loaded.snapshot());
        assert_eq!(a, b);
        assert_eq!(save_to_vec(&loaded), bytes, "resave is not byte-identical");
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let bytes = save_to_vec(&tiny_sasrec());
        assert_eq!(manifest_kind(&bytes).as_deref(), Ok("sasrec"));
        let err = err_of::<Gru4Rec>(&bytes);
        assert_eq!(err, CheckpointError::Kind { expected: "gru4rec", found: "sasrec".into() });
    }

    #[test]
    fn version_bump_is_rejected() {
        let mut bytes = save_to_vec(&tiny_sasrec());
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(err_of::<SasRec>(&bytes), CheckpointError::Version { found: 2 });
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let bytes = save_to_vec(&tiny_sasrec());
        let cut = &bytes[..bytes.len() - 5];
        assert!(matches!(err_of::<SasRec>(cut), CheckpointError::Format(_)));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(err_of::<SasRec>(&flipped), CheckpointError::Digest { .. }));
        assert!(matches!(err_of::<SasRec>(b"nope"), CheckpointError::Format(_)));
    }

    #[test]
    fn pop_roundtrips_without_params() {
        let pop = Pop::from_scores(vec![0.0, 3.0, 1.0], 2);
        let loaded: Pop = load_from_bytes(&save_to_vec(&pop)).expect("loads");
        assert_eq!(loaded.scores(), pop.scores());
    }
}
