//! Property-based tests on the data pipeline: k-core convergence,
//! reindexing density, split integrity, and batching alignment.

use proptest::prelude::*;
use seqrec_data::batch::{next_item_batch, pad_left, NegativeSampler};
use seqrec_data::five_core::{is_k_core, k_core};
use seqrec_data::interactions::{build_dataset, Interaction, RawLog};
use seqrec_data::Split;

fn arb_log(max_events: usize) -> impl Strategy<Value = RawLog> {
    proptest::collection::vec((0u64..30, 0u64..40, -50i64..50), 0..max_events).prop_map(|rows| {
        RawLog::new(
            rows.into_iter()
                .map(|(user, item, timestamp)| Interaction { user, item, timestamp })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// k_core always terminates at a log satisfying the k-core property,
    /// and never invents events.
    #[test]
    fn k_core_yields_a_k_core(log in arb_log(300), k in 1usize..6) {
        let filtered = k_core(&log, k);
        prop_assert!(is_k_core(&filtered, k));
        prop_assert!(filtered.len() <= log.len());
        for e in &filtered.events {
            prop_assert!(log.events.contains(e));
        }
    }

    /// k_core is idempotent.
    #[test]
    fn k_core_is_idempotent(log in arb_log(300), k in 1usize..6) {
        let once = k_core(&log, k);
        let twice = k_core(&once, k);
        prop_assert_eq!(once.events, twice.events);
    }

    /// Reindexing produces dense item ids starting at 1, and preserves the
    /// per-user event counts.
    #[test]
    fn build_dataset_is_dense_and_count_preserving(log in arb_log(300)) {
        let ds = build_dataset(&log);
        prop_assert_eq!(ds.num_actions(), log.len());
        let pop = ds.item_popularity();
        // every dense id 1..=num_items occurs at least once
        prop_assert!(pop[1..].iter().all(|&c| c > 0));
    }

    /// Leave-one-out: train + valid + test exactly reconstruct each kept
    /// user's sequence.
    #[test]
    fn split_partitions_each_sequence(log in arb_log(400)) {
        let ds = build_dataset(&k_core(&log, 5));
        let split = Split::leave_one_out(&ds);
        for u in 0..split.num_users() {
            let mut rebuilt = split.train_sequence(u).to_vec();
            rebuilt.push(split.valid_target(u));
            rebuilt.push(split.test_target(u));
            // find the matching original sequence
            let found = ds.sequences().iter().any(|s| s == &rebuilt);
            prop_assert!(found, "user {u}: rebuilt sequence not in dataset");
        }
    }

    /// pad_left output always has exactly `t` entries, valid flags match
    /// non-pad positions, and the suffix equals the most recent items.
    #[test]
    fn pad_left_invariants(
        seq in proptest::collection::vec(1u32..100, 0..30),
        t in 1usize..20,
    ) {
        let (ids, valid) = pad_left(&seq, t);
        prop_assert_eq!(ids.len(), t);
        prop_assert_eq!(valid.len(), t);
        let take = seq.len().min(t);
        prop_assert_eq!(&ids[t - take..], &seq[seq.len() - take..]);
        for i in 0..t {
            prop_assert_eq!(valid[i], i >= t - take);
            if !valid[i] {
                prop_assert_eq!(ids[i], 0);
            }
        }
    }

    /// Training batches align inputs and targets: target[p] is the item
    /// right after input[p] in the original sequence.
    #[test]
    fn next_item_batch_alignment(
        seq in proptest::collection::vec(1u32..50, 2..30),
        t in 2usize..16,
        seed in 0u64..100,
    ) {
        let mut sampler = NegativeSampler::new(60, seed);
        let slice: &[u32] = &seq;
        let batch = next_item_batch(&[slice], t, &mut sampler);
        prop_assert_eq!(batch.b, 1);
        for p in 0..t {
            if batch.target_mask[p] > 0.0 {
                // find input in the sequence; its successor is the target
                let inp = batch.inputs[p];
                let tgt = batch.pos[p];
                let ok = seq.windows(2).any(|w| w[0] == inp && w[1] == tgt);
                prop_assert!(ok, "pair ({inp} -> {tgt}) not in sequence");
                // negatives avoid the user's items
                prop_assert!(!seq.contains(&batch.neg[p]));
            }
        }
    }
}
