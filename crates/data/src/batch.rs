//! Left-padded batching and negative sampling for sequence models.
//!
//! All sequence models in this workspace use **left padding**: the last
//! element of every padded row is the most recent interaction, so "the user
//! representation" is always the encoder output at position `T - 1`
//! (Eq. 13). Id 0 is the padding token.

use std::collections::HashSet;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Pads (or truncates to the most recent `t` items) a sequence on the left.
/// Returns the padded ids and a per-position validity mask.
pub fn pad_left(seq: &[u32], t: usize) -> (Vec<u32>, Vec<bool>) {
    let mut ids = vec![0u32; t];
    let mut valid = vec![false; t];
    let take = seq.len().min(t);
    let src = &seq[seq.len() - take..];
    for (i, &item) in src.iter().enumerate() {
        ids[t - take + i] = item;
        valid[t - take + i] = true;
    }
    (ids, valid)
}

/// A next-item training batch for SASRec-style models (Eq. 15):
/// at each valid position `p`, `inputs[p]` should predict `pos[p]`, with
/// `neg[p]` a sampled negative.
#[derive(Clone, Debug)]
pub struct NextItemBatch {
    /// `[B*T]` left-padded input ids.
    pub inputs: Vec<u32>,
    /// `[B*T]` positive next-item targets (0 where invalid).
    pub pos: Vec<u32>,
    /// `[B*T]` sampled negative items (0 where invalid).
    pub neg: Vec<u32>,
    /// `[B*T]` 1.0 where the position has a real target, else 0.0.
    pub target_mask: Vec<f32>,
    /// `[B][T]` validity of each input position (for attention masking).
    pub valid: Vec<Vec<bool>>,
    /// Batch size.
    pub b: usize,
    /// Padded length.
    pub t: usize,
}

/// Uniform negative sampler that avoids a user's own items.
pub struct NegativeSampler {
    num_items: usize,
    rng: ChaCha8Rng,
}

impl NegativeSampler {
    /// Creates a sampler over items `1..=num_items`.
    ///
    /// # Panics
    /// Panics if `num_items == 0`.
    pub fn new(num_items: usize, seed: u64) -> Self {
        assert!(num_items > 0, "cannot sample negatives from an empty catalog");
        NegativeSampler { num_items, rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Samples one item not in `exclude`. Falls back to any item if the
    /// exclusion covers (almost) the whole catalog.
    pub fn sample(&mut self, exclude: &HashSet<u32>) -> u32 {
        debug_assert!(self.num_items >= 1);
        for _ in 0..64 {
            let candidate = self.rng.gen_range(1..=self.num_items as u32);
            if !exclude.contains(&candidate) {
                return candidate;
            }
        }
        // Degenerate catalog (exclusion ≈ everything): return uniformly.
        self.rng.gen_range(1..=self.num_items as u32)
    }
}

/// Builds a [`NextItemBatch`] from raw training sequences.
///
/// Each sequence `s` contributes inputs `s[..n-1]` and targets `s[1..]`,
/// left-padded/truncated to `t`. Sequences shorter than 2 are skipped by the
/// caller (they have no (input, target) pair).
///
/// # Panics
/// Panics if any provided sequence has fewer than 2 items.
pub fn next_item_batch(seqs: &[&[u32]], t: usize, sampler: &mut NegativeSampler) -> NextItemBatch {
    let b = seqs.len();
    let mut inputs = Vec::with_capacity(b * t);
    let mut pos = Vec::with_capacity(b * t);
    let mut neg = Vec::with_capacity(b * t);
    let mut target_mask = Vec::with_capacity(b * t);
    let mut valid = Vec::with_capacity(b);

    for seq in seqs {
        assert!(seq.len() >= 2, "sequence of length {} has no training pair", seq.len());
        let exclude: HashSet<u32> = seq.iter().copied().collect();
        let (in_ids, in_valid) = pad_left(&seq[..seq.len() - 1], t);
        let (pos_ids, pos_valid) = pad_left(&seq[1..], t);
        debug_assert_eq!(in_valid, pos_valid, "input/target alignment broke");
        for i in 0..t {
            inputs.push(in_ids[i]);
            pos.push(pos_ids[i]);
            if pos_valid[i] {
                neg.push(sampler.sample(&exclude));
                target_mask.push(1.0);
            } else {
                neg.push(0);
                target_mask.push(0.0);
            }
        }
        valid.push(in_valid);
    }
    NextItemBatch { inputs, pos, neg, target_mask, valid, b, t }
}

/// Deterministically chunks user indices into mini-batches after a seeded
/// shuffle — one pass over this iterator is one training epoch.
pub fn epoch_batches(users: &[usize], batch_size: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut order: Vec<usize> = users.to_vec();
    use rand::seq::SliceRandom;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_left_puts_recent_items_last() {
        let (ids, valid) = pad_left(&[7, 8, 9], 5);
        assert_eq!(ids, vec![0, 0, 7, 8, 9]);
        assert_eq!(valid, vec![false, false, true, true, true]);
    }

    #[test]
    fn pad_left_truncates_to_most_recent() {
        let (ids, valid) = pad_left(&[1, 2, 3, 4, 5], 3);
        assert_eq!(ids, vec![3, 4, 5]);
        assert!(valid.iter().all(|&v| v));
    }

    #[test]
    fn pad_left_of_empty_sequence() {
        let (ids, valid) = pad_left(&[], 3);
        assert_eq!(ids, vec![0, 0, 0]);
        assert!(valid.iter().all(|&v| !v));
    }

    #[test]
    fn batch_aligns_inputs_and_targets() {
        let mut sampler = NegativeSampler::new(100, 1);
        let seq: &[u32] = &[10, 20, 30, 40];
        let batch = next_item_batch(&[seq], 5, &mut sampler);
        // inputs: pad pad 10 20 30 / targets: pad pad 20 30 40
        assert_eq!(batch.inputs, vec![0, 0, 10, 20, 30]);
        assert_eq!(batch.pos, vec![0, 0, 20, 30, 40]);
        assert_eq!(batch.target_mask, vec![0.0, 0.0, 1.0, 1.0, 1.0]);
        // negatives avoid the user's items and the pad id
        for (i, &n) in batch.neg.iter().enumerate() {
            if batch.target_mask[i] > 0.0 {
                assert!(n >= 1 && !seq.contains(&n));
            } else {
                assert_eq!(n, 0);
            }
        }
    }

    #[test]
    fn batch_truncation_keeps_last_pairs() {
        let mut sampler = NegativeSampler::new(100, 2);
        let seq: &[u32] = &[1, 2, 3, 4, 5, 6];
        let batch = next_item_batch(&[seq], 3, &mut sampler);
        assert_eq!(batch.inputs, vec![3, 4, 5]);
        assert_eq!(batch.pos, vec![4, 5, 6]);
    }

    #[test]
    fn sampler_avoids_exclusions() {
        let mut sampler = NegativeSampler::new(3, 3);
        let exclude: HashSet<u32> = [1, 3].into_iter().collect();
        for _ in 0..50 {
            assert_eq!(sampler.sample(&exclude), 2);
        }
    }

    #[test]
    fn sampler_survives_full_exclusion() {
        let mut sampler = NegativeSampler::new(2, 4);
        let exclude: HashSet<u32> = [1, 2].into_iter().collect();
        let s = sampler.sample(&exclude);
        assert!((1..=2).contains(&s));
    }

    #[test]
    fn epoch_batches_cover_all_users_once() {
        let users: Vec<usize> = (0..10).collect();
        let batches = epoch_batches(&users, 3, 9);
        let mut seen: Vec<usize> = batches.concat();
        assert_eq!(seen.len(), 10);
        seen.sort_unstable();
        assert_eq!(seen, users);
        assert_eq!(batches.len(), 4);
        // deterministic
        assert_eq!(batches, epoch_batches(&users, 3, 9));
        assert_ne!(batches, epoch_batches(&users, 3, 10));
    }

    #[test]
    #[should_panic]
    fn batch_rejects_too_short_sequences() {
        let mut sampler = NegativeSampler::new(10, 5);
        next_item_batch(&[&[1u32][..]], 4, &mut sampler);
    }
}
