//! Plain-CSV interaction IO.
//!
//! Real dataset dumps (Amazon reviews, Yelp) convert trivially to
//! `user,item,timestamp` rows; this module reads and writes that format so
//! the experiment harness can run on real data when it is available. No
//! external CSV crate: the format is three integer columns, and owning the
//! parser keeps error messages domain-specific.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::interactions::{Interaction, RawLog};

/// Errors from reading an interaction CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying file IO failed.
    Io(io::Error),
    /// A data row could not be parsed; carries (line number, content).
    Parse(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse(line, content) => {
                write!(f, "line {line}: cannot parse `{content}` as user,item,timestamp")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses `user,item,timestamp` rows. A header line is detected (first line
/// whose first field is not an integer) and skipped; blank lines are
/// ignored.
pub fn parse_interactions(text: &str) -> Result<RawLog, CsvError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_row(line) {
            Some(e) => events.push(e),
            // A header is only forgiven when its first field is clearly not
            // an id — a malformed first data row must still error.
            None if i == 0 && !starts_with_integer(line) => continue,
            None => return Err(CsvError::Parse(i + 1, line.to_string())),
        }
    }
    Ok(RawLog::new(events))
}

fn starts_with_integer(line: &str) -> bool {
    line.split(',').next().is_some_and(|f| f.trim().parse::<u64>().is_ok())
}

fn parse_row(line: &str) -> Option<Interaction> {
    let mut fields = line.split(',').map(str::trim);
    let user = fields.next()?.parse().ok()?;
    let item = fields.next()?.parse().ok()?;
    let timestamp = fields.next()?.parse().ok()?;
    if fields.next().is_some() {
        return None; // too many columns
    }
    Some(Interaction { user, item, timestamp })
}

/// Renders a log as `user,item,timestamp` CSV with a header.
pub fn format_interactions(log: &RawLog) -> String {
    let mut out = String::with_capacity(24 * log.len() + 24);
    out.push_str("user,item,timestamp\n");
    for e in &log.events {
        let _ = writeln!(out, "{},{},{}", e.user, e.item, e.timestamp);
    }
    out
}

/// Reads an interaction CSV from disk.
pub fn read_interactions(path: impl AsRef<Path>) -> Result<RawLog, CsvError> {
    parse_interactions(&fs::read_to_string(path)?)
}

/// Writes an interaction CSV to disk.
pub fn write_interactions(path: impl AsRef<Path>, log: &RawLog) -> Result<(), CsvError> {
    fs::write(path, format_interactions(log))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let log = RawLog::new(vec![
            Interaction { user: 1, item: 10, timestamp: 100 },
            Interaction { user: 2, item: 20, timestamp: -5 },
        ]);
        let text = format_interactions(&log);
        let back = parse_interactions(&text).unwrap();
        assert_eq!(back.events, log.events);
    }

    #[test]
    fn header_is_optional() {
        let with = "user,item,timestamp\n1,2,3\n";
        let without = "1,2,3\n";
        assert_eq!(parse_interactions(with).unwrap().len(), 1);
        assert_eq!(parse_interactions(without).unwrap().len(), 1);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "1,2,3\n\n  \n4,5,6\n";
        assert_eq!(parse_interactions(text).unwrap().len(), 2);
    }

    #[test]
    fn bad_rows_are_reported_with_line_numbers() {
        let text = "1,2,3\nnot,a,row\n";
        match parse_interactions(text) {
            Err(CsvError::Parse(line, content)) => {
                assert_eq!(line, 2);
                assert!(content.contains("not"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_column_count_is_rejected() {
        assert!(parse_interactions("1,2\n").is_err());
        assert!(parse_interactions("1,2,3,4\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("seqrec_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.csv");
        let log = RawLog::new(vec![Interaction { user: 7, item: 8, timestamp: 9 }]);
        write_interactions(&path, &log).unwrap();
        let back = read_interactions(&path).unwrap();
        assert_eq!(back.events, log.events);
    }
}
