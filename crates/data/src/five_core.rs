//! Iterative k-core filtering.
//!
//! The paper (§4.1.1, following [40, 55]) keeps only the "5-core": users and
//! items with at least 5 interactions, discarding offenders *iteratively*
//! until a fixed point — removing a cold item can push a user below the
//! threshold and vice versa.

use std::collections::HashMap;

use crate::interactions::{Interaction, RawLog};

/// Filters `log` to its k-core: every surviving user and item has at least
/// `k` interactions among the surviving events. Runs to a fixed point.
/// `k = 0` or `1` returns the log unchanged (minus nothing).
pub fn k_core(log: &RawLog, k: usize) -> RawLog {
    let mut events: Vec<Interaction> = log.events.clone();
    loop {
        let mut user_counts: HashMap<u64, usize> = HashMap::new();
        let mut item_counts: HashMap<u64, usize> = HashMap::new();
        for e in &events {
            *user_counts.entry(e.user).or_default() += 1;
            *item_counts.entry(e.item).or_default() += 1;
        }
        let before = events.len();
        events.retain(|e| user_counts[&e.user] >= k && item_counts[&e.item] >= k);
        if events.len() == before {
            return RawLog::new(events);
        }
    }
}

/// The paper's 5-core.
pub fn five_core(log: &RawLog) -> RawLog {
    k_core(log, 5)
}

/// Checks the k-core property (every user and item has ≥ k events); the
/// invariant tests and proptests use this as the oracle.
pub fn is_k_core(log: &RawLog, k: usize) -> bool {
    let mut user_counts: HashMap<u64, usize> = HashMap::new();
    let mut item_counts: HashMap<u64, usize> = HashMap::new();
    for e in &log.events {
        *user_counts.entry(e.user).or_default() += 1;
        *item_counts.entry(e.item).or_default() += 1;
    }
    user_counts.values().all(|&c| c >= k) && item_counts.values().all(|&c| c >= k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(user: u64, item: u64, t: i64) -> Interaction {
        Interaction { user, item, timestamp: t }
    }

    /// A clique where 3 users each interact with the same 3 items once:
    /// every user and item has exactly 3 events.
    fn clique(users: u64, items: u64) -> Vec<Interaction> {
        let mut out = Vec::new();
        for u in 0..users {
            for i in 0..items {
                out.push(ev(u, 1000 + i, (u * items + i) as i64));
            }
        }
        out
    }

    #[test]
    fn keeps_a_dense_clique() {
        let log = RawLog::new(clique(5, 5));
        let filtered = five_core(&log);
        assert_eq!(filtered.len(), 25);
        assert!(is_k_core(&filtered, 5));
    }

    #[test]
    fn drops_sparse_tails() {
        let mut events = clique(5, 5);
        events.push(ev(99, 1000, 0)); // one-off user
        events.push(ev(0, 9999, 0)); // one-off item
        let filtered = five_core(&RawLog::new(events));
        assert_eq!(filtered.len(), 25);
        assert!(filtered.events.iter().all(|e| e.user != 99 && e.item != 9999));
    }

    #[test]
    fn cascades_to_a_fixed_point() {
        // user 10 has 5 events, but 4 of them are on cold items that get
        // removed, which then drops user 10 below the threshold — and the
        // removal of user 10's remaining event must not break the core.
        let mut events = clique(6, 6); // 6x6 clique: everyone has 6
        for i in 0..4 {
            events.push(ev(10, 5000 + i, i as i64)); // cold items
        }
        events.push(ev(10, 1000, 99)); // one event on a popular item
        let filtered = five_core(&RawLog::new(events));
        assert!(is_k_core(&filtered, 5));
        assert!(filtered.events.iter().all(|e| e.user != 10));
        assert_eq!(filtered.len(), 36);
    }

    #[test]
    fn empty_input_is_fine() {
        let filtered = five_core(&RawLog::default());
        assert!(filtered.is_empty());
    }

    #[test]
    fn k1_keeps_everything() {
        let log = RawLog::new(vec![ev(1, 2, 0)]);
        assert_eq!(k_core(&log, 1).len(), 1);
    }

    #[test]
    fn whole_log_can_vanish() {
        let log = RawLog::new(vec![ev(1, 2, 0), ev(3, 4, 1)]);
        assert!(five_core(&log).is_empty());
    }

    #[test]
    fn repeated_interactions_count_per_event() {
        // one user hitting one item 5 times is a valid 5-core
        let events: Vec<_> = (0..5).map(|t| ev(1, 7, t)).collect();
        let filtered = five_core(&RawLog::new(events));
        assert_eq!(filtered.len(), 5);
    }
}
