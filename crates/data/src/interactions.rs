//! Raw interaction logs and preprocessed sequence datasets.
//!
//! The pipeline mirrors the paper's preprocessing (§4.1.1): collect implicit
//! feedback events, apply the iterative 5-core filter, sort each user's
//! events chronologically, and reindex users/items to dense ids. In the
//! resulting [`Dataset`], item ids run from **1** to `num_items`; id **0 is
//! reserved for padding** and id `num_items + 1` is used by models as the
//! `[mask]` token.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// One implicit-feedback event in a raw log (pre-filtering ids are
/// arbitrary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interaction {
    /// Raw user id.
    pub user: u64,
    /// Raw item id.
    pub item: u64,
    /// Event time; only the relative order per user matters.
    pub timestamp: i64,
}

/// An unprocessed interaction log.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RawLog {
    /// The events, in no particular order.
    pub events: Vec<Interaction>,
}

impl RawLog {
    /// Wraps a list of events.
    pub fn new(events: Vec<Interaction>) -> Self {
        RawLog { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A preprocessed dataset: one chronological item sequence per user, with
/// dense ids (`1..=num_items`; 0 = padding).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    sequences: Vec<Vec<u32>>,
    num_items: usize,
}

/// Summary statistics in the shape of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of users.
    pub users: usize,
    /// Number of distinct items.
    pub items: usize,
    /// Total interactions.
    pub actions: usize,
    /// Mean sequence length.
    pub avg_length: f64,
    /// `actions / (users × items)`, as a fraction (Table 1 prints %).
    pub density: f64,
}

impl Dataset {
    /// Builds a dataset from per-user sequences. Ids must already be dense
    /// in `1..=num_items`.
    ///
    /// # Panics
    /// Panics if any sequence contains 0 or an id above `num_items`.
    pub fn new(sequences: Vec<Vec<u32>>, num_items: usize) -> Self {
        for (u, s) in sequences.iter().enumerate() {
            for &it in s {
                assert!(
                    it >= 1 && it as usize <= num_items,
                    "user {u} has out-of-range item {it} (1..={num_items})"
                );
            }
        }
        Dataset { sequences, num_items }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.sequences.len()
    }

    /// Number of distinct items (ids `1..=num_items`).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The chronological item sequence of `user`.
    pub fn sequence(&self, user: usize) -> &[u32] {
        &self.sequences[user]
    }

    /// All sequences.
    pub fn sequences(&self) -> &[Vec<u32>] {
        &self.sequences
    }

    /// Total number of interactions.
    pub fn num_actions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Table 1 statistics for this dataset.
    pub fn stats(&self) -> DatasetStats {
        let users = self.num_users();
        let actions = self.num_actions();
        DatasetStats {
            users,
            items: self.num_items,
            actions,
            avg_length: if users == 0 { 0.0 } else { actions as f64 / users as f64 },
            density: if users == 0 || self.num_items == 0 {
                0.0
            } else {
                actions as f64 / (users as f64 * self.num_items as f64)
            },
        }
    }

    /// Per-item interaction counts, indexed by item id (index 0 unused).
    pub fn item_popularity(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_items + 1];
        for s in &self.sequences {
            for &it in s {
                counts[it as usize] += 1;
            }
        }
        counts
    }
}

/// Groups a raw log into per-user chronological sequences and reindexes
/// users and items densely. Ties in timestamps keep input order (stable
/// sort). Consecutive duplicate handling is left to callers — the paper
/// keeps duplicates.
pub fn build_dataset(log: &RawLog) -> Dataset {
    let mut by_user: HashMap<u64, Vec<(i64, u64)>> = HashMap::new();
    for e in &log.events {
        by_user.entry(e.user).or_default().push((e.timestamp, e.item));
    }
    // Deterministic user order: sort by raw id.
    let mut users: Vec<u64> = by_user.keys().copied().collect();
    users.sort_unstable();

    let mut item_ids: HashMap<u64, u32> = HashMap::new();
    let mut sequences = Vec::with_capacity(users.len());
    for u in users {
        let mut events = by_user.remove(&u).expect("user key present");
        events.sort_by_key(|&(t, _)| t);
        let seq = events
            .into_iter()
            .map(|(_, raw_item)| {
                let next = item_ids.len() as u32 + 1;
                *item_ids.entry(raw_item).or_insert(next)
            })
            .collect();
        sequences.push(seq);
    }
    let num_items = item_ids.len();
    Dataset::new(sequences, num_items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(user: u64, item: u64, timestamp: i64) -> Interaction {
        Interaction { user, item, timestamp }
    }

    #[test]
    fn build_groups_and_sorts_chronologically() {
        let log = RawLog::new(vec![ev(7, 100, 3), ev(7, 200, 1), ev(9, 100, 5), ev(7, 300, 2)]);
        let ds = build_dataset(&log);
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.num_items(), 3);
        // user 7's items in time order: 200, 300, 100
        let seq = ds.sequence(0);
        assert_eq!(seq.len(), 3);
        // item 100 appears in both sequences under the same dense id
        assert_eq!(seq[2], ds.sequence(1)[0]);
    }

    #[test]
    fn dense_ids_start_at_one() {
        let ds = build_dataset(&RawLog::new(vec![ev(1, 42, 0)]));
        assert_eq!(ds.sequence(0), &[1]);
    }

    #[test]
    fn stats_match_table1_definitions() {
        let ds = Dataset::new(vec![vec![1, 2, 3], vec![2, 3]], 3);
        let s = ds.stats();
        assert_eq!(s.users, 2);
        assert_eq!(s.items, 3);
        assert_eq!(s.actions, 5);
        assert!((s.avg_length - 2.5).abs() < 1e-12);
        assert!((s.density - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn popularity_counts_every_occurrence() {
        let ds = Dataset::new(vec![vec![1, 1, 2], vec![2, 3]], 3);
        assert_eq!(ds.item_popularity(), vec![0, 2, 2, 1]);
    }

    #[test]
    #[should_panic]
    fn rejects_pad_id_in_sequences() {
        Dataset::new(vec![vec![0, 1]], 2);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_items() {
        Dataset::new(vec![vec![5]], 2);
    }

    #[test]
    fn timestamp_ties_keep_input_order() {
        let log = RawLog::new(vec![ev(1, 10, 0), ev(1, 20, 0), ev(1, 30, 0)]);
        let ds = build_dataset(&log);
        assert_eq!(ds.sequence(0), &[1, 2, 3]);
    }
}
