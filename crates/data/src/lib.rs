//! # seqrec-data
//!
//! Interaction-data substrate for the CL4SRec reproduction: raw logs,
//! the paper's preprocessing pipeline (iterative 5-core filter,
//! chronological per-user sequences, dense reindexing), leave-one-out
//! splitting, left-padded batching with negative sampling, CSV IO, and a
//! synthetic latent-intent generator calibrated to the paper's four
//! datasets (Table 1).
//!
//! ```
//! use seqrec_data::synthetic::{generate_dataset, SyntheticConfig};
//! use seqrec_data::split::Split;
//!
//! let mut cfg = SyntheticConfig::beauty(0.01);
//! cfg.num_users = 200; // keep the doctest fast
//! let dataset = generate_dataset(&cfg);
//! let split = Split::leave_one_out(&dataset);
//! assert!(split.num_users() > 0);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod csv;
pub mod five_core;
pub mod interactions;
pub mod split;
pub mod synthetic;

pub use interactions::{build_dataset, Dataset, DatasetStats, Interaction, RawLog};
pub use split::Split;
