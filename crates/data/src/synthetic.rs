//! Synthetic interaction generator calibrated to the paper's datasets.
//!
//! The real Amazon (Beauty / Sports / Toys) and Yelp dumps are multi-GB
//! downloads that are not redistributable with this repository, so the
//! experiment harness generates interaction logs from a **latent-intent
//! Markov model** whose aggregate statistics are calibrated to Table 1.
//! The generator is designed to exercise exactly the properties the paper's
//! experiments rely on:
//!
//! * **Sequential structure.** Items belong to latent categories; the
//!   category of the next interaction follows a Markov chain with a high
//!   stay probability, so sequence models can out-predict non-sequential
//!   factorisation models.
//! * **Stable intent.** Because intent (category) persists over several
//!   interactions, two augmented views of the same sequence (crop / mask /
//!   reorder) share semantics — the premise of the contrastive task.
//! * **Sparsity.** Item popularity is Zipf-distributed and sequence lengths
//!   are short (mean ≈ 8–10 after 5-core filtering), reproducing the
//!   data-sparsity regime that motivates pre-training.
//!
//! A real dump, converted to `user,item,timestamp` CSV, can be loaded with
//! [`crate::csv::read_interactions`] and pushed through the identical
//! pipeline instead.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::five_core::five_core;
use crate::interactions::{build_dataset, Dataset, Interaction, RawLog};

/// Parameters of the latent-intent generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Dataset label (e.g. "beauty").
    pub name: String,
    /// Users to generate (before 5-core filtering).
    pub num_users: usize,
    /// Catalog size (before 5-core filtering).
    pub num_items: usize,
    /// Target mean sequence length (events per user).
    pub avg_len: f64,
    /// Number of latent categories.
    pub num_categories: usize,
    /// Probability the next event stays in the current category.
    pub stay_prob: f64,
    /// Zipf popularity exponent within a category (larger = more skew).
    pub zipf_exponent: f64,
    /// Probability of an interest-free "noise" event on a globally popular
    /// item.
    pub noise_prob: f64,
    /// RNG seed; same config + seed = identical dataset.
    pub seed: u64,
}

impl SyntheticConfig {
    /// "Beauty"-like preset (Table 1: 22 363 users, 12 101 items, avg 8.8).
    /// `scale` multiplies user/item counts; 1.0 reproduces the full size,
    /// the experiment defaults use 0.1 to keep CPU training practical.
    pub fn beauty(scale: f64) -> Self {
        Self::preset("beauty", 22_363, 12_101, 8.8, scale, 0.82, 11)
    }

    /// "Sports and Outdoors"-like preset (25 598 users, 18 357 items,
    /// avg 8.3).
    pub fn sports(scale: f64) -> Self {
        Self::preset("sports", 25_598, 18_357, 8.3, scale, 0.72, 22)
    }

    /// "Toys and Games"-like preset (19 412 users, 11 924 items, avg 8.6).
    pub fn toys(scale: f64) -> Self {
        Self::preset("toys", 19_412, 11_924, 8.6, scale, 0.75, 33)
    }

    /// Yelp-like preset (30 431 users, 20 033 items, avg 10.4). Business
    /// check-ins are less strictly ordered, hence the lower stay
    /// probability (this is what makes high reorder rates β work well on
    /// Yelp in Figure 4).
    pub fn yelp(scale: f64) -> Self {
        Self::preset("yelp", 30_431, 20_033, 10.4, scale, 0.65, 44)
    }

    /// All four presets in the paper's order.
    pub fn all_paper_presets(scale: f64) -> Vec<Self> {
        vec![Self::beauty(scale), Self::sports(scale), Self::toys(scale), Self::yelp(scale)]
    }

    fn preset(
        name: &str,
        users: usize,
        items: usize,
        avg_len: f64,
        scale: f64,
        stay_prob: f64,
        seed: u64,
    ) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale {scale} outside (0, 1]");
        let num_users = ((users as f64 * scale) as usize).max(50);
        let num_items = ((items as f64 * scale) as usize).max(50);
        SyntheticConfig {
            name: name.to_string(),
            num_users,
            num_items,
            avg_len,
            num_categories: (num_items / 60).clamp(4, 64),
            stay_prob,
            zipf_exponent: 0.8,
            noise_prob: 0.04,
            seed,
        }
    }
}

/// Generates a raw interaction log from the latent-intent model.
pub fn generate_log(cfg: &SyntheticConfig) -> RawLog {
    assert!(cfg.num_categories >= 2, "need at least 2 categories");
    assert!(cfg.num_items >= cfg.num_categories, "fewer items than categories");
    assert!((0.0..=1.0).contains(&cfg.stay_prob));
    assert!((0.0..=1.0).contains(&cfg.noise_prob));
    assert!(cfg.avg_len > 5.0, "avg_len must exceed the 5-core threshold");

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let cat_of_item: Vec<usize> = (0..cfg.num_items).map(|i| i % cfg.num_categories).collect();
    // items of each category, by construction evenly spread
    let mut items_of_cat: Vec<Vec<u64>> = vec![Vec::new(); cfg.num_categories];
    for (i, &c) in cat_of_item.iter().enumerate() {
        items_of_cat[c].push(i as u64);
    }
    // Shuffle each category's items so within-category popularity ranks do
    // not align with the id-ordered global noise distribution — otherwise
    // popularity concentrates on a handful of ids and the Pop baseline
    // becomes unrealistically strong.
    for items in &mut items_of_cat {
        use rand::seq::SliceRandom;
        items.shuffle(&mut rng);
    }
    // Zipf weights within each category: weight(rank r) = 1 / (r+1)^s
    let zipf_samplers: Vec<WeightedIndex<f64>> = items_of_cat
        .iter()
        .map(|items| {
            let w: Vec<f64> =
                (0..items.len()).map(|r| 1.0 / ((r + 1) as f64).powf(cfg.zipf_exponent)).collect();
            WeightedIndex::new(w).expect("non-empty category")
        })
        .collect();
    // Global popularity for noise events: Zipf over the whole catalog.
    let global_weights: Vec<f64> =
        (0..cfg.num_items).map(|r| 1.0 / ((r + 1) as f64).powf(cfg.zipf_exponent)).collect();
    let global_sampler = WeightedIndex::new(global_weights).expect("non-empty catalog");

    let mut events = Vec::new();
    for user in 0..cfg.num_users {
        // Each user prefers a small set of categories.
        let num_pref = rng.gen_range(2..=4.min(cfg.num_categories));
        let prefs: Vec<usize> =
            (0..num_pref).map(|_| rng.gen_range(0..cfg.num_categories)).collect();
        let mut cat = prefs[rng.gen_range(0..prefs.len())];

        // Length: 6 + geometric with the mean tuned to hit avg_len.
        let extra_mean = (cfg.avg_len - 6.0).max(0.5);
        let p = 1.0 / (1.0 + extra_mean);
        let mut len = 6usize;
        while rng.gen::<f64>() > p {
            len += 1;
            if len > 200 {
                break;
            }
        }

        for t in 0..len {
            let item = if rng.gen::<f64>() < cfg.noise_prob {
                global_sampler.sample(&mut rng) as u64
            } else {
                let idx = zipf_samplers[cat].sample(&mut rng);
                items_of_cat[cat][idx]
            };
            events.push(Interaction { user: user as u64, item, timestamp: t as i64 });
            // category transition for the next event
            if rng.gen::<f64>() >= cfg.stay_prob {
                cat = if rng.gen::<f64>() < 0.7 {
                    // jump within the user's preferred set
                    prefs[rng.gen_range(0..prefs.len())]
                } else {
                    // structured drift: a category "adjacent" to this one
                    (cat + 1 + rng.gen_range(0..2usize)) % cfg.num_categories
                };
            }
        }
    }
    RawLog::new(events)
}

/// Runs the full paper pipeline: generate → 5-core → reindex.
pub fn generate_dataset(cfg: &SyntheticConfig) -> Dataset {
    let log = generate_log(cfg);
    let filtered = five_core(&log);
    build_dataset(&filtered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::five_core::is_k_core;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            name: "test".into(),
            num_users: 400,
            num_items: 150,
            avg_len: 9.0,
            num_categories: 8,
            stay_prob: 0.8,
            zipf_exponent: 1.05,
            noise_prob: 0.05,
            seed: 1,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_log(&small());
        let b = generate_log(&small());
        assert_eq!(a.events, b.events);
        let mut cfg = small();
        cfg.seed = 2;
        assert_ne!(a.events, generate_log(&cfg).events);
    }

    #[test]
    fn pipeline_produces_a_5_core_dataset() {
        let cfg = small();
        let log = generate_log(&cfg);
        let filtered = five_core(&log);
        assert!(is_k_core(&filtered, 5));
        let ds = build_dataset(&filtered);
        assert!(ds.num_users() > 200, "kept {} users", ds.num_users());
        assert!(ds.num_items() > 50);
    }

    #[test]
    fn average_length_is_near_target() {
        let ds = generate_dataset(&small());
        let stats = ds.stats();
        assert!(
            (stats.avg_length - 9.0).abs() < 3.0,
            "avg length {} far from target 9",
            stats.avg_length
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let ds = generate_dataset(&small());
        let mut pop = ds.item_popularity();
        pop.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = pop.iter().map(|&c| c as u64).sum();
        let top10: u64 = pop.iter().take(pop.len() / 10).map(|&c| c as u64).sum();
        // Zipf: the top decile of items should hold far more than 10% of mass.
        assert!(
            top10 as f64 / total as f64 > 0.25,
            "top decile holds only {:.1}%",
            100.0 * top10 as f64 / total as f64
        );
    }

    #[test]
    fn sequences_have_category_coherence() {
        // Consecutive items should share a category far more often than
        // chance — this is the sequential signal SASRec should exploit.
        let cfg = small();
        let log = generate_log(&cfg);
        let mut same = 0usize;
        let mut pairs = 0usize;
        let mut by_user: std::collections::HashMap<u64, Vec<(i64, u64)>> = Default::default();
        for e in &log.events {
            by_user.entry(e.user).or_default().push((e.timestamp, e.item));
        }
        for (_, mut evs) in by_user {
            evs.sort_by_key(|&(t, _)| t);
            for w in evs.windows(2) {
                let c0 = w[0].1 as usize % cfg.num_categories;
                let c1 = w[1].1 as usize % cfg.num_categories;
                same += usize::from(c0 == c1);
                pairs += 1;
            }
        }
        let frac = same as f64 / pairs as f64;
        let chance = 1.0 / cfg.num_categories as f64;
        assert!(frac > 3.0 * chance, "coherence {frac:.3} vs chance {chance:.3}");
    }

    #[test]
    fn presets_scale_down() {
        let cfg = SyntheticConfig::beauty(0.05);
        assert_eq!(cfg.num_users, (22_363.0f64 * 0.05) as usize);
        assert!(cfg.num_categories >= 4);
        assert_eq!(SyntheticConfig::all_paper_presets(0.05).len(), 4);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_scale() {
        SyntheticConfig::beauty(0.0);
    }
}
