//! Leave-one-out splitting (§4.1.2).
//!
//! For each user the last item is the test target, the one before it the
//! validation target, and everything earlier is training data. Users with
//! fewer than 3 interactions cannot be split and are dropped (the 5-core
//! guarantees ≥ 5, so this only matters for hand-built datasets).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::interactions::Dataset;

/// A leave-one-out split of a [`Dataset`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Split {
    train: Vec<Vec<u32>>,
    valid_target: Vec<u32>,
    test_target: Vec<u32>,
    num_items: usize,
}

impl Split {
    /// Splits `dataset` leave-one-out. Users with < 3 interactions are
    /// dropped.
    pub fn leave_one_out(dataset: &Dataset) -> Self {
        let mut train = Vec::with_capacity(dataset.num_users());
        let mut valid_target = Vec::with_capacity(dataset.num_users());
        let mut test_target = Vec::with_capacity(dataset.num_users());
        for seq in dataset.sequences() {
            if seq.len() < 3 {
                continue;
            }
            let n = seq.len();
            train.push(seq[..n - 2].to_vec());
            valid_target.push(seq[n - 2]);
            test_target.push(seq[n - 1]);
        }
        Split { train, valid_target, test_target, num_items: dataset.num_items() }
    }

    /// Number of users that survived splitting.
    pub fn num_users(&self) -> usize {
        self.train.len()
    }

    /// Number of distinct items in the underlying dataset.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Training prefix of `user` (everything except the last two items).
    pub fn train_sequence(&self, user: usize) -> &[u32] {
        &self.train[user]
    }

    /// All training sequences.
    pub fn train_sequences(&self) -> &[Vec<u32>] {
        &self.train
    }

    /// The held-out validation item of `user`.
    pub fn valid_target(&self, user: usize) -> u32 {
        self.valid_target[user]
    }

    /// The held-out test item of `user`.
    pub fn test_target(&self, user: usize) -> u32 {
        self.test_target[user]
    }

    /// Model input when predicting the validation item: the training prefix.
    pub fn valid_input(&self, user: usize) -> Vec<u32> {
        self.train[user].clone()
    }

    /// Model input when predicting the test item: training prefix plus the
    /// validation item (the paper evaluates the test step with all earlier
    /// interactions visible).
    pub fn test_input(&self, user: usize) -> Vec<u32> {
        let mut s = self.train[user].clone();
        s.push(self.valid_target[user]);
        s
    }

    /// Every item `user` interacted with (train + valid + test); full-catalog
    /// ranking excludes these, except the current target.
    pub fn user_items(&self, user: usize) -> Vec<u32> {
        let mut s = self.train[user].clone();
        s.push(self.valid_target[user]);
        s.push(self.test_target[user]);
        s
    }

    /// A deterministic random subset of users covering `frac` of the
    /// training population — the RQ4 (Figure 6) data-sparsity knob. The
    /// evaluation split is untouched; only train on the returned users.
    ///
    /// # Panics
    /// Panics unless `0 < frac <= 1`.
    pub fn train_user_subset(&self, frac: f64, seed: u64) -> Vec<usize> {
        assert!(frac > 0.0 && frac <= 1.0, "frac {frac} outside (0, 1]");
        let mut users: Vec<usize> = (0..self.num_users()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        users.shuffle(&mut rng);
        let keep = ((self.num_users() as f64 * frac).round() as usize).clamp(1, self.num_users());
        users.truncate(keep);
        users.sort_unstable();
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::new(vec![vec![1, 2, 3, 4, 5], vec![2, 3, 4], vec![5, 1]], 5)
    }

    #[test]
    fn last_two_items_are_held_out() {
        let split = Split::leave_one_out(&dataset());
        assert_eq!(split.num_users(), 2); // the 2-item user is dropped
        assert_eq!(split.train_sequence(0), &[1, 2, 3]);
        assert_eq!(split.valid_target(0), 4);
        assert_eq!(split.test_target(0), 5);
    }

    #[test]
    fn test_input_includes_validation_item() {
        let split = Split::leave_one_out(&dataset());
        assert_eq!(split.valid_input(0), vec![1, 2, 3]);
        assert_eq!(split.test_input(0), vec![1, 2, 3, 4]);
    }

    #[test]
    fn user_items_cover_everything() {
        let split = Split::leave_one_out(&dataset());
        assert_eq!(split.user_items(1), vec![2, 3, 4]);
    }

    #[test]
    fn subset_is_deterministic_and_sized() {
        let ds = Dataset::new(vec![vec![1, 2, 3]; 100], 3);
        let split = Split::leave_one_out(&ds);
        let a = split.train_user_subset(0.2, 7);
        let b = split.train_user_subset(0.2, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        let c = split.train_user_subset(0.2, 8);
        assert_ne!(a, c, "different seeds should pick different subsets");
        assert_eq!(split.train_user_subset(1.0, 0).len(), 100);
    }

    #[test]
    #[should_panic]
    fn subset_rejects_zero_fraction() {
        let split = Split::leave_one_out(&dataset());
        split.train_user_subset(0.0, 0);
    }

    #[test]
    fn minimum_sequence_gets_empty_train() {
        let ds = Dataset::new(vec![vec![1, 2, 3]], 3);
        let split = Split::leave_one_out(&ds);
        assert_eq!(split.train_sequence(0), &[1u32]);
        assert_eq!(split.valid_target(0), 2);
        assert_eq!(split.test_target(0), 3);
    }
}
