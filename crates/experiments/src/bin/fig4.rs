//! Reproduces **Figure 4** (RQ2): the effect of each augmentation operator
//! and its proportion rate. For each dataset, CL4SRec is trained with a
//! single operator (crop η / mask γ / reorder β) at rates
//! {0.1, 0.3, 0.5, 0.7, 0.9}; HR@10 and NDCG@10 are reported next to the
//! SASRec dashed-line baseline.
//!
//! ```text
//! cargo run --release -p seqrec-bench --bin fig4 [-- --datasets beauty,yelp]
//! ```

use cl4srec::augment::{AugmentationSet, Crop, Mask, Reorder};
use seqrec_bench::args::ExpArgs;
use seqrec_bench::runners::{maybe_write_json, prepare, run_cl4srec_with, run_sasrec_with, ExpRun};
use serde::Serialize;

/// The rates swept by the paper.
const RATES: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

#[derive(Serialize)]
struct SweepPoint {
    dataset: String,
    operator: String,
    rate: f64,
    hr10: f64,
    ndcg10: f64,
}

#[derive(Serialize)]
struct Fig4Results {
    baselines: Vec<(String, f64, f64)>, // dataset, SASRec HR@10, NDCG@10
    points: Vec<SweepPoint>,
}

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let args = ExpArgs::parse("fig4", "single-augmentation proportion sweep (Figure 4, RQ2)");
    println!("## Figure 4 — augmentation sweep (scale {}, rates {RATES:?})\n", args.scale);

    let run = ExpRun::start("fig4", &args);
    let mut out = Fig4Results { baselines: Vec::new(), points: Vec::new() };
    for name in &args.datasets {
        let prep = prepare(name, args.scale);
        let (base, _) = run_sasrec_with(&prep, &args, None, &run, "SASRec");
        seqrec_obs::info!("[{name}] SASRec baseline: HR@10 {:.4}", base.hr_at(10));
        out.baselines.push((name.clone(), base.hr_at(10), base.ndcg_at(10)));

        println!(
            "### {name} (SASRec baseline: HR@10 {:.4}, NDCG@10 {:.4})",
            base.hr_at(10),
            base.ndcg_at(10)
        );
        println!("| operator | rate | HR@10 | NDCG@10 |");
        println!("|---|---|---|---|");
        let mask_token = (prep.dataset.num_items() + 1) as u32;
        for op in ["crop", "mask", "reorder"] {
            for rate in RATES {
                let augs = match op {
                    "crop" => AugmentationSet::single(Crop { eta: rate }),
                    "mask" => AugmentationSet::single(Mask { gamma: rate, mask_token }),
                    _ => AugmentationSet::single(Reorder { beta: rate }),
                };
                let (m, secs) =
                    run_cl4srec_with(&prep, &augs, &args, None, &run, &format!("{op}{rate}"));
                seqrec_obs::info!("[{name}] {op} {rate}: HR@10 {:.4} ({secs:.0}s)", m.hr_at(10));
                println!("| {op} | {rate} | {:.4} | {:.4} |", m.hr_at(10), m.ndcg_at(10));
                out.points.push(SweepPoint {
                    dataset: name.clone(),
                    operator: op.to_string(),
                    rate,
                    hr10: m.hr_at(10),
                    ndcg10: m.ndcg_at(10),
                });
            }
        }
        println!();
    }
    run.finish(&out);
    maybe_write_json(&args.out, &out);
}
