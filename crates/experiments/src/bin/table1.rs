//! Reproduces **Table 1**: dataset statistics after preprocessing
//! (5-core filter, chronological sequences).
//!
//! ```text
//! cargo run --release -p seqrec-bench --bin table1 [-- --scale 0.04]
//! ```

use seqrec_bench::args::ExpArgs;
use seqrec_bench::runners::{maybe_write_json, prepare, ExpRun};
use seqrec_eval::report::stats_markdown;

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let args = ExpArgs::parse("table1", "dataset statistics after preprocessing (Table 1)");
    println!("## Table 1 — dataset statistics (scale {})\n", args.scale);

    let run = ExpRun::start("table1", &args);
    let mut rows = Vec::new();
    for name in &args.datasets {
        let prep = prepare(name, args.scale);
        rows.push((name.clone(), prep.dataset.stats()));
    }
    println!("{}", stats_markdown(&rows));
    println!(
        "paper (scale 1.0): beauty 22363/12101/198502/8.8/0.07% · sports \
         25598/18357/296337/8.3/0.05% · toys 19412/11924/167597/8.6/0.07% · \
         yelp 30431/20033/316354/10.4/0.05%"
    );
    run.finish(&rows);
    maybe_write_json(&args.out, &rows);
}
