//! Ablation beyond the paper's figures: design choices DESIGN.md calls out.
//!
//! 1. **Two-stage vs joint training** — the arXiv version pre-trains then
//!    fine-tunes; the ICDE camera-ready optimises the joint objective
//!    `L_next + λ·L_cl`. Which wins at this scale?
//! 2. **Temperature τ** — sensitivity of the two-stage pipeline to the
//!    NT-Xent temperature.
//! 3. **Identity augmentation control** — contrastive learning with the
//!    identity operator (both views equal): the loss collapses to trivial
//!    alignment, so any gain over SASRec must come from the *stochastic*
//!    augmentations, not from extra gradient steps.
//!
//! ```text
//! cargo run --release -p seqrec-bench --bin ablation [-- --datasets beauty]
//! ```

use cl4srec::augment::{AugmentationSet, Identity, Mask};
use cl4srec::model::{Cl4sRec, Cl4sRecConfig};
use seqrec_bench::args::ExpArgs;
use seqrec_bench::runners::{
    eval_test, maybe_write_json, prepare, pretrain_opts, run_sasrec_with, train_opts, ExpRun,
};
use serde::Serialize;

#[derive(Serialize)]
struct AblationPoint {
    dataset: String,
    setting: String,
    hr10: f64,
    ndcg10: f64,
}

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let mut args = ExpArgs::parse("ablation", "two-stage vs joint, temperature, identity control");
    if args.datasets.len() == 4 {
        args.datasets = vec!["beauty".into()];
    }
    println!("## Ablations (scale {})\n", args.scale);

    let run = ExpRun::start("ablation", &args);
    let mut out: Vec<AblationPoint> = Vec::new();
    for name in &args.datasets {
        let prep = prepare(name, args.scale);
        let n = prep.dataset.num_items();
        let mask_token = (n + 1) as u32;
        println!("### {name}");
        println!("| setting | HR@10 | NDCG@10 |");
        println!("|---|---|---|");

        let mut record = |label: &str, m: &seqrec_eval::RankingMetrics| {
            println!("| {label} | {:.4} | {:.4} |", m.hr_at(10), m.ndcg_at(10));
            seqrec_obs::info!("[{name}] {label}: HR@10 {:.4}", m.hr_at(10));
            out.push(AblationPoint {
                dataset: name.clone(),
                setting: label.to_string(),
                hr10: m.hr_at(10),
                ndcg10: m.ndcg_at(10),
            });
        };

        // plain SASRec reference
        let (sas, _) = run_sasrec_with(&prep, &args, None, &run, "SASRec");
        record("SASRec (no CL)", &sas);

        // two-stage at several temperatures
        for tau in [0.1f32, 0.5, 1.0] {
            let mut cfg = Cl4sRecConfig::small(n);
            cfg.tau = tau;
            let mut model = Cl4sRec::new(cfg, args.seed);
            let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token });
            let mut pre = pretrain_opts(&args);
            pre.run_dir = run.fit_dir(&format!("tau{tau}-pretrain-{name}"));
            let mut fine = train_opts(&args);
            fine.run_dir = run.fit_dir(&format!("tau{tau}-{name}"));
            model.fit(&prep.split, &augs, &pre, &fine);
            record(&format!("two-stage, τ={tau}"), &eval_test(&model, &prep.split));
        }

        // joint training at several λ
        for lambda in [0.05f32, 0.1, 0.3] {
            let mut model = Cl4sRec::new(Cl4sRecConfig::small(n), args.seed);
            let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token });
            let mut opts = train_opts(&args);
            opts.run_dir = run.fit_dir(&format!("joint{lambda}-{name}"));
            model.fit_joint(&prep.split, &augs, lambda, &opts);
            record(&format!("joint, λ={lambda}"), &eval_test(&model, &prep.split));
        }

        // identity-augmentation control
        let mut model = Cl4sRec::new(Cl4sRecConfig::small(n), args.seed);
        let augs = AugmentationSet::single(Identity);
        let mut pre = pretrain_opts(&args);
        pre.run_dir = run.fit_dir(&format!("identity-pretrain-{name}"));
        let mut fine = train_opts(&args);
        fine.run_dir = run.fit_dir(&format!("identity-{name}"));
        model.fit(&prep.split, &augs, &pre, &fine);
        record("two-stage, identity views (control)", &eval_test(&model, &prep.split));
        println!();
    }
    run.finish(&out);
    maybe_write_json(&args.out, &out);
}
