//! Training-throughput benchmark: trains every fit loop for a fixed number
//! of epochs with validation probes disabled (`probe_every = 0`) and reports
//! wall seconds per epoch, sequence throughput, and GEMM FLOP/s per method,
//! read back from the `seqrec_obs` metric registry.
//!
//! ```text
//! cargo run --release -p seqrec-experiments --bin bench_train -- \
//!     --scale 0.02 --epochs 3 --pretrain-epochs 2 --datasets beauty \
//!     --out BENCH_train.json
//! ```
//!
//! The JSON report also lands on stdout so `scripts/bench_train.sh` can tee
//! it. Timings depend on the worker-pool size, so the report records the
//! actual thread count (`threads`) and where it came from
//! (`threads_source`: a `SEQREC_THREADS` override or the machine's
//! available parallelism) — `scripts/bench_gate.sh` refuses to compare
//! reports taken at different pool sizes.

use cl4srec::augment::{AugmentationSet, Mask};
use cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use seqrec_bench::args::ExpArgs;
use seqrec_bench::runners::{prepare, ExpRun, Prepared};
use seqrec_models::common::AnomalyPolicy;
use seqrec_models::{
    Bert4Rec, Bert4RecConfig, BprMf, BprMfConfig, Caser, CaserConfig, EncoderConfig, Fpmc,
    FpmcConfig, Gru4Rec, Gru4RecConfig, Ncf, NcfConfig, SasRec, TrainOptions, TrainReport,
};
use seqrec_obs::mem::{self, LeakCheck};
use seqrec_obs::memprof::{observed_peak_from_intervals, whatif_peak_bytes, BENCH_WHATIF_SLACK_US};
use serde::Serialize;

/// Live-bytes slack the leak sentinel tolerates after a method's buffers
/// should all be gone (absorbs allocator capacity rounding).
const LEAK_EPSILON_BYTES: u64 = 64 * 1024;

const MIB: f64 = 1024.0 * 1024.0;

/// One method's measured training throughput.
#[derive(Clone, Debug, Serialize)]
struct BenchRow {
    /// Method label (Table 2 names; CL4SRec is split into its two stages).
    method: String,
    /// Dataset preset the method trained on.
    dataset: String,
    /// Epochs actually run.
    epochs: usize,
    /// Total wall-clock training seconds (probes disabled).
    train_secs: f64,
    /// Mean seconds per epoch.
    secs_per_epoch: f64,
    /// Training sequences consumed per second.
    seqs_per_sec: f64,
    /// Total GEMM floating-point operations (2·m·k·n per call).
    gemm_flops: f64,
    /// GEMM throughput over the training wall time.
    gemm_gflops_per_sec: f64,
    /// Autograd tape nodes recorded.
    tape_nodes: f64,
    /// Peak live tensor bytes over the method's own allocations (recorder
    /// replay), in MiB.
    peak_mib: f64,
    /// What-if arena peak: the theoretical minimum peak (MiB) under
    /// perfect buffer reuse with frees retired up to
    /// `BENCH_WHATIF_SLACK_US` early — the memory planner's target (see
    /// `seqrec_obs::memprof`). Always ≤ `peak_mib`.
    whatif_peak_mib: f64,
    /// Live tensor bytes (MiB) the method left behind after its buffers
    /// should all have dropped; nonzero trips the leak sentinel.
    leaked_mib: f64,
}

/// Reads the global metric registry into a row after a training run.
/// Memory columns for one method, folded out of the interval recorder.
#[derive(Clone, Copy, Debug)]
struct MemCols {
    peak_mib: f64,
    whatif_peak_mib: f64,
    leaked_mib: f64,
}

fn row_from_metrics(
    method: &str,
    dataset: &str,
    epochs: usize,
    train_secs: f64,
    sequences: f64,
    mem_cols: MemCols,
) -> BenchRow {
    let flops = seqrec_obs::metrics::GEMM_FLOPS.get() as f64;
    BenchRow {
        method: method.to_string(),
        dataset: dataset.to_string(),
        epochs,
        train_secs,
        secs_per_epoch: if epochs > 0 { train_secs / epochs as f64 } else { 0.0 },
        seqs_per_sec: if train_secs > 0.0 { sequences / train_secs } else { 0.0 },
        gemm_flops: flops,
        gemm_gflops_per_sec: if train_secs > 0.0 { flops / train_secs / 1e9 } else { 0.0 },
        tape_nodes: seqrec_obs::metrics::TAPE_NODES.get() as f64,
        peak_mib: mem_cols.peak_mib,
        whatif_peak_mib: mem_cols.whatif_peak_mib,
        leaked_mib: mem_cols.leaked_mib,
    }
}

/// Closes a method's leak check: returns the leaked MiB for the row and —
/// when the overhang exceeds the capacity-rounding epsilon — records a
/// training anomaly and, under `--on-anomaly abort`, exits nonzero (the
/// memory analogue of the NaN sentinel).
fn settle_leak_check(method: &str, check: &LeakCheck, policy: AnomalyPolicy) -> f64 {
    let leaked = check.leaked_bytes();
    if leaked > LEAK_EPSILON_BYTES {
        seqrec_obs::metrics::TRAIN_ANOMALIES.incr();
        seqrec_obs::info!(
            "[bench_train] leak sentinel: {method} left {:.3} MiB of tensors live \
             after its buffers should have dropped",
            leaked as f64 / MIB
        );
        if policy == AnomalyPolicy::Abort {
            eprintln!(
                "bench_train: aborting on leak sentinel ({method}, {:.3} MiB); \
                 rerun with --on-anomaly warn to continue past leaks",
                leaked as f64 / MIB
            );
            std::process::exit(3);
        }
    }
    leaked as f64 / MIB
}

/// Stops the interval recorder and folds its schedule into the observed
/// peak and the what-if arena peak (MiB) for the method that just ran.
/// Both come from the same replay, so `whatif <= peak` holds per row.
fn settle_mem() -> (f64, f64) {
    let intervals = mem::record_stop();
    let peak = observed_peak_from_intervals(&intervals);
    let whatif = whatif_peak_bytes(&intervals, BENCH_WHATIF_SLACK_US);
    (peak as f64 / MIB, whatif as f64 / MIB)
}

fn baseline_row(
    method: &str,
    prep: &Prepared,
    opts: &TrainOptions,
    policy: AnomalyPolicy,
    train: impl FnOnce(&Prepared, &TrainOptions) -> TrainReport,
) -> BenchRow {
    seqrec_obs::metrics::reset_all();
    let leak_check = LeakCheck::start();
    mem::record_start();
    let report = train(prep, opts);
    let leaked_mib = settle_leak_check(method, &leak_check, policy);
    let (peak_mib, whatif_peak_mib) = settle_mem();
    let sequences: u64 = report.epochs.iter().map(|e| e.sequences).sum();
    seqrec_obs::info!(
        "[bench_train] {method}/{}: {:.2}s/epoch, {:.0} seqs/s",
        prep.name,
        report.total_train_secs / report.epochs_run().max(1) as f64,
        report.mean_seqs_per_sec
    );
    row_from_metrics(
        method,
        &prep.name,
        report.epochs_run(),
        report.total_train_secs,
        sequences as f64,
        MemCols { peak_mib, whatif_peak_mib, leaked_mib },
    )
}

fn bench_dataset(prep: &Prepared, args: &ExpArgs, rows: &mut Vec<BenchRow>) {
    let num_items = prep.dataset.num_items();
    let num_users = prep.split.num_users();
    // Probes off: this harness measures the training loops alone.
    let opts = TrainOptions {
        epochs: args.epochs,
        seed: args.seed,
        patience: None,
        probe_every: 0,
        verbosity: args.verbosity,
        data_parallel: args.data_parallel,
        ..Default::default()
    };

    let policy = args.on_anomaly;
    rows.push(baseline_row("BPR-MF", prep, &opts, policy, |p, o| {
        BprMf::new(BprMfConfig::default(), num_users, num_items, args.seed).fit(&p.split, o)
    }));
    rows.push(baseline_row("FPMC", prep, &opts, policy, |p, o| {
        Fpmc::new(FpmcConfig::default(), num_users, num_items, args.seed).fit(&p.split, o)
    }));
    rows.push(baseline_row("NCF", prep, &opts, policy, |p, o| {
        Ncf::new(NcfConfig::default(), num_users, num_items, args.seed).fit(&p.split, o)
    }));
    rows.push(baseline_row("GRU4Rec", prep, &opts, policy, |p, o| {
        Gru4Rec::new(Gru4RecConfig::small(num_items), args.seed).fit(&p.split, o)
    }));
    rows.push(baseline_row("Caser", prep, &opts, policy, |p, o| {
        Caser::new(CaserConfig::small(num_items), num_users, args.seed).fit(&p.split, o)
    }));
    rows.push(baseline_row("BERT4Rec", prep, &opts, policy, |p, o| {
        Bert4Rec::new(Bert4RecConfig::small(num_items), args.seed).fit(&p.split, o)
    }));
    rows.push(baseline_row("SASRec", prep, &opts, policy, |p, o| {
        SasRec::new(EncoderConfig::small(num_items), args.seed).fit(&p.split, o)
    }));

    // CL4SRec, metered per stage so the contrastive pre-training cost is
    // visible separately from the fine-tuning cost. The model's own weights
    // must outlive both stages, so the leak sentinel here brackets the whole
    // model lifetime (creation through the explicit drop below) while the
    // per-stage what-if recorder still scopes to each stage's fit loop.
    let model_check = LeakCheck::start();
    let mut model = Cl4sRec::new(Cl4sRecConfig::small(num_items), args.seed);
    let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token: model.mask_token() });
    let pre_opts = PretrainOptions {
        epochs: args.pretrain_epochs,
        seed: args.seed,
        patience: None,
        verbosity: args.verbosity,
        data_parallel: args.data_parallel,
        ..Default::default()
    };
    seqrec_obs::metrics::reset_all();
    mem::record_start();
    let pre = model.pretrain(&prep.split, &augs, &pre_opts);
    let (pre_peak_mib, pre_whatif_mib) = settle_mem();
    let pre_secs: f64 = pre.epoch_secs.iter().sum();
    let pre_seqs: f64 =
        pre.epoch_secs.iter().zip(&pre.seqs_per_sec).map(|(secs, rate)| secs * rate).sum();
    seqrec_obs::info!(
        "[bench_train] CL4SRec-pretrain/{}: {:.2}s/epoch",
        prep.name,
        pre_secs / pre.losses.len().max(1) as f64
    );
    rows.push(row_from_metrics(
        "CL4SRec-pretrain",
        &prep.name,
        pre.losses.len(),
        pre_secs,
        pre_seqs,
        // Leak accounting for both CL4SRec stages lands on the finetune row
        // once the model itself has dropped.
        MemCols { peak_mib: pre_peak_mib, whatif_peak_mib: pre_whatif_mib, leaked_mib: 0.0 },
    ));

    // Finetune: the live model means a plain baseline_row leak check would
    // misread the weights as a leak, so meter throughput/what-if here and
    // settle the leak check only after the model drops.
    seqrec_obs::metrics::reset_all();
    mem::record_start();
    let ft_report = model.finetune(&prep.split, &opts);
    let (ft_peak_mib, ft_whatif_mib) = settle_mem();
    let ft_sequences: u64 = ft_report.epochs.iter().map(|e| e.sequences).sum();
    seqrec_obs::info!(
        "[bench_train] CL4SRec-finetune/{}: {:.2}s/epoch, {:.0} seqs/s",
        prep.name,
        ft_report.total_train_secs / ft_report.epochs_run().max(1) as f64,
        ft_report.mean_seqs_per_sec
    );
    let mut ft_row = row_from_metrics(
        "CL4SRec-finetune",
        &prep.name,
        ft_report.epochs_run(),
        ft_report.total_train_secs,
        ft_sequences as f64,
        MemCols { peak_mib: ft_peak_mib, whatif_peak_mib: ft_whatif_mib, leaked_mib: 0.0 },
    );
    drop(model);
    ft_row.leaked_mib = settle_leak_check("CL4SRec", &model_check, policy);
    rows.push(ft_row);
}

#[derive(Clone, Debug, Serialize)]
struct BenchTrainReport {
    generated_by: String,
    note: String,
    /// Global worker-pool size the run actually used.
    threads: usize,
    /// Where `threads` came from: `"SEQREC_THREADS"` when the env override
    /// was set, else `"available_parallelism"`.
    threads_source: String,
    scale: f64,
    epochs: usize,
    pretrain_epochs: usize,
    seed: u64,
    rows: Vec<BenchRow>,
}

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let args = ExpArgs::parse(
        "bench_train",
        "per-method training throughput (secs/epoch, seqs/s, GEMM FLOP/s)",
    );
    // Experiment-level ledger only: the per-fit sub-ledgers stay off here
    // (run_dir = None) so per-step dynamics writes cannot skew the timings
    // this harness exists to measure.
    let run = ExpRun::start("bench_train", &args);
    let mut rows = Vec::new();
    for name in &args.datasets {
        let prep = prepare(name, args.scale);
        seqrec_obs::info!(
            "[bench_train] {name}: {} users, {} items",
            prep.split.num_users(),
            prep.dataset.num_items()
        );
        bench_dataset(&prep, &args, &mut rows);
    }
    let report = BenchTrainReport {
        generated_by: "scripts/bench_train.sh".to_string(),
        note: "probes disabled (probe_every=0); gemm_flops counts 2*m*k*n per kernel call"
            .to_string(),
        threads: rayon::current_num_threads(),
        threads_source: if std::env::var_os("SEQREC_THREADS").is_some() {
            "SEQREC_THREADS".to_string()
        } else {
            "available_parallelism".to_string()
        },
        scale: args.scale,
        epochs: args.epochs,
        pretrain_epochs: args.pretrain_epochs,
        seed: args.seed,
        rows,
    };
    run.finish(&report);
    let text = serde_json::to_string_pretty(&report).expect("serialisable report");
    println!("{text}");
    if let Some(p) = &args.out {
        std::fs::write(p, format!("{text}\n")).unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        seqrec_obs::info!("[bench_train] report written to {p}");
    }
}
