//! Reproduces **Figure 5** (RQ3): composition of augmentation operators on
//! Beauty and Yelp. Each single operator runs at its best rate, then the
//! three pairwise compositions (crop+mask, crop+reorder, mask+reorder);
//! the paper finds composition does **not** beat the best single operator.
//!
//! ```text
//! cargo run --release -p seqrec-bench --bin fig5
//! ```

use cl4srec::augment::{AugmentationSet, Crop, Mask, Reorder};
use seqrec_bench::args::ExpArgs;
use seqrec_bench::runners::{maybe_write_json, prepare, run_cl4srec_with, ExpRun};
use serde::Serialize;

/// Per-operator rates used for composition (the paper composes each
/// operator at its best single rate; these are representative defaults).
const ETA: f64 = 0.6;
const GAMMA: f64 = 0.5;
const BETA: f64 = 0.5;

#[derive(Serialize)]
struct CompositionPoint {
    dataset: String,
    setting: String,
    hr10: f64,
    ndcg10: f64,
}

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let mut args = ExpArgs::parse("fig5", "composition of augmentations (Figure 5, RQ3)");
    // The paper reports this experiment on Beauty and Yelp only.
    if args.datasets.len() == 4 {
        args.datasets = vec!["beauty".into(), "yelp".into()];
    }
    println!(
        "## Figure 5 — composition of augmentations (scale {}, η={ETA}, γ={GAMMA}, β={BETA})\n",
        args.scale
    );

    let run = ExpRun::start("fig5", &args);
    let mut out: Vec<CompositionPoint> = Vec::new();
    for name in &args.datasets {
        let prep = prepare(name, args.scale);
        let mask_token = (prep.dataset.num_items() + 1) as u32;
        let settings: Vec<(String, AugmentationSet)> = vec![
            ("crop".into(), AugmentationSet::single(Crop { eta: ETA })),
            ("mask".into(), AugmentationSet::single(Mask { gamma: GAMMA, mask_token })),
            ("reorder".into(), AugmentationSet::single(Reorder { beta: BETA })),
            (
                "crop+mask".into(),
                AugmentationSet::pair(Crop { eta: ETA }, Mask { gamma: GAMMA, mask_token }),
            ),
            (
                "crop+reorder".into(),
                AugmentationSet::pair(Crop { eta: ETA }, Reorder { beta: BETA }),
            ),
            (
                "mask+reorder".into(),
                AugmentationSet::pair(Mask { gamma: GAMMA, mask_token }, Reorder { beta: BETA }),
            ),
        ];
        println!("### {name}");
        println!("| setting | HR@10 | NDCG@10 |");
        println!("|---|---|---|");
        for (label, augs) in settings {
            let (m, secs) = run_cl4srec_with(&prep, &augs, &args, None, &run, &label);
            seqrec_obs::info!("[{name}] {label}: HR@10 {:.4} ({secs:.0}s)", m.hr_at(10));
            println!("| {label} | {:.4} | {:.4} |", m.hr_at(10), m.ndcg_at(10));
            out.push(CompositionPoint {
                dataset: name.clone(),
                setting: label,
                hr10: m.hr_at(10),
                ndcg10: m.ndcg_at(10),
            });
        }
        println!();
    }
    run.finish(&out);
    maybe_write_json(&args.out, &out);
}
