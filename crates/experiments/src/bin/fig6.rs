//! Reproduces **Figure 6** (RQ4): robustness to training-data sparsity.
//! CL4SRec (item mask, γ = 0.5 — the paper's setting) and SASRec are
//! trained on {20, 40, 60, 80, 100}% of the training users (the evaluation
//! population is fixed) on Beauty and Yelp; CL4SRec should stay ahead and
//! the gap should widen as data shrinks.
//!
//! ```text
//! cargo run --release -p seqrec-bench --bin fig6
//! ```

use cl4srec::augment::{AugmentationSet, Mask};
use seqrec_bench::args::ExpArgs;
use seqrec_bench::runners::{maybe_write_json, prepare, run_cl4srec_with, run_sasrec_with, ExpRun};
use serde::Serialize;

const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

#[derive(Serialize)]
struct SparsityPoint {
    dataset: String,
    fraction: f64,
    method: String,
    hr10: f64,
    ndcg10: f64,
}

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let mut args = ExpArgs::parse("fig6", "training-data sparsity (Figure 6, RQ4)");
    if args.datasets.len() == 4 {
        args.datasets = vec!["beauty".into(), "yelp".into()];
    }
    println!("## Figure 6 — impact of the amount of training data (scale {}, γ=0.5)\n", args.scale);

    let run = ExpRun::start("fig6", &args);
    let mut out: Vec<SparsityPoint> = Vec::new();
    for name in &args.datasets {
        let prep = prepare(name, args.scale);
        let mask_token = (prep.dataset.num_items() + 1) as u32;
        println!("### {name}");
        println!("| fraction | SASRec HR@10 | CL4SRec HR@10 | SASRec NDCG@10 | CL4SRec NDCG@10 |");
        println!("|---|---|---|---|---|");
        for frac in FRACTIONS {
            let users =
                if frac < 1.0 { Some(prep.split.train_user_subset(frac, args.seed)) } else { None };
            let pct = (frac * 100.0) as u32;
            let (sas, _) =
                run_sasrec_with(&prep, &args, users.clone(), &run, &format!("SASRec-{pct}pct"));
            let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token });
            let (cl, _) =
                run_cl4srec_with(&prep, &augs, &args, users, &run, &format!("CL4SRec-{pct}pct"));
            seqrec_obs::info!(
                "[{name}] {:.0}%: SASRec {:.4} vs CL4SRec {:.4}",
                frac * 100.0,
                sas.hr_at(10),
                cl.hr_at(10)
            );
            println!(
                "| {:.0}% | {:.4} | {:.4} | {:.4} | {:.4} |",
                frac * 100.0,
                sas.hr_at(10),
                cl.hr_at(10),
                sas.ndcg_at(10),
                cl.ndcg_at(10)
            );
            for (method, m) in [("SASRec", &sas), ("CL4SRec", &cl)] {
                out.push(SparsityPoint {
                    dataset: name.clone(),
                    fraction: frac,
                    method: method.to_string(),
                    hr10: m.hr_at(10),
                    ndcg10: m.ndcg_at(10),
                });
            }
        }
        println!();
    }
    run.finish(&out);
    maybe_write_json(&args.out, &out);
}
