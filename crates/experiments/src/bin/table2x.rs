//! Extended Table 2: the ICDE camera-ready's fuller baseline set — adds
//! FPMC, Caser and BERT4Rec to the arXiv version's seven methods.
//!
//! ```text
//! cargo run --release -p seqrec-bench --bin table2x [-- --datasets beauty]
//! ```

use seqrec_bench::args::ExpArgs;
use seqrec_bench::runners::{maybe_write_json, prepare, run_method, ExpRun, METHOD_ORDER_EXTENDED};
use seqrec_eval::DatasetResults;

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let args = ExpArgs::parse(
        "table2x",
        "extended comparison incl. FPMC, Caser, BERT4Rec (ICDE camera-ready set)",
    );
    println!(
        "## Table 2 (extended) — ICDE baseline set (scale {}, epochs {})\n",
        args.scale, args.epochs
    );
    let run = ExpRun::start("table2x", &args);
    let mut all = Vec::new();
    for name in &args.datasets {
        let prep = prepare(name, args.scale);
        let mut results = DatasetResults::new(name.clone());
        for method in METHOD_ORDER_EXTENDED {
            let (metrics, secs) = run_method(method, &prep, &args, &run);
            seqrec_obs::info!(
                "[{name}] {method}: HR@10 {:.4}, NDCG@10 {:.4} ({secs:.0}s)",
                metrics.hr_at(10),
                metrics.ndcg_at(10)
            );
            results.push(method, metrics);
        }
        println!("{}", results.to_markdown(&["SASRec"]));
        all.push(results);
    }
    run.finish(&all);
    maybe_write_json(&args.out, &all);
}
