//! Reproduces **Table 2**: HR@{5,10,20} and NDCG@{5,10,20} for Pop, BPR-MF,
//! NCF, GRU4Rec, SASRec, SASRec_BPR and CL4SRec on all four datasets, with
//! the paper's two improvement columns (CL4SRec vs SASRec, vs SASRec_BPR).
//!
//! ```text
//! cargo run --release -p seqrec-bench --bin table2 [-- --scale 0.04 --datasets beauty]
//! ```

use seqrec_bench::args::ExpArgs;
use seqrec_bench::runners::{maybe_write_json, prepare, run_method, ExpRun, METHOD_ORDER};
use seqrec_eval::DatasetResults;

fn main() {
    let _obs = seqrec_obs::init_from_env();
    let args = ExpArgs::parse(
        "table2",
        "overall performance comparison across all methods (Table 2, RQ1)",
    );
    println!(
        "## Table 2 — overall comparison (scale {}, epochs {}, pretrain {})\n",
        args.scale, args.epochs, args.pretrain_epochs
    );

    let run = ExpRun::start("table2", &args);
    let mut all = Vec::new();
    for name in &args.datasets {
        let prep = prepare(name, args.scale);
        seqrec_obs::info!(
            "[{name}] {} users, {} items, {} actions",
            prep.split.num_users(),
            prep.dataset.num_items(),
            prep.dataset.num_actions()
        );
        let mut results = DatasetResults::new(name.clone());
        for method in METHOD_ORDER {
            let (metrics, secs) = run_method(method, &prep, &args, &run);
            seqrec_obs::info!(
                "[{name}] {method}: HR@10 {:.4}, NDCG@10 {:.4} ({secs:.0}s)",
                metrics.hr_at(10),
                metrics.ndcg_at(10)
            );
            results.push(method, metrics);
        }
        println!("{}", results.to_markdown(&["SASRec", "SASRec_BPR"]));
        all.push(results);
    }
    run.finish(&all);
    maybe_write_json(&args.out, &all);
}
