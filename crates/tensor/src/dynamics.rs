//! Training-dynamics statistics collected while the optimiser applies an
//! update: per-parameter-group gradient L2 norms, update norms, and
//! post-update parameter norms, all accumulated in f64 off to the side of
//! the (unchanged) f32 update arithmetic.
//!
//! The stats are the raw material for the anomaly sentinels in
//! `seqrec-models` (NaN/Inf detection with a warn/abort policy) and for the
//! per-run dynamics traces in the run ledger. Everything here is read-only
//! with respect to the training trajectory: collecting stats never changes
//! a single bit of any parameter, moment, or gradient.

/// The parameter-group label of a parameter name: everything up to the last
/// `.`-separated segment, so `"encoder.attn0.wq"` and `"encoder.attn0.wk"`
/// share the group `"encoder.attn0"`. Single-segment names are their own
/// group.
pub fn group_of(param_name: &str) -> &str {
    param_name.rsplit_once('.').map_or(param_name, |(head, _)| head)
}

/// Accumulated squared norms for one parameter group over one optimiser
/// step.
#[derive(Clone, Debug, Default)]
pub struct GroupStat {
    /// Group label (see [`group_of`]).
    pub group: String,
    /// Scalar parameters in the group that received gradients this step.
    pub params: usize,
    /// Σ g² over the group's raw (pre-clip) gradients.
    pub grad_sq: f64,
    /// Σ δ² over the applied updates (`w_new - w_old`, including clipping,
    /// weight decay and the learning rate).
    pub update_sq: f64,
    /// Σ w² over the post-update parameter values.
    pub param_sq: f64,
}

impl GroupStat {
    /// Gradient L2 norm of the group.
    pub fn grad_norm(&self) -> f64 {
        self.grad_sq.sqrt()
    }

    /// L2 norm of the applied update.
    pub fn update_norm(&self) -> f64 {
        self.update_sq.sqrt()
    }

    /// L2 norm of the post-update parameters.
    pub fn param_norm(&self) -> f64 {
        self.param_sq.sqrt()
    }

    /// The update:parameter ratio `‖δ‖ / ‖w‖` (a healthy Adam step sits
    /// around 1e-3; ≫1e-1 signals a blow-up, ≪1e-5 a dead group). Zero when
    /// the group has no mass.
    pub fn update_ratio(&self) -> f64 {
        if self.param_sq > 0.0 {
            self.update_norm() / self.param_norm()
        } else {
            0.0
        }
    }

    /// Which quantity (if any) went non-finite, checked in causal order:
    /// a NaN/Inf gradient poisons the update, which poisons the parameters.
    pub fn nonfinite_kind(&self) -> Option<&'static str> {
        if !self.grad_sq.is_finite() {
            Some("gradient")
        } else if !self.update_sq.is_finite() {
            Some("update")
        } else if !self.param_sq.is_finite() {
            Some("parameter")
        } else {
            None
        }
    }
}

/// Everything an optimiser step reveals about training health.
#[derive(Clone, Debug, Default)]
pub struct OptimStepStats {
    /// The optimiser's step counter *after* this update (1-based).
    pub step: u64,
    /// Learning rate used by this step (after the schedule).
    pub lr: f32,
    /// Global-norm clip factor applied to every gradient (1.0 = no clip).
    pub clip_scale: f32,
    /// Per-group accumulations, in parameter visit order. Consecutive
    /// parameters sharing a group merge into one entry; a group revisited
    /// non-contiguously (unusual — modules visit their parameters together)
    /// produces separate entries.
    pub groups: Vec<GroupStat>,
}

impl OptimStepStats {
    /// Global gradient L2 norm across every group (pre-clip).
    pub fn grad_norm(&self) -> f64 {
        self.groups.iter().map(|g| g.grad_sq).sum::<f64>().sqrt()
    }

    /// Global L2 norm of the applied update.
    pub fn update_norm(&self) -> f64 {
        self.groups.iter().map(|g| g.update_sq).sum::<f64>().sqrt()
    }

    /// Global update:parameter ratio.
    pub fn update_ratio(&self) -> f64 {
        let psq: f64 = self.groups.iter().map(|g| g.param_sq).sum();
        if psq > 0.0 {
            self.update_norm() / psq.sqrt()
        } else {
            0.0
        }
    }

    /// The first group whose gradient/update/parameters went NaN or Inf,
    /// with the offending quantity — `None` on a healthy step.
    pub fn first_nonfinite(&self) -> Option<(&str, &'static str)> {
        self.groups.iter().find_map(|g| g.nonfinite_kind().map(|k| (g.group.as_str(), k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_of_strips_the_leaf_segment() {
        assert_eq!(group_of("encoder.attn0.wq"), "encoder.attn0");
        assert_eq!(group_of("cl4srec.proj.b"), "cl4srec.proj");
        assert_eq!(group_of("bias"), "bias");
    }

    #[test]
    fn norms_and_ratio() {
        let g = GroupStat {
            group: "g".into(),
            params: 2,
            grad_sq: 9.0,
            update_sq: 4.0,
            param_sq: 400.0,
        };
        assert_eq!(g.grad_norm(), 3.0);
        assert_eq!(g.update_norm(), 2.0);
        assert_eq!(g.update_ratio(), 0.1);
        assert_eq!(g.nonfinite_kind(), None);
    }

    #[test]
    fn empty_group_has_zero_ratio_not_nan() {
        let g = GroupStat::default();
        assert_eq!(g.update_ratio(), 0.0);
    }

    #[test]
    fn nonfinite_detection_reports_causal_order() {
        let mut g = GroupStat { group: "g".into(), ..Default::default() };
        g.update_sq = f64::INFINITY;
        assert_eq!(g.nonfinite_kind(), Some("update"));
        g.grad_sq = f64::NAN;
        assert_eq!(g.nonfinite_kind(), Some("gradient"));
    }

    #[test]
    fn step_stats_aggregate_across_groups() {
        let stats = OptimStepStats {
            step: 7,
            lr: 1e-3,
            clip_scale: 1.0,
            groups: vec![
                GroupStat {
                    group: "a".into(),
                    params: 1,
                    grad_sq: 9.0,
                    update_sq: 1.0,
                    param_sq: 50.0,
                },
                GroupStat {
                    group: "b".into(),
                    params: 1,
                    grad_sq: 16.0,
                    update_sq: 3.0,
                    param_sq: 50.0,
                },
            ],
        };
        assert_eq!(stats.grad_norm(), 5.0);
        assert_eq!(stats.update_norm(), 2.0);
        assert_eq!(stats.update_ratio(), 0.2);
        assert_eq!(stats.first_nonfinite(), None);
    }

    #[test]
    fn first_nonfinite_names_the_earliest_group() {
        let stats = OptimStepStats {
            groups: vec![
                GroupStat { group: "healthy".into(), param_sq: 1.0, ..Default::default() },
                GroupStat { group: "sick".into(), grad_sq: f64::NAN, ..Default::default() },
            ],
            ..Default::default()
        };
        assert_eq!(stats.first_nonfinite(), Some(("sick", "gradient")));
    }
}
