//! Partial-select top-K over a score vector.
//!
//! The serving stack scores every catalog item for a user and returns only
//! the K best; sorting the full catalog (`O(n log n)`) to keep a handful of
//! entries wastes most of the work. [`top_k`] instead streams the scores
//! past a K-entry min-heap and uses an AVX2 compare+movemask prefilter to
//! skip 8-lane blocks in which no score reaches the current admission
//! threshold — on realistic (roughly shuffled) score vectors the heap stops
//! changing early and the scan degrades to one SIMD compare per 8 items.
//!
//! Ordering is **fully deterministic**: descending by score, ties broken by
//! the smaller index. The same rule decides both heap admission and the
//! final sort, so the result is identical to a stable full-sort argsort —
//! `tests/serve_parity.rs` pins that equivalence property-wise. Scores must
//! be NaN-free (the scorers never produce NaN; the finite tripwire guards
//! training) — with NaNs present the ordering would be total (`total_cmp`)
//! but not meaningful.

use std::collections::BinaryHeap;

/// One selected entry: index into the score slice plus its score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopEntry {
    /// Position in the input slice.
    pub index: u32,
    /// Score at that position.
    pub score: f32,
}

/// Heap wrapper ordered so the **worst** entry (lowest score, then highest
/// index) is at the top, making eviction O(log k).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Worst(u32, u32); // (score bits via total-order key, index)

/// Monotone key: `total_cmp` order on f32 as an unsigned integer, so plain
/// `u32` comparisons reproduce IEEE total ordering (sign-flipped two's
/// complement trick).
fn order_key(x: f32) -> u32 {
    let b = x.to_bits();
    if b >> 31 == 1 {
        !b
    } else {
        b | 0x8000_0000
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap pops the worst: lower score first, then higher index.
        other.0.cmp(&self.0).then_with(|| self.1.cmp(&other.1))
    }
}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Returns the `k` best entries of `scores`, sorted descending by score
/// with ties broken by the smaller index. `k >= scores.len()` returns every
/// entry (still sorted); `k == 0` returns an empty vector.
pub fn top_k(scores: &[f32], k: usize) -> Vec<TopEntry> {
    if k == 0 || scores.is_empty() {
        return Vec::new();
    }
    let k = k.min(scores.len());
    let mut heap: BinaryHeap<Worst> =
        (0..k).map(|i| Worst(order_key(scores[i]), i as u32)).collect();

    let rest = &scores[k..];
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: the CPU supports AVX2 (checked above).
        unsafe { scan_avx2(rest, k as u32, &mut heap) };
        return drain_sorted(heap);
    }
    scan_scalar(rest, k as u32, &mut heap);
    drain_sorted(heap)
}

/// Admission test + replacement shared by both scan paths.
#[inline]
fn offer(heap: &mut BinaryHeap<Worst>, key: u32, index: u32) {
    let &Worst(wkey, widx) = heap.peek().expect("heap holds k >= 1 entries");
    if key > wkey || (key == wkey && index < widx) {
        heap.pop();
        heap.push(Worst(key, index));
    }
}

fn scan_scalar(scores: &[f32], base: u32, heap: &mut BinaryHeap<Worst>) {
    for (i, &s) in scores.iter().enumerate() {
        offer(heap, order_key(s), base + i as u32);
    }
}

/// Returns whether the running CPU has AVX2, detecting once.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = not yet probed, 1 = available, 2 = unavailable.
    static CACHE: AtomicU8 = AtomicU8::new(0);
    match CACHE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let ok = is_x86_feature_detected!("avx2");
            CACHE.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
            ok
        }
    }
}

/// AVX2 scan: one `>=`-threshold compare + movemask per 8 scores; only
/// blocks containing a candidate fall through to the exact scalar test.
/// `>=` (not `>`) so an equal score that wins its tie-break on index is
/// never skipped.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scan_avx2(scores: &[f32], base: u32, heap: &mut BinaryHeap<Worst>) {
    use std::arch::x86_64::*;
    let mut thresh_key = heap.peek().expect("heap holds k >= 1 entries").0;
    let mut thresh = _mm256_set1_ps(f32::from_bits(key_to_bits(thresh_key)));
    let chunks = scores.len() / 8;
    for c in 0..chunks {
        let block = _mm256_loadu_ps(scores.as_ptr().add(c * 8));
        let ge = _mm256_cmp_ps(block, thresh, _CMP_GE_OQ);
        if _mm256_movemask_ps(ge) == 0 {
            continue;
        }
        for lane in 0..8 {
            let i = c * 8 + lane;
            offer(heap, order_key(scores[i]), base + i as u32);
        }
        let new_key = heap.peek().expect("heap holds k >= 1 entries").0;
        if new_key != thresh_key {
            thresh_key = new_key;
            thresh = _mm256_set1_ps(f32::from_bits(key_to_bits(thresh_key)));
        }
    }
    for (i, &s) in scores.iter().enumerate().skip(chunks * 8) {
        offer(heap, order_key(s), base + i as u32);
    }
}

/// Heap → descending (score, then ascending index) order.
fn drain_sorted(heap: BinaryHeap<Worst>) -> Vec<TopEntry> {
    let mut v = heap.into_vec();
    v.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    v.into_iter()
        .map(|Worst(key, index)| TopEntry { index, score: f32::from_bits(key_to_bits(key)) })
        .collect()
}

/// Inverse of [`order_key`]: recovers the f32 bit pattern whose ordering
/// key is `key` (used to build the SIMD threshold register and to read
/// scores back out of the heap).
fn key_to_bits(key: u32) -> u32 {
    if key >> 31 == 1 {
        key & 0x7fff_ffff
    } else {
        !key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: stable full-sort argsort under the same ordering rule.
    fn brute_force(scores: &[f32], k: usize) -> Vec<TopEntry> {
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            scores[b as usize].total_cmp(&scores[a as usize]).then_with(|| a.cmp(&b))
        });
        idx.truncate(k);
        idx.into_iter().map(|i| TopEntry { index: i, score: scores[i as usize] }).collect()
    }

    #[test]
    fn matches_brute_force_on_random_scores() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 65536.0 - 0.5
        };
        for len in [1usize, 7, 8, 9, 63, 200, 1000] {
            let scores: Vec<f32> = (0..len).map(|_| next()).collect();
            for k in [1usize, 2, 10, len, len + 1] {
                assert_eq!(top_k(&scores, k), brute_force(&scores, k.min(len)), "len={len} k={k}");
            }
        }
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        let scores = vec![1.0, 3.0, 3.0, -2.0, 3.0, 1.0];
        let got = top_k(&scores, 4);
        let idx: Vec<u32> = got.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![1, 2, 4, 0]);
    }

    #[test]
    fn negative_and_duplicate_scores() {
        let scores = vec![-1.0, -1.0, -5.0, -0.5, -0.5];
        assert_eq!(top_k(&scores, 3), brute_force(&scores, 3));
    }

    #[test]
    fn k_zero_and_empty_input() {
        assert!(top_k(&[1.0, 2.0], 0).is_empty());
        assert!(top_k(&[], 5).is_empty());
    }

    #[test]
    fn k_at_least_len_returns_full_ranking() {
        let scores = vec![0.25, -0.5, 0.25, 2.0];
        let full = top_k(&scores, 4);
        assert_eq!(full, brute_force(&scores, 4));
        assert_eq!(top_k(&scores, 9), full);
    }

    #[test]
    fn order_key_is_monotone() {
        let vals = [-f32::INFINITY, -1.0e30, -1.0, -0.0, 0.0, 1.0e-10, 2.5, f32::INFINITY];
        for w in vals.windows(2) {
            assert!(order_key(w[0]) <= order_key(w[1]), "{} vs {}", w[0], w[1]);
            assert_eq!(key_to_bits(order_key(w[0])), w[0].to_bits());
        }
    }
}
