//! The register-blocked `MR×NR` microkernel.
//!
//! The microkernel is the only code that touches `f32`s during the O(m·k·n)
//! part of a GEMM: it computes a full `MR×NR` tile of `C` from one packed
//! A-panel (`kc×MR`, row index fastest) and one packed B-panel (`kc×NR`,
//! column index fastest), keeping all `MR·NR` partial sums in registers for
//! the whole `kc` loop.
//!
//! `MR = 6`, `NR = 16` targets AVX2: 6 rows × two 8-lane vectors = 12 YMM
//! accumulators, plus 2 vectors of B and 1 broadcast of A = 15 of the 16
//! architectural YMM registers. On machines without AVX2+FMA a plain-array
//! kernel with the same panel contract is used; LLVM vectorises it with
//! whatever the baseline target offers (SSE2 on x86-64).
//!
//! Feature detection runs once and is cached in an atomic so the dispatch
//! costs one relaxed load per tile.

/// Microkernel tile rows (register-block height).
pub const MR: usize = 6;
/// Microkernel tile columns (register-block width; two 8-lane AVX vectors).
pub const NR: usize = 16;

/// Computes one `mr×nr` tile (`mr ≤ MR`, `nr ≤ NR`) of `C`.
///
/// * `apanel[p*MR + r]` holds `A[r, p]` of the tile (zero-padded to `MR`).
/// * `bpanel[p*NR + c]` holds `B[p, c]` of the tile (zero-padded to `NR`).
/// * `c` is the tile's top-left element; row `r` of the tile lives at
///   `c[r*ldc ..]`.
/// * `accumulate == false` overwrites the tile, `true` adds to it (used for
///   every k-block after the first).
///
/// Full tiles are written straight to `c`; edge tiles are computed at full
/// `MR×NR` width into a stack buffer (the packed panels are zero-padded, so
/// the extra lanes compute zeros) and then copied back clipped.
#[inline]
#[allow(clippy::too_many_arguments)] // a GEMM microkernel call site is exactly this wide
pub fn tile(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
    accumulate: bool,
) {
    debug_assert!(apanel.len() >= kc * MR);
    debug_assert!(bpanel.len() >= kc * NR);
    debug_assert!((1..=MR).contains(&mr) && (1..=NR).contains(&nr));
    if mr == MR && nr == NR {
        debug_assert!(c.len() >= (MR - 1) * ldc + NR);
        kernel(kc, apanel.as_ptr(), bpanel.as_ptr(), c.as_mut_ptr(), ldc, accumulate);
    } else {
        debug_assert!(c.len() >= (mr - 1) * ldc + nr);
        let mut tmp = [0.0f32; MR * NR];
        kernel(kc, apanel.as_ptr(), bpanel.as_ptr(), tmp.as_mut_ptr(), NR, false);
        for r in 0..mr {
            let dst = &mut c[r * ldc..r * ldc + nr];
            let src = &tmp[r * NR..r * NR + nr];
            if accumulate {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            } else {
                dst.copy_from_slice(src);
            }
        }
    }
}

/// Dispatches a full `MR×NR` tile to the best available kernel.
///
/// Safety contract shared by both kernels: `a` points at `kc*MR` packed
/// floats, `b` at `kc*NR`, and `c` at a tile whose last element
/// `c[(MR-1)*ldc + NR - 1]` is in bounds.
#[inline]
fn kernel(kc: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize, accumulate: bool) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_available() {
        // SAFETY: caller upholds the pointer contract; the CPU supports
        // avx2+fma (checked above).
        unsafe { kernel_avx2(kc, a, b, c, ldc, accumulate) };
        return;
    }
    kernel_generic(kc, a, b, c, ldc, accumulate);
}

/// Returns whether the running CPU has AVX2 and FMA, detecting once.
#[cfg(target_arch = "x86_64")]
fn avx2_fma_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = not yet probed, 1 = available, 2 = unavailable.
    static CACHE: AtomicU8 = AtomicU8::new(0);
    match CACHE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let ok = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
            CACHE.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
            ok
        }
    }
}

/// AVX2+FMA kernel: 12 YMM accumulators, 2 B loads and 6 A broadcasts per
/// `p`, with two fused multiply-adds per row.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_avx2(
    kc: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    ldc: usize,
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    // acc[r][0] covers columns 0..8 of row r, acc[r][1] columns 8..16.
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(b.add(p * NR));
        let b1 = _mm256_loadu_ps(b.add(p * NR + 8));
        // MR is a compile-time constant; LLVM fully unrolls this loop and
        // keeps every accumulator in a register.
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm256_broadcast_ss(&*a.add(p * MR + r));
            acc_r[0] = _mm256_fmadd_ps(av, b0, acc_r[0]);
            acc_r[1] = _mm256_fmadd_ps(av, b1, acc_r[1]);
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        let row = c.add(r * ldc);
        let (mut v0, mut v1) = (acc_r[0], acc_r[1]);
        if accumulate {
            v0 = _mm256_add_ps(v0, _mm256_loadu_ps(row));
            v1 = _mm256_add_ps(v1, _mm256_loadu_ps(row.add(8)));
        }
        _mm256_storeu_ps(row, v0);
        _mm256_storeu_ps(row.add(8), v1);
    }
}

/// Portable kernel with the same panel contract; the accumulator array is
/// small enough that LLVM keeps it in registers / auto-vectorises.
fn kernel_generic(
    kc: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    ldc: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    // SAFETY: caller upholds the pointer contract documented on `kernel`.
    unsafe {
        for p in 0..kc {
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = *a.add(p * MR + r);
                for (j, s) in acc_r.iter_mut().enumerate() {
                    *s += av * *b.add(p * NR + j);
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            let row = c.add(r * ldc);
            for (j, &s) in acc_r.iter().enumerate() {
                let dst = row.add(j);
                *dst = if accumulate { *dst + s } else { s };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Packs a row-major `MR×kc` A-tile and `kc×NR` B-tile, runs the
    /// microkernel, and checks against a scalar reference.
    fn check(kc: usize, mr: usize, nr: usize, accumulate: bool) {
        let mut apanel = vec![0.0f32; kc * MR];
        let mut bpanel = vec![0.0f32; kc * NR];
        let mut a = vec![0.0f32; MR * kc];
        let mut bmat = vec![0.0f32; kc * NR];
        let mut s = 1u64;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for r in 0..mr {
            for p in 0..kc {
                let v = next();
                a[r * kc + p] = v;
                apanel[p * MR + r] = v;
            }
        }
        for p in 0..kc {
            for j in 0..nr {
                let v = next();
                bmat[p * NR + j] = v;
                bpanel[p * NR + j] = v;
            }
        }
        let ldc = NR + 3; // deliberately non-NR stride
        let mut c = vec![0.5f32; MR * ldc];
        let mut expect = c.clone();
        for r in 0..mr {
            for j in 0..nr {
                let mut dot = 0.0f32;
                for p in 0..kc {
                    dot += a[r * kc + p] * bmat[p * NR + j];
                }
                let e = &mut expect[r * ldc + j];
                *e = if accumulate { *e + dot } else { dot };
            }
        }
        tile(kc, &apanel, &bpanel, &mut c, ldc, mr, nr, accumulate);
        for r in 0..mr {
            for j in 0..nr {
                let (got, want) = (c[r * ldc + j], expect[r * ldc + j]);
                assert!(
                    (got - want).abs() <= 1e-4,
                    "tile({kc},{mr},{nr},acc={accumulate}) at ({r},{j}): {got} vs {want}"
                );
            }
        }
        // Elements outside the mr×nr window are untouched.
        for r in 0..MR {
            for j in 0..ldc {
                if r >= mr || j >= nr {
                    assert_eq!(c[r * ldc + j], 0.5, "clobbered ({r},{j})");
                }
            }
        }
    }

    #[test]
    fn full_tile_store_and_accumulate() {
        check(1, MR, NR, false);
        check(37, MR, NR, false);
        check(37, MR, NR, true);
    }

    #[test]
    fn edge_tiles_clip_writes() {
        for mr in 1..=MR {
            for nr in [1, 2, 7, 8, 9, 15, NR] {
                check(5, mr, nr, false);
                check(5, mr, nr, true);
            }
        }
    }
}
