//! Panel packing for the blocked GEMM.
//!
//! Packing copies a cache-block of each operand into a layout where the
//! microkernel's reads are perfectly sequential, and it is the reason one
//! microkernel serves all of `nn`/`nt`/`tn`: the layout-specific strides are
//! paid once here, at O(m·k + k·n) cost, instead of inside the O(m·k·n)
//! inner loop.
//!
//! * A-blocks become `MR`-row panels: `apack[panel][p*MR + r]` so the kernel
//!   reads `MR` values per `p` contiguously.
//! * B-blocks become `NR`-column panels: `bpack[panel][p*NR + c]`.
//!
//! Partial edge panels are **zero-padded** to full `MR`/`NR` width, so the
//! microkernel never needs a reduced-size multiply path — only the final
//! write-back is clipped (see [`super::micro::tile`]).

use super::gemm::MatRef;
use super::micro::{MR, NR};

/// Bytes needed to pack an `mc×kc` A-block: edge rows round up to `MR`.
pub fn packed_a_len(mc: usize, kc: usize) -> usize {
    mc.div_ceil(MR) * MR * kc
}

/// Bytes needed to pack a `kc×nc` B-block: edge columns round up to `NR`.
pub fn packed_b_len(kc: usize, nc: usize) -> usize {
    nc.div_ceil(NR) * NR * kc
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR`-row panels in `buf`.
pub fn pack_a(a: &MatRef<'_>, ic: usize, pc: usize, mc: usize, kc: usize, buf: &mut [f32]) {
    debug_assert!(buf.len() >= packed_a_len(mc, kc));
    for pi in 0..mc.div_ceil(MR) {
        let panel = &mut buf[pi * MR * kc..(pi + 1) * MR * kc];
        let rows = (mc - pi * MR).min(MR);
        // Row-outer traversal: for the row-major (`nn`) layout each `p` sweep
        // reads contiguously, and the strided writes land in a panel small
        // enough (MR·kc floats) to stay in L1/L2.
        for r in 0..rows {
            let row0 = a.offset(ic + pi * MR + r, pc);
            for p in 0..kc {
                panel[p * MR + r] = a.data[row0 + p * a.cs];
            }
        }
        for r in rows..MR {
            for p in 0..kc {
                panel[p * MR + r] = 0.0;
            }
        }
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `NR`-column panels in `buf`.
pub fn pack_b(b: &MatRef<'_>, pc: usize, jc: usize, kc: usize, nc: usize, buf: &mut [f32]) {
    debug_assert!(buf.len() >= packed_b_len(kc, nc));
    for pj in 0..nc.div_ceil(NR) {
        let panel = &mut buf[pj * NR * kc..(pj + 1) * NR * kc];
        let cols = (nc - pj * NR).min(NR);
        for p in 0..kc {
            let row0 = b.offset(pc + p, jc + pj * NR);
            let dst = &mut panel[p * NR..(p + 1) * NR];
            for (c, d) in dst.iter_mut().enumerate().take(cols) {
                *d = b.data[row0 + c * b.cs];
            }
            for d in dst.iter_mut().skip(cols) {
                *d = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_pads_edge_rows_with_zeros() {
        // 7×3 row-major A (rs=3, cs=1), packed whole: 2 panels of MR=6 rows.
        let data: Vec<f32> = (0..21).map(|v| v as f32).collect();
        let a = MatRef { data: &data, rs: 3, cs: 1 };
        let mut buf = vec![-1.0f32; packed_a_len(7, 3)];
        pack_a(&a, 0, 0, 7, 3, &mut buf);
        // Panel 0, p=1, r=2 -> A[2,1] = 7.
        assert_eq!(buf[MR + 2], 7.0);
        // Panel 1 holds row 6 then 5 zero rows: p=2, r=0 -> A[6,2] = 20.
        assert_eq!(buf[MR * 3 + 2 * MR], 20.0);
        for p in 0..3 {
            for r in 1..MR {
                assert_eq!(buf[MR * 3 + p * MR + r], 0.0, "pad at p={p} r={r}");
            }
        }
    }

    #[test]
    fn pack_b_handles_column_major_views() {
        // Logical 2×3 B viewed from a stored 3×2 row-major matrix (the `nt`
        // case): B[p][c] = stored[c][p] -> rs=1, cs=2.
        let stored: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = MatRef { data: &stored, rs: 1, cs: 2 };
        let mut buf = vec![-1.0f32; packed_b_len(2, 3)];
        pack_b(&b, 0, 0, 2, 3, &mut buf);
        // p=0: B[0,:] = stored[:,0] = [1,3,5]; rest of the NR lane is zero.
        assert_eq!(&buf[..3], &[1.0, 3.0, 5.0]);
        assert!(buf[3..NR].iter().all(|&v| v == 0.0));
        // p=1: B[1,:] = stored[:,1] = [2,4,6].
        assert_eq!(&buf[NR..NR + 3], &[2.0, 4.0, 6.0]);
    }
}
