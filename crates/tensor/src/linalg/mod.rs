//! Blocked matrix-multiply engine.
//!
//! Three layout variants are provided — `nn` (`A·B`), `nt` (`A·Bᵀ`) and
//! `tn` (`Aᵀ·B`) — because the backward pass of a matmul needs the
//! transposed variants and materialising transposes would double memory
//! traffic. All three are thin wrappers over one packed GEMM engine: a
//! strided [`gemm::MatRef`] view absorbs the layout, so `nt` and `tn` run
//! the exact same blocked code path as `nn`.
//!
//! ## Engine structure
//!
//! The engine ([`gemm`]) is a classic three-level cache-blocked GEMM in the
//! Goto/BLIS mould; [`micro`], [`pack`] and [`scratch`] document each layer
//! in detail:
//!
//! * **Register blocking** ([`micro`]): an `MR×NR = 6×16` microkernel keeps
//!   96 partial sums in registers across the whole depth loop — on AVX2+FMA
//!   machines as 12 YMM accumulators updated with fused multiply-adds
//!   (runtime-detected once, with a portable fallback kernel).
//! * **Panel packing** ([`pack`]): each `MC×KC` block of A and `KC×NC`
//!   block of B is copied into panel layouts (`MR`-row / `NR`-column,
//!   zero-padded at the edges) so the microkernel's reads are sequential
//!   regardless of the operand's original layout or transposition.
//! * **Cache blocking** ([`gemm`]): the `NC → KC → MC` loop nest sizes the
//!   packed B block for L2/L3 (`KC·NC` = 1 MiB), the packed A block for L2
//!   (`MC·KC` ≈ 120 KiB) and one B panel for L1 (`KC·NR` = 16 KiB).
//! * **Threading**: within each `(jc, pc)` block, row bands of `C`
//!   (`MC` rows each) are distributed over rayon workers via
//!   `par_chunks_mut` — disjoint output regions, no locks, no unsafe
//!   aliasing. Workers pack their own A panels into thread-local scratch
//!   ([`scratch`]), so steady-state GEMM performs **zero allocation**.
//!   The in-tree rayon shim is a real work-stealing pool sized by
//!   `SEQREC_THREADS` / available parallelism (`shims/README.md`);
//!   because the bands are disjoint, results are bit-identical at every
//!   pool size, and `SEQREC_THREADS=1` is a guaranteed serial mode.
//!   Committed benchmark numbers record the pool size they were measured
//!   at (`BENCH_matmul.json`'s `environment` block, `BENCH_train.json`'s
//!   `threads` field).
//!
//! ### Retuning
//!
//! `MR`/`NR` are fixed by the register file (changing them means rewriting
//! the microkernel); `MC`/`KC`/`NC` in [`gemm`] are plain constants chosen
//! for a ~32 KiB L1D / ~1 MiB L2 part. On a machine with different cache
//! sizes, re-derive them as: `KC·NR·4 B ≲ ½·L1D`, `MC·KC·4 B ≲ ½·L2`,
//! `NC·KC·4 B ≲ L3 share`, keeping `MC` a multiple of `MR` and `NC` a
//! multiple of `NR`. The `matmul` bench group reports GFLOP/s per shape for
//! validating a retune.
//!
//! Problems with fewer than [`SMALL_THRESHOLD`] multiply-adds per output
//! row (or outputs narrower than a register tile) skip packing entirely and
//! run the direct kernels in [`simple`]. The dispatch never reads the row
//! count, so each output row's bits are independent of how many rows share
//! the call — the property the serving stack's cached-state parity contract
//! rests on (`tests/row_invariance.rs`).
//!
//! Batched versions (`bmm_*`) treat every leading dimension as batch; the
//! two trailing dimensions are the matrix. Multi-head attention uses these
//! with shape `[batch·heads, T, d_head]`. Large single-batch inputs route
//! through the parallel 2D engine rather than a serial per-batch kernel.

pub mod gemm;
pub mod micro;
pub mod pack;
mod scratch;
pub mod simple;

use rayon::prelude::*;

use crate::tensor::Tensor;
use gemm::MatRef;
use micro::NR;

/// Below this much work **per output row** (`k·n` multiply-adds) the packed
/// engine is skipped in favour of the direct kernels in [`simple`].
///
/// Deliberately a function of `k` and `n` only, never `m`: the serving
/// stack scores micro-batches whose row counts differ from the evaluator's
/// batches, and its parity contract promises bit-exact scores either way.
/// Both kernel paths compute each output row independently, so results are
/// row-batch-invariant exactly when the *path choice* is — which requires
/// the dispatch predicate to ignore the row count. Pinned by
/// `tests/row_invariance.rs`.
pub const SMALL_THRESHOLD: usize = 1 << 10;

/// Below this many multiply-adds a single thread is faster than fanning
/// out over batches.
const PAR_THRESHOLD: usize = 1 << 15;

/// `C = A · B` for rank-2 tensors `[m,k] · [k,n] -> [m,n]`.
///
/// # Panics
/// Panics unless `a` is `[m,k]` and `b` is `[k,n]`.
pub fn matmul_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul_nn inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    nn_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// `C = A · Bᵀ` for rank-2 tensors `[m,k] · ([n,k])ᵀ -> [m,n]`.
///
/// # Panics
/// Panics unless `a` is `[m,k]` and `b` is `[n,k]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (n, k2) = dims2(b);
    assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    nt_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// `C = Aᵀ · B` for rank-2 tensors `([k,m])ᵀ · [k,n] -> [m,n]`.
///
/// # Panics
/// Panics unless `a` is `[k,m]` and `b` is `[k,n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    tn_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// `matmul_nn` forced through the packed engine regardless of size.
/// Exists so tests and benches can exercise the blocked path on shapes the
/// size heuristic would route to [`simple`]; prefer [`matmul_nn`].
#[doc(hidden)]
pub fn matmul_nn_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul_nn inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    gemm::gemm(m, k, n, nn_a(a.data(), k), nn_b(b.data(), n), &mut out);
    Tensor::from_vec([m, n], out)
}

/// `matmul_nt` forced through the packed engine; see [`matmul_nn_blocked`].
#[doc(hidden)]
pub fn matmul_nt_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (n, k2) = dims2(b);
    assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    gemm::gemm(m, k, n, nn_a(a.data(), k), nt_b(b.data(), k), &mut out);
    Tensor::from_vec([m, n], out)
}

/// `matmul_tn` forced through the packed engine; see [`matmul_nn_blocked`].
#[doc(hidden)]
pub fn matmul_tn_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    gemm::gemm(m, k, n, tn_a(a.data(), m), nn_b(b.data(), n), &mut out);
    Tensor::from_vec([m, n], out)
}

/// Batched `A · B`: `[..., m, k] · [..., k, n] -> [..., m, n]` with identical
/// leading (batch) dimensions.
pub fn bmm_nn(a: &Tensor, b: &Tensor) -> Tensor {
    bmm(a, b, Kind::Nn)
}

/// Batched `A · Bᵀ`: `[..., m, k] · [..., n, k] -> [..., m, n]`.
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    bmm(a, b, Kind::Nt)
}

/// Batched `Aᵀ · B`: `[..., k, m] · [..., k, n] -> [..., m, n]`.
pub fn bmm_tn(a: &Tensor, b: &Tensor) -> Tensor {
    bmm(a, b, Kind::Tn)
}

/// Reference implementation (naive triple loop) used by tests and by the
/// `matmul` ablation bench.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2);
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += ad[i * k + p] * bd[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec([m, n], out)
}

// --- layout views -----------------------------------------------------------

fn nn_a(data: &[f32], k: usize) -> MatRef<'_> {
    MatRef { data, rs: k, cs: 1 }
}

fn nn_b(data: &[f32], n: usize) -> MatRef<'_> {
    MatRef { data, rs: n, cs: 1 }
}

/// Logical `[k,n]` B viewed from storage `[n,k]` (the `nt` case).
fn nt_b(data: &[f32], k: usize) -> MatRef<'_> {
    MatRef { data, rs: 1, cs: k }
}

/// Logical `[m,k]` A viewed from storage `[k,m]` (the `tn` case).
fn tn_a(data: &[f32], m: usize) -> MatRef<'_> {
    MatRef { data, rs: 1, cs: m }
}

/// Thin rows skip packing; so do outputs narrower than a register tile,
/// where padded microkernel lanes would be mostly wasted work. Must not
/// read `m` (see [`SMALL_THRESHOLD`]); the packed engine's zero-padded
/// M-edges handle any row count, including `m < MR`.
fn use_simple(k: usize, n: usize) -> bool {
    k * n < SMALL_THRESHOLD || n < NR
}

/// One relaxed-atomic probe per GEMM call: total FLOPs (2·m·k·n), call
/// count and a per-call FLOP histogram. All matmul entry points (2D and
/// batched) funnel through the three `*_into` kernels, so this is the single
/// place GEMM work is metered.
#[inline]
fn count_gemm(m: usize, k: usize, n: usize) {
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    seqrec_obs::metrics::GEMM_FLOPS.add(flops);
    seqrec_obs::metrics::GEMM_CALLS.incr();
    seqrec_obs::metrics::GEMM_FLOPS_PER_CALL.record(flops);
}

fn nn_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    count_gemm(m, k, n);
    let _s = seqrec_obs::detail_span!("gemm.nn");
    if use_simple(k, n) {
        simple::nn(a, b, out, m, k, n);
    } else {
        gemm::gemm(m, k, n, nn_a(a, k), nn_b(b, n), out);
    }
}

fn nt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    count_gemm(m, k, n);
    let _s = seqrec_obs::detail_span!("gemm.nt");
    if use_simple(k, n) {
        simple::nt(a, b, out, m, k, n);
    } else {
        gemm::gemm(m, k, n, nn_a(a, k), nt_b(b, k), out);
    }
}

fn tn_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    count_gemm(m, k, n);
    let _s = seqrec_obs::detail_span!("gemm.tn");
    if use_simple(k, n) {
        simple::tn(a, b, out, m, k, n);
    } else {
        gemm::gemm(m, k, n, tn_a(a, m), nn_b(b, n), out);
    }
}

// --- batched ----------------------------------------------------------------

#[derive(Clone, Copy)]
enum Kind {
    Nn,
    Nt,
    Tn,
}

fn bmm(a: &Tensor, b: &Tensor, kind: Kind) -> Tensor {
    let (ba, r0, c0) = a.shape().as_batched_matrix();
    let (bb, r1, c1) = b.shape().as_batched_matrix();
    assert_eq!(ba, bb, "bmm batch dims differ: {} vs {}", a.shape(), b.shape());
    let (m, k, n) = match kind {
        Kind::Nn => {
            assert_eq!(c0, r1, "bmm_nn inner dims: {} vs {}", a.shape(), b.shape());
            (r0, c0, c1)
        }
        Kind::Nt => {
            assert_eq!(c0, c1, "bmm_nt inner dims: {} vs {}", a.shape(), b.shape());
            (r0, c0, r1)
        }
        Kind::Tn => {
            assert_eq!(r0, r1, "bmm_tn inner dims: {} vs {}", a.shape(), b.shape());
            (c0, r0, c1)
        }
    };
    let out_shape = a.shape().with_matrix_dims(m, n);
    let (as_, bs) = (a.data(), b.data());
    let (a_stride, b_stride) = (r0 * c0, r1 * c1);
    let mut out = vec![0.0f32; ba * m * n];

    let run = |(i, chunk): (usize, &mut [f32])| {
        let av = &as_[i * a_stride..(i + 1) * a_stride];
        let bv = &bs[i * b_stride..(i + 1) * b_stride];
        match kind {
            Kind::Nn => nn_into(av, bv, chunk, m, k, n),
            Kind::Nt => nt_into(av, bv, chunk, m, k, n),
            Kind::Tn => tn_into(av, bv, chunk, m, k, n),
        }
    };
    if ba > 1 && ba * m * k * n >= PAR_THRESHOLD {
        out.par_chunks_mut(m * n).enumerate().for_each(run);
    } else {
        // Covers ba == 1 of any size: a single batch is exactly a 2D matmul,
        // so `run` hands it to the blocked engine, whose internal row-band
        // parallelism replaces the (useless) batch fan-out.
        out.chunks_mut(m * n).enumerate().for_each(run);
    }
    Tensor::from_vec(out_shape, out)
}

fn dims2(t: &Tensor) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "expected rank-2 tensor, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    fn close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        let d = a.max_diff(b);
        assert!(d <= tol, "max diff {d} > {tol}");
    }

    #[test]
    fn nn_matches_naive() {
        let mut r = rng(10);
        let a = uniform([7, 5], -1.0, 1.0, &mut r);
        let b = uniform([5, 9], -1.0, 1.0, &mut r);
        close(&matmul_nn(&a, &b), &matmul_naive(&a, &b), 1e-5);
    }

    #[test]
    fn nt_is_nn_with_transpose() {
        let mut r = rng(11);
        let a = uniform([4, 6], -1.0, 1.0, &mut r);
        let b = uniform([3, 6], -1.0, 1.0, &mut r);
        close(&matmul_nt(&a, &b), &matmul_nn(&a, &b.transpose2()), 1e-5);
    }

    #[test]
    fn tn_is_nn_with_transpose() {
        let mut r = rng(12);
        let a = uniform([6, 4], -1.0, 1.0, &mut r);
        let b = uniform([6, 3], -1.0, 1.0, &mut r);
        close(&matmul_tn(&a, &b), &matmul_nn(&a.transpose2(), &b), 1e-5);
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut r = rng(13);
        let a = uniform([64, 48], -1.0, 1.0, &mut r);
        let b = uniform([48, 40], -1.0, 1.0, &mut r);
        close(&matmul_nn(&a, &b), &matmul_naive(&a, &b), 1e-4);
    }

    #[test]
    fn blocked_matches_naive_on_all_layouts() {
        let mut r = rng(21);
        // Deliberately not multiples of MR/NR/KC.
        let a = uniform([13, 7], -1.0, 1.0, &mut r);
        let b = uniform([7, 19], -1.0, 1.0, &mut r);
        close(&matmul_nn_blocked(&a, &b), &matmul_naive(&a, &b), 1e-4);

        let bt = uniform([19, 7], -1.0, 1.0, &mut r);
        close(&matmul_nt_blocked(&a, &bt), &matmul_nn(&a, &bt.transpose2()), 1e-4);

        let at = uniform([7, 13], -1.0, 1.0, &mut r);
        close(&matmul_tn_blocked(&at, &b), &matmul_nn(&at.transpose2(), &b), 1e-4);
    }

    #[test]
    fn bmm_runs_each_batch_independently() {
        let mut r = rng(14);
        let a = uniform([3, 4, 5], -1.0, 1.0, &mut r);
        let b = uniform([3, 5, 6], -1.0, 1.0, &mut r);
        let c = bmm_nn(&a, &b);
        assert_eq!(c.shape().dims(), &[3, 4, 6]);
        for i in 0..3 {
            let ai = Tensor::from_vec([4, 5], a.data()[i * 20..(i + 1) * 20].to_vec());
            let bi = Tensor::from_vec([5, 6], b.data()[i * 30..(i + 1) * 30].to_vec());
            let ci = Tensor::from_vec([4, 6], c.data()[i * 24..(i + 1) * 24].to_vec());
            close(&ci, &matmul_nn(&ai, &bi), 1e-5);
        }
    }

    #[test]
    fn bmm_nt_and_tn_match_2d_kernels() {
        let mut r = rng(15);
        let a = uniform([2, 4, 5], -1.0, 1.0, &mut r);
        let b = uniform([2, 6, 5], -1.0, 1.0, &mut r);
        let c = bmm_nt(&a, &b);
        assert_eq!(c.shape().dims(), &[2, 4, 6]);
        let a0 = Tensor::from_vec([4, 5], a.data()[..20].to_vec());
        let b0 = Tensor::from_vec([6, 5], b.data()[..30].to_vec());
        let c0 = Tensor::from_vec([4, 6], c.data()[..24].to_vec());
        close(&c0, &matmul_nt(&a0, &b0), 1e-5);

        let d = bmm_tn(&a, &uniform([2, 4, 3], -1.0, 1.0, &mut r));
        assert_eq!(d.shape().dims(), &[2, 5, 3]);
    }

    #[test]
    fn single_batch_bmm_takes_the_2d_path() {
        // ba == 1 with work far above PAR_THRESHOLD: must match the 2D
        // matmul exactly (it now *is* the 2D blocked engine).
        let mut r = rng(17);
        let a = uniform([1, 48, 40], -1.0, 1.0, &mut r);
        let b = uniform([1, 40, 56], -1.0, 1.0, &mut r);
        let c = bmm_nn(&a, &b);
        assert_eq!(c.shape().dims(), &[1, 48, 56]);
        let a2 = Tensor::from_vec([48, 40], a.data().to_vec());
        let b2 = Tensor::from_vec([40, 56], b.data().to_vec());
        let c2 = Tensor::from_vec([48, 56], c.data().to_vec());
        close(&c2, &matmul_nn(&a2, &b2), 1e-5);
    }

    #[test]
    #[should_panic]
    fn mismatched_inner_dims_panic() {
        matmul_nn(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = rng(16);
        let a = uniform([5, 5], -1.0, 1.0, &mut r);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            eye.data_mut()[i * 5 + i] = 1.0;
        }
        close(&matmul_nn(&a, &eye), &a, 1e-6);
        close(&matmul_nn(&eye, &a), &a, 1e-6);
    }
}
