//! The cache-blocked GEMM driver.
//!
//! Classic three-level blocking (Goto/BLIS structure) around the
//! [`super::micro`] register kernel:
//!
//! ```text
//! for jc in 0..n step NC          // B column block  -> bpack fits L3
//!   for pc in 0..k step KC        // depth block     -> one B panel fits L1,
//!                                 //                    apack fits L2
//!     pack B[pc.., jc..] -> bpack           (KC×NC, NR-column panels)
//!     parallel for ic in 0..m step MC       // rows of C, disjoint per task
//!       pack A[ic.., pc..] -> apack         (MC×KC, MR-row panels)
//!       for jr in 0..nc step NR             // macro-tile sweep
//!         for ir in 0..mc step MR
//!           microkernel -> C[ic+ir.., jc+jr..]
//! ```
//!
//! Parallelism is over the row blocks of `C` inside each `(jc, pc)`
//! iteration: `out.par_chunks_mut(MC*n)` hands every worker a disjoint,
//! contiguous band of rows, so no unsafe aliasing is needed. Each worker
//! packs its own A-block into a thread-local buffer ([`super::scratch`]);
//! the shared read-only `bpack` is packed once per `(jc, pc)` by the
//! calling thread.
//!
//! The first depth block (`pc == 0`) stores tiles, later blocks accumulate
//! — `C` is never pre-zeroed and partial sums round-trip through memory at
//! most `⌈k/KC⌉ - 1` times.

use rayon::prelude::*;

use super::micro::{self, MR, NR};
use super::pack;
use super::scratch;

/// Rows of `C` per macro-tile (A-block height). A multiple of `MR`;
/// `MC·KC` floats of packed A ≈ 480 KiB, sized for a private L2.
pub const MC: usize = 120;
/// Depth of one packed block. `KC·NR` floats of one B panel = 16 KiB,
/// half of a typical 32 KiB L1D.
pub const KC: usize = 256;
/// Columns of `C` per outer block. `KC·NC` floats of packed B = 1 MiB,
/// resident in L2/L3 across all row blocks of the same `(jc, pc)`.
pub const NC: usize = 1024;

/// A read-only strided view of a logical `[rows, cols]` matrix, used so one
/// packing routine serves all storage layouts:
///
/// * `nn` operand stored row-major `[r, c]`: `rs = cols`, `cs = 1`
/// * transposed operand stored `[c, r]` (the `nt` B / `tn` A): `rs = 1`,
///   `cs = rows of storage`
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    /// Backing storage.
    pub data: &'a [f32],
    /// Element distance between logical rows.
    pub rs: usize,
    /// Element distance between logical columns.
    pub cs: usize,
}

impl MatRef<'_> {
    /// Flat index of logical element `(i, j)`.
    #[inline]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        i * self.rs + j * self.cs
    }
}

/// `out = A·B` where `A` is logically `[m,k]`, `B` is `[k,n]`, and `out` is
/// row-major `[m,n]`. `out` is fully overwritten.
pub fn gemm(m: usize, k: usize, n: usize, a: MatRef<'_>, b: MatRef<'_>, out: &mut [f32]) {
    assert_eq!(out.len(), m * n, "gemm output buffer mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    assert!(a.offset(m - 1, k - 1) < a.data.len(), "gemm A view out of bounds");
    assert!(b.offset(k - 1, n - 1) < b.data.len(), "gemm B view out of bounds");

    for jc in (0..n).step_by(NC) {
        let nc = (n - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            let first = pc == 0;
            scratch::with_pack_b(pack::packed_b_len(kc, nc), |bpack| {
                pack::pack_b(&b, pc, jc, kc, nc, bpack);
                let bpack = &*bpack;
                out.par_chunks_mut(MC * n).enumerate().for_each(|(ib, c_rows)| {
                    let mc = c_rows.len() / n;
                    scratch::with_pack_a(pack::packed_a_len(mc, kc), |apack| {
                        pack::pack_a(&a, ib * MC, pc, mc, kc, apack);
                        macro_tile(mc, nc, kc, n, jc, apack, bpack, c_rows, first);
                    });
                });
            });
        }
    }
}

/// Sweeps the `mc×nc` macro-tile of `C` with the register microkernel.
/// `c_rows` is the full `mc×ldc` row band; the tile starts at column `jc`.
#[allow(clippy::too_many_arguments)]
fn macro_tile(
    mc: usize,
    nc: usize,
    kc: usize,
    ldc: usize,
    jc: usize,
    apack: &[f32],
    bpack: &[f32],
    c_rows: &mut [f32],
    first: bool,
) {
    for jr in (0..nc).step_by(NR) {
        let nr = (nc - jr).min(NR);
        let bpanel = &bpack[(jr / NR) * NR * kc..];
        for ir in (0..mc).step_by(MR) {
            let mr = (mc - ir).min(MR);
            let apanel = &apack[(ir / MR) * MR * kc..];
            let c_tile = &mut c_rows[ir * ldc + jc + jr..];
            micro::tile(kc, apanel, bpanel, c_tile, ldc, mr, nr, !first);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(m: usize, k: usize, n: usize, a: &MatRef<'_>, b: &MatRef<'_>) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.data[a.offset(i, p)] * b.data[b.offset(p, j)];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    fn check(m: usize, k: usize, n: usize) {
        let ad = fill(m * k, 3);
        let bd = fill(k * n, 5);
        let a = MatRef { data: &ad, rs: k, cs: 1 };
        let b = MatRef { data: &bd, rs: n, cs: 1 };
        let want = reference(m, k, n, &a, &b);
        let mut got = vec![f32::NAN; m * n]; // gemm must overwrite, not accumulate
        gemm(m, k, n, a, b, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() <= 1e-3, "({m},{k},{n}) elem {i}: {g} vs {w}");
        }
    }

    #[test]
    fn exercises_every_edge_combination() {
        // Around the register tile.
        for m in [1, 5, 6, 7, 12] {
            for n in [1, 15, 16, 17, 32] {
                check(m, 3, n);
            }
        }
        // Around the cache blocks (multiple KC iterations, MC/NC edges).
        check(MC, KC + 7, NR);
        check(MC + 5, KC * 2 + 1, 40);
        check(130, 300, 70);
    }

    #[test]
    fn degenerate_dims() {
        check(1, 1, 1);
        let mut out = vec![1.0f32; 6];
        gemm(
            2,
            0,
            3,
            MatRef { data: &[], rs: 0, cs: 1 },
            MatRef { data: &[], rs: 3, cs: 1 },
            &mut out,
        );
        assert!(out.iter().all(|&v| v == 0.0), "k=0 must produce zeros");
    }

    #[test]
    fn transposed_views_match_reference() {
        let (m, k, n) = (33, 21, 45);
        // A stored [k, m] (tn layout), B stored [n, k] (nt layout).
        let ad = fill(k * m, 7);
        let bd = fill(n * k, 9);
        let a = MatRef { data: &ad, rs: 1, cs: m };
        let b = MatRef { data: &bd, rs: 1, cs: k };
        let want = reference(m, k, n, &a, &b);
        let mut got = vec![0.0f32; m * n];
        gemm(m, k, n, a, b, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-3);
        }
    }
}
