//! Thread-local scratch buffers for packed panels.
//!
//! Packing needs an `MC×KC` A-buffer per worker thread and a `KC×NC`
//! B-buffer per GEMM call. Allocating those inside the blocking loops would
//! put `malloc` on the hot path of every k-block; instead each thread keeps
//! its buffers alive in a thread-local pool, so steady-state GEMM does zero
//! allocation (buffers only grow, on first use or when a larger blocking
//! configuration appears).
//!
//! A and B live in **separate** thread-locals because a B-buffer borrow is
//! held across the row-block parallel loop while each worker borrows an
//! A-buffer — on a single-thread pool both borrows come from the same
//! thread, and a shared `RefCell` would panic.

use std::cell::RefCell;

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

fn with_buf<R>(
    cell: &'static std::thread::LocalKey<RefCell<Vec<f32>>>,
    len: usize,
    f: impl FnOnce(&mut [f32]) -> R,
) -> R {
    cell.with(|c| {
        let mut buf = c.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Runs `f` with this thread's A-panel buffer, grown to at least `len`.
/// Contents are whatever the previous pack left; `pack_a` overwrites fully.
pub fn with_pack_a<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    with_buf(&PACK_A, len, f)
}

/// Runs `f` with this thread's B-panel buffer, grown to at least `len`.
pub fn with_pack_b<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    with_buf(&PACK_B, len, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_and_are_reused() {
        let p0 = with_pack_a(16, |b| {
            b[3] = 7.0;
            b.as_ptr() as usize
        });
        let p1 = with_pack_a(8, |b| {
            assert_eq!(b.len(), 8);
            assert_eq!(b[3], 7.0, "smaller request reuses the same storage");
            b.as_ptr() as usize
        });
        assert_eq!(p0, p1);
    }

    #[test]
    fn a_and_b_buffers_can_nest() {
        with_pack_b(4, |b| {
            b[0] = 1.0;
            with_pack_a(4, |a| a[0] = 2.0);
            assert_eq!(b[0], 1.0);
        });
    }
}
