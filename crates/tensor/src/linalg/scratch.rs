//! Thread-local scratch buffers for packed panels.
//!
//! Packing needs an `MC×KC` A-buffer per worker thread and a `KC×NC`
//! B-buffer per GEMM call. Allocating those inside the blocking loops would
//! put `malloc` on the hot path of every k-block; instead each thread keeps
//! its buffers alive in a thread-local pool, so steady-state GEMM does zero
//! allocation (buffers only grow, on first use or when a larger blocking
//! configuration appears).
//!
//! ## Re-entrancy
//!
//! `with_pack_b`'s closure spans the row-band parallel loop in
//! [`super::gemm`], and under a work-stealing scheduler (real rayon) the
//! calling worker can steal *another* GEMM task while it waits — e.g. a
//! sibling batch of a `bmm` — and re-enter this module on the same thread.
//! The buffer is therefore **moved out** of its `RefCell` before the
//! closure runs and restored afterwards: no borrow is held while user code
//! executes, so a re-entrant call simply finds the slot empty and
//! allocates a fresh buffer for the inner invocation (the larger of the
//! two is kept on restore). A and B additionally live in separate
//! thread-locals so the A-packs nested inside a B-pack closure never
//! contend for the same slot.

use std::cell::RefCell;

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

fn with_buf<R>(
    cell: &'static std::thread::LocalKey<RefCell<Vec<f32>>>,
    len: usize,
    f: impl FnOnce(&mut [f32]) -> R,
) -> R {
    // Take the buffer out of the slot; the borrow lasts only for the swap,
    // never across `f` (see the module docs on re-entrancy).
    let mut buf = cell.with(|c| std::mem::take(&mut *c.borrow_mut()));
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    let r = f(&mut buf[..len]);
    cell.with(|c| {
        let mut slot = c.borrow_mut();
        // Keep the larger allocation; a nested call may have parked its own
        // (smaller) buffer here while ours was out.
        if buf.len() > slot.len() {
            *slot = buf;
        }
    });
    r
}

/// Runs `f` with this thread's A-panel buffer, grown to at least `len`.
/// Contents are whatever the previous pack left; `pack_a` overwrites fully.
pub fn with_pack_a<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    with_buf(&PACK_A, len, f)
}

/// Runs `f` with this thread's B-panel buffer, grown to at least `len`.
pub fn with_pack_b<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    with_buf(&PACK_B, len, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_and_are_reused() {
        let p0 = with_pack_a(16, |b| {
            b[3] = 7.0;
            b.as_ptr() as usize
        });
        let p1 = with_pack_a(8, |b| {
            assert_eq!(b.len(), 8);
            assert_eq!(b[3], 7.0, "smaller request reuses the same storage");
            b.as_ptr() as usize
        });
        assert_eq!(p0, p1);
    }

    #[test]
    fn a_and_b_buffers_can_nest() {
        with_pack_b(4, |b| {
            b[0] = 1.0;
            with_pack_a(4, |a| a[0] = 2.0);
            assert_eq!(b[0], 1.0);
        });
    }

    #[test]
    fn same_buffer_reentry_is_safe() {
        // Work-stealing can re-enter gemm — and thus with_pack_b — on the
        // same thread while an outer with_pack_b closure is live. The inner
        // call must get its own buffer, not a RefCell panic, and the outer
        // buffer must be untouched by the inner writes.
        let outer_ptr = with_pack_b(8, |outer| {
            outer.fill(1.0);
            with_pack_b(4, |inner| {
                inner.fill(2.0);
                with_pack_b(2, |innermost| innermost.fill(3.0));
            });
            assert!(outer.iter().all(|&v| v == 1.0), "outer clobbered by inner");
            outer.as_ptr() as usize
        });
        // The outer (largest) buffer is what survives in the slot.
        let next_ptr = with_pack_b(8, |b| b.as_ptr() as usize);
        assert_eq!(outer_ptr, next_ptr);
    }

    #[test]
    fn reentry_is_safe_on_real_pool_workers() {
        // The scenario the take/restore dance exists for: a worker blocked
        // in `join` steals another GEMM task and re-enters the pack
        // buffers mid-closure. Drive it directly — nested joins inside
        // live `with_pack_*` closures on a multi-worker pool — and assert
        // no BorrowMutError and no aliasing between the live buffers.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            rayon::join(
                || {
                    with_pack_b(64, |outer_b| {
                        outer_b.fill(1.0);
                        rayon::join(
                            || {
                                with_pack_a(32, |a| {
                                    a.fill(2.0);
                                    with_pack_b(16, |inner_b| inner_b.fill(3.0));
                                    assert!(a.iter().all(|&v| v == 2.0));
                                })
                            },
                            || with_pack_b(48, |b| b.fill(4.0)),
                        );
                        assert!(
                            outer_b.iter().all(|&v| v == 1.0),
                            "outer B-panel clobbered by re-entrant pack"
                        );
                    })
                },
                || {
                    with_pack_a(64, |a| {
                        a.fill(5.0);
                        rayon::join(|| with_pack_a(8, |x| x.fill(6.0)), || ());
                        assert!(a.iter().all(|&v| v == 5.0), "outer A-panel clobbered");
                    })
                },
            );
        });
    }
}
