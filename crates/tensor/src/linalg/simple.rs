//! Direct kernels for problems too small to amortise packing.
//!
//! Below [`super::SMALL_THRESHOLD`] multiply-adds per output row (or when
//! the output is narrower than a register tile) the blocked engine's
//! packing and edge handling cost more than they save, so these
//! layout-specialised loops run instead. Each keeps both inner operands contiguous so LLVM
//! auto-vectorises the innermost loop; none of them branch on element
//! values (a data-dependent `x == 0.0` skip defeats vectorisation and adds
//! a mispredicted branch per scalar on dense data).

/// `C = A·B`, row-major `[m,k]·[k,n]`, axpy formulation.
pub fn nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for (i, row) in out.chunks_mut(n).enumerate().take(m) {
        let a_row = &a[i * k..(i + 1) * k];
        row.fill(0.0);
        for (p, &x) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in row.iter_mut().zip(b_row) {
                *o += x * bv;
            }
        }
    }
}

/// `C = A·Bᵀ` with `B` stored `[n,k]`: every output is a dot product of two
/// contiguous rows. Output rows are stride `n` (not `out.len()/m`, which
/// would mis-stride any caller passing a larger backing slice).
pub fn nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for (i, row) in out.chunks_mut(n).enumerate().take(m) {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, o) in row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

/// `C = Aᵀ·B` with `A` stored `[k,m]`: k-outer axpy so both reads stream.
pub fn tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out[..m * n].fill(0.0);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &x) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += x * bv;
            }
        }
    }
}
