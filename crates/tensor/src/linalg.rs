//! Matrix-multiply kernels.
//!
//! Three layout variants are provided — `nn` (`A·B`), `nt` (`A·Bᵀ`) and
//! `tn` (`Aᵀ·B`) — because the backward pass of a matmul needs the transposed
//! variants and materialising transposes would double memory traffic. All
//! kernels accumulate along contiguous rows so the inner loops auto-vectorise,
//! and fan out over rayon once the work is large enough to amortise the
//! scheduling cost.
//!
//! Batched versions (`bmm_*`) treat every leading dimension as batch; the two
//! trailing dimensions are the matrix. Multi-head attention uses these with
//! shape `[batch·heads, T, d_head]`.

use rayon::prelude::*;

use crate::tensor::Tensor;

/// Below this many multiply-adds a single thread is faster than fanning out.
const PAR_THRESHOLD: usize = 1 << 15;

/// `C = A · B` for rank-2 tensors `[m,k] · [k,n] -> [m,n]`.
///
/// # Panics
/// Panics unless `a` is `[m,k]` and `b` is `[k,n]`.
pub fn matmul_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul_nn inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    kernel_nn(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// `C = A · Bᵀ` for rank-2 tensors `[m,k] · ([n,k])ᵀ -> [m,n]`.
///
/// # Panics
/// Panics unless `a` is `[m,k]` and `b` is `[n,k]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (n, k2) = dims2(b);
    assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    kernel_nt(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// `C = Aᵀ · B` for rank-2 tensors `([k,m])ᵀ · [k,n] -> [m,n]`.
///
/// # Panics
/// Panics unless `a` is `[k,m]` and `b` is `[k,n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    kernel_tn(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// Batched `A · B`: `[..., m, k] · [..., k, n] -> [..., m, n]` with identical
/// leading (batch) dimensions.
pub fn bmm_nn(a: &Tensor, b: &Tensor) -> Tensor {
    bmm(a, b, Kind::Nn)
}

/// Batched `A · Bᵀ`: `[..., m, k] · [..., n, k] -> [..., m, n]`.
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    bmm(a, b, Kind::Nt)
}

/// Batched `Aᵀ · B`: `[..., k, m] · [..., k, n] -> [..., m, n]`.
pub fn bmm_tn(a: &Tensor, b: &Tensor) -> Tensor {
    bmm(a, b, Kind::Tn)
}

/// Reference implementation (naive triple loop) used by tests and by the
/// `matmul` ablation bench.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2);
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += ad[i * k + p] * bd[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec([m, n], out)
}

#[derive(Clone, Copy)]
enum Kind {
    Nn,
    Nt,
    Tn,
}

fn bmm(a: &Tensor, b: &Tensor, kind: Kind) -> Tensor {
    let (ba, r0, c0) = a.shape().as_batched_matrix();
    let (bb, r1, c1) = b.shape().as_batched_matrix();
    assert_eq!(
        ba, bb,
        "bmm batch dims differ: {} vs {}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = match kind {
        Kind::Nn => {
            assert_eq!(c0, r1, "bmm_nn inner dims: {} vs {}", a.shape(), b.shape());
            (r0, c0, c1)
        }
        Kind::Nt => {
            assert_eq!(c0, c1, "bmm_nt inner dims: {} vs {}", a.shape(), b.shape());
            (r0, c0, r1)
        }
        Kind::Tn => {
            assert_eq!(r0, r1, "bmm_tn inner dims: {} vs {}", a.shape(), b.shape());
            (c0, r0, c1)
        }
    };
    let out_shape = a.shape().with_matrix_dims(m, n);
    let (as_, bs) = (a.data(), b.data());
    let (a_stride, b_stride) = (r0 * c0, r1 * c1);
    let mut out = vec![0.0f32; ba * m * n];

    let run = |(i, chunk): (usize, &mut [f32])| {
        let av = &as_[i * a_stride..(i + 1) * a_stride];
        let bv = &bs[i * b_stride..(i + 1) * b_stride];
        match kind {
            Kind::Nn => kernel_nn_serial(av, bv, chunk, m, k, n),
            Kind::Nt => kernel_nt_serial(av, bv, chunk, m, k, n),
            Kind::Tn => kernel_tn_serial(av, bv, chunk, m, k, n),
        }
    };
    if ba * m * k * n >= PAR_THRESHOLD && ba > 1 {
        out.par_chunks_mut(m * n).enumerate().for_each(run);
    } else {
        out.chunks_mut(m * n).enumerate().for_each(run);
    }
    Tensor::from_vec(out_shape, out)
}

fn dims2(t: &Tensor) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "expected rank-2 tensor, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

fn kernel_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m * k * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            nn_row(&a[i * k..(i + 1) * k], b, row, k, n);
        });
    } else {
        kernel_nn_serial(a, b, out, m, k, n);
    }
}

fn kernel_nn_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for (i, row) in out.chunks_mut(n).enumerate().take(m) {
        nn_row(&a[i * k..(i + 1) * k], b, row, k, n);
    }
}

#[inline]
fn nn_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
    // axpy formulation: out_row += a[i,p] * b[p, :]; contiguous in both
    // operands, so LLVM vectorises the inner zip.
    for p in 0..k {
        let x = a_row[p];
        if x == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += x * bv;
        }
    }
}

fn kernel_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m * k * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            nt_row(&a[i * k..(i + 1) * k], b, row, k);
        });
    } else {
        kernel_nt_serial(a, b, out, m, k, n);
    }
}

fn kernel_nt_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, _n: usize) {
    for (i, row) in out.chunks_mut(out.len() / m).enumerate().take(m) {
        nt_row(&a[i * k..(i + 1) * k], b, row, k);
    }
}

#[inline]
fn nt_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
    for (j, o) in out_row.iter_mut().enumerate() {
        let b_row = &b[j * k..(j + 1) * k];
        let mut acc = 0.0f32;
        for (&x, &y) in a_row.iter().zip(b_row) {
            acc += x * y;
        }
        *o = acc;
    }
}

fn kernel_tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    // out[i, :] += a[p, i] * b[p, :]. The k loop is outermost so both reads
    // stay sequential; parallelising would race on `out`, so split over
    // columns of `a` instead when large.
    if m * k * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            for p in 0..k {
                let x = a[p * m + i];
                if x == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in row.iter_mut().zip(b_row) {
                    *o += x * bv;
                }
            }
        });
    } else {
        kernel_tn_serial(a, b, out, m, k, n);
    }
}

fn kernel_tn_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let x = a_row[i];
            if x == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += x * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    fn close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        let d = a.max_diff(b);
        assert!(d <= tol, "max diff {d} > {tol}");
    }

    #[test]
    fn nn_matches_naive() {
        let mut r = rng(10);
        let a = uniform([7, 5], -1.0, 1.0, &mut r);
        let b = uniform([5, 9], -1.0, 1.0, &mut r);
        close(&matmul_nn(&a, &b), &matmul_naive(&a, &b), 1e-5);
    }

    #[test]
    fn nt_is_nn_with_transpose() {
        let mut r = rng(11);
        let a = uniform([4, 6], -1.0, 1.0, &mut r);
        let b = uniform([3, 6], -1.0, 1.0, &mut r);
        close(&matmul_nt(&a, &b), &matmul_nn(&a, &b.transpose2()), 1e-5);
    }

    #[test]
    fn tn_is_nn_with_transpose() {
        let mut r = rng(12);
        let a = uniform([6, 4], -1.0, 1.0, &mut r);
        let b = uniform([6, 3], -1.0, 1.0, &mut r);
        close(&matmul_tn(&a, &b), &matmul_nn(&a.transpose2(), &b), 1e-5);
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut r = rng(13);
        let a = uniform([64, 48], -1.0, 1.0, &mut r);
        let b = uniform([48, 40], -1.0, 1.0, &mut r);
        close(&matmul_nn(&a, &b), &matmul_naive(&a, &b), 1e-4);
    }

    #[test]
    fn bmm_runs_each_batch_independently() {
        let mut r = rng(14);
        let a = uniform([3, 4, 5], -1.0, 1.0, &mut r);
        let b = uniform([3, 5, 6], -1.0, 1.0, &mut r);
        let c = bmm_nn(&a, &b);
        assert_eq!(c.shape().dims(), &[3, 4, 6]);
        for i in 0..3 {
            let ai = Tensor::from_vec([4, 5], a.data()[i * 20..(i + 1) * 20].to_vec());
            let bi = Tensor::from_vec([5, 6], b.data()[i * 30..(i + 1) * 30].to_vec());
            let ci = Tensor::from_vec([4, 6], c.data()[i * 24..(i + 1) * 24].to_vec());
            close(&ci, &matmul_nn(&ai, &bi), 1e-5);
        }
    }

    #[test]
    fn bmm_nt_and_tn_match_2d_kernels() {
        let mut r = rng(15);
        let a = uniform([2, 4, 5], -1.0, 1.0, &mut r);
        let b = uniform([2, 6, 5], -1.0, 1.0, &mut r);
        let c = bmm_nt(&a, &b);
        assert_eq!(c.shape().dims(), &[2, 4, 6]);
        let a0 = Tensor::from_vec([4, 5], a.data()[..20].to_vec());
        let b0 = Tensor::from_vec([6, 5], b.data()[..30].to_vec());
        let c0 = Tensor::from_vec([4, 6], c.data()[..24].to_vec());
        close(&c0, &matmul_nt(&a0, &b0), 1e-5);

        let d = bmm_tn(&a, &uniform([2, 4, 3], -1.0, 1.0, &mut r));
        assert_eq!(d.shape().dims(), &[2, 5, 3]);
    }

    #[test]
    #[should_panic]
    fn mismatched_inner_dims_panic() {
        matmul_nn(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = rng(16);
        let a = uniform([5, 5], -1.0, 1.0, &mut r);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            eye.data_mut()[i * 5 + i] = 1.0;
        }
        close(&matmul_nn(&a, &eye), &a, 1e-6);
        close(&matmul_nn(&eye, &a), &a, 1e-6);
    }
}
