//! Parameter initialisation schemes.
//!
//! The paper initialises all parameters from a truncated normal in
//! `[-0.01, 0.01]` (§4.1.4); Xavier/Glorot and plain uniform/normal are
//! provided for the baselines that specify them.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Deterministic RNG used across the workspace. ChaCha8 is seedable,
/// portable across platforms, and fast enough that init/sampling never shows
/// up in profiles.
pub type TensorRng = ChaCha8Rng;

/// Creates the workspace RNG from an explicit seed.
pub fn rng(seed: u64) -> TensorRng {
    use rand::SeedableRng;
    ChaCha8Rng::seed_from_u64(seed)
}

/// Samples i.i.d. `N(0, std^2)` entries (Box–Muller, no rejection).
pub fn normal(shape: impl Into<Shape>, std: f32, rng: &mut TensorRng) -> Tensor {
    let shape = shape.into();
    let n = shape.len();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let (a, b) = gaussian_pair(rng);
        data.push(a * std);
        if data.len() < n {
            data.push(b * std);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Samples a normal truncated to `[-limit, limit]` by rejection, matching the
/// paper's `[-0.01, 0.01]` truncated-normal initialisation when
/// `std = limit / 2`.
pub fn truncated_normal(
    shape: impl Into<Shape>,
    std: f32,
    limit: f32,
    rng: &mut TensorRng,
) -> Tensor {
    assert!(limit > 0.0 && std > 0.0, "std and limit must be positive");
    let shape = shape.into();
    let n = shape.len();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let (a, b) = gaussian_pair(rng);
        for v in [a * std, b * std] {
            if v.abs() <= limit && data.len() < n {
                data.push(v);
            }
        }
    }
    Tensor::from_vec(shape, data)
}

/// The paper's default initialisation: truncated normal within
/// `[-0.01, 0.01]` (std chosen at half the limit so ~95% of raw draws land
/// inside the truncation window).
pub fn paper_default(shape: impl Into<Shape>, rng: &mut TensorRng) -> Tensor {
    truncated_normal(shape, 0.005, 0.01, rng)
}

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Used for the projection/feed-forward weights where the paper defers to
/// standard Transformer practice.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform([fan_in, fan_out], -a, a, rng)
}

/// Uniform samples in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut TensorRng) -> Tensor {
    assert!(lo < hi, "empty uniform range [{lo}, {hi})");
    let shape = shape.into();
    let n = shape.len();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

fn gaussian_pair(rng: &mut TensorRng) -> (f32, f32) {
    // Box–Muller on (0,1] uniforms; the `1.0 - u` keeps ln away from 0.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = rng(1);
        let t = normal([10_000], 2.0, &mut r);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_limit() {
        let mut r = rng(2);
        let t = truncated_normal([5_000], 0.005, 0.01, &mut r);
        assert!(t.max_abs() <= 0.01);
        assert!(t.max_abs() > 0.0);
    }

    #[test]
    fn paper_default_matches_the_paper_window() {
        let mut r = rng(3);
        let t = paper_default([1_000], &mut r);
        assert!(t.max_abs() <= 0.01);
    }

    #[test]
    fn xavier_bound() {
        let mut r = rng(4);
        let t = xavier_uniform(30, 70, &mut r);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.max_abs() <= a);
        assert_eq!(t.shape().dims(), &[30, 70]);
    }

    #[test]
    fn uniform_range() {
        let mut r = rng(5);
        let t = uniform([1_000], -1.0, 3.0, &mut r);
        assert!(t.data().iter().all(|&x| (-1.0..3.0).contains(&x)));
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = normal([16], 1.0, &mut rng(42));
        let b = normal([16], 1.0, &mut rng(42));
        assert_eq!(a, b);
    }
}
