//! Tensor shapes and row-major index arithmetic.
//!
//! Every [`crate::Tensor`] in this crate is dense, row-major and contiguous;
//! a [`Shape`] is therefore just the list of dimension extents. Keeping the
//! layout fixed removes an entire class of stride bugs and lets the hot
//! kernels (`matmul`, softmax, layernorm) iterate over flat slices.

use std::fmt;

/// The extents of a dense, row-major tensor.
///
/// Rank 0 (scalar) through rank 4 are exercised by this crate; nothing limits
/// higher ranks, but batched matmul treats all leading dimensions as batch.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (1 for scalars).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the shape contains zero elements (any extent is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of the last dimension.
    ///
    /// # Panics
    /// Panics on scalars.
    pub fn last_dim(&self) -> usize {
        *self.0.last().expect("scalar shape has no last dimension")
    }

    /// Number of rows when the tensor is viewed as a `(len / last_dim) x
    /// last_dim` matrix. This is the iteration count for all "per last axis"
    /// kernels (softmax, layernorm, normalize).
    ///
    /// # Panics
    /// Panics on scalars.
    pub fn rows(&self) -> usize {
        self.len() / self.last_dim()
    }

    /// Splits an at-least-2D shape into `(batch, m, n)` where `m, n` are the
    /// trailing two dimensions and `batch` is the product of the rest.
    ///
    /// # Panics
    /// Panics if rank < 2.
    pub fn as_batched_matrix(&self) -> (usize, usize, usize) {
        assert!(self.rank() >= 2, "need rank >= 2, got {self}");
        let n = self.0[self.rank() - 1];
        let m = self.0[self.rank() - 2];
        (self.len() / (m * n), m, n)
    }

    /// Returns the shape with the trailing two dimensions replaced.
    ///
    /// # Panics
    /// Panics if rank < 2.
    pub fn with_matrix_dims(&self, m: usize, n: usize) -> Shape {
        assert!(self.rank() >= 2, "need rank >= 2, got {self}");
        let mut dims = self.0.clone();
        let r = dims.len();
        dims[r - 2] = m;
        dims[r - 1] = n;
        Shape(dims)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.len(), 24);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.rows(), 6);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_extent_is_empty() {
        assert!(Shape::from([3, 0, 2]).is_empty());
    }

    #[test]
    fn batched_matrix_views() {
        let s = Shape::from([5, 2, 3, 4]);
        assert_eq!(s.as_batched_matrix(), (10, 3, 4));
        assert_eq!(s.with_matrix_dims(7, 9).dims(), &[5, 2, 7, 9]);
        let m = Shape::from([3, 4]);
        assert_eq!(m.as_batched_matrix(), (1, 3, 4));
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    #[should_panic]
    fn batched_matrix_requires_rank_2() {
        Shape::from([4]).as_batched_matrix();
    }
}
