//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records one forward computation as a flat list of nodes; each
//! op node stores a boxed backward closure that maps the incoming gradient to
//! per-parent gradients. Calling [`Tape::backward`] walks the nodes once in
//! reverse creation order (creation order *is* a topological order because
//! ops can only reference already-created vars) and accumulates gradients.
//!
//! The tape is rebuilt every training step: create a tape, insert parameters
//! as leaves, run the model, call `backward`, read gradients out, drop the
//! tape. Tensors are `Arc`-backed, so inserting a parameter is O(1).
//!
//! Design notes:
//! * Vars are plain indices (`Copy`), not `Rc` graph pointers — the node list
//!   is a cache-friendly `Vec` and dropping the tape frees everything.
//! * Constants (attention masks, loss masks) are *not* parents of ops; the
//!   op constructors in [`crate::ops`] capture them by value, so no gradient
//!   buffers are ever allocated for them.

use crate::tensor::Tensor;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    pub(crate) id: usize,
}

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

pub(crate) struct Node {
    value: Tensor,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

/// A recorded forward computation, ready for reverse-mode differentiation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

std::thread_local! {
    static FINITE_TRIPWIRE: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Enables or disables this thread's debug-build tripwire that panics when
/// an op produces non-finite values. Release builds never check. Anomaly
/// tests turn it off so NaN/Inf flow through to the training-dynamics
/// sentinels exactly as they would in a release binary; everything else
/// should leave it on — a panic at the first bad op is the fastest way to
/// localise a numerics bug under `cargo test`.
pub fn set_finite_tripwire(on: bool) {
    FINITE_TRIPWIRE.with(|t| t.set(on));
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `var`, if `var` influenced it.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }

    /// Like [`Gradients::get`] but panics with a useful message when absent.
    pub fn expect(&self, var: Var, what: &str) -> &Tensor {
        self.get(var).unwrap_or_else(|| panic!("no gradient flowed to {what} (var {})", var.id))
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::with_capacity(256) }
    }

    /// Number of recorded nodes (leaves + ops).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a leaf (input or parameter). Gradients accumulate here if any
    /// downstream op lists it as a parent.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Vec::new(), None)
    }

    /// The current value of a var.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.id].value
    }

    pub(crate) fn push(
        &mut self,
        value: Tensor,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
    ) -> Var {
        debug_assert!(parents.iter().all(|p| p.id < self.nodes.len()));
        debug_assert!(
            !FINITE_TRIPWIRE.with(std::cell::Cell::get) || value.is_finite(),
            "op produced non-finite values"
        );
        seqrec_obs::metrics::TAPE_NODES.incr();
        self.nodes.push(Node { value, parents, backward });
        Var { id: self.nodes.len() - 1 }
    }

    /// Runs reverse-mode accumulation from `loss`, which must be a
    /// one-element tensor. Returns the gradients of every var that influenced
    /// the loss.
    ///
    /// # Panics
    /// Panics if `loss` is not scalar-shaped (one element).
    pub fn backward(&self, loss: Var) -> Gradients {
        let _span = seqrec_obs::span!("backward");
        seqrec_obs::metrics::TAPE_BACKWARD_RUNS.incr();
        seqrec_obs::metrics::TAPE_BACKWARD_NODES.add(self.nodes.len() as u64);
        let loss_val = self.value(loss);
        assert_eq!(
            loss_val.len(),
            1,
            "backward() needs a one-element loss, got shape {}",
            loss_val.shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.id] = Some(Tensor::full(loss_val.shape().clone(), 1.0));

        for id in (0..=loss.id).rev() {
            // Take the gradient out so we can borrow `grads` mutably below.
            let Some(grad_out) = grads[id].take() else { continue };
            let node = &self.nodes[id];
            if let Some(backward) = &node.backward {
                let parent_grads = backward(&grad_out);
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "op at node {id} returned {} gradients for {} parents",
                    parent_grads.len(),
                    node.parents.len()
                );
                for (parent, pg) in node.parents.iter().zip(parent_grads) {
                    debug_assert_eq!(
                        pg.shape(),
                        self.nodes[parent.id].value.shape(),
                        "gradient shape mismatch for parent {}",
                        parent.id
                    );
                    match &mut grads[parent.id] {
                        Some(acc) => acc.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            // Leaves keep their gradient so callers can read it back.
            if node.backward.is_none() {
                grads[id] = Some(grad_out);
            }
        }
        Gradients { grads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let mut tape = Tape::new();
        let t = Tensor::from_vec([2], vec![1.0, 2.0]);
        let v = tape.leaf(t.clone());
        assert_eq!(tape.value(v), &t);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn backward_seeds_scalar_loss_with_one() {
        let mut tape = Tape::new();
        let v = tape.leaf(Tensor::scalar(3.0));
        let grads = tape.backward(v);
        assert_eq!(grads.get(v).unwrap().item(), 1.0);
    }

    #[test]
    #[should_panic]
    fn backward_rejects_non_scalar_loss() {
        let mut tape = Tape::new();
        let v = tape.leaf(Tensor::zeros([3]));
        tape.backward(v);
    }

    #[test]
    fn untouched_vars_have_no_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(1.0));
        let b = tape.leaf(Tensor::scalar(2.0));
        let grads = tape.backward(b);
        assert!(grads.get(a).is_none());
        assert!(grads.get(b).is_some());
    }
}
