//! Optimisers: Adam with optional linear learning-rate decay and global
//! gradient clipping, plus plain SGD for tests and sanity baselines.
//!
//! The paper optimises both stages with Adam (`lr = 0.001`, `β₁ = 0.9`,
//! `β₂ = 0.999`, linear decay) — those are the defaults here.

use std::collections::HashMap;

use crate::dynamics::{group_of, GroupStat, OptimStepStats};
use crate::nn::param::{HasParams, Param, Step};
use crate::tape::Gradients;
use crate::tensor::Tensor;

/// Learning-rate schedule applied multiplicatively on top of the base rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Linear decay from 1× at step 0 to `min_factor`× at `total_steps`
    /// (clamped afterwards).
    LinearDecay {
        /// Step count over which the rate decays.
        total_steps: u64,
        /// Floor expressed as a fraction of the base rate.
        min_factor: f32,
    },
}

impl LrSchedule {
    fn factor(&self, t: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::LinearDecay { total_steps, min_factor } => {
                if total_steps == 0 {
                    return min_factor;
                }
                let progress = (t as f32 / total_steps as f32).min(1.0);
                (1.0 - progress).max(min_factor)
            }
        }
    }
}

/// Adam configuration.
#[derive(Clone, Debug)]
pub struct AdamConfig {
    /// Base learning rate (paper: 0.001).
    pub lr: f32,
    /// First-moment decay (paper: 0.9).
    pub beta1: f32,
    /// Second-moment decay (paper: 0.999).
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled L2 weight decay (0 disables; the paper does not use it).
    pub weight_decay: f32,
    /// Global-norm gradient clipping (None disables).
    pub clip_norm: Option<f32>,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: Some(5.0),
            schedule: LrSchedule::Constant,
        }
    }
}

/// Adam optimiser with per-parameter moment state keyed by parameter name.
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    state: HashMap<String, Moments>,
}

struct Moments {
    m: Tensor,
    v: Tensor,
}

impl Adam {
    /// Creates an optimiser with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam { cfg, t: 0, state: HashMap::new() }
    }

    /// Paper defaults (`lr = 1e-3`, β = (0.9, 0.999)).
    pub fn paper_default() -> Self {
        Self::new(AdamConfig::default())
    }

    /// Number of update steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.t
    }

    /// The learning rate that the *next* step will use.
    pub fn current_lr(&self) -> f32 {
        self.cfg.lr * self.cfg.schedule.factor(self.t)
    }

    /// Applies one update to every parameter of `model` that received a
    /// gradient on `step`. Parameters without gradients (unused this step)
    /// are left untouched and their moments are not advanced.
    pub fn step<M: HasParams + ?Sized>(&mut self, model: &mut M, step: &Step, grads: &Gradients) {
        self.step_inner(model, step, grads, None);
    }

    /// [`Adam::step`] plus training-dynamics collection: per-parameter-group
    /// gradient/update/parameter L2 norms accumulated in f64 beside the
    /// unchanged f32 update arithmetic. The applied update is bit-identical
    /// to [`Adam::step`] — the golden-fixture suite pins this.
    pub fn step_with_stats<M: HasParams + ?Sized>(
        &mut self,
        model: &mut M,
        step: &Step,
        grads: &Gradients,
    ) -> OptimStepStats {
        let mut stats = OptimStepStats::default();
        self.step_inner(model, step, grads, Some(&mut stats));
        stats
    }

    /// Like [`Adam::step_with_stats`], but reads each parameter's gradient
    /// from `reduced`, indexed in `visit` order. The data-parallel fit path
    /// tree-reduces per-shard gradients into such a slice, then applies a
    /// single ordinary Adam update — the update arithmetic is byte-for-byte
    /// the same code path as [`Adam::step`].
    pub fn step_with_stats_reduced<M: HasParams + ?Sized>(
        &mut self,
        model: &mut M,
        reduced: &[Option<Tensor>],
    ) -> OptimStepStats {
        let mut stats = OptimStepStats::default();
        self.step_core(model, &|i, _| reduced.get(i).and_then(Option::as_ref), Some(&mut stats));
        stats
    }

    fn step_inner<M: HasParams + ?Sized>(
        &mut self,
        model: &mut M,
        step: &Step,
        grads: &Gradients,
        stats: Option<&mut OptimStepStats>,
    ) {
        self.step_core(model, &|_, p| p.grad(step, grads), stats);
    }

    /// The shared update loop: `grad_at(i, p)` resolves parameter `i` (in
    /// `visit`/`visit_mut` order) to its gradient, from either a tape or a
    /// pre-reduced slice.
    fn step_core<'g, M: HasParams + ?Sized>(
        &mut self,
        model: &mut M,
        grad_at: &(dyn Fn(usize, &Param) -> Option<&'g Tensor> + 'g),
        mut stats: Option<&mut OptimStepStats>,
    ) {
        let _span = seqrec_obs::span!("optim");
        let clip_scale = self.clip_scale(model, grad_at);
        let lr = self.current_lr();
        self.t += 1;
        let bc1 = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.cfg.beta2.powi(self.t as i32);
        let cfg = self.cfg.clone();
        let state = &mut self.state;
        if let Some(s) = stats.as_deref_mut() {
            s.step = self.t;
            s.lr = lr;
            s.clip_scale = clip_scale;
        }

        let mut index = 0usize;
        model.visit_mut(&mut |p: &mut Param| {
            let i = index;
            index += 1;
            let Some(grad) = grad_at(i, p) else { return };
            let grad = grad.clone();
            let entry = state.entry(p.name().to_string()).or_insert_with(|| Moments {
                m: Tensor::zeros(grad.shape().clone()),
                v: Tensor::zeros(grad.shape().clone()),
            });
            assert_eq!(
                entry.m.shape(),
                grad.shape(),
                "parameter {} changed shape between steps",
                p.name()
            );
            let group = stats.as_deref_mut().map(|s| {
                let label = group_of(p.name());
                match s.groups.last_mut() {
                    Some(last) if last.group == label => {}
                    _ => s
                        .groups
                        .push(GroupStat { group: label.to_string(), ..GroupStat::default() }),
                }
                s.groups.last_mut().expect("group pushed above")
            });
            let (mut grad_sq, mut update_sq, mut param_sq) = (0.0f64, 0.0f64, 0.0f64);
            let value = p.value_mut();
            let (md, vd) = (entry.m.data_mut(), entry.v.data_mut());
            for (((w, &g0), m), v) in
                value.data_mut().iter_mut().zip(grad.data()).zip(md.iter_mut()).zip(vd.iter_mut())
            {
                let mut g = g0 * clip_scale;
                if cfg.weight_decay > 0.0 {
                    g += cfg.weight_decay * *w;
                }
                *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
                *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                let delta = lr * m_hat / (v_hat.sqrt() + cfg.eps);
                *w -= delta;
                grad_sq += f64::from(g0) * f64::from(g0);
                update_sq += f64::from(delta) * f64::from(delta);
                param_sq += f64::from(*w) * f64::from(*w);
            }
            if let Some(gstat) = group {
                gstat.params += value.len();
                gstat.grad_sq += grad_sq;
                gstat.update_sq += update_sq;
                gstat.param_sq += param_sq;
            }
        });
    }

    fn clip_scale<'g, M: HasParams + ?Sized>(
        &self,
        model: &M,
        grad_at: &(dyn Fn(usize, &Param) -> Option<&'g Tensor> + 'g),
    ) -> f32 {
        let Some(max_norm) = self.cfg.clip_norm else { return 1.0 };
        let mut sq = 0.0f64;
        let mut index = 0usize;
        model.visit(&mut |p: &Param| {
            let i = index;
            index += 1;
            if let Some(g) = grad_at(i, p) {
                let n = g.norm() as f64;
                sq += n * n;
            }
        });
        let norm = sq.sqrt() as f32;
        if norm > max_norm {
            max_norm / norm
        } else {
            1.0
        }
    }
}

/// Minimal SGD, mostly for gradient-checking tests and toy baselines.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// `w -= lr * g` for every parameter with a gradient.
    pub fn step<M: HasParams + ?Sized>(&self, model: &mut M, step: &Step, grads: &Gradients) {
        let _span = seqrec_obs::span!("optim");
        model.visit_mut(&mut |p: &mut Param| {
            if let Some(g) = p.grad(step, grads) {
                let g = g.clone();
                let lr = self.lr;
                for (w, &gv) in p.value_mut().data_mut().iter_mut().zip(g.data()) {
                    *w -= lr * gv;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise (w - 3)² with Adam; it should get close to 3 quickly.
    #[test]
    fn adam_minimises_a_quadratic() {
        let mut p = Param::new("w", Tensor::scalar(0.0));
        let mut adam = Adam::new(AdamConfig { lr: 0.1, ..AdamConfig::default() });
        for _ in 0..200 {
            let mut step = Step::new();
            let w = p.var(&mut step);
            let c = step.tape.leaf(Tensor::scalar(3.0));
            let diff = step.tape.sub(w, c);
            let sq = step.tape.mul(diff, diff);
            let loss = step.tape.sum_all(sq);
            let grads = step.tape.backward(loss);
            adam.step(&mut p, &step, &grads);
        }
        assert!((p.value().item() - 3.0).abs() < 1e-2, "w = {}", p.value().item());
    }

    #[test]
    fn sgd_takes_plain_gradient_steps() {
        let mut p = Param::new("w", Tensor::scalar(10.0));
        let sgd = Sgd::new(0.25);
        let mut step = Step::new();
        let w = p.var(&mut step);
        let sq = step.tape.mul(w, w);
        let loss = step.tape.sum_all(sq);
        let grads = step.tape.backward(loss);
        sgd.step(&mut p, &step, &grads);
        // grad = 2w = 20 → w = 10 - 0.25·20 = 5
        assert_eq!(p.value().item(), 5.0);
    }

    #[test]
    fn linear_decay_schedule() {
        let s = LrSchedule::LinearDecay { total_steps: 10, min_factor: 0.1 };
        assert_eq!(s.factor(0), 1.0);
        assert!((s.factor(5) - 0.5).abs() < 1e-6);
        assert_eq!(s.factor(100), 0.1);
        assert_eq!(LrSchedule::Constant.factor(1_000), 1.0);
    }

    #[test]
    fn clipping_caps_the_global_norm() {
        // One huge gradient: with clip_norm = 1 the applied update must be
        // much smaller than without.
        let run = |clip: Option<f32>| {
            let mut p = Param::new("w", Tensor::scalar(0.0));
            let mut adam =
                Adam::new(AdamConfig { lr: 1.0, clip_norm: clip, ..AdamConfig::default() });
            let mut step = Step::new();
            let w = p.var(&mut step);
            let big = step.tape.scale(w, 1e6);
            let c = step.tape.leaf(Tensor::scalar(1e6));
            let shifted = step.tape.add(big, c);
            let loss = step.tape.sum_all(shifted);
            let grads = step.tape.backward(loss);
            adam.step(&mut p, &step, &grads);
            p.value().item().abs()
        };
        // Adam normalises by the gradient magnitude, so both updates are
        // finite; clipped must not exceed unclipped and both ≈ lr.
        assert!(run(Some(1.0)) <= run(None) + 1e-6);
    }

    #[test]
    fn unused_params_are_untouched() {
        struct Two {
            a: Param,
            b: Param,
        }
        impl HasParams for Two {
            fn visit(&self, f: &mut dyn FnMut(&Param)) {
                f(&self.a);
                f(&self.b);
            }
            fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
                f(&mut self.a);
                f(&mut self.b);
            }
        }
        let mut m = Two {
            a: Param::new("a", Tensor::scalar(1.0)),
            b: Param::new("b", Tensor::scalar(1.0)),
        };
        let mut adam = Adam::paper_default();
        let mut step = Step::new();
        let a = m.a.var(&mut step);
        let sq = step.tape.mul(a, a);
        let loss = step.tape.sum_all(sq);
        let grads = step.tape.backward(loss);
        adam.step(&mut m, &step, &grads);
        assert!(m.a.value().item() < 1.0);
        assert_eq!(m.b.value().item(), 1.0);
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        let mut p = Param::new("w", Tensor::scalar(5.0));
        let mut adam =
            Adam::new(AdamConfig { lr: 0.1, weight_decay: 0.5, ..AdamConfig::default() });
        for _ in 0..50 {
            let mut step = Step::new();
            let w = p.var(&mut step);
            let zero = step.tape.scale(w, 0.0);
            let loss = step.tape.sum_all(zero);
            // gradient through `scale(…, 0)` is zero, but weight decay still
            // applies because the parameter received a (zero) gradient.
            let grads = step.tape.backward(loss);
            adam.step(&mut p, &step, &grads);
        }
        assert!(p.value().item() < 5.0);
    }
}
