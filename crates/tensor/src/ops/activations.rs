//! Pointwise nonlinearities with fused backward passes.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Rectified linear unit, `max(0, x)`. The subgradient at 0 is 0.
    pub fn relu(&mut self, x: Var) -> Var {
        let xv = self.value(x).clone();
        let out = xv.map(|v| v.max(0.0));
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                vec![g.zip_with(&xv, |gv, v| if v > 0.0 { gv } else { 0.0 })]
            })),
        )
    }

    /// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`, computed branchlessly in a
    /// numerically stable form. Backward uses `σ'(x) = σ(x)(1-σ(x))`.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let out = self.value(x).map(stable_sigmoid);
        let y = out.clone();
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| vec![g.zip_with(&y, |gv, yv| gv * yv * (1.0 - yv))])),
        )
    }

    /// Hyperbolic tangent. Backward uses `tanh'(x) = 1 - tanh²(x)`.
    pub fn tanh(&mut self, x: Var) -> Var {
        let out = self.value(x).map(f32::tanh);
        let y = out.clone();
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| vec![g.zip_with(&y, |gv, yv| gv * (1.0 - yv * yv))])),
        )
    }

    /// Softplus `ln(1 + e^x)`, the building block of the numerically stable
    /// BCE/BPR losses: `-log σ(x) = softplus(-x)`. Stable for large |x|.
    pub fn softplus(&mut self, x: Var) -> Var {
        let xv = self.value(x).clone();
        let out = xv.map(stable_softplus);
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                // d/dx softplus = sigmoid(x)
                vec![g.zip_with(&xv, |gv, v| gv * stable_sigmoid(v))]
            })),
        )
    }
}

/// `σ(x)` without overflow for large negative x.
pub(crate) fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `ln(1 + e^x)` without overflow for large positive x.
pub(crate) fn stable_softplus(x: f32) -> f32 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_of(f: impl Fn(&mut Tape, Var) -> Var, xs: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([xs.len()], xs.to_vec()));
        let y = f(&mut t, x);
        let values = t.value(y).data().to_vec();
        let s = t.sum_all(y);
        let g = t.backward(s);
        (values, g.get(x).unwrap().data().to_vec())
    }

    #[test]
    fn relu_clamps_and_gates_gradient() {
        let (v, g) = grad_of(|t, x| t.relu(x), &[-2.0, 0.0, 3.0]);
        assert_eq!(v, vec![0.0, 0.0, 3.0]);
        assert_eq!(g, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        let (v, g) = grad_of(|t, x| t.sigmoid(x), &[-100.0, 0.0, 100.0]);
        assert!(v[0] >= 0.0 && v[0] < 1e-30);
        assert!((v[1] - 0.5).abs() < 1e-6);
        assert!((v[2] - 1.0).abs() < 1e-6);
        assert!(g.iter().all(|x| x.is_finite()));
        assert!((g[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_identity() {
        let (v, g) = grad_of(|t, x| t.tanh(x), &[0.5]);
        let y = 0.5f32.tanh();
        assert!((v[0] - y).abs() < 1e-6);
        assert!((g[0] - (1.0 - y * y)).abs() < 1e-6);
    }

    #[test]
    fn softplus_is_stable_and_monotone() {
        let (v, g) = grad_of(|t, x| t.softplus(x), &[-90.0, 0.0, 90.0]);
        assert!(v[0] >= 0.0 && v[0] < 1e-30);
        assert!((v[1] - 2.0f32.ln()).abs() < 1e-6);
        assert!((v[2] - 90.0).abs() < 1e-3);
        assert!((g[1] - 0.5).abs() < 1e-6);
        assert!(g.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn bce_identity_softplus_of_negated_logit() {
        // -log σ(x) == softplus(-x)
        for &x in &[-3.0f32, -0.1, 0.0, 0.7, 5.0] {
            let lhs = -stable_sigmoid(x).ln();
            let rhs = stable_softplus(-x);
            assert!((lhs - rhs).abs() < 1e-5, "x={x}: {lhs} vs {rhs}");
        }
    }
}
