//! Softmax over the trailing dimension.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Row-wise softmax over the last dimension, with the classic
    /// max-subtraction trick so fully-masked rows (all `-1e9`) stay finite
    /// (they come out uniform, which is harmless for padded positions).
    ///
    /// Backward: `dx = y ∘ (g - Σ_row(g ∘ y))`.
    pub fn softmax(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        let d = xv.shape().last_dim();
        assert!(d > 0, "softmax over empty dimension");
        let mut out = xv.clone();
        for row in out.data_mut().chunks_mut(d) {
            softmax_row(row);
        }
        let y = out.clone();
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = g.mul(&y);
                for (drow, yrow) in dx.data_mut().chunks_mut(d).zip(y.data().chunks(d)) {
                    let dot: f32 = drow.iter().sum();
                    for (dv, &yv) in drow.iter_mut().zip(yrow) {
                        *dv -= dot * yv;
                    }
                }
                vec![dx]
            })),
        )
    }
}

/// In-place stable softmax of one row.
pub(crate) fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let y = t.softmax(x);
        let v = t.value(y);
        let s0: f32 = v.data()[..3].iter().sum();
        let s1: f32 = v.data()[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6 && (s1 - 1.0).abs() < 1e-6);
        // monotone within the row
        assert!(v.at2(0, 0) < v.at2(0, 1) && v.at2(0, 1) < v.at2(0, 2));
    }

    #[test]
    fn fully_masked_row_is_uniform_and_finite() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([1, 4], vec![-1e9; 4]));
        let y = t.softmax(x);
        let v = t.value(y);
        assert!(v.is_finite());
        for i in 0..4 {
            assert!((v.at2(0, i) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        // softmax output is scale-invariant to a constant shift, so the
        // gradient of any loss w.r.t. the logits must sum to 0 per row.
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([1, 3], vec![0.3, -0.7, 1.1]));
        let y = t.softmax(x);
        // arbitrary non-uniform loss: weighted sum
        let w = Tensor::from_vec([1, 3], vec![1.0, 5.0, -2.0]);
        let l = t.mul_const(y, &w);
        let s = t.sum_all(l);
        let g = t.backward(s);
        let gsum: f32 = g.get(x).unwrap().data().iter().sum();
        assert!(gsum.abs() < 1e-6, "row gradient sum {gsum}");
    }

    #[test]
    fn translation_invariance() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]));
        let b = t.leaf(Tensor::from_vec([1, 3], vec![101.0, 102.0, 103.0]));
        let ya = t.softmax(a);
        let yb = t.softmax(b);
        assert!(t.value(ya).max_diff(t.value(yb)) < 1e-6);
    }
}
