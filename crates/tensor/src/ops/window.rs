//! Sliding-window ops for convolutional sequence models (Caser).
//!
//! Caser treats the embedded sequence `[L, d]` as an "image" and applies
//! horizontal filters `[h, d]` and vertical filters `[L, 1]`. On top of the
//! existing matmuls, that needs: im2col-style window unfolding, a max over
//! the time axis, and a transpose of the trailing two dims.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Unfolds sliding windows of height `h` along the time axis:
    /// `[B, T, d] -> [B, T-h+1, h*d]`, each output row the concatenation of
    /// `h` consecutive timesteps (im2col). A matmul of the result against a
    /// `[h*d, n]` filter bank is exactly an `n`-filter horizontal
    /// convolution.
    ///
    /// # Panics
    /// Panics unless `1 <= h <= T`.
    pub fn unfold_windows(&mut self, x: Var, h: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "unfold expects [B,T,d], got {}", xv.shape());
        let (b, t, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert!(h >= 1 && h <= t, "window height {h} outside 1..={t}");
        let w = t - h + 1;
        let mut out = Vec::with_capacity(b * w * h * d);
        for bi in 0..b {
            for wi in 0..w {
                let start = (bi * t + wi) * d;
                out.extend_from_slice(&xv.data()[start..start + h * d]);
            }
        }
        self.push(
            Tensor::from_vec([b, w, h * d], out),
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = vec![0.0f32; b * t * d];
                for bi in 0..b {
                    for wi in 0..w {
                        let src = (bi * w + wi) * h * d;
                        let dst = (bi * t + wi) * d;
                        for j in 0..h * d {
                            dx[dst + j] += g.data()[src + j];
                        }
                    }
                }
                vec![Tensor::from_vec([b, t, d], dx)]
            })),
        )
    }

    /// Max over the middle (time) axis: `[B, T, n] -> [B, n]` (the max-pool
    /// of Caser's horizontal convolutions). Backward routes the gradient to
    /// the argmax position (first maximum on ties).
    pub fn max_over_dim1(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "max_over_dim1 expects [B,T,n], got {}", xv.shape());
        let (b, t, n) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert!(t > 0, "empty time axis");
        let mut out = vec![f32::NEG_INFINITY; b * n];
        let mut arg = vec![0usize; b * n];
        for bi in 0..b {
            for ti in 0..t {
                for ni in 0..n {
                    let v = xv.data()[(bi * t + ti) * n + ni];
                    if v > out[bi * n + ni] {
                        out[bi * n + ni] = v;
                        arg[bi * n + ni] = ti;
                    }
                }
            }
        }
        self.push(
            Tensor::from_vec([b, n], out),
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = vec![0.0f32; b * t * n];
                for bi in 0..b {
                    for ni in 0..n {
                        let ti = arg[bi * n + ni];
                        dx[(bi * t + ti) * n + ni] += g.data()[bi * n + ni];
                    }
                }
                vec![Tensor::from_vec([b, t, n], dx)]
            })),
        )
    }

    /// Transposes the trailing two dims: `[B, T, d] -> [B, d, T]` (Caser's
    /// vertical convolution is a matmul on this layout).
    pub fn transpose12(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "transpose12 expects rank 3, got {}", xv.shape());
        let (b, t, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        let out = transpose12_raw(xv, b, t, d);
        self.push(out, vec![x], Some(Box::new(move |g: &Tensor| vec![transpose12_raw(g, b, d, t)])))
    }
}

fn transpose12_raw(x: &Tensor, b: usize, t: usize, d: usize) -> Tensor {
    let mut out = vec![0.0f32; b * t * d];
    let xd = x.data();
    for bi in 0..b {
        for ti in 0..t {
            for di in 0..d {
                out[(bi * d + di) * t + ti] = xd[(bi * t + ti) * d + di];
            }
        }
    }
    Tensor::from_vec([b, d, t], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfold_concatenates_consecutive_steps() {
        let mut tape = Tape::new();
        // B=1, T=3, d=2: rows [0,1],[2,3],[4,5]
        let x = tape.leaf(Tensor::from_vec([1, 3, 2], (0..6).map(|i| i as f32).collect()));
        let y = tape.unfold_windows(x, 2);
        assert_eq!(tape.value(y).shape().dims(), &[1, 2, 4]);
        assert_eq!(tape.value(y).data(), &[0.0, 1.0, 2.0, 3.0, 2.0, 3.0, 4.0, 5.0]);
        // middle timestep appears in 2 windows → gradient 2
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn unfold_h1_is_identity_shaped() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec([1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let y = tape.unfold_windows(x, 1);
        assert_eq!(tape.value(y).shape().dims(), &[1, 2, 2]);
        assert_eq!(tape.value(y).data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec([1, 3, 2], vec![1.0, 9.0, 5.0, 2.0, 3.0, 4.0]));
        let y = tape.max_over_dim1(x);
        assert_eq!(tape.value(y).data(), &[5.0, 9.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose12_roundtrips() {
        let mut tape = Tape::new();
        let data: Vec<f32> = (0..2 * 3 * 2).map(|i| i as f32).collect();
        let x = tape.leaf(Tensor::from_vec([2, 3, 2], data.clone()));
        let y = tape.transpose12(x);
        assert_eq!(tape.value(y).shape().dims(), &[2, 2, 3]);
        let z = tape.transpose12(y);
        assert_eq!(tape.value(z).data(), &data[..]);
        let s = tape.sum_all(z);
        let g = tape.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &vec![1.0; 12][..]);
    }
}
