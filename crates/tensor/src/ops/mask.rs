//! Attention masking.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Adds a per-batch additive attention mask to multi-head scores:
    /// `scores` is `[B*h, T, T]`, `mask` is `[B, T, T]` (typically
    /// `0` for allowed, `-1e9` for disallowed pairs), broadcast across the
    /// `h` heads of each batch element. The mask is a constant — no gradient
    /// is recorded for it.
    ///
    /// # Panics
    /// Panics if the shapes are inconsistent with `h`.
    pub fn add_attn_mask(&mut self, scores: Var, mask: &Tensor, h: usize) -> Var {
        let sv = self.value(scores);
        assert_eq!(sv.shape().rank(), 3, "scores must be [B*h,T,T], got {}", sv.shape());
        assert_eq!(mask.shape().rank(), 3, "mask must be [B,T,T], got {}", mask.shape());
        let (bh, tq, tk) = (sv.shape().dim(0), sv.shape().dim(1), sv.shape().dim(2));
        let (b, mq, mk) = (mask.shape().dim(0), mask.shape().dim(1), mask.shape().dim(2));
        assert!(h > 0 && bh == b * h, "scores batch {bh} != mask batch {b} × heads {h}");
        assert_eq!((tq, tk), (mq, mk), "mask matrix dims differ from scores");

        let stride = tq * tk;
        let mut out = sv.clone();
        {
            let od = out.data_mut();
            for bi in 0..b {
                let m = &mask.data()[bi * stride..(bi + 1) * stride];
                for hi in 0..h {
                    let dst = &mut od[(bi * h + hi) * stride..(bi * h + hi + 1) * stride];
                    for (o, &mv) in dst.iter_mut().zip(m) {
                        *o += mv;
                    }
                }
            }
        }
        self.push(out, vec![scores], Some(Box::new(|g: &Tensor| vec![g.clone()])))
    }
}

/// Builds the additive attention mask for a left-padded batch:
/// position `q` may attend to position `k` iff `k <= q` (causality) and
/// position `k` is not padding. Entries are `0` when allowed and `-1e9`
/// otherwise. `valid[b][t]` is true for real (non-pad) positions.
pub fn causal_padding_mask(valid: &[Vec<bool>], t: usize) -> Tensor {
    const NEG: f32 = -1e9;
    let b = valid.len();
    let mut data = vec![0.0f32; b * t * t];
    for (bi, v) in valid.iter().enumerate() {
        assert_eq!(v.len(), t, "validity row length != T");
        for q in 0..t {
            for k in 0..t {
                if k > q || !v[k] {
                    data[(bi * t + q) * t + k] = NEG;
                }
            }
        }
    }
    Tensor::from_vec([b, t, t], data)
}

/// Builds the additive attention mask for a left-padded batch **without**
/// causality: position `q` may attend to any non-padding position `k`
/// (bidirectional encoders, e.g. BERT4Rec). Entries are `0` when allowed
/// and `-1e9` otherwise.
pub fn padding_mask(valid: &[Vec<bool>], t: usize) -> Tensor {
    const NEG: f32 = -1e9;
    let b = valid.len();
    let mut data = vec![0.0f32; b * t * t];
    for (bi, v) in valid.iter().enumerate() {
        assert_eq!(v.len(), t, "validity row length != T");
        for q in 0..t {
            for k in 0..t {
                if !v[k] {
                    data[(bi * t + q) * t + k] = NEG;
                }
            }
        }
    }
    Tensor::from_vec([b, t, t], data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_broadcasts_over_heads() {
        let mut t = Tape::new();
        let scores = t.leaf(Tensor::zeros([2, 2, 2])); // B=1, h=2
        let mask = Tensor::from_vec([1, 2, 2], vec![0.0, -1e9, 0.0, 0.0]);
        let y = t.add_attn_mask(scores, &mask, 2);
        let v = t.value(y);
        // both heads receive the same mask
        assert_eq!(v.data()[..4], [0.0, -1e9, 0.0, 0.0]);
        assert_eq!(v.data()[4..], [0.0, -1e9, 0.0, 0.0]);
    }

    #[test]
    fn gradient_passes_straight_through() {
        let mut t = Tape::new();
        let scores = t.leaf(Tensor::zeros([1, 2, 2]));
        let mask = Tensor::zeros([1, 2, 2]);
        let y = t.add_attn_mask(scores, &mask, 1);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert_eq!(g.get(scores).unwrap().data(), &[1.0; 4]);
    }

    #[test]
    fn causal_mask_blocks_future_and_pads() {
        // one sequence, T=3, first position is padding
        let m = causal_padding_mask(&[vec![false, true, true]], 3);
        let d = m.data();
        // q=1 (real): can attend k=1 only (k=0 is pad, k=2 is future)
        assert_eq!(d[3], -1e9); // (q1,k0) pad
        assert_eq!(d[4], 0.0); // (q1,k1)
        assert_eq!(d[5], -1e9); // (q1,k2) future
                                // q=2: k=1,2 allowed
        assert_eq!(d[6], -1e9);
        assert_eq!(d[7], 0.0);
        assert_eq!(d[8], 0.0);
    }

    #[test]
    fn padding_mask_allows_future_but_not_pads() {
        let m = padding_mask(&[vec![false, true, true]], 3);
        let d = m.data();
        // q=1: k=0 is pad (blocked), k=2 is future but allowed
        assert_eq!(d[3], -1e9);
        assert_eq!(d[4], 0.0);
        assert_eq!(d[5], 0.0);
    }

    #[test]
    fn softmax_after_mask_ignores_blocked_keys() {
        let mut t = Tape::new();
        let scores = t.leaf(Tensor::zeros([1, 2, 2]));
        let mask = causal_padding_mask(&[vec![true, true]], 2);
        let masked = t.add_attn_mask(scores, &mask, 1);
        let probs = t.softmax(masked);
        let v = t.value(probs);
        // row q=0 attends only to k=0
        assert!((v.at(0) - 1.0).abs() < 1e-6);
        assert!(v.at(1) < 1e-6);
        // row q=1 attends uniformly
        assert!((v.at(2) - 0.5).abs() < 1e-6);
    }
}
