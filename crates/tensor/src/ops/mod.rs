//! Autograd operations, implemented as methods on [`crate::Tape`].
//!
//! Each submodule groups related ops; every op records a backward closure
//! that maps the incoming gradient to per-parent gradients. Constants
//! (masks) are captured by value and never receive gradients.

mod activations;
mod basic;
mod embedding;
mod loss;
mod mask;
mod matmul;
mod norm;
mod softmax;
mod window;

pub use mask::{causal_padding_mask, padding_mask};
