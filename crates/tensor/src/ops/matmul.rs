//! Matrix products and shape plumbing on the tape.
//!
//! Backward passes use the transposed kernels from [`crate::linalg`]
//! directly, never materialising a transposed tensor:
//!
//! * `C = A·B`  ⇒ `dA = dC·Bᵀ`, `dB = Aᵀ·dC`
//! * `C = A·Bᵀ` ⇒ `dA = dC·B`,  `dB = dCᵀ·A`

use crate::linalg;
use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// 2-D matrix product `[m,k]·[k,n] -> [m,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = linalg::matmul_nn(&av, &bv);
        self.push(
            out,
            vec![a, b],
            Some(Box::new(move |g: &Tensor| {
                vec![linalg::matmul_nt(g, &bv), linalg::matmul_tn(&av, g)]
            })),
        )
    }

    /// 2-D product against a transposed right operand:
    /// `[m,k]·([n,k])ᵀ -> [m,n]`. This is the scoring kernel
    /// (`user_repr · item_embeddingᵀ`).
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = linalg::matmul_nt(&av, &bv);
        self.push(
            out,
            vec![a, b],
            Some(Box::new(move |g: &Tensor| {
                vec![linalg::matmul_nn(g, &bv), linalg::matmul_tn(g, &av)]
            })),
        )
    }

    /// Batched matrix product over identical leading dims:
    /// `[..,m,k]·[..,k,n] -> [..,m,n]` (attention `softmax·V`).
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = linalg::bmm_nn(&av, &bv);
        self.push(
            out,
            vec![a, b],
            Some(Box::new(move |g: &Tensor| vec![linalg::bmm_nt(g, &bv), linalg::bmm_tn(&av, g)])),
        )
    }

    /// Batched product against transposed right operand:
    /// `[..,m,k]·[..,n,k] -> [..,m,n]` (attention `Q·Kᵀ`).
    pub fn bmm_nt(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = linalg::bmm_nt(&av, &bv);
        self.push(
            out,
            vec![a, b],
            Some(Box::new(move |g: &Tensor| vec![linalg::bmm_nn(g, &bv), linalg::bmm_tn(g, &av)])),
        )
    }

    /// Reinterprets the value under a new shape (same element count); the
    /// gradient is reshaped back. Free: storage is shared.
    pub fn reshape(&mut self, x: Var, shape: impl Into<Shape>) -> Var {
        let shape = shape.into();
        let old = self.value(x).shape().clone();
        let out = self.value(x).reshape(shape);
        self.push(out, vec![x], Some(Box::new(move |g: &Tensor| vec![g.reshape(old.clone())])))
    }

    /// Applies a `[d_in, d_out]` weight to the trailing dimension of any
    /// tensor shaped `[..., d_in]`, flattening leading dims into rows.
    pub fn matmul_last(&mut self, x: Var, w: Var) -> Var {
        let xs = self.value(x).shape().clone();
        let d_in = xs.last_dim();
        let d_out = self.value(w).shape().dim(1);
        let rows = xs.rows();
        let flat = self.reshape(x, [rows, d_in]);
        let y = self.matmul(flat, w);
        let mut dims = xs.dims().to_vec();
        *dims.last_mut().expect("rank >= 1") = d_out;
        self.reshape(y, dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn matmul_forward_matches_linalg() {
        let mut r = rng(20);
        let a = uniform([3, 4], -1.0, 1.0, &mut r);
        let b = uniform([4, 5], -1.0, 1.0, &mut r);
        let mut t = Tape::new();
        let (va, vb) = (t.leaf(a.clone()), t.leaf(b.clone()));
        let c = t.matmul(va, vb);
        assert_eq!(t.value(c), &linalg::matmul_nn(&a, &b));
    }

    #[test]
    fn matmul_gradients_match_manual_formula() {
        let mut r = rng(21);
        let a = uniform([2, 3], -1.0, 1.0, &mut r);
        let b = uniform([3, 2], -1.0, 1.0, &mut r);
        let mut t = Tape::new();
        let (va, vb) = (t.leaf(a.clone()), t.leaf(b.clone()));
        let c = t.matmul(va, vb);
        let s = t.sum_all(c);
        let g = t.backward(s);
        // dC = ones, so dA = ones·Bᵀ and dB = Aᵀ·ones.
        let ones = Tensor::ones([2, 2]);
        assert!(g.get(va).unwrap().max_diff(&linalg::matmul_nt(&ones, &b)) < 1e-6);
        assert!(g.get(vb).unwrap().max_diff(&linalg::matmul_tn(&a, &ones)) < 1e-6);
    }

    #[test]
    fn nt_variant_agrees_with_explicit_transpose() {
        let mut r = rng(22);
        let a = uniform([3, 4], -1.0, 1.0, &mut r);
        let b = uniform([5, 4], -1.0, 1.0, &mut r);
        let mut t = Tape::new();
        let (va, vb) = (t.leaf(a.clone()), t.leaf(b.clone()));
        let c = t.matmul_nt(va, vb);
        assert!(t.value(c).max_diff(&linalg::matmul_nn(&a, &b.transpose2())) < 1e-6);
    }

    #[test]
    fn bmm_gradients_flow_to_both_operands() {
        let mut r = rng(23);
        let a = uniform([2, 3, 4], -1.0, 1.0, &mut r);
        let b = uniform([2, 4, 3], -1.0, 1.0, &mut r);
        let mut t = Tape::new();
        let (va, vb) = (t.leaf(a), t.leaf(b));
        let c = t.bmm(va, vb);
        let s = t.sum_all(c);
        let g = t.backward(s);
        assert_eq!(g.get(va).unwrap().shape().dims(), &[2, 3, 4]);
        assert_eq!(g.get(vb).unwrap().shape().dims(), &[2, 4, 3]);
    }

    #[test]
    fn reshape_roundtrips_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([2, 3], vec![1.0; 6]));
        let y = t.reshape(x, [3, 2]);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert_eq!(g.get(x).unwrap().shape().dims(), &[2, 3]);
    }

    #[test]
    fn matmul_last_handles_rank3() {
        let mut r = rng(24);
        let x = uniform([2, 3, 4], -1.0, 1.0, &mut r);
        let w = uniform([4, 5], -1.0, 1.0, &mut r);
        let mut t = Tape::new();
        let (vx, vw) = (t.leaf(x), t.leaf(w));
        let y = t.matmul_last(vx, vw);
        assert_eq!(t.value(y).shape().dims(), &[2, 3, 5]);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert_eq!(g.get(vw).unwrap().shape().dims(), &[4, 5]);
        assert_eq!(g.get(vx).unwrap().shape().dims(), &[2, 3, 4]);
    }
}
