//! Fused loss ops.

use crate::ops::softmax::softmax_row;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Softmax cross-entropy with integer targets, fused for stability and a
    /// cheap backward: given logits `[N, C]` and `targets[i] ∈ 0..C`,
    /// produces per-row losses `[N]` where
    /// `loss_i = -log softmax(logits_i)[targets_i]`.
    ///
    /// Backward is the classic `softmax - onehot`, scaled by the incoming
    /// per-row gradient. This op is the core of the NT-Xent contrastive loss
    /// (the paper's Eq. 3 is exactly a softmax cross-entropy over
    /// similarities).
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &[u32]) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.shape().rank(), 2, "logits must be [N,C], got {}", lv.shape());
        let (n, c) = (lv.shape().dim(0), lv.shape().dim(1));
        assert_eq!(n, targets.len(), "{n} rows vs {} targets", targets.len());
        assert!(targets.iter().all(|&t| (t as usize) < c), "target class out of range 0..{c}");

        // Probabilities are saved for the backward pass.
        let mut probs = lv.clone();
        for row in probs.data_mut().chunks_mut(c) {
            softmax_row(row);
        }
        let losses: Vec<f32> = probs
            .data()
            .chunks(c)
            .zip(targets)
            .map(|(row, &t)| -(row[t as usize].max(1e-30)).ln())
            .collect();
        let targets: Vec<u32> = targets.to_vec();
        self.push(
            Tensor::from_vec([n], losses),
            vec![logits],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = probs.clone();
                for ((row, &t), &gv) in dx.data_mut().chunks_mut(c).zip(&targets).zip(g.data()) {
                    row[t as usize] -= 1.0;
                    for v in row.iter_mut() {
                        *v *= gv;
                    }
                }
                vec![dx]
            })),
        )
    }

    /// Binary cross-entropy on a positive and a negative logit
    /// (the paper's Eq. 15): per element,
    /// `loss = -log σ(pos) - log(1 - σ(neg)) = softplus(-pos) + softplus(neg)`.
    /// `pos` and `neg` must have identical shapes; the result keeps that
    /// shape so a validity mask can be applied before reduction.
    pub fn bce_pairwise(&mut self, pos: Var, neg: Var) -> Var {
        let p = self.scale(pos, -1.0);
        let lp = self.softplus(p);
        let ln = self.softplus(neg);
        self.add(lp, ln)
    }

    /// BPR loss: `-log σ(pos - neg) = softplus(neg - pos)` elementwise.
    pub fn bpr(&mut self, pos: Var, neg: Var) -> Var {
        let diff = self.sub(neg, pos);
        self.softplus(diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_c() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::zeros([2, 4]));
        let l = t.softmax_cross_entropy(logits, &[0, 3]);
        for &v in t.value(l).data() {
            assert!((v - 4.0f32.ln()).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_is_small_when_target_dominates() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::from_vec([1, 3], vec![10.0, 0.0, 0.0]));
        let l = t.softmax_cross_entropy(logits, &[0]);
        assert!(t.value(l).item() < 1e-3);
    }

    #[test]
    fn cross_entropy_backward_is_probs_minus_onehot() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::from_vec([1, 2], vec![1.0, -1.0]));
        let l = t.softmax_cross_entropy(logits, &[1]);
        let s = t.sum_all(l);
        let g = t.backward(s);
        let p0 = (1.0f32).exp() / ((1.0f32).exp() + (-1.0f32).exp());
        let dx = g.get(logits).unwrap();
        assert!((dx.at(0) - p0).abs() < 1e-5);
        assert!((dx.at(1) - (1.0 - p0 - 1.0)).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::from_vec([2, 3], vec![0.5, -0.2, 1.0, 2.0, 0.0, -1.0]));
        let l = t.softmax_cross_entropy(logits, &[2, 0]);
        let s = t.sum_all(l);
        let g = t.backward(s);
        for row in g.get(logits).unwrap().data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn cross_entropy_rejects_bad_targets() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::zeros([1, 2]));
        t.softmax_cross_entropy(logits, &[2]);
    }

    #[test]
    fn bce_pairwise_matches_definition() {
        let mut t = Tape::new();
        let pos = t.leaf(Tensor::from_vec([1], vec![2.0]));
        let neg = t.leaf(Tensor::from_vec([1], vec![-1.0]));
        let l = t.bce_pairwise(pos, neg);
        let expected = -(sigmoid(2.0)).ln() - (1.0 - sigmoid(-1.0)).ln();
        assert!((t.value(l).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn bce_decreases_when_scores_separate() {
        let mut t = Tape::new();
        let good_p = t.leaf(Tensor::from_vec([1], vec![5.0]));
        let good_n = t.leaf(Tensor::from_vec([1], vec![-5.0]));
        let bad_p = t.leaf(Tensor::from_vec([1], vec![-5.0]));
        let bad_n = t.leaf(Tensor::from_vec([1], vec![5.0]));
        let good = t.bce_pairwise(good_p, good_n);
        let bad = t.bce_pairwise(bad_p, bad_n);
        assert!(t.value(good).item() < t.value(bad).item());
    }

    #[test]
    fn bpr_prefers_positive_above_negative() {
        let mut t = Tape::new();
        let pos = t.leaf(Tensor::from_vec([1], vec![3.0]));
        let neg = t.leaf(Tensor::from_vec([1], vec![1.0]));
        let l = t.bpr(pos, neg);
        let expected = -sigmoid(2.0).ln();
        assert!((t.value(l).item() - expected).abs() < 1e-5);
    }

    fn sigmoid(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }
}
