//! Elementwise arithmetic, broadcasts, and reductions on the tape.

use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// `a + b`, identical shapes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).add(self.value(b));
        self.push(out, vec![a, b], Some(Box::new(|g: &Tensor| vec![g.clone(), g.clone()])))
    }

    /// `a - b`, identical shapes.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).sub(self.value(b));
        self.push(out, vec![a, b], Some(Box::new(|g: &Tensor| vec![g.clone(), g.scale(-1.0)])))
    }

    /// Elementwise `a * b`, identical shapes.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = av.mul(&bv);
        self.push(out, vec![a, b], Some(Box::new(move |g: &Tensor| vec![g.mul(&bv), g.mul(&av)])))
    }

    /// `a * c` for a compile-time constant scalar.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let out = self.value(a).scale(c);
        self.push(out, vec![a], Some(Box::new(move |g: &Tensor| vec![g.scale(c)])))
    }

    /// Adds a constant tensor (no gradient flows to it). Shapes must match.
    /// Used for additive attention masks.
    pub fn add_const(&mut self, a: Var, c: &Tensor) -> Var {
        let out = self.value(a).add(c);
        self.push(out, vec![a], Some(Box::new(|g: &Tensor| vec![g.clone()])))
    }

    /// Multiplies by a constant tensor elementwise (no gradient flows to it).
    /// Shapes must match. Used for timeline / loss masks.
    pub fn mul_const(&mut self, a: Var, c: &Tensor) -> Var {
        let out = self.value(a).mul(c);
        let c = c.clone();
        self.push(out, vec![a], Some(Box::new(move |g: &Tensor| vec![g.mul(&c)])))
    }

    /// Broadcast-adds a `[d]` bias to every length-`d` row of `x`
    /// (any shape whose last dimension is `d`). Gradient to the bias is the
    /// row-sum of the incoming gradient.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let xv = self.value(x);
        let bv = self.value(bias);
        assert_eq!(bv.shape().rank(), 1, "bias must be rank 1, got {}", bv.shape());
        let d = bv.shape().dim(0);
        assert_eq!(xv.shape().last_dim(), d, "bias dim {d} does not match rows of {}", xv.shape());
        let mut out = xv.clone();
        for row in out.data_mut().chunks_mut(d) {
            for (o, &b) in row.iter_mut().zip(bv.data()) {
                *o += b;
            }
        }
        self.push(
            out,
            vec![x, bias],
            Some(Box::new(move |g: &Tensor| vec![g.clone(), reduce_rows(g, d)])),
        )
    }

    /// Broadcast-multiplies every length-`d` row of `x` by a `[d]` vector
    /// (LayerNorm gain). `dgamma = Σ_rows g∘x`, `dx = g∘gamma`.
    pub fn mul_bias(&mut self, x: Var, gamma: Var) -> Var {
        let xv = self.value(x).clone();
        let gv = self.value(gamma).clone();
        assert_eq!(gv.shape().rank(), 1, "gain must be rank 1, got {}", gv.shape());
        let d = gv.shape().dim(0);
        assert_eq!(xv.shape().last_dim(), d);
        let mut out = xv.clone();
        for row in out.data_mut().chunks_mut(d) {
            for (o, &m) in row.iter_mut().zip(gv.data()) {
                *o *= m;
            }
        }
        self.push(
            out,
            vec![x, gamma],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = g.clone();
                for row in dx.data_mut().chunks_mut(d) {
                    for (o, &m) in row.iter_mut().zip(gv.data()) {
                        *o *= m;
                    }
                }
                vec![dx, reduce_rows(&g.mul(&xv), d)]
            })),
        )
    }

    /// Broadcast-adds a `[T, d]` matrix to every batch of a `[B, T, d]`
    /// tensor (learnable positional embeddings). Gradient to the matrix is
    /// the sum over batches.
    pub fn add_broadcast_batch(&mut self, x: Var, m: Var) -> Var {
        let xv = self.value(x);
        let mv = self.value(m);
        assert_eq!(xv.shape().rank(), 3, "expected [B,T,d], got {}", xv.shape());
        assert_eq!(mv.shape().rank(), 2, "expected [T,d], got {}", mv.shape());
        let (b, t, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert_eq!(mv.shape().dims(), &[t, d], "positional shape mismatch");
        let stride = t * d;
        let mut out = xv.clone();
        for batch in out.data_mut().chunks_mut(stride) {
            for (o, &p) in batch.iter_mut().zip(mv.data()) {
                *o += p;
            }
        }
        self.push(
            out,
            vec![x, m],
            Some(Box::new(move |g: &Tensor| {
                let mut dm = vec![0.0f32; stride];
                for batch in g.data().chunks(stride).take(b) {
                    for (o, &v) in dm.iter_mut().zip(batch) {
                        *o += v;
                    }
                }
                vec![g.clone(), Tensor::from_vec([t, d], dm)]
            })),
        )
    }

    /// Sum of all elements, producing a scalar var.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        let shape = xv.shape().clone();
        let out = Tensor::scalar(xv.sum());
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| vec![Tensor::full(shape.clone(), g.item())])),
        )
    }

    /// Mean of all elements, producing a scalar var.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let n = self.value(x).len();
        assert!(n > 0, "mean of empty tensor");
        let s = self.sum_all(x);
        self.scale(s, 1.0 / n as f32)
    }

    /// Row sums: `[N, d] -> [N]` (used to build dot products:
    /// `dot(a,b) = sum_rows(a ∘ b)`).
    pub fn sum_rows(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 2, "sum_rows expects rank 2, got {}", xv.shape());
        let (n, d) = (xv.shape().dim(0), xv.shape().dim(1));
        let data = xv
            .data()
            .chunks(d)
            .map(|row| row.iter().map(|&v| v as f64).sum::<f64>() as f32)
            .collect();
        self.push(
            Tensor::from_vec([n], data),
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = vec![0.0f32; n * d];
                for (row, &gv) in dx.chunks_mut(d).zip(g.data()) {
                    row.fill(gv);
                }
                vec![Tensor::from_vec([n, d], dx)]
            })),
        )
    }

    /// Masked mean of a vector: `Σ(x ∘ w) / Σw`. `w` is a constant weight
    /// vector (e.g. a 0/1 validity mask); no gradient flows to it.
    ///
    /// # Panics
    /// Panics if the weights sum to zero or shapes differ.
    pub fn masked_mean(&mut self, x: Var, w: &Tensor) -> Var {
        let total: f32 = w.sum();
        assert!(total > 0.0, "masked_mean weights sum to {total}");
        let weighted = self.mul_const(x, w);
        let s = self.sum_all(weighted);
        self.scale(s, 1.0 / total)
    }
}

/// Sums a tensor's length-`d` rows into a single `[d]` vector.
fn reduce_rows(g: &Tensor, d: usize) -> Tensor {
    let mut out = vec![0.0f32; d];
    for row in g.data().chunks(d) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    Tensor::from_vec(Shape::from(vec![d]), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(tape: &mut Tape, shape: impl Into<Shape>, data: Vec<f32>) -> Var {
        tape.leaf(Tensor::from_vec(shape, data))
    }

    #[test]
    fn add_backward_is_identity_both_sides() {
        let mut t = Tape::new();
        let a = leaf(&mut t, [2], vec![1.0, 2.0]);
        let b = leaf(&mut t, [2], vec![3.0, 4.0]);
        let c = t.add(a, b);
        let s = t.sum_all(c);
        let g = t.backward(s);
        assert_eq!(g.get(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(g.get(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_backward_swaps_operands() {
        let mut t = Tape::new();
        let a = leaf(&mut t, [2], vec![2.0, 3.0]);
        let b = leaf(&mut t, [2], vec![5.0, 7.0]);
        let c = t.mul(a, b);
        let s = t.sum_all(c);
        let g = t.backward(s);
        assert_eq!(g.get(a).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(g.get(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn bias_gradient_reduces_over_rows() {
        let mut t = Tape::new();
        let x = leaf(&mut t, [2, 3], vec![0.0; 6]);
        let b = leaf(&mut t, [3], vec![1.0, 2.0, 3.0]);
        let y = t.add_bias(x, b);
        assert_eq!(t.value(y).data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert_eq!(g.get(b).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_bias_forward_and_grads() {
        let mut t = Tape::new();
        let x = leaf(&mut t, [2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let gamma = leaf(&mut t, [2], vec![10.0, 100.0]);
        let y = t.mul_bias(x, gamma);
        assert_eq!(t.value(y).data(), &[10.0, 200.0, 30.0, 400.0]);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert_eq!(g.get(gamma).unwrap().data(), &[4.0, 6.0]); // Σx per column
        assert_eq!(g.get(x).unwrap().data(), &[10.0, 100.0, 10.0, 100.0]);
    }

    #[test]
    fn positional_broadcast_sums_over_batch() {
        let mut t = Tape::new();
        let x = leaf(&mut t, [2, 2, 2], vec![0.0; 8]);
        let p = leaf(&mut t, [2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = t.add_broadcast_batch(x, p);
        assert_eq!(t.value(y).data()[..4], [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.value(y).data()[4..], [1.0, 2.0, 3.0, 4.0]);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert_eq!(g.get(p).unwrap().data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn sum_rows_and_dot_product() {
        let mut t = Tape::new();
        let a = leaf(&mut t, [2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = leaf(&mut t, [2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let prod = t.mul(a, b);
        let dots = t.sum_rows(prod);
        assert_eq!(t.value(dots).data(), &[17.0, 53.0]);
        let s = t.sum_all(dots);
        let g = t.backward(s);
        assert_eq!(g.get(a).unwrap().data(), &[5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn masked_mean_ignores_masked_entries() {
        let mut t = Tape::new();
        let x = leaf(&mut t, [4], vec![1.0, 100.0, 3.0, 100.0]);
        let w = Tensor::from_vec([4], vec![1.0, 0.0, 1.0, 0.0]);
        let m = t.masked_mean(x, &w);
        assert_eq!(t.value(m).item(), 2.0);
        let g = t.backward(m);
        assert_eq!(g.get(x).unwrap().data(), &[0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn constants_receive_no_gradient_buffers() {
        let mut t = Tape::new();
        let x = leaf(&mut t, [2], vec![1.0, 2.0]);
        let c = Tensor::from_vec([2], vec![10.0, 20.0]);
        let y = t.add_const(x, &c);
        let z = t.mul_const(y, &c);
        assert_eq!(t.value(z).data(), &[110.0, 440.0]);
        let s = t.sum_all(z);
        let g = t.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &[10.0, 20.0]);
    }

    #[test]
    fn mean_all_divides_gradient() {
        let mut t = Tape::new();
        let x = leaf(&mut t, [4], vec![1.0, 2.0, 3.0, 4.0]);
        let m = t.mean_all(x);
        assert_eq!(t.value(m).item(), 2.5);
        let g = t.backward(m);
        assert_eq!(g.get(x).unwrap().data(), &[0.25; 4]);
    }
}
