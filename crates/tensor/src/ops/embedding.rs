//! Table lookups and structural ops (head split/merge, time slicing,
//! concatenation, per-row scaling).

use rayon::prelude::*;

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Below this many output scalars the scatter runs serially — banding a
/// small table costs more in id re-scans than it saves.
const PAR_SCATTER_MIN: usize = 16_384;

/// Scatter-adds gradient rows of width `d` into a zeroed `[v, d]` table
/// gradient: row `rows[i]` receives `g[i*d..(i+1)*d]`.
///
/// Parallelism is over **destination** bands: each band owns a contiguous
/// range of table rows, scans every id, and accumulates only its own hits,
/// in id order. Each output row therefore sees its adds in exactly the
/// serial order, so the result is bit-identical to the serial loop for
/// *every* band count — determinism here doesn't depend on the pool size
/// at all. Bands write disjoint rows, so no reduction pass is needed.
pub(crate) fn scatter_add_rows(
    rows: &[usize],
    g: &[f32],
    v: usize,
    d: usize,
    bands: usize,
) -> Vec<f32> {
    let mut dt = vec![0.0f32; v * d];
    let band_rows = if bands <= 1 { v } else { v.div_ceil(bands) };
    if band_rows >= v || v * d < PAR_SCATTER_MIN {
        scatter_band(rows, g, d, &mut dt, 0);
    } else {
        dt.par_chunks_mut(band_rows * d).enumerate().for_each(|(c, band)| {
            scatter_band(rows, g, d, band, c * band_rows);
        });
    }
    dt
}

/// Accumulates the ids landing in `[row0, row0 + band.len()/d)` into `band`.
fn scatter_band(rows: &[usize], g: &[f32], d: usize, band: &mut [f32], row0: usize) {
    let n_rows = band.len() / d;
    for (&r, grow) in rows.iter().zip(g.chunks(d)) {
        let Some(local) = r.checked_sub(row0) else { continue };
        if local >= n_rows {
            continue;
        }
        let dst = &mut band[local * d..(local + 1) * d];
        for (o, &gv) in dst.iter_mut().zip(grow) {
            *o += gv;
        }
    }
}

impl Tape {
    /// Gathers rows of an embedding table: `table` is `[V, d]`, `ids` has
    /// `ids.len()` entries; the output is `[*out_batch_dims, d]` where the
    /// product of `out_batch_dims` equals `ids.len()`. Backward scatter-adds
    /// into the table gradient, so repeated ids accumulate correctly.
    ///
    /// # Panics
    /// Panics if any id is out of range or the dims don't multiply out.
    pub fn embedding(&mut self, table: Var, ids: &[u32], out_batch_dims: &[usize]) -> Var {
        let tv = self.value(table);
        assert_eq!(tv.shape().rank(), 2, "table must be [V, d], got {}", tv.shape());
        let (v, d) = (tv.shape().dim(0), tv.shape().dim(1));
        let n: usize = out_batch_dims.iter().product();
        assert_eq!(n, ids.len(), "batch dims {out_batch_dims:?} don't cover {} ids", ids.len());
        let mut out = Vec::with_capacity(n * d);
        for &id in ids {
            let id = id as usize;
            assert!(id < v, "item id {id} out of range for table with {v} rows");
            out.extend_from_slice(&tv.data()[id * d..(id + 1) * d]);
        }
        let mut dims = out_batch_dims.to_vec();
        dims.push(d);
        let rows: Vec<usize> = ids.iter().map(|&id| id as usize).collect();
        self.push(
            Tensor::from_vec(dims, out),
            vec![table],
            Some(Box::new(move |g: &Tensor| {
                let bands = rayon::current_num_threads();
                let dt = scatter_add_rows(&rows, g.data(), v, d, bands);
                vec![Tensor::from_vec([v, d], dt)]
            })),
        )
    }

    /// Splits `[B, T, d]` into `h` heads laid out as `[B*h, T, d/h]`, the
    /// layout batched matmuls expect for attention.
    ///
    /// # Panics
    /// Panics unless the input is rank 3 with `d % h == 0`.
    pub fn split_heads(&mut self, x: Var, h: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "split_heads expects [B,T,d], got {}", xv.shape());
        let (b, t, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert!(h > 0 && d % h == 0, "d={d} not divisible by h={h}");
        let dh = d / h;
        let out = split_heads_raw(xv, b, t, d, h);
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| vec![merge_heads_raw(g, b, t, dh, h)])),
        )
    }

    /// Inverse of [`Tape::split_heads`]: `[B*h, T, d/h] -> [B, T, d]`.
    pub fn merge_heads(&mut self, x: Var, h: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "merge_heads expects [B*h,T,dh], got {}", xv.shape());
        let (bh, t, dh) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert!(h > 0 && bh % h == 0, "batch {bh} not divisible by h={h}");
        let b = bh / h;
        let out = merge_heads_raw(xv, b, t, dh, h);
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| vec![split_heads_raw(g, b, t, dh * h, h)])),
        )
    }

    /// Selects timestep `t` from a `[B, T, d]` tensor, producing `[B, d]`.
    /// Backward scatters the gradient back into the selected slice.
    pub fn select_time(&mut self, x: Var, t: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "select_time expects [B,T,d], got {}", xv.shape());
        let (b, tt, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert!(t < tt, "timestep {t} out of range 0..{tt}");
        let mut out = Vec::with_capacity(b * d);
        for i in 0..b {
            let start = (i * tt + t) * d;
            out.extend_from_slice(&xv.data()[start..start + d]);
        }
        self.push(
            Tensor::from_vec([b, d], out),
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = vec![0.0f32; b * tt * d];
                for i in 0..b {
                    let start = (i * tt + t) * d;
                    dx[start..start + d].copy_from_slice(&g.data()[i * d..(i + 1) * d]);
                }
                vec![Tensor::from_vec([b, tt, d], dx)]
            })),
        )
    }

    /// Gathers arbitrary `(batch, time)` positions from a `[B, T, d]`
    /// tensor into `[N, d]` (cloze-style objectives collect the hidden
    /// states of masked positions this way). Backward scatter-adds, so
    /// duplicate positions accumulate.
    pub fn gather_positions(&mut self, x: Var, positions: &[(usize, usize)]) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "gather_positions expects [B,T,d], got {}", xv.shape());
        let (b, t, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        let n = positions.len();
        let mut out = Vec::with_capacity(n * d);
        for &(bi, ti) in positions {
            assert!(bi < b && ti < t, "position ({bi},{ti}) outside [{b},{t}]");
            let start = (bi * t + ti) * d;
            out.extend_from_slice(&xv.data()[start..start + d]);
        }
        let rows: Vec<usize> = positions.iter().map(|&(bi, ti)| bi * t + ti).collect();
        self.push(
            Tensor::from_vec([n, d], out),
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let bands = rayon::current_num_threads();
                let dx = scatter_add_rows(&rows, g.data(), b * t, d, bands);
                vec![Tensor::from_vec([b, t, d], dx)]
            })),
        )
    }

    /// The representation at the final timestep, `[B, T, d] -> [B, d]`.
    /// With left-padded sequences this is the user representation
    /// (Eq. 13 of the paper).
    pub fn last_time(&mut self, x: Var) -> Var {
        let t = self.value(x).shape().dim(1);
        self.select_time(x, t - 1)
    }

    /// Concatenates along axis 0. Trailing dims must match. Used to stack
    /// the two augmented views into the `2N` contrastive batch.
    pub fn concat0(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(
            av.shape().dims()[1..],
            bv.shape().dims()[1..],
            "concat0 trailing dims differ: {} vs {}",
            av.shape(),
            bv.shape()
        );
        let (na, nb) = (av.shape().dim(0), bv.shape().dim(0));
        let mut dims = av.shape().dims().to_vec();
        dims[0] = na + nb;
        let mut out = Vec::with_capacity(av.len() + bv.len());
        out.extend_from_slice(av.data());
        out.extend_from_slice(bv.data());
        let (la, shape_a, shape_b) = (av.len(), av.shape().clone(), bv.shape().clone());
        self.push(
            Tensor::from_vec(dims, out),
            vec![a, b],
            Some(Box::new(move |g: &Tensor| {
                vec![
                    Tensor::from_vec(shape_a.clone(), g.data()[..la].to_vec()),
                    Tensor::from_vec(shape_b.clone(), g.data()[la..].to_vec()),
                ]
            })),
        )
    }

    /// Concatenates along the **last** dimension: `[N, da] ++ [N, db] ->
    /// [N, da+db]` (rank 2 only — this feeds NCF's MLP tower with
    /// `[user ; item]` pairs).
    pub fn concat_last(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.shape().rank(), 2, "concat_last expects rank 2, got {}", av.shape());
        assert_eq!(bv.shape().rank(), 2, "concat_last expects rank 2, got {}", bv.shape());
        let (n, da) = (av.shape().dim(0), av.shape().dim(1));
        let (nb, db) = (bv.shape().dim(0), bv.shape().dim(1));
        assert_eq!(n, nb, "row counts differ: {} vs {}", av.shape(), bv.shape());
        let mut out = Vec::with_capacity(n * (da + db));
        for (ra, rb) in av.data().chunks(da).zip(bv.data().chunks(db)) {
            out.extend_from_slice(ra);
            out.extend_from_slice(rb);
        }
        self.push(
            Tensor::from_vec([n, da + db], out),
            vec![a, b],
            Some(Box::new(move |g: &Tensor| {
                let mut ga = Vec::with_capacity(n * da);
                let mut gb = Vec::with_capacity(n * db);
                for row in g.data().chunks(da + db) {
                    ga.extend_from_slice(&row[..da]);
                    gb.extend_from_slice(&row[da..]);
                }
                vec![Tensor::from_vec([n, da], ga), Tensor::from_vec([n, db], gb)]
            })),
        )
    }

    /// Multiplies each length-`d` row by a constant per-row weight
    /// (timeline masking: zero out padded positions). `weights.len()` must
    /// equal the number of rows.
    pub fn scale_rows_const(&mut self, x: Var, weights: &[f32]) -> Var {
        let xv = self.value(x);
        let d = xv.shape().last_dim();
        let rows = xv.shape().rows();
        assert_eq!(rows, weights.len(), "{rows} rows vs {} weights", weights.len());
        let mut out = xv.clone();
        for (row, &w) in out.data_mut().chunks_mut(d).zip(weights) {
            for v in row.iter_mut() {
                *v *= w;
            }
        }
        let weights = weights.to_vec();
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = g.clone();
                for (row, &w) in dx.data_mut().chunks_mut(d).zip(&weights) {
                    for v in row.iter_mut() {
                        *v *= w;
                    }
                }
                vec![dx]
            })),
        )
    }
}

fn split_heads_raw(x: &Tensor, b: usize, t: usize, d: usize, h: usize) -> Tensor {
    let dh = d / h;
    let mut out = vec![0.0f32; b * t * d];
    let xd = x.data();
    for bi in 0..b {
        for ti in 0..t {
            let src = (bi * t + ti) * d;
            for hi in 0..h {
                let dst = ((bi * h + hi) * t + ti) * dh;
                out[dst..dst + dh].copy_from_slice(&xd[src + hi * dh..src + (hi + 1) * dh]);
            }
        }
    }
    Tensor::from_vec([b * h, t, dh], out)
}

fn merge_heads_raw(x: &Tensor, b: usize, t: usize, dh: usize, h: usize) -> Tensor {
    let d = dh * h;
    let mut out = vec![0.0f32; b * t * d];
    let xd = x.data();
    for bi in 0..b {
        for hi in 0..h {
            for ti in 0..t {
                let src = ((bi * h + hi) * t + ti) * dh;
                let dst = (bi * t + ti) * d + hi * dh;
                out[dst..dst + dh].copy_from_slice(&xd[src..src + dh]);
            }
        }
    }
    Tensor::from_vec([b, t, d], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_gathers_rows() {
        let mut t = Tape::new();
        let table = t.leaf(Tensor::from_vec([3, 2], vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]));
        let e = t.embedding(table, &[2, 0, 2], &[3]);
        assert_eq!(t.value(e).shape().dims(), &[3, 2]);
        assert_eq!(t.value(e).data(), &[20.0, 21.0, 0.0, 1.0, 20.0, 21.0]);
    }

    #[test]
    fn embedding_backward_accumulates_repeats() {
        let mut t = Tape::new();
        let table = t.leaf(Tensor::zeros([3, 2]));
        let e = t.embedding(table, &[1, 1, 0], &[3]);
        let s = t.sum_all(e);
        let g = t.backward(s);
        let dt = g.get(table).unwrap();
        assert_eq!(dt.data(), &[1.0, 1.0, 2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn banded_scatter_is_bit_identical_to_serial() {
        // v*d = 256*64 clears PAR_SCATTER_MIN, so bands > 1 really take the
        // parallel path; run on an explicit pool so the bands execute on
        // real workers. Destination banding preserves the per-row add
        // order, so every band count must agree bit-for-bit.
        let (v, d, n) = (256usize, 64usize, 1000usize);
        let rows: Vec<usize> = (0..n).map(|i| (i * 37 + 11) % v).collect();
        let g: Vec<f32> = (0..n * d).map(|i| ((i * 2_654_435_761) as f32).sin()).collect();
        let serial = scatter_add_rows(&rows, &g, v, d, 1);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        for bands in 2..=5 {
            let banded = pool.install(|| scatter_add_rows(&rows, &g, v, d, bands));
            for (a, b) in serial.iter().zip(&banded) {
                assert_eq!(a.to_bits(), b.to_bits(), "bands={bands} diverged");
            }
        }
    }

    #[test]
    #[should_panic]
    fn embedding_rejects_out_of_range_ids() {
        let mut t = Tape::new();
        let table = t.leaf(Tensor::zeros([3, 2]));
        t.embedding(table, &[3], &[1]);
    }

    #[test]
    fn head_split_merge_roundtrip() {
        let mut t = Tape::new();
        let data: Vec<f32> = (0..2 * 3 * 4).map(|i| i as f32).collect();
        let x = t.leaf(Tensor::from_vec([2, 3, 4], data.clone()));
        let split = t.split_heads(x, 2);
        assert_eq!(t.value(split).shape().dims(), &[4, 3, 2]);
        let merged = t.merge_heads(split, 2);
        assert_eq!(t.value(merged).data(), &data[..]);
        // gradient roundtrips too
        let s = t.sum_all(merged);
        let g = t.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &vec![1.0; 24][..]);
    }

    #[test]
    fn split_heads_layout_is_head_major() {
        let mut t = Tape::new();
        // B=1, T=2, d=4, h=2: row t has [h0_0, h0_1, h1_0, h1_1]
        let x = t.leaf(Tensor::from_vec([1, 2, 4], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]));
        let sp = t.split_heads(x, 2);
        // head 0: [[0,1],[4,5]]; head 1: [[2,3],[6,7]]
        assert_eq!(t.value(sp).data(), &[0.0, 1.0, 4.0, 5.0, 2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn select_time_extracts_and_scatters() {
        let mut t = Tape::new();
        let data: Vec<f32> = (0..2 * 3 * 2).map(|i| i as f32).collect();
        let x = t.leaf(Tensor::from_vec([2, 3, 2], data));
        let y = t.select_time(x, 1);
        assert_eq!(t.value(y).data(), &[2.0, 3.0, 8.0, 9.0]);
        let s = t.sum_all(y);
        let g = t.backward(s);
        let dx = g.get(x).unwrap();
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_positions_collects_and_scatters() {
        let mut t = Tape::new();
        let data: Vec<f32> = (0..2 * 3 * 2).map(|i| i as f32).collect();
        let x = t.leaf(Tensor::from_vec([2, 3, 2], data));
        // gather (0,1), (1,2) and a duplicate of (0,1)
        let y = t.gather_positions(x, &[(0, 1), (1, 2), (0, 1)]);
        assert_eq!(t.value(y).data(), &[2.0, 3.0, 10.0, 11.0, 2.0, 3.0]);
        let s = t.sum_all(y);
        let g = t.backward(s);
        let dx = g.get(x).unwrap();
        // the duplicated position accumulates gradient 2
        assert_eq!(dx.data()[2..4], [2.0, 2.0]);
        assert_eq!(dx.data()[10..12], [1.0, 1.0]);
    }

    #[test]
    fn last_time_is_final_position() {
        let mut t = Tape::new();
        let data: Vec<f32> = (0..3 * 2).map(|i| i as f32).collect(); // shape [1, 3, 2]
        let x = t.leaf(Tensor::from_vec([1, 3, 2], data));
        let y = t.last_time(x);
        assert_eq!(t.value(y).data(), &[4.0, 5.0]);
    }

    #[test]
    fn concat0_stacks_and_splits_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::from_vec([1, 2], vec![1.0, 2.0]));
        let b = t.leaf(Tensor::from_vec([2, 2], vec![3.0, 4.0, 5.0, 6.0]));
        let c = t.concat0(a, b);
        assert_eq!(t.value(c).shape().dims(), &[3, 2]);
        let s = t.sum_all(c);
        let g = t.backward(s);
        assert_eq!(g.get(a).unwrap().shape().dims(), &[1, 2]);
        assert_eq!(g.get(b).unwrap().shape().dims(), &[2, 2]);
    }

    #[test]
    fn concat_last_stacks_columns() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::from_vec([2, 2], vec![1.0, 2.0, 5.0, 6.0]));
        let b = t.leaf(Tensor::from_vec([2, 1], vec![3.0, 7.0]));
        let c = t.concat_last(a, b);
        assert_eq!(t.value(c).shape().dims(), &[2, 3]);
        assert_eq!(t.value(c).data(), &[1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
        let s = t.sum_all(c);
        let g = t.backward(s);
        assert_eq!(g.get(a).unwrap().shape().dims(), &[2, 2]);
        assert_eq!(g.get(b).unwrap().shape().dims(), &[2, 1]);
    }

    #[test]
    fn scale_rows_masks_rows() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let y = t.scale_rows_const(x, &[1.0, 0.0]);
        assert_eq!(t.value(y).data(), &[1.0, 2.0, 0.0, 0.0]);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &[1.0, 1.0, 0.0, 0.0]);
    }
}
