//! Normalisation ops: LayerNorm, row L2-normalisation, dropout.

use crate::init::TensorRng;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

impl Tape {
    /// LayerNorm's normalisation core over the last dimension:
    /// `y = (x - μ) / sqrt(var + eps)` per row. The learnable gain/shift are
    /// composed outside via [`Tape::mul_bias`] / [`Tape::add_bias`].
    ///
    /// Backward (per row, `σ = sqrt(var + eps)`):
    /// `dx = (g - mean(g) - y·mean(g∘y)) / σ`.
    pub fn layernorm(&mut self, x: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let d = xv.shape().last_dim();
        assert!(d > 0, "layernorm over empty dimension");
        let mut out = xv.clone();
        let mut inv_sigmas = Vec::with_capacity(xv.shape().rows());
        for row in out.data_mut().chunks_mut(d) {
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_sigma = 1.0 / (var + eps).sqrt();
            inv_sigmas.push(inv_sigma);
            for v in row.iter_mut() {
                *v = (*v - mean) * inv_sigma;
            }
        }
        let y = out.clone();
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = g.clone();
                let rows = dx.data_mut().chunks_mut(d);
                for ((grow, yrow), &inv_sigma) in rows.zip(y.data().chunks(d)).zip(&inv_sigmas) {
                    let gmean = grow.iter().sum::<f32>() / d as f32;
                    let gymean =
                        grow.iter().zip(yrow).map(|(&gv, &yv)| gv * yv).sum::<f32>() / d as f32;
                    for (gv, &yv) in grow.iter_mut().zip(yrow) {
                        *gv = (*gv - gmean - yv * gymean) * inv_sigma;
                    }
                }
                vec![dx]
            })),
        )
    }

    /// L2-normalises each length-`d` row: `y = x / max(‖x‖, eps)`. Used to
    /// turn projected views into unit vectors so the NT-Xent similarity is a
    /// cosine (Eq. 3 of the paper).
    ///
    /// Backward: `dx = (g - y (y·g)) / ‖x‖`.
    pub fn normalize_rows(&mut self, x: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let d = xv.shape().last_dim();
        let mut out = xv.clone();
        let mut inv_norms = Vec::with_capacity(xv.shape().rows());
        for row in out.data_mut().chunks_mut(d) {
            let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt().max(eps);
            let inv = 1.0 / norm;
            inv_norms.push(inv);
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        let y = out.clone();
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = g.clone();
                for ((grow, yrow), &inv) in
                    dx.data_mut().chunks_mut(d).zip(y.data().chunks(d)).zip(&inv_norms)
                {
                    let dot: f32 = grow.iter().zip(yrow).map(|(&gv, &yv)| gv * yv).sum();
                    for (gv, &yv) in grow.iter_mut().zip(yrow) {
                        *gv = (*gv - yv * dot) * inv;
                    }
                }
                vec![dx]
            })),
        )
    }

    /// Inverted dropout: during training each element is zeroed with
    /// probability `p` and survivors are scaled by `1/(1-p)` so the expected
    /// activation is unchanged; at inference (`training == false`) it is the
    /// identity.
    pub fn dropout(&mut self, x: Var, p: f32, training: bool, rng: &mut TensorRng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout rate {p} outside [0, 1)");
        if !training || p == 0.0 {
            // Identity node keeps the graph uniform between modes.
            let out = self.value(x).clone();
            return self.push(out, vec![x], Some(Box::new(|g: &Tensor| vec![g.clone()])));
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let xv = self.value(x);
        let mask: Vec<f32> =
            (0..xv.len()).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }).collect();
        let mask = Tensor::from_vec(xv.shape().clone(), mask);
        let out = xv.mul(&mask);
        self.push(out, vec![x], Some(Box::new(move |g: &Tensor| vec![g.mul(&mask)])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn layernorm_rows_have_zero_mean_unit_var() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([2, 4], vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0]));
        let y = t.layernorm(x, 1e-8);
        for row in t.value(y).data().chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_gradient_is_orthogonal_to_shifts() {
        // y is invariant to adding a constant to x, so the gradient must sum
        // to ~0 per row.
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([1, 3], vec![0.2, -1.0, 2.2]));
        let y = t.layernorm(x, 1e-8);
        let w = Tensor::from_vec([1, 3], vec![3.0, -1.0, 2.0]);
        let l = t.mul_const(y, &w);
        let s = t.sum_all(l);
        let g = t.backward(s);
        let sum: f32 = g.get(x).unwrap().data().iter().sum();
        assert!(sum.abs() < 1e-5, "gradient sum {sum}");
    }

    #[test]
    fn normalized_rows_are_unit_length() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([2, 3], vec![3.0, 0.0, 4.0, 1.0, 1.0, 1.0]));
        let y = t.normalize_rows(x, 1e-12);
        for row in t.value(y).data().chunks(3) {
            let n: f32 = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn normalize_gradient_is_tangent() {
        // y has constant norm, so dL/dx must be orthogonal to y... projected
        // through 1/‖x‖; check y·dx ≈ 0.
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([1, 3], vec![1.0, 2.0, -0.5]));
        let y = t.normalize_rows(x, 1e-12);
        let w = Tensor::from_vec([1, 3], vec![0.3, -1.2, 0.9]);
        let l = t.mul_const(y, &w);
        let s = t.sum_all(l);
        let g = t.backward(s);
        let yv = t.value(y).data().to_vec();
        let dot: f32 = yv.iter().zip(g.get(x).unwrap().data()).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 1e-5, "y·dx = {dot}");
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut r = rng(30);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]));
        let y = t.dropout(x, 0.5, false, &mut r);
        assert_eq!(t.value(y).data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dropout_training_zeroes_and_rescales() {
        let mut r = rng(31);
        let mut t = Tape::new();
        let n = 10_000;
        let x = t.leaf(Tensor::ones([n]));
        let y = t.dropout(x, 0.25, true, &mut r);
        let v = t.value(y);
        let zeros = v.data().iter().filter(|&&e| e == 0.0).count();
        let frac = zeros as f32 / n as f32;
        assert!((frac - 0.25).abs() < 0.02, "zero fraction {frac}");
        // survivors are scaled by 4/3
        let survivor = v.data().iter().find(|&&e| e != 0.0).unwrap();
        assert!((survivor - 4.0 / 3.0).abs() < 1e-6);
        // expectation preserved
        assert!((v.mean() - 1.0).abs() < 0.03);
    }

    #[test]
    fn dropout_gradient_uses_same_mask() {
        let mut r = rng(32);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::ones([64]));
        let y = t.dropout(x, 0.5, true, &mut r);
        let s = t.sum_all(y);
        let fwd = t.value(y).data().to_vec();
        let g = t.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &fwd[..]);
    }
}
