//! The dense `f32` tensor type.
//!
//! Data is stored row-major in an `Arc`-shared buffer, so cloning a tensor
//! is O(1); mutation goes through [`Tensor::data_mut`] which copies only
//! when the buffer is shared (copy-on-write). The autograd tape clones
//! tensors freely — cheap clones keep that design practical. The buffer
//! newtype ([`Buf`]) keeps a process-wide live-bytes gauge up to date, so
//! peak tensor memory is observable per run.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crate::shape::Shape;

/// The backing buffer of a tensor. A thin newtype over `Vec<f32>` whose
/// construction/clone/drop keep the process-wide
/// [`seqrec_obs::metrics::TENSOR_LIVE_BYTES`] gauge (level + high-water
/// mark) in sync with the bytes actually allocated. `Arc` sharing — tensor
/// clones, reshapes — allocates nothing and is therefore not counted; only
/// real buffers are. Construction and drop additionally report to the
/// `seqrec_obs::mem` lifetime tracer (`SEQREC_OBS=mem=...` or the
/// in-process interval recorder), which attributes every buffer to the
/// span path that allocated it.
pub(crate) struct Buf {
    data: Vec<f32>,
    /// Lifetime-tracing id handed out by `seqrec_obs::mem` (0 when
    /// tracing was off at allocation time; its free is then a no-op).
    trace_id: u64,
}

impl Buf {
    fn new(data: Vec<f32>) -> Self {
        let bytes = data.capacity() * 4;
        seqrec_obs::metrics::TENSOR_LIVE_BYTES.add(bytes as i64);
        let trace_id = seqrec_obs::mem::on_alloc(bytes);
        Buf { data, trace_id }
    }
}

impl Clone for Buf {
    fn clone(&self) -> Self {
        // Reached via `Arc::make_mut` on shared storage: a genuine new
        // allocation (the copy-on-write copy), so it is counted.
        Buf::new(self.data.clone())
    }
}

impl Drop for Buf {
    fn drop(&mut self) {
        let bytes = self.data.capacity() * 4;
        seqrec_obs::metrics::TENSOR_LIVE_BYTES.add(-(bytes as i64));
        seqrec_obs::mem::on_free(self.trace_id, bytes);
    }
}

impl Deref for Buf {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        &self.data
    }
}

impl DerefMut for Buf {
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        &mut self.data
    }
}

impl PartialEq for Buf {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

/// A dense, row-major, contiguous `f32` tensor with copy-on-write storage.
#[derive(Clone)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Buf>,
}

impl Tensor {
    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data: Arc::new(Buf::new(data)) }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor { shape, data: Arc::new(Buf::new(vec![0.0; n])) }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor { shape, data: Arc::new(Buf::new(vec![value; n])) }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: Arc::new(Buf::new(vec![value])) }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True when the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// Read-only view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the buffer; copies the storage first if it is shared
    /// with another tensor (copy-on-write).
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Extracts the single element of a one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on tensor of shape {}", self.shape);
        self.data[0]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// This is free: the storage is shared with `self`.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} ({} elems) to {shape} ({} elems)",
            self.shape,
            self.len(),
            shape.len()
        );
        Tensor { shape, data: Arc::clone(&self.data) }
    }

    /// Element at flat index `i`.
    pub fn at(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Element of a rank-2 tensor at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or the index is out of range.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.rank(), 2, "at2 on tensor of shape {}", self.shape);
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        assert!(row < r && col < c, "index ({row}, {col}) out of range for {}", self.shape);
        self.data[row * c + col]
    }

    /// Returns a new tensor `self + other` (shapes must match exactly).
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Returns a new tensor `self - other` (shapes must match exactly).
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Returns a new tensor with elementwise product (shapes must match).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Returns a new tensor scaled by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Tensor { shape: self.shape.clone(), data: Arc::new(Buf::new(data)) }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch: {} vs {}", self.shape, other.shape);
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Tensor { shape: self.shape.clone(), data: Arc::new(Buf::new(data)) }
    }

    /// Accumulates `other` into `self` in place: `self += other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch: {} vs {}", self.shape, other.shape);
        let dst = Arc::make_mut(&mut self.data);
        for (d, &s) in dst.iter_mut().zip(other.data.iter()) {
            *d += s;
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// Panics on empty tensors.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f32
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        (self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()).sqrt() as f32
    }

    /// Largest absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 on {}", self.shape);
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec([c, r], out)
    }

    /// Maximum relative/absolute deviation from `other`, for tests.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data.iter().zip(other.data.iter()).fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let show = self.len().min(8);
        write!(f, "{:?}", &self.data[..show])?;
        if self.len() > show {
            write!(f, "…")?;
        }
        Ok(())
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.at(0), 1.0);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_length() {
        Tensor::from_vec([2, 2], vec![1.0]);
    }

    #[test]
    fn clone_is_cow() {
        let a = Tensor::zeros([4]);
        let mut b = a.clone();
        b.data_mut()[0] = 5.0;
        assert_eq!(a.at(0), 0.0);
        assert_eq!(b.at(0), 5.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec([2, 2], vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose2();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.at2(2, 1), 6.0);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn reshape_shares_storage() {
        let a = Tensor::from_vec([2, 3], vec![0.0; 6]);
        let b = a.reshape([3, 2]);
        assert_eq!(b.shape().dims(), &[3, 2]);
        assert_eq!(b.data().as_ptr(), a.data().as_ptr());
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::ones([3]);
        a.add_assign(&Tensor::from_vec([3], vec![1.0, 2.0, 3.0]));
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn finiteness_check() {
        assert!(Tensor::ones([2]).is_finite());
        assert!(!Tensor::from_vec([2], vec![1.0, f32::NAN]).is_finite());
    }
}
