//! Embedding table module.

use crate::init::{self, TensorRng};
use crate::nn::param::{HasParams, Param, Step};
use crate::tape::Var;

/// A `[V, d]` lookup table. Row 0 is conventionally the padding id in this
/// workspace; models mask padded positions explicitly rather than relying on
/// the pad row staying zero.
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Table initialised with the paper's truncated normal in
    /// `[-0.01, 0.01]`.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut TensorRng) -> Self {
        Embedding {
            table: Param::new(format!("{name}.table"), init::paper_default([vocab, dim], rng)),
            vocab,
            dim,
        }
    }

    /// Number of rows (vocabulary size incl. special tokens).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `ids`, shaping the result `[*batch_dims, dim]`.
    pub fn forward(&self, step: &mut Step, ids: &[u32], batch_dims: &[usize]) -> Var {
        let t = self.table.var(step);
        step.tape.embedding(t, ids, batch_dims)
    }

    /// The whole table as a var (for scoring against all items).
    pub fn full_table(&self, step: &mut Step) -> Var {
        self.table.var(step)
    }

    /// Direct access to the table parameter (e.g. BPR-MF warm-starting).
    pub fn table(&self) -> &Param {
        &self.table
    }

    /// Mutable access to the table parameter.
    pub fn table_mut(&mut self) -> &mut Param {
        &mut self.table
    }
}

impl HasParams for Embedding {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.table);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn lookup_shapes() {
        let mut r = rng(50);
        let e = Embedding::new("item", 10, 4, &mut r);
        let mut step = Step::new();
        let v = e.forward(&mut step, &[1, 2, 3, 4, 5, 6], &[2, 3]);
        assert_eq!(step.tape.value(v).shape().dims(), &[2, 3, 4]);
        assert_eq!(e.vocab(), 10);
        assert_eq!(e.dim(), 4);
    }

    #[test]
    fn init_respects_paper_window() {
        let mut r = rng(51);
        let e = Embedding::new("item", 100, 8, &mut r);
        assert!(e.table().value().max_abs() <= 0.01);
    }

    #[test]
    fn table_grad_flows_from_scores() {
        let mut r = rng(52);
        let e = Embedding::new("item", 5, 3, &mut r);
        let mut step = Step::new();
        let x = e.forward(&mut step, &[1, 2], &[2]);
        let table = e.full_table(&mut step);
        let scores = step.tape.matmul_nt(x, table);
        assert_eq!(step.tape.value(scores).shape().dims(), &[2, 5]);
        let s = step.tape.sum_all(scores);
        let grads = step.tape.backward(s);
        assert!(e.table().grad(&step, &grads).is_some());
    }
}
