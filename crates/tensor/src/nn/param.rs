//! Trainable parameters and their per-step binding to a tape.
//!
//! A [`Param`] owns its value across steps. Each training step builds a fresh
//! [`Tape`]; the first time a parameter is used on a given tape it is
//! inserted as a leaf and the resulting [`Var`] is cached, so a parameter
//! used by several sub-graphs (e.g. the item-embedding table shared between
//! two augmented views) accumulates all its gradients in one place.
//!
//! The binding cache holds one entry **per live tape**, behind a mutex:
//! data-parallel training shares `&model` across shard threads, each with
//! its own [`Step`], and every shard must keep its one-var-per-tape
//! accumulation invariant without clobbering the others' bindings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::tape::{Gradients, Tape, Var};
use crate::tensor::Tensor;

static TAPE_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Tapes carry a process-unique epoch so cached bindings can detect a stale
/// tape. Generated once per [`TapeId::fresh`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TapeId(u64);

impl TapeId {
    /// A new process-unique id.
    pub fn fresh() -> Self {
        TapeId(TAPE_EPOCH.fetch_add(1, Ordering::Relaxed))
    }
}

/// A training step's tape plus its identity, used to bind parameters.
pub struct Step {
    /// The autograd tape for this step.
    pub tape: Tape,
    id: TapeId,
}

impl Step {
    /// Starts a new step with an empty tape.
    pub fn new() -> Self {
        Step { tape: Tape::new(), id: TapeId::fresh() }
    }
}

impl Default for Step {
    fn default() -> Self {
        Self::new()
    }
}

/// How many per-tape bindings a parameter keeps before evicting the
/// oldest. Data-parallel training runs one tape per shard concurrently;
/// 16 comfortably covers any realistic shard count.
const MAX_BINDINGS: usize = 16;

/// A named trainable tensor.
pub struct Param {
    name: String,
    value: Tensor,
    binding: Mutex<Vec<(TapeId, Var)>>,
}

impl Param {
    /// Creates a parameter with a diagnostic name (also the optimizer-state
    /// key, so names must be unique within one model).
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param { name: name.into(), value, binding: Mutex::new(Vec::new()) }
    }

    fn bindings(&self) -> std::sync::MutexGuard<'_, Vec<(TapeId, Var)>> {
        self.binding.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable access for optimizers and custom initialisation.
    pub fn value_mut(&mut self) -> &mut Tensor {
        self.bindings().clear(); // any recorded binding now refers to old data
        &mut self.value
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Binds this parameter to the step's tape, inserting it as a leaf on
    /// first use and reusing the same var afterwards. Safe to call from
    /// several threads with *different* steps (each tape gets its own
    /// binding entry); a single `Step` is still single-threaded by `&mut`.
    pub fn var(&self, step: &mut Step) -> Var {
        let mut b = self.bindings();
        if let Some(&(_, var)) = b.iter().find(|(id, _)| *id == step.id) {
            return var;
        }
        let var = step.tape.leaf(self.value.clone());
        if b.len() >= MAX_BINDINGS {
            b.remove(0);
        }
        b.push((step.id, var));
        var
    }

    /// The gradient this parameter received on `step`, if it was used and
    /// influenced the loss.
    pub fn grad<'g>(&self, step: &Step, grads: &'g Gradients) -> Option<&'g Tensor> {
        let b = self.bindings();
        b.iter().find(|(id, _)| *id == step.id).and_then(|&(_, var)| grads.get(var))
    }
}

/// Anything that exposes trainable parameters.
///
/// `visit`/`visit_mut` walk parameters in a stable order; composite modules
/// forward to their children.
pub trait HasParams {
    /// Visits every parameter immutably.
    fn visit(&self, f: &mut dyn FnMut(&Param));
    /// Visits every parameter mutably (optimizer updates).
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total number of trainable scalars.
    fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| n += p.len());
        n
    }

    /// Collects parameter names in visit order (diagnostics, tests).
    fn param_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.visit(&mut |p| names.push(p.name().to_string()));
        names
    }
}

impl HasParams for Param {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(self);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_is_reused_within_a_step() {
        let p = Param::new("w", Tensor::ones([2]));
        let mut step = Step::new();
        let v1 = p.var(&mut step);
        let v2 = p.var(&mut step);
        assert_eq!(v1, v2);
        assert_eq!(step.tape.len(), 1);
    }

    #[test]
    fn binding_refreshes_across_steps() {
        let p = Param::new("w", Tensor::ones([2]));
        let mut s1 = Step::new();
        let v1 = p.var(&mut s1);
        let mut s2 = Step::new();
        let v2 = p.var(&mut s2);
        assert_eq!(v1, v2); // both are var 0 of their tapes…
        assert_eq!(s2.tape.len(), 1); // …but freshly inserted, not reused
    }

    #[test]
    fn shared_use_accumulates_gradients() {
        let p = Param::new("w", Tensor::from_vec([2], vec![1.0, 2.0]));
        let mut step = Step::new();
        let v = p.var(&mut step);
        let a = step.tape.scale(v, 2.0);
        let b = step.tape.scale(v, 3.0);
        let c = step.tape.add(a, b);
        let s = step.tape.sum_all(c);
        let grads = step.tape.backward(s);
        assert_eq!(p.grad(&step, &grads).unwrap().data(), &[5.0, 5.0]);
    }

    #[test]
    fn mutating_value_invalidates_binding() {
        let mut p = Param::new("w", Tensor::ones([1]));
        let mut step = Step::new();
        let _ = p.var(&mut step);
        p.value_mut().data_mut()[0] = 9.0;
        // binding cleared → re-binding picks up the new value
        let v = p.var(&mut step);
        assert_eq!(step.tape.value(v).item(), 9.0);
    }

    #[test]
    fn interleaved_steps_keep_independent_bindings() {
        // Data-parallel shards each run their own step against a shared
        // model; one shard's binding must not clobber another's.
        let p = Param::new("w", Tensor::from_vec([1], vec![2.0]));
        let mut s1 = Step::new();
        let mut s2 = Step::new();
        let v1 = p.var(&mut s1);
        let v2 = p.var(&mut s2);
        let a1 = s1.tape.scale(v1, 3.0);
        let l1 = s1.tape.sum_all(a1);
        let g1 = s1.tape.backward(l1);
        let a2 = s2.tape.scale(v2, 5.0);
        let l2 = s2.tape.sum_all(a2);
        let g2 = s2.tape.backward(l2);
        assert_eq!(p.grad(&s1, &g1).unwrap().data(), &[3.0]);
        assert_eq!(p.grad(&s2, &g2).unwrap().data(), &[5.0]);
    }

    #[test]
    fn num_params_counts_scalars() {
        let p = Param::new("w", Tensor::zeros([3, 4]));
        assert_eq!(p.num_params(), 12);
        assert_eq!(p.param_names(), vec!["w".to_string()]);
    }
}
