//! Fully-connected layer.

use crate::init::{self, TensorRng};
use crate::nn::param::{HasParams, Param, Step};
use crate::tape::Var;
use crate::tensor::Tensor;

/// `y = x · W (+ b)` applied to the trailing dimension of any input shaped
/// `[..., d_in]`.
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    d_in: usize,
    d_out: usize,
}

impl Linear {
    /// Xavier-initialised linear layer with bias.
    pub fn new(name: &str, d_in: usize, d_out: usize, rng: &mut TensorRng) -> Self {
        Self::with_options(name, d_in, d_out, true, rng)
    }

    /// Linear layer with configurable bias; weights are Xavier-uniform,
    /// bias starts at zero.
    pub fn with_options(
        name: &str,
        d_in: usize,
        d_out: usize,
        bias: bool,
        rng: &mut TensorRng,
    ) -> Self {
        Linear {
            weight: Param::new(format!("{name}.weight"), init::xavier_uniform(d_in, d_out, rng)),
            bias: bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros([d_out]))),
            d_in,
            d_out,
        }
    }

    /// Input feature dimension.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output feature dimension.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// Applies the layer on the step's tape.
    pub fn forward(&self, step: &mut Step, x: Var) -> Var {
        let w = self.weight.var(step);
        let y = step.tape.matmul_last(x, w);
        match &self.bias {
            Some(b) => {
                let bv = b.var(step);
                step.tape.add_bias(y, bv)
            }
            None => y,
        }
    }
}

impl HasParams for Linear {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        if let Some(b) = &self.bias {
            f(b);
        }
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn forward_shape_and_bias() {
        let mut r = rng(40);
        let lin = Linear::new("l", 3, 2, &mut r);
        let mut step = Step::new();
        let x = step.tape.leaf(Tensor::zeros([4, 3]));
        let y = lin.forward(&mut step, x);
        assert_eq!(step.tape.value(y).shape().dims(), &[4, 2]);
        // zero input → bias (zero-initialised) → zero output
        assert_eq!(step.tape.value(y).data(), &[0.0; 8]);
    }

    #[test]
    fn rank3_inputs_are_flattened() {
        let mut r = rng(41);
        let lin = Linear::new("l", 4, 6, &mut r);
        let mut step = Step::new();
        let x = step.tape.leaf(Tensor::ones([2, 5, 4]));
        let y = lin.forward(&mut step, x);
        assert_eq!(step.tape.value(y).shape().dims(), &[2, 5, 6]);
    }

    #[test]
    fn gradients_reach_weight_and_bias() {
        let mut r = rng(42);
        let lin = Linear::new("l", 3, 2, &mut r);
        let mut step = Step::new();
        let x = step.tape.leaf(Tensor::ones([1, 3]));
        let y = lin.forward(&mut step, x);
        let s = step.tape.sum_all(y);
        let grads = step.tape.backward(s);
        let mut n = 0;
        lin.visit(&mut |p| {
            assert!(p.grad(&step, &grads).is_some(), "missing grad for {}", p.name());
            n += 1;
        });
        assert_eq!(n, 2);
    }

    #[test]
    fn no_bias_variant_has_one_param() {
        let mut r = rng(43);
        let lin = Linear::with_options("l", 3, 3, false, &mut r);
        assert_eq!(lin.param_names(), vec!["l.weight".to_string()]);
        assert_eq!(lin.num_params(), 9);
    }
}
