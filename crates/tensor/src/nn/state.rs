//! Parameter state dictionaries: extract and restore the trainable state of
//! any [`HasParams`] model (checkpointing, transfer between model wrappers,
//! SASRec_BPR-style warm starts across architectures).
//!
//! The representation is plain `serde` data, so callers pick the encoding
//! (JSON, bincode, …) without this crate taking a serialisation dependency.

use serde::{Deserialize, Serialize};

use crate::nn::param::{HasParams, Param};
use crate::tensor::Tensor;

/// One named parameter's value.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct NamedTensor {
    /// Parameter name (unique within a model).
    pub name: String,
    /// Dimension extents.
    pub shape: Vec<usize>,
    /// Row-major values.
    pub data: Vec<f32>,
}

/// A model's complete trainable state, in visit order.
pub type StateDict = Vec<NamedTensor>;

/// Extracts the state of `model`.
pub fn state_dict(model: &impl HasParams) -> StateDict {
    let mut out = Vec::new();
    model.visit(&mut |p: &Param| {
        out.push(NamedTensor {
            name: p.name().to_string(),
            shape: p.value().shape().dims().to_vec(),
            data: p.value().data().to_vec(),
        });
    });
    out
}

/// Errors from [`load_state_dict`].
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The state has no entry for this model parameter.
    Missing(String),
    /// Shapes disagree; carries (name, expected, found).
    ShapeMismatch(String, Vec<usize>, Vec<usize>),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Missing(n) => write!(f, "state dict has no parameter `{n}`"),
            LoadError::ShapeMismatch(n, want, got) => {
                write!(f, "parameter `{n}`: model shape {want:?} vs state shape {got:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Restores `model` from `state`, matching by name. Extra entries in
/// `state` are ignored; a missing or mis-shaped entry aborts with an error
/// (the model may be partially updated in that case — reload to recover).
pub fn load_state_dict(model: &mut impl HasParams, state: &StateDict) -> Result<(), LoadError> {
    let by_name: std::collections::HashMap<&str, &NamedTensor> =
        state.iter().map(|t| (t.name.as_str(), t)).collect();
    let mut result = Ok(());
    model.visit_mut(&mut |p: &mut Param| {
        if result.is_err() {
            return;
        }
        let Some(entry) = by_name.get(p.name()) else {
            result = Err(LoadError::Missing(p.name().to_string()));
            return;
        };
        if entry.shape != p.value().shape().dims() {
            result = Err(LoadError::ShapeMismatch(
                p.name().to_string(),
                p.value().shape().dims().to_vec(),
                entry.shape.clone(),
            ));
            return;
        }
        *p.value_mut() = Tensor::from_vec(entry.shape.clone(), entry.data.clone());
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};
    use crate::nn::Linear;

    #[test]
    fn roundtrip_restores_values() {
        let mut r = rng(1);
        let original = Linear::new("l", 3, 2, &mut r);
        let state = state_dict(&original);
        assert_eq!(state.len(), 2);
        assert_eq!(state[0].name, "l.weight");

        let mut other = Linear::new("l", 3, 2, &mut rng(99));
        load_state_dict(&mut other, &state).unwrap();
        assert_eq!(state_dict(&other), state);
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let mut r = rng(2);
        let mut model = Linear::new("l", 2, 2, &mut r);
        let err = load_state_dict(&mut model, &Vec::new()).unwrap_err();
        assert_eq!(err, LoadError::Missing("l.weight".into()));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut r = rng(3);
        let donor = Linear::new("l", 4, 2, &mut r);
        let mut model = Linear::new("l", 2, 2, &mut r);
        let err = load_state_dict(&mut model, &state_dict(&donor)).unwrap_err();
        assert!(matches!(err, LoadError::ShapeMismatch(..)));
    }

    #[test]
    fn extra_entries_are_ignored() {
        let mut r = rng(4);
        let mut model = Linear::new("l", 2, 2, &mut r);
        let mut state = state_dict(&model);
        state.push(NamedTensor { name: "ghost".into(), shape: vec![1], data: vec![0.0] });
        assert!(load_state_dict(&mut model, &state).is_ok());
    }

    #[test]
    fn loaded_values_take_effect_in_forward() {
        let mut r = rng(5);
        let a = Linear::with_options("l", 2, 2, false, &mut r);
        let mut b = Linear::with_options("l", 2, 2, false, &mut rng(6));
        load_state_dict(&mut b, &state_dict(&a)).unwrap();
        let run = |lin: &Linear| {
            let mut step = crate::nn::Step::new();
            let x = step.tape.leaf(uniform([1, 2], -1.0, 1.0, &mut rng(7)));
            let y = lin.forward(&mut step, x);
            step.tape.value(y).data().to_vec()
        };
        assert_eq!(run(&a), run(&b));
    }
}
