//! Neural-network building blocks on top of the tape.

pub(crate) mod embedding;
pub(crate) mod layernorm;
pub(crate) mod linear;
pub(crate) mod param;
pub(crate) mod state;

pub use embedding::Embedding;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use param::{HasParams, Param, Step, TapeId};
pub use state::{load_state_dict, state_dict, LoadError, NamedTensor, StateDict};
