//! Layer normalisation with learnable gain and shift.

use crate::nn::param::{HasParams, Param, Step};
use crate::tape::Var;
use crate::tensor::Tensor;

/// `y = gamma ∘ (x - μ)/σ + beta` over the trailing dimension.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// Gain initialised to 1, shift to 0, `eps = 1e-8` (the value used by
    /// the reference SASRec implementation).
    pub fn new(name: &str, d: usize) -> Self {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones([d])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros([d])),
            eps: 1e-8,
        }
    }

    /// Applies the layer on the step's tape.
    pub fn forward(&self, step: &mut Step, x: Var) -> Var {
        let normed = step.tape.layernorm(x, self.eps);
        let g = self.gamma.var(step);
        let b = self.beta.var(step);
        let scaled = step.tape.mul_bias(normed, g);
        step.tape.add_bias(scaled, b)
    }
}

impl HasParams for LayerNorm {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_give_standardised_rows() {
        let ln = LayerNorm::new("ln", 4);
        let mut step = Step::new();
        let x = step.tape.leaf(Tensor::from_vec([1, 4], vec![2.0, 4.0, 6.0, 8.0]));
        let y = ln.forward(&mut step, x);
        let v = step.tape.value(y);
        let mean: f32 = v.data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn gain_and_shift_apply() {
        let mut ln = LayerNorm::new("ln", 2);
        ln.visit_mut(&mut |p| {
            if p.name().ends_with("gamma") {
                p.value_mut().data_mut().fill(2.0);
            } else {
                p.value_mut().data_mut().fill(10.0);
            }
        });
        let mut step = Step::new();
        let x = step.tape.leaf(Tensor::from_vec([1, 2], vec![-1.0, 1.0]));
        let y = ln.forward(&mut step, x);
        let v = step.tape.value(y);
        // normalised x is (-1, 1); scaled by 2 and shifted by 10 → (8, 12)
        assert!((v.at(0) - 8.0).abs() < 1e-4);
        assert!((v.at(1) - 12.0).abs() < 1e-4);
    }

    #[test]
    fn both_params_receive_gradients() {
        let ln = LayerNorm::new("ln", 3);
        let mut step = Step::new();
        let x = step.tape.leaf(Tensor::from_vec([2, 3], vec![1.0, 5.0, 2.0, -1.0, 0.5, 3.0]));
        let y = ln.forward(&mut step, x);
        let s = step.tape.sum_all(y);
        let grads = step.tape.backward(s);
        ln.visit(&mut |p| assert!(p.grad(&step, &grads).is_some()));
        assert_eq!(ln.num_params(), 6);
    }
}
