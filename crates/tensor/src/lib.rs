//! # seqrec-tensor
//!
//! A from-scratch dense-`f32` tensor library with tape-based reverse-mode
//! automatic differentiation, written to train the sequential recommenders
//! in this workspace on CPU. It deliberately implements only what those
//! models need — but implements it carefully:
//!
//! * [`Tensor`]: dense, row-major, `Arc`-backed (O(1) clones, copy-on-write).
//! * [`Tape`] + ops ([`ops`]): matmuls (plain/batched/transposed), softmax,
//!   LayerNorm, activations, embedding gather, attention masking, fused
//!   softmax-cross-entropy — each with a hand-written backward pass that is
//!   verified against finite differences ([`gradcheck`]).
//! * [`nn`]: `Linear`, `LayerNorm`, `Embedding` modules and the
//!   [`nn::Param`]/[`nn::Step`] binding machinery.
//! * [`optim`]: Adam (the paper's optimiser) with linear LR decay and
//!   global-norm clipping; SGD for tests.
//! * [`linalg`]: a packed, cache-blocked GEMM engine (`nn`/`nt`/`tn`,
//!   batched) with an AVX2+FMA microkernel and rayon row-band parallelism.
//! * [`topk`]: deterministic SIMD partial-select top-K for the serving
//!   stack's full-catalog ranking.
//!
//! ## Example
//!
//! ```
//! use seqrec_tensor::nn::{Param, Step};
//! use seqrec_tensor::optim::{Adam, AdamConfig};
//! use seqrec_tensor::Tensor;
//!
//! // Fit w to minimise (w - 3)^2.
//! let mut w = Param::new("w", Tensor::scalar(0.0));
//! let mut adam = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
//! for _ in 0..100 {
//!     let mut step = Step::new();
//!     let wv = w.var(&mut step);
//!     let target = step.tape.leaf(Tensor::scalar(3.0));
//!     let diff = step.tape.sub(wv, target);
//!     let sq = step.tape.mul(diff, diff);
//!     let loss = step.tape.sum_all(sq);
//!     let grads = step.tape.backward(loss);
//!     adam.step(&mut w, &step, &grads);
//! }
//! assert!((w.value().item() - 3.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod dynamics;
pub mod gradcheck;
pub mod init;
pub mod linalg;
pub mod nn;
pub mod ops;
pub mod optim;
mod shape;
mod tape;
mod tensor;
pub mod topk;

pub use shape::Shape;
pub use tape::{set_finite_tripwire, Gradients, Tape, Var};
pub use tensor::Tensor;
